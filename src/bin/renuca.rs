//! `renuca` — command-line front end to the simulator.
//!
//! ```text
//! renuca run   [--scheme S] [--workload N] [--warmup I] [--measure I]
//!              [--l2-128k] [--l3-1m] [--rob-168] [--no-prefetch]
//! renuca apps                       # Table II style characterization
//! renuca schemes [--workload N] ... # compare all five schemes on one mix
//! ```
//!
//! A thin, dependency-free argument parser: this binary exists so users can
//! poke at configurations without writing Rust.

use renuca::prelude::*;
use renuca::wear::lifetime_variation;

fn usage() -> ! {
    eprintln!(
        "usage:\n  renuca run     [--scheme snuca|rnuca|private|naive|renuca] [--workload 1..10]\n                 [--warmup N] [--measure N] [--l2-128k] [--l3-1m] [--rob-168] [--no-prefetch]\n  renuca apps    [--measure N]\n  renuca schemes [--workload 1..10] [--warmup N] [--measure N]"
    );
    std::process::exit(2)
}

struct Args {
    scheme: Scheme,
    workload: usize,
    budget: Budget,
    cfg: SystemConfig,
}

fn parse(args: &[String]) -> Args {
    let mut out = Args {
        scheme: Scheme::ReNuca,
        workload: 1,
        budget: Budget::from_env(),
        cfg: SystemConfig::default(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    usage()
                })
                .clone()
        };
        match a.as_str() {
            "--scheme" => {
                out.scheme = match value("--scheme").to_lowercase().as_str() {
                    "snuca" | "s-nuca" => Scheme::SNuca,
                    "rnuca" | "r-nuca" => Scheme::RNuca,
                    "private" => Scheme::Private,
                    "naive" => Scheme::Naive,
                    "renuca" | "re-nuca" => Scheme::ReNuca,
                    other => {
                        eprintln!("unknown scheme {other}");
                        usage()
                    }
                }
            }
            "--workload" => out.workload = value("--workload").parse().unwrap_or_else(|_| usage()),
            "--warmup" => out.budget.warmup = value("--warmup").parse().unwrap_or_else(|_| usage()),
            "--measure" => {
                out.budget.measure = value("--measure").parse().unwrap_or_else(|_| usage())
            }
            "--l2-128k" => out.cfg = out.cfg.with_l2_128k(),
            "--l3-1m" => out.cfg = out.cfg.with_l3_1m(),
            "--rob-168" => out.cfg = out.cfg.with_rob_168(),
            "--no-prefetch" => out.cfg.prefetch.enabled = false,
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    out
}

fn run_one(scheme: Scheme, workload: usize, cfg: SystemConfig, budget: Budget) -> SimResult {
    let wl = workload_mix(workload, cfg.n_cores);
    let mut sys = System::new(
        cfg,
        scheme.build_policy(&cfg),
        wl.build_sources(),
        scheme.build_predictors(&cfg, CptConfig::default()),
    );
    sys.prewarm();
    sys.warmup(budget.warmup);
    sys.run(budget.measure);
    sys.result()
}

fn print_result(r: &SimResult) {
    let model = LifetimeModel::default();
    let lifetimes = model.all_bank_lifetimes(&r.wear, r.cycles);
    let min = lifetimes.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{:10}  IPC {:6.2}   min-lifetime {:6.2}y   wear-CV {:5.3}   L3 writes {}",
        r.scheme,
        r.total_ipc(),
        min,
        lifetime_variation(&lifetimes),
        r.wear.total_writes()
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        usage()
    };
    match cmd.as_str() {
        "run" => {
            let a = parse(rest);
            println!(
                "scheme={} workload=WL{} warmup={} measure={}",
                a.scheme, a.workload, a.budget.warmup, a.budget.measure
            );
            let r = run_one(a.scheme, a.workload, a.cfg, a.budget);
            print_result(&r);
            for c in &r.per_core {
                println!(
                    "  core {:>2} {:12} ipc {:5.2}  mpki {:7.2}  wpki {:7.2}  l3hit {:4.2}",
                    c.label, "", c.ipc, c.mpki, c.wpki, c.l3_hit_rate
                );
            }
        }
        "apps" => {
            let a = parse(rest);
            let rows = renuca::experiments::figures::table2::run(a.budget);
            println!(
                "{}",
                renuca::experiments::figures::table2::format_table2(&rows)
            );
        }
        "schemes" => {
            let a = parse(rest);
            println!("workload WL{}:", a.workload);
            for scheme in Scheme::ALL {
                let r = run_one(scheme, a.workload, a.cfg, a.budget);
                print_result(&r);
            }
        }
        _ => usage(),
    }
}
