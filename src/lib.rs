//! **renuca** — a full reproduction of *"Re-NUCA: A Practical NUCA
//! Architecture for ReRAM based last-level caches"* (Kotra, Arjomand,
//! Guttman, Kandemir, Das — IEEE IPDPS 2016).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core_policies`] (`renuca-core`) — the paper's contribution: the
//!   Re-NUCA hybrid placement, the S-NUCA/R-NUCA/Private/Naive baselines,
//!   the Criticality Predictor Table and the MBV-enhanced TLB;
//! * [`sim`] (`cmp-sim`) — the from-scratch CMP substrate: OoO cores with
//!   ROBs, three-level cache hierarchy, MESI directory, 4×4 mesh NoC,
//!   DDR3-style DRAM;
//! * [`workloads`] — synthetic SPEC CPU2006-like application models and the
//!   WL1–WL10 multiprogrammed mixes;
//! * [`wear`] (`wear-model`) — ReRAM endurance accounting and
//!   lifetime-in-years extrapolation;
//! * [`experiments`] — one module per paper table/figure;
//! * [`stats`] (`sim-stats`) — counters, histograms, summaries, rendering;
//! * [`rng`] (`sim-rng`) — the hermetic deterministic RNG seeding every
//!   workload model and property test.
//!
//! # Quickstart
//!
//! ```
//! use renuca::prelude::*;
//!
//! // A small 4-core machine running workload mix WL1 under Re-NUCA.
//! let cfg = SystemConfig::small(4);
//! let wl = workload_mix(1, cfg.n_cores);
//! let mut sys = System::new(
//!     cfg,
//!     Scheme::ReNuca.build_policy(&cfg),
//!     wl.build_sources(),
//!     Scheme::ReNuca.build_predictors(&cfg, CptConfig::default()),
//! );
//! sys.prewarm();
//! sys.warmup(2_000);
//! sys.run(5_000);
//! let result = sys.result();
//! assert_eq!(result.scheme, "Re-NUCA");
//! assert!(result.total_ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]

pub use cmp_sim as sim;
pub use experiments;
pub use renuca_core as core_policies;
pub use sim_rng as rng;
pub use sim_stats as stats;
pub use wear_model as wear;
pub use workloads;

/// The most commonly used items, for `use renuca::prelude::*`.
pub mod prelude {
    pub use cmp_sim::{
        config::SystemConfig, instr::Instr, instr::InstrSource, system::SimResult, system::System,
    };
    pub use experiments::{Budget, SchemeStudy};
    pub use renuca_core::{Cpt, CptConfig, EnhancedTlb, ReNuca, SNuca, Scheme};
    pub use wear_model::{EnduranceSpec, IntraBankWear, LifetimeModel, WearTracker};
    pub use workloads::{app_by_name, workload_mix, AppModel, WorkloadMix, SPEC_TABLE};
}
