//! Regenerates Figure 2: WPKI+MPKI per application.
use bench::{bench_budget, header, timed};
use experiments::figures::table2;

fn main() {
    header("Figure 2 — WPKI+MPKI per application");
    let rows = timed("fig2_wpki_mpki", || table2::run(bench_budget()));
    println!("{}", table2::format_fig2(&rows));
}
