//! Regenerates Figure 7 — criticality prediction accuracy (threshold sweep).
use bench::{bench_budget, header, timed};
use experiments::figures::predictor_study;
use renuca_core::CptConfig;

fn main() {
    header("Figure 7 — criticality prediction accuracy");
    let study = timed("fig7_cpt_accuracy", || {
        predictor_study::run(bench_budget(), &CptConfig::THRESHOLD_SWEEP)
    });
    println!("{}", predictor_study::format_fig7(&study));
}
