//! Regenerates Figure 11: IPC improvement over S-NUCA per workload.
use bench::{bench_budget, header, timed};
use cmp_sim::SystemConfig;
use experiments::figures::lifetime;

fn main() {
    header("Figure 11 — IPC improvements over S-NUCA");
    let study = timed("fig11_ipc", || {
        lifetime::run("Actual Results", SystemConfig::default(), bench_budget())
    });
    println!("{}", lifetime::format_fig11(&study));
    println!("{}", lifetime::headline(&study));
}
