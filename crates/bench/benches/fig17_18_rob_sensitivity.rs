//! Regenerates Figures 17/18 — ROB = 168 sensitivity.
use bench::{bench_budget, header, timed};
use experiments::figures::sensitivity::{self, Sensitivity};

fn main() {
    header("Figures 17/18 — ROB = 168 sensitivity");
    let which = Sensitivity::RobLarge;
    let study = timed("fig17_18_rob_sensitivity", || {
        sensitivity::run(which, bench_budget())
    });
    println!("{}", sensitivity::format_wear(which, &study));
    println!("{}", sensitivity::format_ipc(which, &study));
}
