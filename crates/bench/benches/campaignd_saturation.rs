//! Throughput of the `campaignd` service under concurrent tenants.
//!
//! For each tenant count (1, 4, 16) this target starts a fresh in-process
//! daemon with a *fixed* worker pool, drives it from one client thread per
//! tenant (each submitting several small campaigns and polling to
//! completion), and reports end-to-end jobs/second — protocol handling,
//! fair-queue scheduling, journal fsyncs, manifest writes and report
//! rendering all included. With the worker pool pinned, the tenant sweep
//! isolates the *service* overhead of multi-tenancy: jobs/sec should stay
//! roughly flat from 1 → 16 tenants, since the simulation work is
//! identical and only connection count and queue bookkeeping grow.
//!
//! Emits one `renuca-bench-daemon-v1` JSON line; the committed baseline
//! is `BENCH_DAEMON_1.json` (schema in `EXPERIMENTS.md`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use campaign::serve::{Client, Daemon, DaemonConfig, Msg};

/// 1 threshold × 2 schemes × 2 mixes = 4 jobs per campaign.
const SPEC: &str = "\
renuca-campaign-v1
name satkit
config small 4
budget warmup=50 measure=300
schemes S-NUCA Re-NUCA
workloads 1 2
thresholds 25
";

const WORKERS: usize = 4;
const CAMPAIGNS_PER_TENANT: usize = 2;
const GRID_PER_CAMPAIGN: usize = 4;
const TENANT_COUNTS: [usize; 3] = [1, 4, 16];

struct SaturationPoint {
    tenants: usize,
    jobs: usize,
    elapsed_s: f64,
    jobs_per_sec: f64,
    busy_retries: usize,
}

/// Drive one daemon instance with `tenants` concurrent clients.
fn run_point(tenants: usize) -> SaturationPoint {
    let root = std::env::temp_dir().join(format!("campaignd-sat-{}-{tenants}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut config = DaemonConfig::for_root(root.clone());
    config.workers = WORKERS;
    config.max_pending_jobs = 4096;
    config.max_pending_per_tenant = 1024;
    let daemon = Daemon::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = daemon.local_addr().expect("local addr").to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let handle = std::thread::spawn(move || daemon.run(flag));

    let start = Instant::now();
    let busy_total: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..tenants)
            .map(|t| {
                let addr = addr.clone();
                scope.spawn(move || drive_tenant(&addr, t))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread"))
            .sum()
    });
    let elapsed = start.elapsed();

    shutdown.store(true, Ordering::SeqCst);
    handle.join().expect("daemon thread").expect("daemon run");
    let _ = std::fs::remove_dir_all(&root);

    let jobs = tenants * CAMPAIGNS_PER_TENANT * GRID_PER_CAMPAIGN;
    let elapsed_s = elapsed.as_secs_f64().max(1e-9);
    SaturationPoint {
        tenants,
        jobs,
        elapsed_s,
        jobs_per_sec: jobs as f64 / elapsed_s,
        busy_retries: busy_total,
    }
}

/// One tenant: submit its campaigns (honouring BUSY backoff), then poll
/// status until every one has a durable report. Returns busy-retry count.
fn drive_tenant(addr: &str, index: usize) -> usize {
    let tenant = format!("t{index}");
    let mut client =
        Client::connect_retry(addr, &tenant, Duration::from_secs(10)).expect("connect");
    let mut busy = 0;
    let mut names = Vec::new();
    for k in 0..CAMPAIGNS_PER_TENANT {
        let name = format!("sat-{index}-{k}");
        let text = SPEC.replace("name satkit", &format!("name {name}"));
        loop {
            match client.submit(&text).expect("submit") {
                Msg::Submitted { grid, .. } => {
                    assert_eq!(grid, GRID_PER_CAMPAIGN);
                    names.push(name.clone());
                    break;
                }
                Msg::Busy { retry_ms, .. } => {
                    busy += 1;
                    std::thread::sleep(Duration::from_millis(retry_ms.clamp(10, 500)));
                }
                other => panic!("unexpected submit reply: {other:?}"),
            }
        }
    }
    loop {
        let (campaigns, _) = client.status(None).expect("status");
        let complete = names
            .iter()
            .filter(|n| campaigns.iter().any(|c| &&c.name == n && c.report))
            .count();
        if complete == names.len() {
            return busy;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn main() {
    println!(
        "=== campaignd saturation: {WORKERS} workers, {CAMPAIGNS_PER_TENANT} campaigns \
         x {GRID_PER_CAMPAIGN} jobs per tenant ==="
    );
    let mut results = Vec::new();
    for &tenants in &TENANT_COUNTS {
        let p = run_point(tenants);
        println!(
            "tenants={:<3} jobs={:<4} elapsed={:.3}s throughput={:.2} jobs/s \
             (busy retries: {})",
            p.tenants, p.jobs, p.elapsed_s, p.jobs_per_sec, p.busy_retries
        );
        results.push(p);
    }
    // One machine-readable line, mirrored into BENCH_DAEMON_1.json.
    let points: Vec<String> = results
        .iter()
        .map(|p| {
            format!(
                "{{\"tenants\":{},\"jobs\":{},\"elapsed_s\":{:.6},\
                 \"jobs_per_sec\":{:.3},\"busy_retries\":{}}}",
                p.tenants, p.jobs, p.elapsed_s, p.jobs_per_sec, p.busy_retries
            )
        })
        .collect();
    println!(
        "{{\"schema\":\"renuca-bench-daemon-v1\",\
         \"source\":\"cargo bench -p bench --bench campaignd_saturation\",\
         \"workers\":{WORKERS},\"campaigns_per_tenant\":{CAMPAIGNS_PER_TENANT},\
         \"grid_per_campaign\":{GRID_PER_CAMPAIGN},\"results\":[{}]}}",
        points.join(",")
    );
}
