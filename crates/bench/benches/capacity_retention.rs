//! Capacity-retention curves per scheme (extension of §III.B).
use bench::{bench_budget, header, timed};
use cmp_sim::SystemConfig;
use experiments::figures::{capacity, lifetime};

fn main() {
    header("Capacity retention over time");
    let study = timed("capacity_retention", || {
        lifetime::run("Actual Results", SystemConfig::default(), bench_budget())
    });
    println!("{}", capacity::format_retention(&study, 16.0, 9));
}
