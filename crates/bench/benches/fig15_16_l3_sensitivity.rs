//! Regenerates Figures 15/16 — L3 bank = 1 MB sensitivity.
use bench::{bench_budget, header, timed};
use experiments::figures::sensitivity::{self, Sensitivity};

fn main() {
    header("Figures 15/16 — L3 bank = 1 MB sensitivity");
    let which = Sensitivity::L3Small;
    let study = timed("fig15_16_l3_sensitivity", || {
        sensitivity::run(which, bench_budget())
    });
    println!("{}", sensitivity::format_wear(which, &study));
    println!("{}", sensitivity::format_ipc(which, &study));
}
