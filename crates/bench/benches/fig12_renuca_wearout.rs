//! Regenerates Figure 12: per-bank lifetimes for all five schemes —
//! the paper's headline wear-leveling result.
use bench::{bench_budget, header, timed};
use cmp_sim::SystemConfig;
use experiments::figures::lifetime;

fn main() {
    header("Figure 12 — Re-NUCA wear-leveling");
    let study = timed("fig12_renuca_wearout", || {
        lifetime::run("Actual Results", SystemConfig::default(), bench_budget())
    });
    println!("{}", lifetime::format_fig12(&study));
    println!("{}", lifetime::headline(&study));
}
