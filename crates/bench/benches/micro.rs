//! Micro-benchmarks of the hot substrate structures, on the in-tree
//! harness.
//!
//! These track the simulator's own performance (a regression here slows
//! every experiment); they are not paper results. Each case prints one
//! JSON line with per-iteration min/mean/median/p95 nanoseconds.

use std::hint::black_box;

use bench::{bench, bench_with_setup};
use cmp_sim::cache::SetAssocCache;
use cmp_sim::config::{CacheGeometry, NocConfig, SystemConfig};
use cmp_sim::dram::Dram;
use cmp_sim::instr::InstrSource;
use cmp_sim::noc::Mesh;
use cmp_sim::placement::{AccessMeta, CriticalityPredictor, LlcAccessKind, LlcPlacement};
use cmp_sim::system::System;
use cmp_sim::tlb::Tlb;
use cmp_sim::types::{page_of_line, phys_addr};
use renuca_core::{Cpt, CptConfig, NaiveOracle, RNuca, ReNuca, SNuca, Scheme};
use wear_model::WearTracker;
use workloads::{workload_mix, AppModel};

fn access_meta(line: u64, critical: bool) -> AccessMeta {
    AccessMeta {
        core: 0,
        line,
        page: page_of_line(line),
        pc: 1,
        kind: LlcAccessKind::Demand,
        predicted_critical: critical,
    }
}

fn bench_cache() {
    let geo = CacheGeometry::symmetric(2 * 1024 * 1024, 16, 100);
    {
        let mut cache = SetAssocCache::new(geo, true);
        for line in 0..1024u64 {
            cache.fill(line, false);
        }
        let mut line = 0u64;
        bench("cache/l3_bank_access_hit", move || {
            line = (line + 1) & 1023;
            black_box(cache.access(line, false))
        })
        .report();
    }
    {
        let mut cache = SetAssocCache::new(geo, true);
        let mut line = 0u64;
        bench("cache/l3_bank_fill_evict", move || {
            line += 1;
            black_box(cache.fill(line, false))
        })
        .report();
    }
}

fn bench_cpt() {
    let mut cpt = Cpt::new(CptConfig::default());
    for pc in 0..512u32 {
        cpt.on_load_commit(pc * 4, pc % 3 == 0);
    }
    let mut pc = 0u32;
    bench("cpt/predict_trained", move || {
        pc = (pc + 4) & 2047;
        black_box(cpt.predict(pc))
    })
    .report();
}

fn bench_mesh() {
    let mut mesh = Mesh::new(NocConfig::default());
    let mut now = 0u64;
    bench("noc/traverse_6_hops", move || {
        now += 7;
        black_box(mesh.traverse(0, 15, 5, now))
    })
    .report();
}

fn bench_dram() {
    let mut dram = Dram::new(Default::default());
    let mut line = 0u64;
    let mut now = 0u64;
    bench("dram/stream_access", move || {
        line += 1;
        now += 5;
        black_box(dram.access(line, false, now))
    })
    .report();
}

fn bench_tlb() {
    let mut tlb: Tlb<u64> = Tlb::new(64, 8, 60);
    for p in 0..8u64 {
        tlb.access(p, |_| 0);
    }
    let mut p = 0u64;
    bench("tlb/hit", move || {
        p = (p + 1) & 7;
        black_box(tlb.access(p, |_| 0).hit)
    })
    .report();
}

fn bench_placement() {
    // The per-access hot loop of every experiment: one lookup_bank (and on
    // a miss one fill_bank) per L2 miss. Address streams are strided so
    // the structures behind each policy (MBV TLB + backing store, Naive
    // directory) are actually exercised, not just the arithmetic.
    {
        let mut s = SNuca::new(16);
        let mut line = 0u64;
        bench("placement/snuca_lookup_bank", move || {
            line = line.wrapping_add(0x9E37_79B9);
            black_box(s.lookup_bank(&access_meta(line, false)))
        })
        .report();
    }
    {
        let mut r = RNuca::new(4, 4);
        let mut i = 0u64;
        bench("placement/rnuca_lookup_bank", move || {
            i = i.wrapping_add(1);
            let line = phys_addr((i & 15) as usize, i.wrapping_mul(977) & 0xfff_ffff) >> 6;
            black_box(r.lookup_bank(&access_meta(line, false)))
        })
        .report();
    }
    {
        // Working set of 4096 pages against a 64-entry TLB: essentially
        // every lookup faults the page's MBV in from the backing store,
        // which is the structure this bench regression-tracks. Half the
        // pages hold a critical line so the store is populated.
        let mut re = ReNuca::new(4, 4);
        for p in (0..4096u64).step_by(2) {
            let line = phys_addr(0, p * 4096) >> 6;
            let m = access_meta(line, true);
            let b = re.fill_bank(&m);
            re.on_fill(&m, b);
        }
        let mut i = 0u64;
        bench("placement/renuca_lookup_bank", move || {
            i = i.wrapping_add(1);
            let page = i.wrapping_mul(2654435761) & 4095;
            let line = phys_addr(0, page * 4096 + (i & 63) * 64) >> 6;
            black_box(re.lookup_bank(&access_meta(line, false)))
        })
        .report();
    }
    {
        let mut re = ReNuca::new(4, 4);
        let mut i = 0u64;
        bench("placement/renuca_fill_bank", move || {
            i = i.wrapping_add(1);
            let line = phys_addr((i & 15) as usize, i.wrapping_mul(977) & 0xfff_ffff) >> 6;
            black_box(re.fill_bank(&access_meta(line, i & 1 == 0)))
        })
        .report();
    }
    {
        // Directory-resident lookups: the Naive oracle's per-access map
        // probe over an L3-sized population.
        let mut n = NaiveOracle::new(16, 150);
        for i in 0..65_536u64 {
            let m = access_meta(i * 7, false);
            let b = n.fill_bank(&m);
            n.on_fill(&m, b);
        }
        let mut i = 0u64;
        bench("placement/naive_lookup_bank", move || {
            i = i.wrapping_add(1);
            let line = (i.wrapping_mul(2654435761) & 65_535) * 7;
            black_box(n.lookup_bank(&access_meta(line, false)))
        })
        .report();
    }
}

fn bench_llc_banks() {
    // The bank service model's hot path under sustained contention: 16
    // banks hit round-robin with alternating reads and fills at a rate
    // the 400-cycle write drain cannot keep up with, so every call takes
    // the calendar-reservation path with a live backlog (touching
    // intervals merge, so the calendar itself stays tiny).
    use cmp_sim::bank::LlcBanks;
    let geo = CacheGeometry {
        size_bytes: 2 * 1024 * 1024,
        assoc: 16,
        tag_latency: 20,
        read_latency: 100,
        write_latency: 400,
    };
    let mut banks = LlcBanks::new(16, &geo, true);
    let mut i = 0u64;
    bench("bank/llc_bank_contention", move || {
        i = i.wrapping_add(1);
        let bank = (i & 15) as usize;
        let now = i * 12;
        if i & 1 == 0 {
            black_box(banks.read(bank, now))
        } else {
            black_box(banks.fill(bank, now))
        }
    })
    .report();
}

fn bench_workload_gen() {
    let spec = *workloads::app_by_name("mcf").unwrap();
    let mut model = AppModel::new(spec, 1);
    bench("workloads/mcf_next_instr", move || {
        black_box(model.next_instr())
    })
    .report();
}

fn bench_compress() {
    // The compressed scheme's per-write hot path: one size-class draw plus
    // its sub-block mask per L3 write. Strided line/version streams keep
    // the hash mixing real instead of constant-folding.
    let spec = compress::CompressSpec::new(4, 0xC0DEC);
    let mut i = 0u64;
    bench("compress/size_class", move || {
        i = i.wrapping_add(1);
        let line = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let v = (i & 255) as u32;
        black_box((spec.class_of(line, v), spec.mask_of(line, v)))
    })
    .report();
}

fn bench_wear() {
    let mut tracker = WearTracker::new(16, 32768);
    let mut i = 0usize;
    bench("wear/record_write", move || {
        i = (i + 97) % (16 * 32768);
        tracker.record_write(i & 15, i >> 4);
    })
    .report();
}

fn bench_full_system() {
    // Throughput of the whole 16-core simulator: simulated instructions
    // per wall-second over a short Re-NUCA run. Each sample gets a fresh
    // system (the run consumes it), built outside the timed region.
    bench_with_setup(
        "system/16core_renuca_10k_instr",
        || {
            let cfg = SystemConfig::default();
            let wl = workload_mix(1, cfg.n_cores);
            let scheme = Scheme::ReNuca;
            let preds: Vec<Box<dyn CriticalityPredictor>> =
                scheme.build_predictors(&cfg, CptConfig::default());
            System::new(cfg, scheme.build_policy(&cfg), wl.build_sources(), preds)
        },
        |mut sys| {
            sys.run(10_000);
            black_box(sys.now())
        },
    )
    .report();
    // The compressed variant of the same run: adds the per-write
    // size-class draw, sub-block wear charging and expansion re-fills, so
    // this line tracks the overhead of the compression subsystem on
    // whole-simulator throughput.
    bench_with_setup(
        "system/16core_renucac2_10k_instr",
        || {
            let cfg = SystemConfig::default();
            let wl = workload_mix(1, cfg.n_cores);
            let scheme = Scheme::ReNucaC2;
            let preds: Vec<Box<dyn CriticalityPredictor>> =
                scheme.build_predictors(&cfg, CptConfig::default());
            System::new(cfg, scheme.build_policy(&cfg), wl.build_sources(), preds)
        },
        |mut sys| {
            sys.run(10_000);
            black_box(sys.now())
        },
    )
    .report();
    // Paper-scale macro point: 10× the instruction budget, tracking how
    // throughput holds up once warm structures dominate (TLBs, route
    // cache, CPT are all past their cold phase for most of the run).
    bench_with_setup(
        "system/16core_renuca_100k_instr",
        || {
            let cfg = SystemConfig::default();
            let wl = workload_mix(1, cfg.n_cores);
            let scheme = Scheme::ReNuca;
            let preds: Vec<Box<dyn CriticalityPredictor>> =
                scheme.build_predictors(&cfg, CptConfig::default());
            System::new(cfg, scheme.build_policy(&cfg), wl.build_sources(), preds)
        },
        |mut sys| {
            sys.run(100_000);
            black_box(sys.now())
        },
    )
    .report();
}

fn main() {
    println!("=== micro benchmarks (in-tree harness; one JSON line per case) ===");
    bench_cache();
    bench_cpt();
    bench_mesh();
    bench_dram();
    bench_tlb();
    bench_placement();
    bench_llc_banks();
    bench_workload_gen();
    bench_compress();
    bench_wear();
    bench_full_system();
}
