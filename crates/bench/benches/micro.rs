//! Criterion micro-benchmarks of the hot substrate structures.
//!
//! These track the simulator's own performance (a regression here slows
//! every experiment); they are not paper results.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;

use cmp_sim::cache::SetAssocCache;
use cmp_sim::config::{CacheGeometry, NocConfig, SystemConfig};
use cmp_sim::dram::Dram;
use cmp_sim::instr::InstrSource;
use cmp_sim::noc::Mesh;
use cmp_sim::placement::CriticalityPredictor;
use cmp_sim::system::System;
use cmp_sim::tlb::Tlb;
use renuca_core::{Cpt, CptConfig, Scheme};
use wear_model::WearTracker;
use workloads::{workload_mix, AppModel};

fn bench_cache(c: &mut Criterion) {
    let geo = CacheGeometry {
        size_bytes: 2 * 1024 * 1024,
        assoc: 16,
        latency: 100,
    };
    c.bench_function("cache/l3_bank_access_hit", |b| {
        let mut cache = SetAssocCache::new(geo, true);
        for line in 0..1024u64 {
            cache.fill(line, false);
        }
        let mut line = 0u64;
        b.iter(|| {
            line = (line + 1) & 1023;
            black_box(cache.access(line, false))
        });
    });
    c.bench_function("cache/l3_bank_fill_evict", |b| {
        let mut cache = SetAssocCache::new(geo, true);
        let mut line = 0u64;
        b.iter(|| {
            line += 1;
            black_box(cache.fill(line, false))
        });
    });
}

fn bench_cpt(c: &mut Criterion) {
    c.bench_function("cpt/predict_trained", |b| {
        let mut cpt = Cpt::new(CptConfig::default());
        for pc in 0..512u32 {
            cpt.on_load_commit(pc * 4, pc % 3 == 0);
        }
        let mut pc = 0u32;
        b.iter(|| {
            pc = (pc + 4) & 2047;
            black_box(cpt.predict(pc))
        });
    });
}

fn bench_mesh(c: &mut Criterion) {
    c.bench_function("noc/traverse_6_hops", |b| {
        let mut mesh = Mesh::new(NocConfig::default());
        let mut now = 0u64;
        b.iter(|| {
            now += 7;
            black_box(mesh.traverse(0, 15, 5, now))
        });
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram/stream_access", |b| {
        let mut dram = Dram::new(Default::default());
        let mut line = 0u64;
        let mut now = 0u64;
        b.iter(|| {
            line += 1;
            now += 5;
            black_box(dram.access(line, false, now))
        });
    });
}

fn bench_tlb(c: &mut Criterion) {
    c.bench_function("tlb/hit", |b| {
        let mut tlb: Tlb<u64> = Tlb::new(64, 8, 60);
        for p in 0..8u64 {
            tlb.access(p, |_| 0);
        }
        let mut p = 0u64;
        b.iter(|| {
            p = (p + 1) & 7;
            black_box(tlb.access(p, |_| 0).hit)
        });
    });
}

fn bench_workload_gen(c: &mut Criterion) {
    c.bench_function("workloads/mcf_next_instr", |b| {
        let spec = *workloads::app_by_name("mcf").unwrap();
        let mut model = AppModel::new(spec, 1);
        b.iter(|| black_box(model.next_instr()));
    });
}

fn bench_wear(c: &mut Criterion) {
    c.bench_function("wear/record_write", |b| {
        let mut tracker = WearTracker::new(16, 32768);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 97) % (16 * 32768);
            tracker.record_write(i & 15, i >> 4);
        });
    });
}

fn bench_full_system(c: &mut Criterion) {
    // Throughput of the whole 16-core simulator: simulated instructions
    // per wall-second over a short Re-NUCA run.
    c.bench_function("system/16core_renuca_10k_instr", |b| {
        b.iter_batched(
            || {
                let cfg = SystemConfig::default();
                let wl = workload_mix(1, cfg.n_cores);
                let scheme = Scheme::ReNuca;
                let preds: Vec<Box<dyn CriticalityPredictor>> =
                    scheme.build_predictors(&cfg, CptConfig::default());
                System::new(cfg, scheme.build_policy(&cfg), wl.build_sources(), preds)
            },
            |mut sys| {
                sys.run(10_000);
                black_box(sys.now())
            },
            BatchSize::PerIteration,
        );
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cache, bench_cpt, bench_mesh, bench_dram, bench_tlb,
              bench_workload_gen, bench_wear, bench_full_system
}
criterion_main!(benches);
