//! Regenerates Table II: per-application WPKI/MPKI/hit-rate/IPC.
use bench::{bench_budget, header, timed};
use experiments::figures::table2;

fn main() {
    header("Table II — application characteristics");
    let rows = timed("table2_app_characteristics", || table2::run(bench_budget()));
    println!("{}", table2::format_table2(&rows));
}
