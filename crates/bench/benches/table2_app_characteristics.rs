//! Regenerates Table II: per-application WPKI/MPKI/hit-rate/IPC.
use bench::{bench_budget, header};
use experiments::figures::table2;

fn main() {
    header("Table II — application characteristics");
    let rows = table2::run(bench_budget());
    println!("{}", table2::format_table2(&rows));
}
