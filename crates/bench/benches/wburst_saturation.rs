//! Write-burst saturation macro point: one WB3 run per scheme on the
//! asymmetric-default 16-core machine, timing the simulator while the
//! per-bank service model (DESIGN.md §12) is under real queueing load —
//! the regime where the bank calendars do the most work per access.
use cmp_sim::SystemConfig;
use experiments::runner::run_workload;
use renuca_core::{CptConfig, Scheme};
use workloads::{workload_mix, WBURST_ID_BASE};

use bench::{bench_budget, header, timed};

fn main() {
    header("Write-burst saturation — all schemes under WB3 bank pressure");
    let cfg = SystemConfig::default();
    let wl = workload_mix(WBURST_ID_BASE + 3, cfg.n_cores);
    for scheme in Scheme::ALL {
        let r = timed(&format!("wburst3_{}", scheme.name()), || {
            run_workload(&wl, scheme, cfg, CptConfig::default(), bench_budget())
        });
        let queued: u64 = r.bank_service.iter().map(|b| b.queue_cycles.get()).sum();
        println!(
            "{:<8} ipc={:.2} bank queue_cycles={queued}",
            scheme.name(),
            r.total_ipc()
        );
    }
}
