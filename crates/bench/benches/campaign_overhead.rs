//! Scheduler-overhead benchmarks for the campaign subsystem.
//!
//! The question these answer: what does the durability machinery (journal
//! fsyncs, per-job manifest writes, state re-scans, report aggregation)
//! cost *on top of* running the same grid directly over the experiments
//! thread pool? Three timed cases on an identical 4-job grid:
//!
//! * `direct_pool_grid4` — the pre-campaign path: `parallel_map_threads`
//!   over `run_workload`, results kept in memory. The floor.
//! * `scheduler_run_grid4` — a full `scheduler::run` into a fresh out dir
//!   (journal + manifests + report). The delta to the floor is the total
//!   durability overhead per 4 jobs.
//! * `scheduler_resume_noop_grid4` — `scheduler::run` over an already
//!   complete campaign: pure bookkeeping (journal scan, manifest
//!   re-hash, report re-render), no simulation at all. This is the cost a
//!   crash-resume pays before its first fresh job.
//!
//! Plus a `spec_parse_expand` micro for the pure-CPU front end. Recorded
//! against `BENCH_2.json` per the baseline schema in `EXPERIMENTS.md`.

use std::hint::black_box;
use std::path::PathBuf;

use bench::{bench, bench_with_setup};
use campaign::scheduler::{self, RunOptions};
use campaign::CampaignSpec;
use experiments::pool::parallel_map_threads;
use experiments::run_workload;
use experiments::runner::lifetime_model;
use renuca_core::CptConfig;
use workloads::workload_mix;

const SPEC: &str = "\
renuca-campaign-v1
name benchkit
config small 4
budget warmup=50 measure=300
schemes S-NUCA Re-NUCA
workloads 1 2
thresholds 25
";

const THREADS: usize = 2;

fn bench_root() -> PathBuf {
    std::env::temp_dir().join(format!("campaign-bench-{}", std::process::id()))
}

fn fresh_dir(counter: &mut usize) -> PathBuf {
    *counter += 1;
    bench_root().join(format!("run-{counter}"))
}

fn bench_spec_parse() {
    bench("campaign/spec_parse_expand", || {
        let spec = CampaignSpec::parse(black_box(SPEC)).unwrap();
        black_box(spec.jobs().len())
    })
    .report();
}

fn bench_direct_pool() {
    let spec = CampaignSpec::parse(SPEC).unwrap();
    let jobs = spec.jobs();
    bench_with_setup(
        "campaign/direct_pool_grid4",
        || (),
        |()| {
            let results = parallel_map_threads(&jobs, THREADS, |job| {
                let cfg = spec.config;
                let wl = workload_mix(job.workload, cfg.n_cores);
                let cpt = CptConfig::with_threshold(job.threshold_pct);
                let r = run_workload(&wl, job.scheme, cfg, cpt, spec.budget);
                let lifetimes = lifetime_model(&cfg).all_bank_lifetimes(&r.wear, r.cycles);
                (r.total_ipc(), lifetimes)
            });
            black_box(results.len())
        },
    )
    .report();
}

fn bench_scheduler_run(counter: &mut usize) {
    let spec = CampaignSpec::parse(SPEC).unwrap();
    bench_with_setup(
        "campaign/scheduler_run_grid4",
        || fresh_dir(counter),
        |dir| {
            let outcome = scheduler::run(
                &spec,
                &dir,
                RunOptions {
                    threads: THREADS,
                    ..RunOptions::default()
                },
            )
            .unwrap();
            assert!(outcome.report.is_some());
            black_box(outcome.executed)
        },
    )
    .report();
}

fn bench_scheduler_resume_noop() {
    let spec = CampaignSpec::parse(SPEC).unwrap();
    let dir = bench_root().join("resume-noop");
    let opts = RunOptions {
        threads: THREADS,
        ..RunOptions::default()
    };
    scheduler::run(&spec, &dir, opts).unwrap();
    bench_with_setup(
        "campaign/scheduler_resume_noop_grid4",
        || (),
        |()| {
            let outcome = scheduler::run(&spec, &dir, opts).unwrap();
            assert_eq!(outcome.executed, 0);
            black_box(outcome.skipped)
        },
    )
    .report();
}

fn main() {
    println!("=== campaign scheduler overhead (in-tree harness; one JSON line per case) ===");
    let mut counter = 0usize;
    bench_spec_parse();
    bench_direct_pool();
    bench_scheduler_run(&mut counter);
    bench_scheduler_resume_noop();
    let _ = std::fs::remove_dir_all(bench_root());
}
