//! Regenerates Table III: raw minimum lifetimes, all four configurations.
use bench::{bench_budget, header, timed};
use experiments::figures::table3;

fn main() {
    header("Table III — raw minimum lifetimes");
    let t3 = timed("table3_raw_min_lifetime", || {
        table3::run(bench_budget().sweep())
    });
    println!("{}", table3::format_table3(&t3));
}
