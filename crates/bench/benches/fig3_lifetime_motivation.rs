//! Regenerates Figure 3: baseline per-bank lifetimes (motivation study),
//! plus Figure 4b's trade-off table from the same runs.
use bench::{bench_budget, header, timed};
use cmp_sim::SystemConfig;
use experiments::figures::lifetime;

fn main() {
    header("Figure 3 — baseline per-bank lifetimes (and Figure 4b)");
    let study = timed("fig3_lifetime_motivation", || {
        lifetime::run("Actual Results", SystemConfig::default(), bench_budget())
    });
    println!("{}", lifetime::format_fig3(&study));
    println!("{}", lifetime::format_fig4b(&study));
}
