//! Regenerates Figures 13/14 — L2 = 128 KB sensitivity.
use bench::{bench_budget, header, timed};
use experiments::figures::sensitivity::{self, Sensitivity};

fn main() {
    header("Figures 13/14 — L2 = 128 KB sensitivity");
    let which = Sensitivity::L2Small;
    let study = timed("fig13_14_l2_sensitivity", || {
        sensitivity::run(which, bench_budget())
    });
    println!("{}", sensitivity::format_wear(which, &study));
    println!("{}", sensitivity::format_ipc(which, &study));
}
