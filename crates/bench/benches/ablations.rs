//! Runs the six design-choice ablations (DESIGN.md §7) at bench budget.
use bench::{bench_budget, header, timed};
use experiments::figures::ablations;

fn main() {
    header(
        "Ablations — threshold, CPT capacity, intra-bank leveling, Naive latency, MBV, prefetcher",
    );
    let out = timed("ablations", || ablations::run_all(bench_budget()));
    println!("{out}");
}
