//! Regenerates Figure 8 — non-critical fetched blocks (threshold sweep).
use bench::{bench_budget, header, timed};
use experiments::figures::predictor_study;
use renuca_core::CptConfig;

fn main() {
    header("Figure 8 — non-critical fetched blocks");
    let study = timed("fig8_noncritical_blocks", || {
        predictor_study::run(bench_budget(), &CptConfig::THRESHOLD_SWEEP)
    });
    println!("{}", predictor_study::format_fig8(&study));
}
