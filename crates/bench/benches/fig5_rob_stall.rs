//! Regenerates Figure 5: % of loads that never block the ROB head.
use bench::{bench_budget, header, timed};
use experiments::figures::criticality;

fn main() {
    header("Figure 5 — non-critical loads");
    let rows = timed("fig5_rob_stall", || criticality::run(bench_budget()));
    println!("{}", criticality::format_fig5(&rows));
    println!("Average: {:.1}% (paper: >80%)", criticality::average(&rows));
}
