//! Regenerates Figure 9 — writes to non-critical blocks (threshold sweep).
use bench::{bench_budget, header, timed};
use experiments::figures::predictor_study;
use renuca_core::CptConfig;

fn main() {
    header("Figure 9 — writes to non-critical blocks");
    let study = timed("fig9_noncritical_writes", || {
        predictor_study::run(bench_budget(), &CptConfig::THRESHOLD_SWEEP)
    });
    println!("{}", predictor_study::format_fig9(&study));
}
