//! The in-tree benchmark harness plus shared helpers for bench targets.
//!
//! Two kinds of bench targets live in `benches/`:
//!
//! * `micro` — micro-benchmarks of the hot substrate structures (cache
//!   arrays, CPT, mesh routing, DRAM timing, full-system throughput), run
//!   on the [`bench()`]/[`bench_with_setup`] harness below;
//! * `figN_*` / `tableN_*` — custom-harness targets that regenerate the
//!   corresponding paper figure/table and print the same rows/series, each
//!   wrapped in [`timed`] so it also emits a machine-readable JSON timing
//!   line. Run an individual one with
//!   `cargo bench -p bench --bench fig12_renuca_wearout`, or everything
//!   with `cargo bench --workspace`.
//!
//! The harness is deliberately small and dependency-free (the workspace is
//! hermetic — no criterion): a warmup phase sizes an iteration batch, then
//! timed samples of that batch yield per-iteration min/mean/median/p95
//! nanoseconds, reported as one JSON line per benchmark via `sim-stats`'s
//! emitter. Set `RENUCA_BENCH_SAMPLES` to change the sample count.
//!
//! Figure targets default to a reduced instruction budget so a full
//! `cargo bench --workspace` stays in the ~10-minute range on one CPU;
//! export `RENUCA_MEASURE` / `RENUCA_WARMUP` (instructions per core) to
//! regenerate at paper-quality budgets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint::black_box;
use std::time::{Duration, Instant};

use experiments::Budget;
use sim_stats::JsonObject;

/// The reduced default budget for figure bench targets (overridable via
/// `RENUCA_WARMUP` / `RENUCA_MEASURE`).
pub fn bench_budget() -> Budget {
    let env = Budget::from_env();
    let default = Budget {
        warmup: 150_000,
        measure: 100_000,
    };
    Budget {
        warmup: if std::env::var("RENUCA_WARMUP").is_ok() {
            env.warmup
        } else {
            default.warmup
        },
        measure: if std::env::var("RENUCA_MEASURE").is_ok() {
            env.measure
        } else {
            default.measure
        },
    }
}

/// Print a standard header so bench output is self-describing.
pub fn header(what: &str) {
    println!("=== {what} ===");
    let b = bench_budget();
    println!(
        "(budget: warmup={} measure={} instructions/core; set RENUCA_MEASURE/RENUCA_WARMUP to rescale)\n",
        b.warmup, b.measure
    );
}

/// Per-iteration timing statistics of one micro-benchmark.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Benchmark name (`group/case`).
    pub name: String,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Iterations per sample (the batch the warmup phase sized).
    pub iters_per_sample: u64,
    /// Fastest per-iteration time over all samples, nanoseconds.
    pub min_ns: f64,
    /// Mean per-iteration time, nanoseconds.
    pub mean_ns: f64,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// 95th-percentile per-iteration time, nanoseconds.
    pub p95_ns: f64,
}

impl BenchReport {
    /// One JSON line (`kind: "micro"`), stable key order.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_str("bench", &self.name)
            .field_str("kind", "micro")
            .field_u64("samples", self.samples as u64)
            .field_u64("iters_per_sample", self.iters_per_sample)
            .field_f64("min_ns", self.min_ns)
            .field_f64("mean_ns", self.mean_ns)
            .field_f64("median_ns", self.median_ns)
            .field_f64("p95_ns", self.p95_ns);
        o.finish()
    }

    /// Print the JSON line to stdout.
    pub fn report(&self) {
        println!("{}", self.to_json());
    }
}

fn n_samples() -> usize {
    std::env::var("RENUCA_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(30)
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn summarize(name: &str, iters: u64, mut per_iter_ns: Vec<f64>) -> BenchReport {
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let samples = per_iter_ns.len();
    BenchReport {
        name: name.to_owned(),
        samples,
        iters_per_sample: iters,
        min_ns: per_iter_ns[0],
        mean_ns: per_iter_ns.iter().sum::<f64>() / samples as f64,
        median_ns: percentile_sorted(&per_iter_ns, 50.0),
        p95_ns: percentile_sorted(&per_iter_ns, 95.0),
    }
}

/// Benchmark a routine: warm up for ~100 ms to size an iteration batch,
/// then take timed samples and report per-iteration statistics.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> BenchReport {
    // Warmup: at least 3 calls, at least ~100 ms, and measure the rate.
    let warmup_for = Duration::from_millis(100);
    let start = Instant::now();
    let mut calls = 0u64;
    while calls < 3 || start.elapsed() < warmup_for {
        black_box(f());
        calls += 1;
    }
    let per_call_ns = (start.elapsed().as_nanos() as f64 / calls as f64).max(0.5);

    // Batch so one sample spans ≈1 ms: long enough to swamp timer
    // resolution, short enough that 30 samples stay interactive.
    let iters = ((1_000_000.0 / per_call_ns) as u64).max(1);
    let samples = n_samples();
    let mut per_iter_ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        per_iter_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    summarize(name, iters, per_iter_ns)
}

/// Benchmark a routine with fresh per-sample state: `setup` runs outside
/// the timed region, `routine` inside (one iteration per sample — for
/// routines that consume their input, like a full-system run).
pub fn bench_with_setup<S, R>(
    name: &str,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S) -> R,
) -> BenchReport {
    // Warm caches/branch predictors with a couple of untimed runs.
    for _ in 0..2 {
        black_box(routine(setup()));
    }
    let samples = n_samples().min(10);
    let mut per_iter_ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let input = setup();
        let t = Instant::now();
        black_box(routine(input));
        per_iter_ns.push(t.elapsed().as_nanos() as f64);
    }
    summarize(name, 1, per_iter_ns)
}

/// Run a figure/table regeneration once, returning its result and printing
/// a `kind: "figure"` JSON timing line.
pub fn timed<R>(name: &str, f: impl FnOnce() -> R) -> R {
    let t = Instant::now();
    let out = f();
    let elapsed = t.elapsed();
    let mut o = JsonObject::new();
    o.field_str("bench", name)
        .field_str("kind", "figure")
        .field_f64("elapsed_ms", elapsed.as_secs_f64() * 1e3);
    println!("{}", o.finish());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_budget_has_sane_defaults() {
        let b = bench_budget();
        assert!(b.measure >= 20_000);
        assert!(b.warmup >= 10_000);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&xs, 50.0), 2.0);
        assert_eq!(percentile_sorted(&xs, 95.0), 4.0);
        assert_eq!(percentile_sorted(&xs, 0.0), 1.0);
        assert_eq!(percentile_sorted(&[7.0], 50.0), 7.0);
    }

    #[test]
    fn summarize_orders_stats() {
        let r = summarize("t", 10, vec![3.0, 1.0, 2.0, 10.0]);
        assert_eq!(r.min_ns, 1.0);
        assert_eq!(r.median_ns, 2.0);
        assert_eq!(r.p95_ns, 10.0);
        assert!((r.mean_ns - 4.0).abs() < 1e-12);
        assert_eq!(r.samples, 4);
    }

    #[test]
    fn report_json_shape() {
        let r = summarize("cache/hit", 100, vec![5.0, 5.0]);
        let j = r.to_json();
        assert!(
            j.starts_with(r#"{"bench":"cache/hit","kind":"micro""#),
            "{j}"
        );
        assert!(j.contains("\"median_ns\":5"));
    }

    #[test]
    fn timed_passes_through_result() {
        let v = timed("unit_test", || 40 + 2);
        assert_eq!(v, 42);
    }

    #[test]
    fn bench_measures_something() {
        // Keep this cheap: a trivial routine still yields positive timings.
        std::env::set_var("RENUCA_BENCH_SAMPLES", "2");
        let r = bench("noop", || std::hint::black_box(1u64 + 1));
        std::env::remove_var("RENUCA_BENCH_SAMPLES");
        assert!(r.min_ns >= 0.0);
        assert!(r.iters_per_sample >= 1);
        assert_eq!(r.samples, 2);
    }
}
