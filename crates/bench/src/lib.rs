//! Shared helpers for the benchmark harness.
//!
//! Two kinds of bench targets live in `benches/`:
//!
//! * `micro` — Criterion micro-benchmarks of the hot substrate structures
//!   (cache arrays, CPT, mesh routing, DRAM timing, full-system
//!   throughput);
//! * `figN_*` / `tableN_*` — custom-harness targets that regenerate the
//!   corresponding paper figure/table and print the same rows/series. Run
//!   an individual one with `cargo bench -p bench --bench fig12_renuca_wearout`,
//!   or everything with `cargo bench --workspace`.
//!
//! Figure targets default to a reduced instruction budget so a full
//! `cargo bench --workspace` stays in the ~10-minute range on one CPU;
//! export `RENUCA_MEASURE` / `RENUCA_WARMUP` (instructions per core) to
//! regenerate at paper-quality budgets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use experiments::Budget;

/// The reduced default budget for figure bench targets (overridable via
/// `RENUCA_WARMUP` / `RENUCA_MEASURE`).
pub fn bench_budget() -> Budget {
    let env = Budget::from_env();
    let default = Budget {
        warmup: 150_000,
        measure: 100_000,
    };
    Budget {
        warmup: if std::env::var("RENUCA_WARMUP").is_ok() {
            env.warmup
        } else {
            default.warmup
        },
        measure: if std::env::var("RENUCA_MEASURE").is_ok() {
            env.measure
        } else {
            default.measure
        },
    }
}

/// Print a standard header so bench output is self-describing.
pub fn header(what: &str) {
    println!("=== {what} ===");
    let b = bench_budget();
    println!(
        "(budget: warmup={} measure={} instructions/core; set RENUCA_MEASURE/RENUCA_WARMUP to rescale)\n",
        b.warmup, b.measure
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_budget_has_sane_defaults() {
        let b = bench_budget();
        assert!(b.measure >= 20_000);
        assert!(b.warmup >= 10_000);
    }
}
