//! Run-manifest schema conformance and registry-snapshot stability.
//!
//! The manifest schema (`renuca-manifest-v1`) is documented in
//! EXPERIMENTS.md ("Observability: run manifests") with a committed example
//! at `docs/manifest.example.json`. These tests pin the documented shape:
//! top-level key order, budget echo, per-scheme stats paths, heatmap rows —
//! and that the committed example still matches the same skeleton.

use cmp_sim::SystemConfig;
use experiments::figures::lifetime;
use experiments::obs::{self, Manifest, MANIFEST_KEYS, MANIFEST_SCHEMA};
use experiments::{run_workload, Budget};
use renuca_core::{CptConfig, Scheme};

/// Assert every documented top-level key appears, in documented order.
fn assert_key_skeleton(json: &str, what: &str) {
    let mut pos = 0;
    for key in MANIFEST_KEYS {
        let needle = format!("\"{key}\":");
        match json[pos..].find(&needle) {
            Some(at) => pos += at + needle.len(),
            None => panic!("{what}: key {key:?} missing or out of order (after byte {pos})"),
        }
    }
}

#[test]
fn fixed_seed_fig3_manifest_matches_documented_schema() {
    let cfg = SystemConfig::default();
    let budget = Budget::test();
    let study = lifetime::run("Actual Results", cfg, budget);
    let mut m = Manifest::new("fig3", study.label, Some(&cfg), budget);
    obs::register_study(&mut m, &study);
    let json = m.to_json();

    assert!(
        json.starts_with(&format!("{{\"schema\":\"{MANIFEST_SCHEMA}\"")),
        "manifest must lead with the schema id"
    );
    assert_key_skeleton(&json, "generated manifest");
    assert!(json.contains("\"budget\":{\"warmup\":2000,\"measure\":10000}"));
    // Config echo present and non-null for a single-config run.
    assert!(json.contains("\"config.n_cores\":16"));
    // Every scheme's headline metrics under its documented dotted path.
    for s in Scheme::ALL {
        for leaf in [
            "raw_min_years",
            "hmean_lifetime_years",
            "variation",
            "mean_ipc",
        ] {
            let key = format!("\"scheme.{}.{leaf}\":", s.name());
            assert!(json.contains(&key), "missing stats key {key}");
        }
    }
    // One heatmap row per scheme, 16 banks each (16 comma-separated values).
    assert!(json.contains("\"unit\":\"years\""));
    assert_eq!(
        json.matches("\"per_bank\":[").count(),
        Scheme::ALL.len(),
        "one wear row per scheme"
    );

    // Determinism: rebuilding the manifest from the same study is
    // byte-identical (key order is part of the schema).
    let mut m2 = Manifest::new("fig3", study.label, Some(&cfg), budget);
    obs::register_study(&mut m2, &study);
    assert_eq!(json, m2.to_json());
}

#[test]
fn committed_example_manifest_matches_skeleton() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../docs/manifest.example.json"
    );
    let example = std::fs::read_to_string(path).expect("committed example manifest exists");
    assert!(example.starts_with(&format!("{{\"schema\":\"{MANIFEST_SCHEMA}\"")));
    assert_key_skeleton(&example, "docs/manifest.example.json");
    assert!(example.contains("\"binary\":\"fig3\""));
    // Recorded at the fixed test budget, as EXPERIMENTS.md states.
    assert!(example.contains("\"budget\":{\"warmup\":2000,\"measure\":10000}"));
}

#[test]
fn registry_snapshot_key_order_is_stable_across_runs() {
    let cfg = SystemConfig::default();
    let wl = workloads::workload_mix(1, cfg.n_cores);
    let budget = Budget::test();
    let run = || {
        run_workload(&wl, Scheme::ReNuca, cfg, CptConfig::default(), budget)
            .registry()
            .to_json()
    };
    let a = run();
    assert!(a.contains("\"system.cycles\":"));
    assert!(a.contains("\"wear.bank[15].min_endurance_frac\":"));
    assert_eq!(a, run(), "identical runs must serialize byte-identically");
}
