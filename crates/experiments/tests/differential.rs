//! Differential-harness integration tests: a bounded seeded corpus, the
//! metamorphic invariants, and the mutation self-check (an injected
//! placement bug must be caught and shrunk to a 1-minimal trace).
//!
//! The full acceptance sweep (100 seeds × 8 schemes × 2 configs = 1600
//! traces) runs through `cargo run --release -p experiments --bin
//! diffcheck`; these tests keep a smaller always-on corpus in `cargo test`.

use std::path::PathBuf;

use experiments::diff;
use golden::{generate, parse_trace, TraceSpec};
use renuca_core::Scheme;

fn tmp_out() -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("diff-harness")
}

#[test]
fn bounded_corpus_has_no_mismatches() {
    let report = diff::run_corpus(0..3, 1500, &tmp_out());
    assert_eq!(report.replays, 3 * Scheme::ALL.len() * 2);
    assert!(
        report.failures.is_empty(),
        "differential mismatches: {:?}",
        report.failures
    );
}

#[test]
fn every_scheme_survives_a_long_trace() {
    // One deeper run per scheme on the non-pow2 mesh, the geometry most
    // likely to expose masking bugs.
    let cfg = diff::tiny_cfg(3, 2);
    let ops = generate(&TraceSpec::new(97, 3, 2, 6000));
    for scheme in Scheme::ALL {
        diff::replay(scheme, &cfg, &ops)
            .unwrap_or_else(|m| panic!("{} diverged: {m}", scheme.name()));
    }
}

#[test]
fn injected_placement_bug_is_caught_and_shrunk() {
    let out = tmp_out();
    let report =
        diff::mutation_check(Scheme::SNuca, 42, 3000, &out).expect("mutation check must pass");
    assert!(report.minimal_len >= 1);
    assert!(
        report.minimal_len <= 5,
        "ddmin left {} ops — a single mutated fill should suffice",
        report.minimal_len
    );
    assert!(report.trace_path.exists());
    let name = report
        .trace_path
        .file_name()
        .unwrap()
        .to_string_lossy()
        .into_owned();
    assert!(
        name.contains("seed42"),
        "seed must be embedded in the reproducer filename, got {name}"
    );

    // The serialized reproducer round-trips and still reproduces the
    // divergence under the injected bug (and only under it).
    let text = std::fs::read_to_string(&report.trace_path).unwrap();
    let (scheme_name, cols, rows, seed, ops) = parse_trace(&text).expect("valid trace file");
    assert_eq!(
        (scheme_name.as_str(), cols, rows, seed),
        ("S-NUCA", 2, 2, 42)
    );
    assert_eq!(ops.len(), report.minimal_len);
    let cfg = diff::tiny_cfg(cols, rows);
    assert!(diff::replay_mutated(Scheme::SNuca, &cfg, &ops).is_err());
    assert!(diff::replay(Scheme::SNuca, &cfg, &ops).is_ok());
}

#[test]
fn injected_bugs_in_competitor_schemes_are_caught() {
    // Each new scheme ships an internally-consistent bugged twin (skewed
    // WEC redirect, off-by-one Coloring epoch, inverted MAC replacement);
    // the harness must catch each one and shrink it to a 1-minimal trace
    // (mutation_check itself verifies 1-minimality op by op).
    let out = tmp_out();
    for scheme in [Scheme::Wec, Scheme::Coloring, Scheme::Mac] {
        let report = diff::mutation_check(scheme, 42, 2000, &out)
            .unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
        assert!(report.minimal_len >= 1);
        assert!(report.trace_path.exists());
        // The reproducer round-trips and diverges only under the bug.
        let text = std::fs::read_to_string(&report.trace_path).unwrap();
        let (scheme_name, cols, rows, _seed, ops) = parse_trace(&text).expect("valid trace file");
        assert_eq!(scheme_name, scheme.name());
        let cfg = diff::tiny_cfg(cols, rows);
        assert!(diff::replay_mutated(scheme, &cfg, &ops).is_err());
        assert!(diff::replay(scheme, &cfg, &ops).is_ok());
    }
}

#[test]
fn metamorphic_write_conservation_holds() {
    diff::write_conservation(2, 2, 7, 1500).unwrap();
    diff::write_conservation(3, 2, 8, 1500).unwrap();
}

#[test]
fn metamorphic_snuca_shift_symmetry_holds() {
    diff::snuca_shift_symmetry(2, 2, 9, 1500).unwrap();
    diff::snuca_shift_symmetry(3, 2, 10, 1500).unwrap();
}

#[test]
fn metamorphic_parallel_matches_serial() {
    diff::parallel_matches_serial(&[1, 2, 3, 4], 4, 1000).unwrap();
}
