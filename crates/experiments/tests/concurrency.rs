//! Concurrency stress: independent simulations are thread-safe and
//! deterministic when run in parallel (the experiment runner fans a
//! (scheme × workload) matrix across threads; nothing may leak between
//! systems).

use std::thread;

use experiments::{parallel_map_threads, run_workload, Budget};
use renuca_core::{CptConfig, Scheme};
use workloads::workload_mix;

#[test]
fn parallel_runs_match_serial_runs() {
    let cfg = cmp_sim::SystemConfig::small(4);
    let budget = Budget::test();
    let cases: Vec<(Scheme, usize)> = Scheme::ALL
        .iter()
        .flat_map(|&s| [(s, 1usize), (s, 2)])
        .collect();

    // Serial reference.
    let serial: Vec<Vec<u64>> = cases
        .iter()
        .map(|&(s, wl)| {
            run_workload(&workload_mix(wl, 4), s, cfg, CptConfig::default(), budget).bank_writes
        })
        .collect();

    // The same matrix, all cells at once on scoped threads.
    let parallel: Vec<Vec<u64>> = thread::scope(|scope| {
        let handles: Vec<_> = cases
            .iter()
            .map(|&(s, wl)| {
                scope.spawn(move || {
                    run_workload(&workload_mix(wl, 4), s, cfg, CptConfig::default(), budget)
                        .bank_writes
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, (s, wl)) in cases.iter().enumerate() {
        assert_eq!(
            serial[i],
            parallel[i],
            "{}/WL{wl}: parallel execution changed the result",
            s.name()
        );
    }
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Run the same cell on several threads simultaneously; all must agree.
    let cfg = cmp_sim::SystemConfig::small(4);
    let budget = Budget::test();
    let results: Vec<u64> = thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    run_workload(
                        &workload_mix(3, 4),
                        Scheme::ReNuca,
                        cfg,
                        CptConfig::default(),
                        budget,
                    )
                    .wear
                    .total_writes()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for w in &results[1..] {
        assert_eq!(*w, results[0]);
    }
}

#[test]
fn pool_matches_serial_on_two_mix_experiment() {
    // The runner's own pool, on the exact shape scheme_study uses: a small
    // two-workload experiment. Pooled output must be byte-identical to the
    // serial map — same values, same order — at any worker count.
    let cfg = cmp_sim::SystemConfig::small(4);
    let budget = Budget::test();
    let ids = [1usize, 2];

    let run = |&id: &usize| {
        run_workload(
            &workload_mix(id, 4),
            Scheme::ReNuca,
            cfg,
            CptConfig::default(),
            budget,
        )
        .bank_writes
    };

    let serial: Vec<Vec<u64>> = ids.iter().map(run).collect();
    for threads in [1, 2, 4] {
        let pooled = parallel_map_threads(&ids, threads, run);
        assert_eq!(pooled, serial, "threads={threads}");
    }
}
