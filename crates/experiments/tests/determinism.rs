//! Determinism regression: a figure run must produce a byte-identical
//! `renuca-manifest-v1` regardless of the worker-pool width. The check
//! runs the real `fig3` binary in subprocesses (one per thread count) so
//! the in-process pool tests that mutate `RENUCA_THREADS` cannot interfere
//! and the comparison covers the whole pipeline: workload models, all five
//! schemes, stats registry and manifest serialization.

use std::path::PathBuf;
use std::process::Command;

fn run_fig3(threads: &str, out: &PathBuf) {
    let status = Command::new(env!("CARGO_BIN_EXE_fig3"))
        .args(["--stats", out.to_str().unwrap()])
        .env("RENUCA_THREADS", threads)
        // A small budget keeps the full five-scheme study under a few
        // seconds while still exercising every simulator component.
        .env("RENUCA_WARMUP", "20000")
        .env("RENUCA_MEASURE", "10000")
        .status()
        .expect("spawn fig3");
    assert!(
        status.success(),
        "fig3 with RENUCA_THREADS={threads} failed"
    );
}

#[test]
fn fig3_manifest_is_identical_across_pool_widths() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("determinism");
    std::fs::create_dir_all(&dir).unwrap();
    let serial = dir.join("fig3-threads1.json");
    let pooled = dir.join("fig3-threads4.json");

    run_fig3("1", &serial);
    run_fig3("4", &pooled);

    let a = std::fs::read(&serial).unwrap();
    let b = std::fs::read(&pooled).unwrap();
    assert!(!a.is_empty(), "manifest must not be empty");
    if a != b {
        // Byte-level divergence: report the first differing line so the
        // failure names the counter, not just an offset.
        let (sa, sb) = (String::from_utf8_lossy(&a), String::from_utf8_lossy(&b));
        for (la, lb) in sa.lines().zip(sb.lines()) {
            assert_eq!(la, lb, "first differing manifest line");
        }
        panic!(
            "manifests differ in length: {} vs {} bytes",
            a.len(),
            b.len()
        );
    }
}
