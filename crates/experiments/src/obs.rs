//! Shared observability plumbing for the experiment binaries.
//!
//! Every binary in `src/bin/` accepts a common `--stats <path>` flag (or the
//! `RENUCA_STATS` environment variable) and, when it is given, writes a *run
//! manifest* next to its normal stdout output: a single JSON document that
//! echoes the configuration, the instruction budget, a full
//! [`StatsRegistry`] snapshot and a per-bank wear heatmap. The schema is
//! documented in `EXPERIMENTS.md` ("Observability") and carries the id
//! [`MANIFEST_SCHEMA`].
//!
//! The module is deliberately cheap when unused: [`StatsSink::emit_with`]
//! only invokes its builder closure when a destination is configured, so the
//! no-`--stats` path allocates nothing.

use std::fs;
use std::path::{Path, PathBuf};

use cmp_sim::config::SystemConfig;
use sim_stats::json::{f64_array, raw_array, JsonObject};
use sim_stats::StatsRegistry;

use crate::budget::Budget;
use crate::figures::criticality::Fig5Row;
use crate::figures::lifetime::MainStudy;
use crate::figures::predictor_study::PredictorStudy;
use crate::figures::table2::Table2Row;
use crate::runner::SchemeStudy;

/// Schema identifier stamped into every manifest (`"schema"` key).
pub const MANIFEST_SCHEMA: &str = "renuca-manifest-v1";

/// The manifest's fixed top-level key order, in emission order. Exposed so
/// schema tests and the CI smoke check share one source of truth.
pub const MANIFEST_KEYS: [&str; 8] = [
    "schema",
    "binary",
    "label",
    "version",
    "budget",
    "config",
    "stats",
    "wear_heatmap",
];

/// Write `contents` to `path` atomically: the bytes go to a temporary
/// sibling file first (same directory, so the rename cannot cross a
/// filesystem), are fsync'd, and the temp file is renamed over `path`.
/// A reader — in particular the campaign resume path, which *trusts*
/// completed-job manifests — can therefore never observe a torn or
/// half-written document: it sees either the old file or the new one.
pub fn atomic_write(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    fs::create_dir_all(&dir)?;
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("manifest");
    let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        use std::io::Write as _;
        f.write_all(contents)?;
        // Durability, not just atomicity: flush the bytes before the
        // rename publishes the file, so a crash right after the rename
        // cannot leave a published-but-empty manifest.
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Shared startup for every experiment binary: resolve the manifest
/// destination (`--stats <path>` / `--stats=<path>` / `RENUCA_STATS`) and
/// the instruction budget (`RENUCA_WARMUP` / `RENUCA_MEASURE`) in one
/// call. The campaign runner resolves the same pair per job — with
/// [`StatsSink::to`] instead of the command line — so every job manifest
/// goes through exactly this machinery.
pub fn standard_args() -> (StatsSink, Budget) {
    (StatsSink::from_env_args(), Budget::from_env())
}

/// The default 16-core machine for the study-family binaries, honouring
/// the `RENUCA_SYMMETRIC_LLC` escape hatch: set it to `1` (or `true`) to
/// map the L3 banks back to the legacy flat-latency model
/// ([`SystemConfig::with_symmetric_llc`]). The symmetric mapping is
/// cycle-exact and the config echo drops the asymmetric-only keys, so a
/// run under the hatch — manifest included — is byte-identical to the
/// pre-bank-service-model simulator (see DESIGN.md §12).
pub fn default_config() -> SystemConfig {
    let cfg = SystemConfig::default();
    match std::env::var("RENUCA_SYMMETRIC_LLC") {
        Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => cfg.with_symmetric_llc(),
        _ => cfg,
    }
}

/// Where (if anywhere) a binary should write its run manifest.
///
/// Resolved once at startup from the command line and environment by
/// [`StatsSink::from_env_args`]; every experiment binary constructs one and
/// routes its manifest through [`StatsSink::emit_with`].
#[derive(Clone, Debug, Default)]
pub struct StatsSink {
    path: Option<PathBuf>,
}

impl StatsSink {
    /// Resolve the manifest destination: `--stats <path>` or `--stats=<path>`
    /// on the command line wins, else the `RENUCA_STATS` environment
    /// variable, else no destination (manifest emission disabled).
    pub fn from_env_args() -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--stats" {
                match args.next() {
                    Some(p) => {
                        return StatsSink {
                            path: Some(p.into()),
                        }
                    }
                    None => {
                        eprintln!("error: --stats requires a path argument");
                        std::process::exit(2);
                    }
                }
            } else if let Some(p) = a.strip_prefix("--stats=") {
                return StatsSink {
                    path: Some(p.into()),
                };
            }
        }
        match std::env::var("RENUCA_STATS") {
            Ok(p) if !p.is_empty() => StatsSink {
                path: Some(p.into()),
            },
            _ => StatsSink { path: None },
        }
    }

    /// A sink that writes to `path` (used by tests and the CI smoke check).
    pub fn to(path: impl Into<PathBuf>) -> Self {
        StatsSink {
            path: Some(path.into()),
        }
    }

    /// A disabled sink: [`StatsSink::emit_with`] becomes a no-op.
    pub fn none() -> Self {
        StatsSink { path: None }
    }

    /// Whether a destination is configured.
    pub fn is_active(&self) -> bool {
        self.path.is_some()
    }

    /// The configured destination, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Build and write a manifest — but only when a destination is
    /// configured. `build` receives a [`Manifest`] pre-filled with the
    /// binary name, run label, version, budget and config echo; it fills in
    /// the stats registry and wear-heatmap rows. Parent directories are
    /// created as needed; a one-line note goes to stderr so the manifest
    /// path never pollutes the figure text on stdout.
    pub fn emit_with(
        &self,
        binary: &str,
        label: &str,
        cfg: Option<&SystemConfig>,
        budget: Budget,
        build: impl FnOnce(&mut Manifest),
    ) {
        let Some(path) = &self.path else { return };
        let mut m = Manifest::new(binary, label, cfg, budget);
        build(&mut m);
        // Atomic (temp + rename): a crash mid-write can never leave a torn
        // manifest for a later resume or verify step to trust.
        if let Err(e) = atomic_write(path, m.to_json().as_bytes()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("stats: wrote manifest to {}", path.display());
    }
}

/// One run manifest, serialized by [`Manifest::to_json`] with the key order
/// fixed by [`MANIFEST_KEYS`].
#[derive(Clone, Debug)]
pub struct Manifest {
    binary: String,
    label: String,
    budget: Budget,
    config: Option<StatsRegistry>,
    stats: StatsRegistry,
    wear_unit: String,
    wear_rows: Vec<(String, Vec<f64>)>,
}

impl Manifest {
    /// Start a manifest for `binary` with run label `label`. When the run
    /// uses a single [`SystemConfig`], pass it for the `config` echo;
    /// multi-config binaries (sweeps, ablations) pass `None` and the
    /// `config` key is emitted as JSON `null`.
    pub fn new(binary: &str, label: &str, cfg: Option<&SystemConfig>, budget: Budget) -> Self {
        let config = cfg.map(|c| {
            let mut reg = StatsRegistry::new();
            c.register(&mut reg, "config");
            reg
        });
        Manifest {
            binary: binary.to_string(),
            label: label.to_string(),
            budget,
            config,
            stats: StatsRegistry::new(),
            wear_unit: "years".to_string(),
            wear_rows: Vec::new(),
        }
    }

    /// Mutable access to the stats registry (dotted-path keys).
    pub fn stats_mut(&mut self) -> &mut StatsRegistry {
        &mut self.stats
    }

    /// Replace the stats registry wholesale (used when a full
    /// `SimResult::registry()` snapshot is available).
    pub fn set_stats(&mut self, reg: StatsRegistry) {
        self.stats = reg;
    }

    /// Set the unit tag of the wear heatmap (default `"years"`).
    pub fn set_wear_unit(&mut self, unit: &str) {
        self.wear_unit = unit.to_string();
    }

    /// Append one heatmap row: a label (scheme or workload name) and one
    /// value per LLC bank.
    pub fn push_wear_row(&mut self, label: &str, per_bank: &[f64]) {
        self.wear_rows.push((label.to_string(), per_bank.to_vec()));
    }

    /// Serialize the manifest. Keys appear exactly in [`MANIFEST_KEYS`]
    /// order; non-finite floats become JSON `null` (see
    /// [`sim_stats::json::fmt_f64`]); registry objects preserve insertion
    /// order, so identical runs produce byte-identical manifests.
    pub fn to_json(&self) -> String {
        let mut budget = JsonObject::new();
        budget
            .field_u64("warmup", self.budget.warmup)
            .field_u64("measure", self.budget.measure);
        let rows: Vec<String> = self
            .wear_rows
            .iter()
            .map(|(label, per_bank)| {
                let mut r = JsonObject::new();
                r.field_str("label", label)
                    .field_raw("per_bank", &f64_array(per_bank));
                r.finish()
            })
            .collect();
        let mut heatmap = JsonObject::new();
        heatmap
            .field_str("unit", &self.wear_unit)
            .field_raw("rows", &raw_array(&rows));
        let mut o = JsonObject::new();
        o.field_str("schema", MANIFEST_SCHEMA)
            .field_str("binary", &self.binary)
            .field_str("label", &self.label)
            .field_str("version", env!("CARGO_PKG_VERSION"))
            .field_raw("budget", &budget.finish());
        match &self.config {
            Some(reg) => o.field_raw("config", &reg.to_json()),
            None => o.field_raw("config", "null"),
        };
        o.field_raw("stats", &self.stats.to_json())
            .field_raw("wear_heatmap", &heatmap.finish());
        o.finish()
    }
}

/// Register one scheme's aggregate metrics under `scheme.<name>.*`:
/// `raw_min_years`, `hmean_lifetime_years`, `variation`, `mean_ipc`, then
/// per-workload `ipc.wl[i]` (1-based, matching WL1–WL10 naming).
pub fn register_scheme(reg: &mut StatsRegistry, s: &SchemeStudy) {
    let p = format!("scheme.{}", s.scheme.name());
    reg.set(format!("{p}.raw_min_years"), s.raw_min);
    reg.set(format!("{p}.hmean_lifetime_years"), s.hmean_lifetime());
    reg.set(format!("{p}.variation"), s.variation);
    reg.set(format!("{p}.mean_ipc"), s.mean_ipc());
    for (i, ipc) in s.per_wl_ipc.iter().enumerate() {
        reg.set(format!("{p}.ipc.wl[{}]", i + 1), *ipc);
    }
}

/// Fill a manifest from a [`MainStudy`]: per-scheme metrics in the registry
/// plus one wear-heatmap row per scheme (harmonic-mean per-bank lifetime in
/// years). This is the shared body of every study-family binary (fig3,
/// fig4b, fig11, fig12, the sensitivity sweeps, capacity, table3, all).
pub fn register_study(m: &mut Manifest, study: &MainStudy) {
    for s in &study.studies {
        register_scheme(m.stats_mut(), s);
    }
    for s in &study.studies {
        let name = s.scheme.name().to_string();
        m.push_wear_row(&name, &s.hmean_per_bank);
    }
}

/// The whole manifest path of a study-family binary in one call: build a
/// manifest for `binary` labelled with the study's own label, echo `cfg`,
/// register every scheme's metrics and the per-scheme wear heatmap, and
/// write it through `sink` (a no-op when no destination is configured).
/// Shared by fig3/fig4b/fig11/fig12, the six sensitivity binaries and
/// `capacity`; the campaign job runner uses the same sink machinery with
/// [`StatsSink::to`].
pub fn emit_study_manifest(
    sink: &StatsSink,
    binary: &str,
    cfg: Option<&SystemConfig>,
    budget: Budget,
    study: &MainStudy,
) {
    sink.emit_with(binary, study.label, cfg, budget, |m| {
        register_study(m, study)
    });
}

/// Fill a manifest from several [`MainStudy`]s under different
/// configurations (table3, the `all` run): metrics go under
/// `cfg.<label>.scheme.<name>.*` and the heatmap gets one row per
/// (config, scheme) pair labelled `<label>/<scheme>`.
pub fn register_multi_study(m: &mut Manifest, studies: &[MainStudy]) {
    for st in studies {
        for s in &st.studies {
            let p = format!("cfg.{}.scheme.{}", st.label, s.scheme.name());
            let reg = m.stats_mut();
            reg.set(format!("{p}.raw_min_years"), s.raw_min);
            reg.set(format!("{p}.hmean_lifetime_years"), s.hmean_lifetime());
            reg.set(format!("{p}.variation"), s.variation);
            reg.set(format!("{p}.mean_ipc"), s.mean_ipc());
        }
    }
    for st in studies {
        for s in &st.studies {
            let label = format!("{}/{}", st.label, s.scheme.name());
            m.push_wear_row(&label, &s.hmean_per_bank);
        }
    }
}

/// Register Table II rows under `app.<name>.*`: measured
/// `wpki`/`mpki`/`hit_rate`/`ipc` and the paper's reference values as
/// `paper_*`.
pub fn register_table2(reg: &mut StatsRegistry, rows: &[Table2Row]) {
    for r in rows {
        let p = format!("app.{}", r.name);
        reg.set(format!("{p}.wpki"), r.wpki);
        reg.set(format!("{p}.mpki"), r.mpki);
        reg.set(format!("{p}.hit_rate"), r.hitrate);
        reg.set(format!("{p}.ipc"), r.ipc);
        reg.set(format!("{p}.paper_wpki"), r.paper_wpki);
        reg.set(format!("{p}.paper_mpki"), r.paper_mpki);
        reg.set(format!("{p}.paper_hit_rate"), r.paper_hitrate);
        reg.set(format!("{p}.paper_ipc"), r.paper_ipc);
    }
}

/// Register Figure 5 rows: `app.<name>.noncritical_load_pct` per
/// application plus the cross-application `average.noncritical_load_pct`.
pub fn register_fig5(reg: &mut StatsRegistry, rows: &[Fig5Row], average: f64) {
    for r in rows {
        reg.set(
            format!("app.{}.noncritical_load_pct", r.name),
            r.noncritical_pct,
        );
    }
    reg.set("average.noncritical_load_pct", average);
}

/// Register a predictor study (Figures 7–9). The threshold sweep is echoed
/// as `threshold[k].pct`; per-application curves and cross-application
/// averages are indexed by the same `k`.
pub fn register_predictor(reg: &mut StatsRegistry, s: &PredictorStudy) {
    for (k, t) in s.thresholds.iter().enumerate() {
        reg.set(format!("threshold[{k}].pct"), *t);
    }
    for (a, app) in s.apps.iter().enumerate() {
        for k in 0..s.thresholds.len() {
            let p = format!("app.{app}");
            reg.set(format!("{p}.recall_pct[{k}]"), s.recall[a][k]);
            reg.set(
                format!("{p}.noncritical_blocks_pct[{k}]"),
                s.noncritical_blocks[a][k],
            );
            reg.set(
                format!("{p}.noncritical_writes_pct[{k}]"),
                s.noncritical_writes[a][k],
            );
        }
    }
    for (name, avg) in [
        ("avg.recall_pct", s.avg_recall()),
        ("avg.noncritical_blocks_pct", s.avg_noncritical_blocks()),
        ("avg.noncritical_writes_pct", s.avg_noncritical_writes()),
    ] {
        for (k, v) in avg.iter().enumerate() {
            reg.set(format!("{name}[{k}]"), *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_key_skeleton_matches_schema() {
        let cfg = SystemConfig::default();
        let m = Manifest::new("fig3", "Actual Results", Some(&cfg), Budget::test());
        let json = m.to_json();
        // Every documented key appears, in order.
        let mut pos = 0;
        for key in MANIFEST_KEYS {
            let needle = format!("\"{key}\":");
            let at = json[pos..]
                .find(&needle)
                .unwrap_or_else(|| panic!("manifest missing key {key:?} after byte {pos}"));
            pos += at + needle.len();
        }
        assert!(json.starts_with(&format!("{{\"schema\":\"{MANIFEST_SCHEMA}\"")));
    }

    #[test]
    fn missing_config_is_null() {
        let m = Manifest::new("ablations", "all", None, Budget::test());
        assert!(m.to_json().contains("\"config\":null"));
    }

    #[test]
    fn non_finite_wear_values_become_null() {
        let mut m = Manifest::new("x", "y", None, Budget::test());
        m.push_wear_row("S-NUCA", &[1.0, f64::INFINITY, f64::NAN]);
        let json = m.to_json();
        assert!(json.contains("\"per_bank\":[1,null,null]"));
    }

    #[test]
    fn identical_manifests_are_byte_identical() {
        let build = || {
            let cfg = SystemConfig::default();
            let mut m = Manifest::new("fig12", "Actual Results", Some(&cfg), Budget::test());
            m.stats_mut().set("scheme.S-NUCA.raw_min_years", 1.25_f64);
            m.push_wear_row("S-NUCA", &[1.0, 2.0]);
            m.to_json()
        };
        assert_eq!(build(), build());
    }
}
