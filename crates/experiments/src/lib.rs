//! Experiment harness reproducing every table and figure of the Re-NUCA
//! paper's evaluation (§III and §V).
//!
//! Each experiment is a pure function from a configuration + instruction
//! budget to a typed result struct, plus a formatter that prints the same
//! rows/series the paper plots. The binaries in `src/bin/` and the bench
//! targets in the `bench` crate are thin wrappers.
//!
//! | paper artifact | module | binary |
//! |---|---|---|
//! | Table I (config) | `cmp_sim::config` (defaults) | — |
//! | Table II (app characteristics) | [`figures::table2`] | `table2` |
//! | Figure 2 (WPKI+MPKI) | [`figures::table2`] | `fig2` |
//! | Figure 3 (baseline lifetimes) | [`figures::lifetime`] | `fig3` |
//! | Figure 4b (perf vs lifetime) | [`figures::lifetime`] | `fig4b` |
//! | Figure 5 (ROB stalls) | [`figures::criticality`] | `fig5` |
//! | Figures 7–9 (predictor study) | [`figures::predictor_study`] | `fig7`, `fig8`, `fig9` |
//! | Figure 11 (IPC) | [`figures::lifetime`] | `fig11` |
//! | Figure 12 (Re-NUCA wearout) | [`figures::lifetime`] | `fig12` |
//! | Figures 13–18 (sensitivity) | [`figures::sensitivity`] | `fig13` … `fig18` |
//! | Table III (raw min lifetimes) | [`figures::table3`] | `table3` |
//!
//! Instruction budgets scale with the environment variables
//! `RENUCA_MEASURE` and `RENUCA_WARMUP` (instructions per core); the
//! defaults keep a full figure regeneration tractable on one CPU while the
//! statistical workload models stay in their converged steady state.
//!
//! Every binary additionally accepts `--stats <path>` (or the
//! `RENUCA_STATS` environment variable) and then writes a JSON *run
//! manifest* — config echo, stats-registry snapshot, per-bank wear
//! heatmap — through the shared [`obs`] helper; the schema is documented
//! in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod diff;
pub mod figures;
pub mod forecast;
pub mod obs;
pub mod pool;
pub mod runner;

pub use budget::Budget;
pub use diff::{replay, ReplayReport};
pub use forecast::{forecast_study, forecast_workload, ForecastRow, ForecastStudy};
pub use obs::{Manifest, StatsSink};
pub use pool::{parallel_map, parallel_map_threads};
pub use runner::{run_single_app, run_workload, SchemeStudy};
