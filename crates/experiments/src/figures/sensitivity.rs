//! The sensitivity studies of §V.C: Figures 13/14 (L2 = 128 KB),
//! Figures 15/16 (L3 bank = 1 MB) and Figures 17/18 (ROB = 168 entries).
//!
//! Each study is the main five-scheme × ten-workload sweep under a
//! perturbed configuration; the wear-leveling figures reuse the Figure 12
//! renderer and the IPC figures reuse Figure 11's.

use cmp_sim::config::SystemConfig;

use crate::budget::Budget;
use crate::figures::lifetime::{self, MainStudy};

/// Which sensitivity knob to turn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sensitivity {
    /// Shrink the private L2 to 128 KB (more writebacks) — Figures 13/14.
    L2Small,
    /// Shrink each L3 bank to 1 MB (more misses) — Figures 15/16.
    L3Small,
    /// Grow the ROB to 168 entries (fewer head stalls) — Figures 17/18.
    RobLarge,
}

impl Sensitivity {
    /// The perturbed configuration.
    pub fn config(self) -> SystemConfig {
        let base = SystemConfig::default();
        match self {
            Sensitivity::L2Small => base.with_l2_128k(),
            Sensitivity::L3Small => base.with_l3_1m(),
            Sensitivity::RobLarge => base.with_rob_168(),
        }
    }

    /// Table III row label.
    pub fn label(self) -> &'static str {
        match self {
            Sensitivity::L2Small => "L2-128KB",
            Sensitivity::L3Small => "L3-1MB",
            Sensitivity::RobLarge => "ROB-168",
        }
    }

    /// The wear-leveling figure number this study regenerates.
    pub fn wear_figure(self) -> u32 {
        match self {
            Sensitivity::L2Small => 13,
            Sensitivity::L3Small => 15,
            Sensitivity::RobLarge => 17,
        }
    }

    /// The IPC figure number this study regenerates.
    pub fn ipc_figure(self) -> u32 {
        self.wear_figure() + 1
    }
}

/// Run one sensitivity study (uses the reduced sweep budget).
pub fn run(which: Sensitivity, budget: Budget) -> MainStudy {
    lifetime::run(which.label(), which.config(), budget.sweep())
}

/// Render the study's wear-leveling figure (13, 15 or 17).
pub fn format_wear(which: Sensitivity, study: &MainStudy) -> String {
    let title = format!(
        "Figure {} — harmonic-mean lifetime per bank [years], {}",
        which.wear_figure(),
        which.label()
    );
    // Reuse fig12's body with a different title line.
    let body = lifetime::format_fig12(study);
    let body = body.splitn(2, '\n').nth(1).unwrap_or("").to_owned();
    format!("{title}\n{body}")
}

/// Render the study's IPC figure (14, 16 or 18).
pub fn format_ipc(which: Sensitivity, study: &MainStudy) -> String {
    lifetime::format_ipc_improvements(
        &format!(
            "Figure {} — IPC improvement over S-NUCA [%], {}",
            which.ipc_figure(),
            which.label()
        ),
        study,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_match_paper_variants() {
        assert_eq!(Sensitivity::L2Small.config().l2.size_bytes, 128 * 1024);
        assert_eq!(
            Sensitivity::L3Small.config().l3_bank.size_bytes,
            1024 * 1024
        );
        assert_eq!(Sensitivity::RobLarge.config().rob_entries, 168);
    }

    #[test]
    fn labels_and_figures() {
        assert_eq!(Sensitivity::L2Small.label(), "L2-128KB");
        assert_eq!(Sensitivity::L2Small.wear_figure(), 13);
        assert_eq!(Sensitivity::L2Small.ipc_figure(), 14);
        assert_eq!(Sensitivity::RobLarge.wear_figure(), 17);
    }
}
