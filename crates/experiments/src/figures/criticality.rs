//! Figure 5: the fraction of loads that never stall the head of the ROB.
//!
//! Each application runs alone; the core model flags every committed load
//! with whether it blocked the ROB head (stall beyond the skew threshold).
//! The paper measures over 80% of loads non-critical on average — the
//! headroom Re-NUCA exploits.

use renuca_core::{CptConfig, Scheme};
use sim_stats::bar_chart;
use workloads::SPEC_TABLE;

use crate::budget::Budget;
use crate::runner::run_single_app;

/// Per-application non-critical load fraction.
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// Application name.
    pub name: &'static str,
    /// Percentage of committed loads that never blocked the ROB head.
    pub noncritical_pct: f64,
}

/// Run Figure 5's measurement over all applications.
pub fn run(budget: Budget) -> Vec<Fig5Row> {
    SPEC_TABLE
        .iter()
        .map(|spec| {
            let r = run_single_app(
                spec,
                Scheme::SNuca,
                CptConfig::default(),
                budget.single_core(),
                false,
            );
            Fig5Row {
                name: spec.name,
                noncritical_pct: r.per_core[0].core_stats.noncritical_load_fraction() * 100.0,
            }
        })
        .collect()
}

/// Average non-critical percentage across applications.
pub fn average(rows: &[Fig5Row]) -> f64 {
    sim_stats::amean(&rows.iter().map(|r| r.noncritical_pct).collect::<Vec<_>>())
}

/// Render Figure 5 (sorted descending, like the paper's left-to-right).
pub fn format_fig5(rows: &[Fig5Row]) -> String {
    let mut data: Vec<(String, f64)> = rows
        .iter()
        .map(|r| (r.name.to_owned(), r.noncritical_pct))
        .collect();
    data.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    data.push(("Average".to_owned(), average(rows)));
    bar_chart(
        "Figure 5 — non-critical loads [% of committed loads] (paper avg: >80%)",
        &data,
        50,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_measured() {
        let rows = run(Budget::test());
        assert_eq!(rows.len(), 22);
        for r in &rows {
            assert!(
                (0.0..=100.0).contains(&r.noncritical_pct),
                "{}: {}",
                r.name,
                r.noncritical_pct
            );
        }
        assert!(format_fig5(&rows).contains("Average"));
    }
}
