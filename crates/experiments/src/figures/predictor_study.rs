//! Figures 7, 8 and 9: the criticality-predictor characterization.
//!
//! For each of the paper's eight study applications and each criticality
//! threshold x ∈ {3, 5, 10, 20, 25, 33, 50, 75, 100} %, the application
//! runs alone with a CPT observing every load (placement stays S-NUCA —
//! this is a measurement study, the predictor does not steer anything yet):
//!
//! * **Figure 7** — prediction accuracy: of the loads that actually blocked
//!   the ROB head, the fraction the CPT had marked critical at issue
//!   (recall of the critical class — the reading under which the paper's
//!   "83% at x=3%, 14.5% at x=100%" trend is reproducible: lower thresholds
//!   predict critical more aggressively and therefore catch more of the
//!   truly critical loads).
//! * **Figure 8** — the percentage of *fetched cache blocks* (L3-miss
//!   fills) whose triggering load was predicted non-critical (paper avg:
//!   ~50.3% at x=3%).
//! * **Figure 9** — the percentage of L3 *writes* (fills + writebacks)
//!   landing in blocks recorded non-critical (paper: ~50% at x=3%).

use renuca_core::criticality::CptConfig;
use sim_stats::Table;
use workloads::app_by_name;
use workloads::spec::PREDICTOR_STUDY_APPS;

use crate::budget::Budget;
use crate::runner::run_single_app_with_cpt;

/// Results of the full (app × threshold) sweep.
#[derive(Clone, Debug)]
pub struct PredictorStudy {
    /// Application names (paper order).
    pub apps: Vec<&'static str>,
    /// Threshold values in percent.
    pub thresholds: Vec<f64>,
    /// `recall[app][threshold]`: Figure 7's accuracy, in percent.
    pub recall: Vec<Vec<f64>>,
    /// `noncritical_blocks[app][threshold]`: Figure 8, in percent.
    pub noncritical_blocks: Vec<Vec<f64>>,
    /// `noncritical_writes[app][threshold]`: Figure 9, in percent.
    pub noncritical_writes: Vec<Vec<f64>>,
}

impl PredictorStudy {
    /// Column averages of a metric matrix.
    fn averages(matrix: &[Vec<f64>]) -> Vec<f64> {
        let nt = matrix[0].len();
        (0..nt)
            .map(|t| sim_stats::amean(&matrix.iter().map(|row| row[t]).collect::<Vec<_>>()))
            .collect()
    }

    /// Per-threshold averages of Figure 7's recall.
    pub fn avg_recall(&self) -> Vec<f64> {
        Self::averages(&self.recall)
    }

    /// Per-threshold averages of Figure 8.
    pub fn avg_noncritical_blocks(&self) -> Vec<f64> {
        Self::averages(&self.noncritical_blocks)
    }

    /// Per-threshold averages of Figure 9.
    pub fn avg_noncritical_writes(&self) -> Vec<f64> {
        Self::averages(&self.noncritical_writes)
    }
}

/// Run the sweep. `thresholds` defaults to the paper's nine values.
pub fn run(budget: Budget, thresholds: &[f64]) -> PredictorStudy {
    let apps: Vec<&'static str> = PREDICTOR_STUDY_APPS.to_vec();
    let mut recall = Vec::with_capacity(apps.len());
    let mut blocks = Vec::with_capacity(apps.len());
    let mut writes = Vec::with_capacity(apps.len());
    for name in &apps {
        let spec = app_by_name(name).expect("study app in table");
        let mut r_row = Vec::with_capacity(thresholds.len());
        let mut b_row = Vec::with_capacity(thresholds.len());
        let mut w_row = Vec::with_capacity(thresholds.len());
        for &x in thresholds {
            let result = run_single_app_with_cpt(spec, CptConfig::with_threshold(x), budget);
            let cs = result.per_core[0].core_stats;
            r_row.push(cs.critical_recall() * 100.0);
            let h = result.hierarchy;
            b_row
                .push(h.l3_fills_noncritical.get() as f64 * 100.0 / h.l3_fills.get().max(1) as f64);
            w_row.push(
                h.l3_writes_noncritical.get() as f64 * 100.0 / h.l3_writes.get().max(1) as f64,
            );
        }
        recall.push(r_row);
        blocks.push(b_row);
        writes.push(w_row);
    }
    PredictorStudy {
        apps,
        thresholds: thresholds.to_vec(),
        recall,
        noncritical_blocks: blocks,
        noncritical_writes: writes,
    }
}

fn format_matrix(title: &str, study: &PredictorStudy, matrix: &[Vec<f64>], avg: &[f64]) -> String {
    let mut headers: Vec<String> = vec!["App".to_owned()];
    headers.extend(study.thresholds.iter().map(|t| format!("{t}%")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for (i, app) in study.apps.iter().enumerate() {
        t.row_f64(app, &matrix[i], 1);
    }
    t.row_f64("Avg", avg, 1);
    format!("{title}\n{}", t.render())
}

/// Render Figure 7 (criticality prediction accuracy vs threshold).
pub fn format_fig7(study: &PredictorStudy) -> String {
    format_matrix(
        "Figure 7 — criticality prediction accuracy [%] (paper avg: 83% @3%, 14.5% @100%)",
        study,
        &study.recall,
        &study.avg_recall(),
    )
}

/// Render Figure 8 (% of fetched blocks that are non-critical).
pub fn format_fig8(study: &PredictorStudy) -> String {
    format_matrix(
        "Figure 8 — non-critical cache blocks [% of fetched blocks] (paper avg: 50.3% @3%)",
        study,
        &study.noncritical_blocks,
        &study.avg_noncritical_blocks(),
    )
}

/// Render Figure 9 (% of L3 writes to non-critical blocks).
pub fn format_fig9(study: &PredictorStudy) -> String {
    format_matrix(
        "Figure 9 — writes to non-critical blocks [% of L3 writes] (paper avg: ~50% @3%)",
        study,
        &study.noncritical_writes,
        &study.avg_noncritical_writes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shapes_and_monotonicity() {
        // Two thresholds, tiny budget: recall at 3% must be >= recall at
        // 100% for every app (lower thresholds predict critical more).
        let study = run(Budget::test(), &[3.0, 100.0]);
        assert_eq!(study.apps.len(), 8);
        for (i, app) in study.apps.iter().enumerate() {
            assert!(
                study.recall[i][0] >= study.recall[i][1] - 1e-9,
                "{app}: recall(3%)={} < recall(100%)={}",
                study.recall[i][0],
                study.recall[i][1]
            );
            // Non-critical block share grows with the threshold.
            assert!(
                study.noncritical_blocks[i][0] <= study.noncritical_blocks[i][1] + 1e-9,
                "{app}: blocks(3%)={} > blocks(100%)={}",
                study.noncritical_blocks[i][0],
                study.noncritical_blocks[i][1]
            );
        }
        let f7 = format_fig7(&study);
        assert!(f7.contains("mcf") && f7.contains("Avg"));
        assert!(format_fig8(&study).contains("Figure 8"));
        assert!(format_fig9(&study).contains("Figure 9"));
    }
}
