//! Capacity-retention curves: the fraction of the 32 MB cache still alive
//! over time under each scheme.
//!
//! This extension quantifies the paper's §III.B observation that *"with
//! time, cache banks wear out and we loose cache capacity … thereby hurting
//! the performance"*: schemes are usually compared by their minimum
//! lifetime, but the full survival curve shows *how* capacity erodes —
//! S-NUCA/Naive fall off a cliff together (all banks die at once, late),
//! while Private and R-NUCA bleed banks one at a time starting years
//! earlier.

use sim_stats::Table;
use wear_model::capacity_retention;

use crate::figures::lifetime::MainStudy;

/// Render the retention table: one row per time point, one column per
/// scheme, derived from the per-bank harmonic-mean lifetimes of a main
/// study.
pub fn format_retention(study: &MainStudy, horizon_years: f64, points: usize) -> String {
    let mut headers = vec!["years".to_owned()];
    headers.extend(study.studies.iter().map(|s| s.scheme.name().to_owned()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);

    let curves: Vec<Vec<(f64, f64)>> = study
        .studies
        .iter()
        .map(|s| capacity_retention(&s.hmean_per_bank, horizon_years, points))
        .collect();
    for p in 0..points {
        let mut cells = vec![format!("{:.1}", curves[0][p].0)];
        for c in &curves {
            cells.push(format!("{:.0}%", c[p].1 * 100.0));
        }
        t.row(&cells);
    }
    format!(
        "Capacity retention — % of L3 capacity surviving over time [{}]\n{}",
        study.label,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::figures::lifetime;
    use cmp_sim::config::SystemConfig;

    #[test]
    fn retention_table_renders() {
        let study = lifetime::run("test", SystemConfig::small(4), Budget::test());
        let s = format_retention(&study, 20.0, 5);
        assert!(s.contains("Capacity retention"));
        assert!(s.contains("Re-NUCA"));
        // First row is t=0 with 100% everywhere.
        let first_data = s.lines().nth(3).unwrap();
        assert!(first_data.contains("100%"), "{first_data}");
    }
}
