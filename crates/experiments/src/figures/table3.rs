//! Table III: raw minimum lifetimes for all five schemes under the actual
//! configuration and the three sensitivity variants.

use cmp_sim::config::SystemConfig;
use sim_stats::Table;

use crate::budget::Budget;
use crate::figures::lifetime::{self, MainStudy};
use crate::figures::sensitivity::{self, Sensitivity};

/// The paper's Table III reference values, `[config][scheme]` in the order
/// Naive / S-NUCA / Re-NUCA / R-NUCA / Private.
pub const PAPER_TABLE3: [(&str, [f64; 5]); 4] = [
    ("Actual Results", [4.95, 3.37, 3.24, 2.38, 2.32]),
    ("L2-128KB", [7.14, 3.90, 3.09, 2.31, 2.31]),
    ("L3-1MB", [3.64, 1.67, 1.67, 1.38, 1.38]),
    ("ROB-168", [7.06, 3.26, 3.26, 2.33, 2.32]),
];

/// All four configuration studies.
#[derive(Clone, Debug)]
pub struct Table3 {
    /// The "Actual Results" study plus the three sensitivity studies.
    pub studies: Vec<MainStudy>,
}

/// Run all four rows of Table III (the most expensive experiment: 200
/// simulations — the sensitivity rows use the reduced sweep budget).
pub fn run(budget: Budget) -> Table3 {
    let mut studies = vec![lifetime::run(
        "Actual Results",
        SystemConfig::default(),
        budget,
    )];
    for s in [
        Sensitivity::L2Small,
        Sensitivity::L3Small,
        Sensitivity::RobLarge,
    ] {
        studies.push(sensitivity::run(s, budget));
    }
    Table3 { studies }
}

/// Render Table III, measured values alongside the paper's.
pub fn format_table3(t3: &Table3) -> String {
    let mut t = Table::new(&[
        "Config",
        "Naive",
        "S-NUCA",
        "Re-NUCA",
        "R-NUCA",
        "Private",
        "(paper) Naive",
        "S-NUCA",
        "Re-NUCA",
        "R-NUCA",
        "Private",
    ]);
    for (i, study) in t3.studies.iter().enumerate() {
        let mut cells = vec![study.label.to_owned()];
        cells.extend(study.table3_row().iter().map(|(_, v)| format!("{v:.2}")));
        let paper = PAPER_TABLE3
            .iter()
            .find(|(l, _)| *l == study.label)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| PAPER_TABLE3[i].1);
        cells.extend(paper.iter().map(|v| format!("{v:.2}")));
        t.row(&cells);
    }
    format!(
        "Table III — raw minimum lifetimes [years] (measured | paper)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_ordering() {
        // In every paper row, Naive has the longest raw-min lifetime and
        // Private the shortest (or tied).
        for (label, row) in PAPER_TABLE3 {
            let naive = row[0];
            let private = row[4];
            for v in row {
                assert!(naive >= v, "{label}: Naive must dominate");
                assert!(private <= v, "{label}: Private must trail");
            }
        }
    }

    #[test]
    fn format_includes_all_rows() {
        // Formatting is cheap to test with a fabricated study set.
        let cfg = SystemConfig::small(4);
        let study = lifetime::run("Actual Results", cfg, Budget::test());
        let t3 = Table3 {
            studies: vec![study],
        };
        let s = format_table3(&t3);
        assert!(s.contains("Actual Results"));
        assert!(s.contains("4.95"), "paper reference column present");
    }
}
