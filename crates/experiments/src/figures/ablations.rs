//! Ablation studies beyond the paper's own evaluation (DESIGN.md §7).
//!
//! Each ablation isolates one design choice the paper makes (or leaves
//! implicit) and quantifies it end-to-end:
//!
//! 1. **Criticality threshold, end-to-end** — the paper sweeps x only
//!    through the predictor (Figures 7–9); here the sweep reaches lifetime
//!    and IPC. Higher thresholds → fewer critical lines → more spreading →
//!    longer lifetime, at a growing latency cost.
//! 2. **CPT capacity** — prediction quality under PC aliasing (the paper
//!    never sizes the table).
//! 3. **Intra-bank leveling composition** — §VI claims i2wap-style
//!    inter-set leveling is orthogonal and composable; measured here under
//!    the pessimistic max-slot lifetime model.
//! 4. **Naive directory latency** — how the oracle's practicality collapses
//!    as its directory gets slower.
//! 5. **MBV vs two-probe lookup** — the enhanced TLB's value: same policy
//!    without residency bits must probe two banks.
//! 6. **Prefetcher** — the reproduction's main added substrate; its effect
//!    on the criticality mix and on Re-NUCA's lifetime gain.

use cmp_sim::config::SystemConfig;
use cmp_sim::system::{SimResult, System};
use renuca_core::{CptConfig, ReNucaTwoProbe, Scheme};
use sim_stats::{percent_change, Table};
use wear_model::{lifetime_variation, IntraBankWear, LifetimeModel};
use workloads::{workload_mix, WorkloadMix};

use crate::budget::Budget;
use crate::runner::{lifetime_model, run_workload};

/// Workload subset used by the ablations (a high-, a mixed- and a
/// low-pressure mix); full sweeps belong to the main figures.
const ABLATION_WLS: [usize; 3] = [1, 2, 5];

fn run_wls(scheme: Scheme, cfg: SystemConfig, cpt: CptConfig, budget: Budget) -> Vec<SimResult> {
    ABLATION_WLS
        .iter()
        .map(|&id| {
            let wl = workload_mix(id, cfg.n_cores);
            run_workload(&wl, scheme, cfg, cpt, budget)
        })
        .collect()
}

fn summarize(results: &[SimResult], model: &LifetimeModel) -> (f64, f64, f64) {
    let mut min_life = f64::INFINITY;
    let mut variations = Vec::new();
    let mut ipc = 0.0;
    for r in results {
        let lifetimes = model.all_bank_lifetimes(&r.wear, r.cycles);
        min_life = min_life.min(lifetimes.iter().cloned().fold(f64::INFINITY, f64::min));
        variations.push(lifetime_variation(&lifetimes));
        ipc += r.total_ipc();
    }
    (
        min_life,
        sim_stats::amean(&variations),
        ipc / results.len() as f64,
    )
}

/// Ablation 1: the criticality threshold's end-to-end lifetime/IPC trade.
pub fn threshold_end_to_end(budget: Budget) -> String {
    let cfg = SystemConfig::default();
    let model = lifetime_model(&cfg);
    let mut t = Table::new(&[
        "x [%]",
        "raw-min life [y]",
        "wear CV",
        "IPC",
        "ΔIPC vs x=3 [%]",
    ]);
    let mut base_ipc = None;
    for x in [3.0, 10.0, 33.0, 100.0] {
        let results = run_wls(Scheme::ReNuca, cfg, CptConfig::with_threshold(x), budget);
        let (min_life, var, ipc) = summarize(&results, &model);
        let base = *base_ipc.get_or_insert(ipc);
        t.row(&[
            format!("{x}"),
            format!("{min_life:.2}"),
            format!("{var:.3}"),
            format!("{ipc:.2}"),
            format!("{:+.2}", percent_change(ipc, base)),
        ]);
    }
    format!(
        "Ablation 1 — criticality threshold, end-to-end (Re-NUCA, WLs {ABLATION_WLS:?})\n{}",
        t.render()
    )
}

/// Ablation 2: CPT capacity vs prediction quality.
pub fn cpt_capacity(budget: Budget) -> String {
    use crate::runner::run_single_app_with_cpt;
    let apps = ["mcf", "lbm", "omnetpp", "bzip2"];
    let mut t = Table::new(&["entries", "avg recall [%]", "avg accuracy [%]"]);
    for entries in [64usize, 256, 1024, 8192] {
        let mut recalls = Vec::new();
        let mut accs = Vec::new();
        for name in apps {
            let spec = workloads::app_by_name(name).expect("app");
            let cpt = CptConfig {
                entries,
                ..CptConfig::default()
            };
            let r = run_single_app_with_cpt(spec, cpt, budget);
            let cs = r.per_core[0].core_stats;
            recalls.push(cs.critical_recall() * 100.0);
            accs.push(cs.prediction_accuracy() * 100.0);
        }
        t.row(&[
            format!("{entries}"),
            format!("{:.1}", sim_stats::amean(&recalls)),
            format!("{:.1}", sim_stats::amean(&accs)),
        ]);
    }
    format!(
        "Ablation 2 — CPT capacity (apps {apps:?}; smaller tables alias PCs)\n{}",
        t.render()
    )
}

/// Ablation 3: composing Re-NUCA with i2wap-style intra-bank leveling,
/// evaluated under the pessimistic max-slot lifetime model (where intra-bank
/// variation actually shows).
pub fn intra_bank_composition(budget: Budget) -> String {
    let mut t = Table::new(&["scheme", "rotation", "raw-min life [y] (max-slot)", "IPC"]);
    for scheme in [Scheme::ReNuca, Scheme::RNuca] {
        // The rotation period is scaled to the measured window: a real
        // deployment rotates every few hundred thousand writes; at our
        // window lengths each bank absorbs a few thousand, so the period
        // is chosen to give several rotations per bank per run.
        for rotation in [None, Some(2_000)] {
            let mut cfg = SystemConfig::default();
            cfg.intra_bank_rotation_writes = rotation;
            let model = LifetimeModel {
                intra_bank: IntraBankWear::MaxSlot,
                ..lifetime_model(&cfg)
            };
            let results = run_wls(scheme, cfg, CptConfig::default(), budget);
            let (min_life, _, ipc) = summarize(&results, &model);
            t.row(&[
                scheme.name().to_owned(),
                rotation.map_or("off".into(), |w| format!("every {w} writes")),
                format!("{min_life:.2}"),
                format!("{ipc:.2}"),
            ]);
        }
    }
    format!(
        "Ablation 3 — intra-bank set rotation composed with NUCA placement (§VI)\n{}",
        t.render()
    )
}

/// Ablation 4: the Naive oracle's directory latency.
pub fn naive_latency(budget: Budget) -> String {
    let base_cfg = SystemConfig::default();
    let snuca = run_wls(Scheme::SNuca, base_cfg, CptConfig::default(), budget);
    let snuca_ipc: f64 = snuca.iter().map(SimResult::total_ipc).sum::<f64>() / snuca.len() as f64;
    let mut t = Table::new(&["dir latency [cyc]", "IPC", "vs S-NUCA [%]"]);
    for lat in [0u64, 60, 150, 300] {
        let mut cfg = base_cfg;
        cfg.naive_dir_latency = lat;
        let results = run_wls(Scheme::Naive, cfg, CptConfig::default(), budget);
        let ipc: f64 = results.iter().map(SimResult::total_ipc).sum::<f64>() / results.len() as f64;
        t.row(&[
            format!("{lat}"),
            format!("{ipc:.2}"),
            format!("{:+.1}", percent_change(ipc, snuca_ipc)),
        ]);
    }
    format!(
        "Ablation 4 — Naive oracle directory latency (paper: ~-21% at its design point)\n{}",
        t.render()
    )
}

/// Ablation 5: the enhanced TLB's value — MBV routing vs two-probe search.
pub fn mbv_vs_two_probe(budget: Budget) -> String {
    let cfg = SystemConfig::default();
    let cpt = CptConfig::default();
    let mut t = Table::new(&["lookup", "IPC", "2nd probes", "2nd-probe hits"]);

    let mbv = run_wls(Scheme::ReNuca, cfg, cpt, budget);
    let mbv_ipc: f64 = mbv.iter().map(SimResult::total_ipc).sum::<f64>() / mbv.len() as f64;
    t.row(&[
        "MBV (enhanced TLB)".into(),
        format!("{mbv_ipc:.2}"),
        "0".into(),
        "0".into(),
    ]);

    let mut probes = 0;
    let mut hits = 0;
    let mut ipc = 0.0;
    for &id in &ABLATION_WLS {
        let wl: WorkloadMix = workload_mix(id, cfg.n_cores);
        let policy = Box::new(ReNucaTwoProbe::new(cfg.noc.cols, cfg.noc.rows));
        let predictors = Scheme::ReNuca.build_predictors(&cfg, cpt);
        let mut sys = System::new(cfg, policy, wl.build_sources(), predictors);
        sys.prewarm();
        sys.warmup(budget.warmup);
        sys.run(budget.measure);
        let r = sys.result();
        probes += r.hierarchy.secondary_probes.get();
        hits += r.hierarchy.secondary_hits.get();
        ipc += r.total_ipc();
    }
    ipc /= ABLATION_WLS.len() as f64;
    t.row(&[
        "two-probe (no MBV)".into(),
        format!("{ipc:.2}"),
        format!("{probes}"),
        format!("{hits}"),
    ]);
    format!(
        "Ablation 5 — Mapping Bit Vector vs residency-state-free two-probe lookup (§IV.C)\n{}\n\
         MBV IPC advantage: {:+.2}%\n",
        t.render(),
        percent_change(mbv_ipc, ipc)
    )
}

/// Ablation 6: the stride prefetcher's role in the criticality mix and in
/// Re-NUCA's lifetime gain over R-NUCA.
pub fn prefetcher_ablation(budget: Budget) -> String {
    let mut t = Table::new(&[
        "prefetcher",
        "noncrit fills [%]",
        "Re-NUCA min life [y]",
        "R-NUCA min life [y]",
        "gain [%]",
    ]);
    for enabled in [true, false] {
        let mut cfg = SystemConfig::default();
        cfg.prefetch.enabled = enabled;
        let model = lifetime_model(&cfg);
        let re = run_wls(Scheme::ReNuca, cfg, CptConfig::default(), budget);
        let rn = run_wls(Scheme::RNuca, cfg, CptConfig::default(), budget);
        let (re_min, _, _) = summarize(&re, &model);
        let (rn_min, _, _) = summarize(&rn, &model);
        let fills: u64 = re.iter().map(|r| r.hierarchy.l3_fills.get()).sum();
        let noncrit: u64 = re
            .iter()
            .map(|r| r.hierarchy.l3_fills_noncritical.get())
            .sum();
        t.row(&[
            if enabled { "on" } else { "off" }.into(),
            format!("{:.1}", noncrit as f64 * 100.0 / fills.max(1) as f64),
            format!("{re_min:.2}"),
            format!("{rn_min:.2}"),
            format!("{:+.1}", percent_change(re_min, rn_min)),
        ]);
    }
    format!(
        "Ablation 6 — stride prefetcher's effect on criticality and lifetime\n{}",
        t.render()
    )
}

/// Run every ablation and concatenate the reports.
pub fn run_all(budget: Budget) -> String {
    let mut out = String::new();
    out.push_str(&threshold_end_to_end(budget));
    out.push('\n');
    out.push_str(&cpt_capacity(budget));
    out.push('\n');
    out.push_str(&intra_bank_composition(budget));
    out.push('\n');
    out.push_str(&naive_latency(budget));
    out.push('\n');
    out.push_str(&mbv_vs_two_probe(budget));
    out.push('\n');
    out.push_str(&prefetcher_ablation(budget));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbv_ablation_counts_probes() {
        // The two-probe variant must actually issue secondary probes.
        let report = mbv_vs_two_probe(Budget::test());
        assert!(report.contains("two-probe"));
        // The probes column of the second data row is non-zero.
        let line = report
            .lines()
            .find(|l| l.starts_with("two-probe"))
            .expect("two-probe row");
        assert!(
            !line.contains(" 0  0"),
            "secondary probes should be non-zero: {line}"
        );
    }

    #[test]
    fn threshold_ablation_renders() {
        let report = threshold_end_to_end(Budget::test());
        assert!(report.contains("x [%]"));
        assert!(report.contains("100"));
    }
}
