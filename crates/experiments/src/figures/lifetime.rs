//! The main evaluation: Figures 3, 4b, 11, 12 and the Table III "Actual
//! Results" row — all derived from one (scheme × workload) sweep.
//!
//! * **Figure 3** (motivation): harmonic-mean per-bank lifetime for the
//!   four baselines (S-NUCA, R-NUCA, Private, Naive).
//! * **Figure 4b**: the performance-vs-lifetime trade-off scatter.
//! * **Figure 11**: per-workload IPC improvement over S-NUCA for R-NUCA,
//!   Private and Re-NUCA.
//! * **Figure 12**: per-bank harmonic-mean lifetime for all five schemes —
//!   showing Re-NUCA lifting R-NUCA's worst banks.
//! * **Table III, "Actual Results"**: raw minimum lifetimes.

use cmp_sim::config::SystemConfig;
use renuca_core::{CptConfig, Scheme};
use sim_stats::{grouped_series, percent_change, Table};

use crate::budget::Budget;
use crate::runner::{all_scheme_studies, lifetime_model, SchemeStudy};

/// The full all-scheme (paper five + competitors), ten-workload study
/// under one configuration.
#[derive(Clone, Debug)]
pub struct MainStudy {
    /// Configuration label ("actual", "L2-128KB", …).
    pub label: &'static str,
    /// One aggregated study per scheme (order = `Scheme::ALL`).
    pub studies: Vec<SchemeStudy>,
}

impl MainStudy {
    /// The study for one scheme.
    pub fn study(&self, scheme: Scheme) -> &SchemeStudy {
        self.studies
            .iter()
            .find(|s| s.scheme == scheme)
            .expect("scheme present in study")
    }

    /// Raw-minimum lifetimes in the paper's Table III column order (the
    /// paper's five schemes only — the competitors are reported by the
    /// head-to-head study instead).
    pub fn table3_row(&self) -> Vec<(Scheme, f64)> {
        Scheme::PAPER
            .iter()
            .map(|&s| (s, self.study(s).raw_min))
            .collect()
    }
}

/// Run the main study: every scheme in [`Scheme::ALL`] over WL1–WL10.
pub fn run(label: &'static str, cfg: SystemConfig, budget: Budget) -> MainStudy {
    let model = lifetime_model(&cfg);
    let studies = all_scheme_studies(&Scheme::ALL, cfg, CptConfig::default(), budget, &model);
    MainStudy { label, studies }
}

fn per_bank_table(title: &str, schemes: &[Scheme], study: &MainStudy) -> String {
    let nbanks = study.studies[0].hmean_per_bank.len();
    let groups: Vec<String> = (0..nbanks).map(|b| format!("CB-{b}")).collect();
    let names: Vec<&str> = schemes.iter().map(|s| s.name()).collect();
    let values: Vec<Vec<f64>> = schemes
        .iter()
        .map(|&s| study.study(s).hmean_per_bank.clone())
        .collect();
    let mut out = grouped_series(title, &groups, &names, &values, 2);
    out.push('\n');
    out.push_str("variation (CV of per-bank lifetimes):\n");
    for &s in schemes {
        out.push_str(&format!(
            "  {:<8} {:.3}\n",
            s.name(),
            study.study(s).variation
        ));
    }
    out
}

/// Render Figure 3 (baselines only; the motivation study).
pub fn format_fig3(study: &MainStudy) -> String {
    per_bank_table(
        "Figure 3 — harmonic-mean lifetime per cache bank [years], baselines",
        &Scheme::BASELINES,
        study,
    )
}

/// Render Figure 12 (all five schemes; Re-NUCA wear-levels R-NUCA).
pub fn format_fig12(study: &MainStudy) -> String {
    per_bank_table(
        "Figure 12 — harmonic-mean lifetime per cache bank [years], all schemes",
        &Scheme::ALL,
        study,
    )
}

/// Render Figure 4b: the lifetime-vs-IPC trade-off of each scheme.
pub fn format_fig4b(study: &MainStudy) -> String {
    let mut t = Table::new(&["Scheme", "IPC (hmean over WLs)", "Lifetime (years)"]);
    for s in &study.studies {
        t.row(&[
            s.scheme.name().to_owned(),
            format!("{:.3}", sim_stats::hmean(&s.per_wl_ipc)),
            format!("{:.2}", s.hmean_lifetime()),
        ]);
    }
    format!(
        "Figure 4b — performance vs lifetime trade-off (higher-right is better)\n{}",
        t.render()
    )
}

/// Render Figure 11: per-workload IPC improvement over S-NUCA.
pub fn format_fig11(study: &MainStudy) -> String {
    format_ipc_improvements("Figure 11 — IPC improvement over S-NUCA [%]", study)
}

/// Shared IPC-improvement renderer (Figures 11, 14, 16, 18).
pub fn format_ipc_improvements(title: &str, study: &MainStudy) -> String {
    let base = &study.study(Scheme::SNuca).per_wl_ipc;
    let schemes = [Scheme::RNuca, Scheme::Private, Scheme::ReNuca];
    let mut headers: Vec<String> = vec!["".into()];
    headers.extend(schemes.iter().map(|s| s.name().to_owned()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    let n = base.len();
    for wl in 0..n {
        let row: Vec<f64> = schemes
            .iter()
            .map(|&s| percent_change(study.study(s).per_wl_ipc[wl], base[wl]))
            .collect();
        t.row_f64(&format!("WL{}", wl + 1), &row, 2);
    }
    let avg: Vec<f64> = schemes
        .iter()
        .map(|&s| {
            let xs: Vec<f64> = (0..n)
                .map(|wl| percent_change(study.study(s).per_wl_ipc[wl], base[wl]))
                .collect();
            sim_stats::amean(&xs)
        })
        .collect();
    t.row_f64("Avg", &avg, 2);
    format!("{title}\n{}", t.render())
}

/// Render one Table III row ("raw minimum lifetime \[years\]").
pub fn format_table3_row(study: &MainStudy) -> String {
    let mut t = Table::new(&["Config", "Naive", "S-NUCA", "Re-NUCA", "R-NUCA", "Private"]);
    let row = study.table3_row();
    let mut cells = vec![study.label.to_owned()];
    cells.extend(row.iter().map(|(_, v)| format!("{v:.2}")));
    t.row(&cells);
    t.render()
}

/// Headline numbers the paper's abstract quotes: Re-NUCA's raw-minimum
/// lifetime gain over R-NUCA and its IPC deltas vs R-NUCA / S-NUCA.
pub fn headline(study: &MainStudy) -> String {
    let re = study.study(Scheme::ReNuca);
    let r = study.study(Scheme::RNuca);
    let s = study.study(Scheme::SNuca);
    format!(
        "Headline [{}]: Re-NUCA raw-min lifetime {:.2}y vs R-NUCA {:.2}y ({:+.1}%, paper: +42%); \
         IPC vs R-NUCA {:+.1}% (paper: ~0%), vs S-NUCA {:+.1}% (paper: +5.2%)",
        study.label,
        re.raw_min,
        r.raw_min,
        percent_change(re.raw_min, r.raw_min),
        percent_change(re.mean_ipc(), r.mean_ipc()),
        percent_change(re.mean_ipc(), s.mean_ipc()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_study_runs_and_formats() {
        let cfg = SystemConfig::small(4);
        let study = run("test", cfg, Budget::test());
        assert_eq!(study.studies.len(), Scheme::ALL.len());
        assert!(format_fig3(&study).contains("CB-0"));
        assert!(format_fig12(&study).contains("Re-NUCA"));
        assert!(format_fig4b(&study).contains("Lifetime"));
        assert!(format_fig11(&study).contains("WL1"));
        assert!(format_table3_row(&study).contains("test"));
        assert!(headline(&study).contains("Re-NUCA"));
    }
}
