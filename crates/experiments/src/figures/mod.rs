//! One module per paper table/figure. See the crate docs for the index.

pub mod ablations;
pub mod capacity;
pub mod criticality;
pub mod lifetime;
pub mod predictor_study;
pub mod sensitivity;
pub mod table2;
pub mod table3;
