//! Table II and Figure 2: per-application characterization.
//!
//! Each of the 22 applications runs alone on the paper's single-core
//! machine (256 KB L2, one 2 MB L3 bank) and we report WPKI, MPKI, L3 hit
//! rate and IPC next to Table II's reference values. Figure 2 is the same
//! data presented as the WPKI+MPKI intensity chart.

use renuca_core::{CptConfig, Scheme};
use sim_stats::{bar_chart, Table};
use workloads::{WriteIntensity, SPEC_TABLE};

use crate::budget::Budget;
use crate::runner::run_single_app;

/// One application's measured-vs-paper characterization.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Application name.
    pub name: &'static str,
    /// Measured writebacks per kilo-instruction.
    pub wpki: f64,
    /// Measured misses per kilo-instruction.
    pub mpki: f64,
    /// Measured L3 hit rate.
    pub hitrate: f64,
    /// Measured single-core IPC.
    pub ipc: f64,
    /// Table II reference WPKI.
    pub paper_wpki: f64,
    /// Table II reference MPKI.
    pub paper_mpki: f64,
    /// Table II reference hit rate.
    pub paper_hitrate: f64,
    /// Table II reference IPC.
    pub paper_ipc: f64,
}

impl Table2Row {
    /// Measured write-intensity class (high/medium/low by WPKI+MPKI).
    pub fn intensity(&self) -> WriteIntensity {
        workloads::spec::classify(self.wpki + self.mpki)
    }

    /// Paper's class for the same app.
    pub fn paper_intensity(&self) -> WriteIntensity {
        workloads::spec::classify(self.paper_wpki + self.paper_mpki)
    }
}

/// Run the characterization for all 22 applications.
pub fn run(budget: Budget) -> Vec<Table2Row> {
    SPEC_TABLE
        .iter()
        .map(|spec| {
            let r = run_single_app(
                spec,
                Scheme::SNuca,
                CptConfig::default(),
                budget.single_core(),
                false,
            );
            let c = &r.per_core[0];
            Table2Row {
                name: spec.name,
                wpki: c.wpki,
                mpki: c.mpki,
                hitrate: c.l3_hit_rate,
                ipc: c.ipc,
                paper_wpki: spec.paper_wpki,
                paper_mpki: spec.paper_mpki,
                paper_hitrate: spec.paper_hitrate,
                paper_ipc: spec.paper_ipc,
            }
        })
        .collect()
}

/// Render the Table II reproduction (measured | paper, side by side).
pub fn format_table2(rows: &[Table2Row]) -> String {
    let mut t = Table::new(&[
        "Application",
        "WPKI",
        "MPKI",
        "Hitrate",
        "IPC",
        "paper WPKI",
        "paper MPKI",
        "paper Hitrate",
        "paper IPC",
        "class (measured/paper)",
    ]);
    for r in rows {
        t.row(&[
            r.name.to_owned(),
            format!("{:.2}", r.wpki),
            format!("{:.2}", r.mpki),
            format!("{:.2}", r.hitrate),
            format!("{:.2}", r.ipc),
            format!("{:.2}", r.paper_wpki),
            format!("{:.2}", r.paper_mpki),
            format!("{:.2}", r.paper_hitrate),
            format!("{:.2}", r.paper_ipc),
            format!("{:?}/{:?}", r.intensity(), r.paper_intensity()),
        ]);
    }
    format!(
        "Table II — application characteristics (measured vs paper)\n{}",
        t.render()
    )
}

/// Render Figure 2: WPKI+MPKI per application, sorted descending like the
/// paper's x-axis.
pub fn format_fig2(rows: &[Table2Row]) -> String {
    let mut data: Vec<(String, f64)> = rows
        .iter()
        .map(|r| (r.name.to_owned(), r.wpki + r.mpki))
        .collect();
    data.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    bar_chart("Figure 2 — WPKI+MPKI per application (measured)", &data, 50)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_all_apps() {
        let rows = run(Budget::test());
        assert_eq!(rows.len(), 22);
        let table = format_table2(&rows);
        assert!(table.contains("mcf"));
        assert!(table.contains("GemsFDTD"));
        let fig = format_fig2(&rows);
        assert!(fig.contains("Figure 2"));
    }
}
