//! Simulation drivers shared by all experiments.

use cmp_sim::config::SystemConfig;
use cmp_sim::system::{SimResult, System};
use renuca_core::{CptConfig, Scheme};
use wear_model::{hmean_lifetime_per_bank, lifetime_variation, raw_min_lifetime, LifetimeModel};
use workloads::{workload_mix, AppModel, AppSpec, WorkloadMix, N_WORKLOADS};

use crate::budget::Budget;
use crate::pool::parallel_map;

/// Run one multiprogrammed workload under one scheme and configuration.
pub fn run_workload(
    wl: &WorkloadMix,
    scheme: Scheme,
    cfg: SystemConfig,
    cpt: CptConfig,
    budget: Budget,
) -> SimResult {
    let policy = scheme.build_policy(&cfg);
    let predictors = scheme.build_predictors(&cfg, cpt);
    let sources = wl.build_sources();
    let mut sys = System::new(cfg, policy, sources, predictors);
    sys.prewarm();
    sys.warmup(budget.warmup);
    sys.run(budget.measure);
    sys.result()
}

/// Run one application alone on a single-core machine (2 MB L3 — the
/// paper's Table II / Figure 2 / Figure 5 setup), under `scheme` with the
/// given CPT configuration.
pub fn run_single_app(
    spec: &AppSpec,
    scheme: Scheme,
    cpt: CptConfig,
    budget: Budget,
    track_block_criticality: bool,
) -> SimResult {
    let mut cfg = SystemConfig::small(1);
    cfg.track_block_criticality = track_block_criticality;
    let policy = scheme.build_policy(&cfg);
    let predictors = scheme.build_predictors(&cfg, cpt);
    let sources: Vec<Box<dyn cmp_sim::InstrSource>> =
        vec![Box::new(AppModel::new(*spec, 0x51_000))];
    let mut sys = System::new(cfg, policy, sources, predictors);
    sys.prewarm();
    sys.warmup(budget.warmup);
    sys.run(budget.measure);
    sys.result()
}

/// Run one application alone with a **CPT attached to an S-NUCA machine**:
/// the configuration of the paper's predictor characterization (Figures
/// 7–9) — placement is unaffected, but every load is predicted and every
/// fill/write is attributed to a criticality class.
pub fn run_single_app_with_cpt(spec: &AppSpec, cpt: CptConfig, budget: Budget) -> SimResult {
    let mut cfg = SystemConfig::small(1);
    cfg.track_block_criticality = true;
    let policy = Scheme::SNuca.build_policy(&cfg);
    let predictors: Vec<Box<dyn cmp_sim::CriticalityPredictor>> =
        vec![Box::new(renuca_core::Cpt::new(cpt))];
    let sources: Vec<Box<dyn cmp_sim::InstrSource>> =
        vec![Box::new(AppModel::new(*spec, 0x51_000))];
    let mut sys = System::new(cfg, policy, sources, predictors);
    sys.prewarm();
    sys.warmup(budget.warmup);
    sys.run(budget.measure);
    sys.result()
}

/// Aggregated results of one scheme over all ten workloads.
#[derive(Clone, Debug)]
pub struct SchemeStudy {
    /// The scheme.
    pub scheme: Scheme,
    /// `[workload][bank]` lifetimes in years.
    pub per_wl_bank_lifetimes: Vec<Vec<f64>>,
    /// Total IPC (throughput) per workload.
    pub per_wl_ipc: Vec<f64>,
    /// Per-bank harmonic-mean lifetime across workloads (Figures 3/12…).
    pub hmean_per_bank: Vec<f64>,
    /// Raw minimum lifetime over all banks and workloads (Table III).
    pub raw_min: f64,
    /// Coefficient of variation of the per-bank harmonic lifetimes.
    pub variation: f64,
}

impl SchemeStudy {
    /// Serialize to a compact JSON document (hand-rolled writer: the study
    /// is small and flat, and the workspace deliberately avoids pulling in
    /// serde_json for one call site).
    pub fn to_json(&self) -> String {
        fn f64s(xs: &[f64]) -> String {
            let items: Vec<String> = xs.iter().map(|x| format!("{x:.6}")).collect();
            format!("[{}]", items.join(","))
        }
        let per_wl: Vec<String> = self.per_wl_bank_lifetimes.iter().map(|w| f64s(w)).collect();
        format!(
            "{{\"scheme\":\"{}\",\"raw_min\":{:.6},\"variation\":{:.6},\"per_wl_ipc\":{},\"hmean_per_bank\":{},\"per_wl_bank_lifetimes\":[{}]}}",
            self.scheme.name(),
            self.raw_min,
            self.variation,
            f64s(&self.per_wl_ipc),
            f64s(&self.hmean_per_bank),
            per_wl.join(",")
        )
    }

    /// Mean of per-workload total IPC.
    pub fn mean_ipc(&self) -> f64 {
        sim_stats::amean(&self.per_wl_ipc)
    }

    /// Harmonic mean over banks of the harmonic-mean lifetimes (one scalar
    /// per scheme, the y-coordinate of Figure 4b).
    pub fn hmean_lifetime(&self) -> f64 {
        sim_stats::hmean(&self.hmean_per_bank)
    }
}

/// Run `scheme` over workloads WL1..WL10 under `cfg` and aggregate.
pub fn scheme_study(
    scheme: Scheme,
    cfg: SystemConfig,
    cpt: CptConfig,
    budget: Budget,
    lifetime: &LifetimeModel,
) -> SchemeStudy {
    let ids: Vec<usize> = (1..=N_WORKLOADS).collect();
    let results: Vec<SimResult> = parallel_map(&ids, |&id| {
        let wl = workload_mix(id, cfg.n_cores);
        run_workload(&wl, scheme, cfg, cpt, budget)
    });
    aggregate_study(scheme, &results, lifetime)
}

/// Aggregate raw per-workload results into a [`SchemeStudy`].
pub fn aggregate_study(
    scheme: Scheme,
    results: &[SimResult],
    lifetime: &LifetimeModel,
) -> SchemeStudy {
    let per_wl_bank_lifetimes: Vec<Vec<f64>> = results
        .iter()
        .map(|r| lifetime.all_bank_lifetimes(&r.wear, r.cycles))
        .collect();
    let per_wl_ipc: Vec<f64> = results.iter().map(|r| r.total_ipc()).collect();
    let hmean_per_bank = hmean_lifetime_per_bank(&per_wl_bank_lifetimes);
    let raw_min = raw_min_lifetime(&per_wl_bank_lifetimes);
    let variation = lifetime_variation(&hmean_per_bank);
    SchemeStudy {
        scheme,
        per_wl_bank_lifetimes,
        per_wl_ipc,
        hmean_per_bank,
        raw_min,
        variation,
    }
}

/// Run several schemes over all workloads (the main evaluation loop).
pub fn all_scheme_studies(
    schemes: &[Scheme],
    cfg: SystemConfig,
    cpt: CptConfig,
    budget: Budget,
    lifetime: &LifetimeModel,
) -> Vec<SchemeStudy> {
    schemes
        .iter()
        .map(|&s| scheme_study(s, cfg, cpt, budget, lifetime))
        .collect()
}

/// The default lifetime model at `cfg`'s clock (paper endurance, uniform
/// intra-bank wear).
pub fn lifetime_model(cfg: &SystemConfig) -> LifetimeModel {
    LifetimeModel {
        freq_hz: cfg.freq_hz,
        ..LifetimeModel::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_app_run_produces_metrics() {
        let spec = workloads::app_by_name("lbm").unwrap();
        let r = run_single_app(
            spec,
            Scheme::SNuca,
            CptConfig::default(),
            Budget::test(),
            false,
        );
        assert_eq!(r.per_core.len(), 1);
        assert!(
            r.per_core[0].mpki > 1.0,
            "lbm must miss: {}",
            r.per_core[0].mpki
        );
        assert!(r.per_core[0].ipc > 0.0);
    }

    #[test]
    fn workload_run_spreads_writes_under_snuca() {
        let cfg = SystemConfig::small(4);
        let wl = workload_mix(1, 4);
        let r = run_workload(
            &wl,
            Scheme::SNuca,
            cfg,
            CptConfig::default(),
            Budget::test(),
        );
        let total: u64 = r.bank_writes.iter().sum();
        assert!(total > 0);
        // No bank should take more than half the writes under S-NUCA.
        for &w in &r.bank_writes {
            assert!(
                w * 2 <= total + total / 2,
                "bank writes {:?}",
                r.bank_writes
            );
        }
    }

    #[test]
    fn study_json_roundtrips_structure() {
        let cfg = SystemConfig::small(4);
        let model = lifetime_model(&cfg);
        let wl = workload_mix(1, 4);
        let r = run_workload(
            &wl,
            Scheme::SNuca,
            cfg,
            CptConfig::default(),
            Budget::test(),
        );
        let study = aggregate_study(Scheme::SNuca, &[r], &model);
        let json = study.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"scheme\":\"S-NUCA\""));
        assert!(json.contains("\"raw_min\":"));
        // Balanced brackets (cheap well-formedness check).
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn study_aggregation_shapes() {
        let cfg = SystemConfig::small(4);
        let model = lifetime_model(&cfg);
        let results: Vec<SimResult> = (1..=2)
            .map(|id| {
                let wl = workload_mix(id, 4);
                run_workload(
                    &wl,
                    Scheme::Private,
                    cfg,
                    CptConfig::default(),
                    Budget::test(),
                )
            })
            .collect();
        let study = aggregate_study(Scheme::Private, &results, &model);
        assert_eq!(study.per_wl_bank_lifetimes.len(), 2);
        assert_eq!(study.hmean_per_bank.len(), 4);
        assert!(study.raw_min > 0.0);
        assert!(study.mean_ipc() > 0.0);
    }
}
