//! Instruction budgets for experiment runs.

/// Per-core instruction budgets for one simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budget {
    /// Warm-up instructions per core (statistics discarded).
    pub warmup: u64,
    /// Measured instructions per core.
    pub measure: u64,
}

impl Budget {
    /// Default budgets, overridable via `RENUCA_WARMUP` / `RENUCA_MEASURE`.
    ///
    /// The paper simulates 100 M instructions per core after warming; the
    /// synthetic workload models are stationary, so bank write *rates* and
    /// criticality mixes converge within a few hundred thousand
    /// instructions — which is what one CPU can sweep over 5 schemes × 10
    /// workloads × 4 configurations in minutes rather than days.
    pub fn from_env() -> Self {
        Budget {
            warmup: env_u64("RENUCA_WARMUP", 500_000),
            measure: env_u64("RENUCA_MEASURE", 300_000),
        }
    }

    /// A reduced budget for the multi-configuration sweeps (sensitivity
    /// studies run 150 extra simulations).
    pub fn sweep(self) -> Self {
        Budget {
            warmup: (self.warmup * 3 / 5).max(10_000),
            measure: (self.measure / 2).max(20_000),
        }
    }

    /// Tiny budget for unit/integration tests.
    pub fn test() -> Self {
        Budget {
            warmup: 2_000,
            measure: 10_000,
        }
    }

    /// Budget for cheap single-core characterization runs (22 apps).
    /// Longer than the 16-core budget: WPKI needs several full L2 churns
    /// to reach steady state, and single-core runs are ~50x cheaper.
    pub fn single_core(self) -> Self {
        Budget {
            warmup: self.warmup.min(200_000),
            measure: self.measure * 4,
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let b = Budget::from_env();
        assert!(b.measure >= 20_000);
        assert!(b.warmup >= 1_000);
    }

    #[test]
    fn sweep_is_cheaper() {
        let b = Budget {
            warmup: 20_000,
            measure: 120_000,
        };
        let s = b.sweep();
        assert!(s.measure < b.measure);
        assert!(s.warmup <= b.warmup);
    }

    #[test]
    fn test_budget_is_tiny() {
        assert!(Budget::test().measure <= 10_000);
    }
}
