//! Run the six ablation studies (DESIGN.md §7).
use experiments::figures::ablations;
use experiments::Budget;

fn main() {
    println!("{}", ablations::run_all(Budget::from_env().sweep()));
}
