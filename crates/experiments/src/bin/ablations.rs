//! Run the six ablation studies (DESIGN.md §7).
use experiments::figures::ablations;
use experiments::obs;

fn main() {
    let (sink, budget) = obs::standard_args();
    let budget = budget.sweep();
    let text = ablations::run_all(budget);
    println!("{text}");
    sink.emit_with("ablations", "DESIGN.md §7 ablations", None, budget, |m| {
        m.stats_mut().set("output.bytes", text.len() as u64);
    });
}
