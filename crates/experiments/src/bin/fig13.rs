//! Regenerate Figure 13 (sensitivity study: L2 = 128 KB, wear).
use experiments::figures::sensitivity::{self, Sensitivity};
use experiments::Budget;

fn main() {
    let study = sensitivity::run(Sensitivity::L2Small, Budget::from_env());
    println!("{}", sensitivity::format_wear(Sensitivity::L2Small, &study));
}
