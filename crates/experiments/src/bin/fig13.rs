//! Regenerate Figure 13 (sensitivity study: L2 = 128 KB, wear).
use experiments::figures::sensitivity::{self, Sensitivity};
use experiments::obs;

fn main() {
    let (sink, budget) = obs::standard_args();
    let which = Sensitivity::L2Small;
    let study = sensitivity::run(which, budget);
    println!("{}", sensitivity::format_wear(which, &study));
    obs::emit_study_manifest(&sink, "fig13", Some(&which.config()), budget, &study);
}
