//! Regenerate Figure 4b (performance-vs-lifetime trade-off).
use cmp_sim::SystemConfig;
use experiments::figures::lifetime;
use experiments::Budget;

fn main() {
    let study = lifetime::run(
        "Actual Results",
        SystemConfig::default(),
        Budget::from_env(),
    );
    println!("{}", lifetime::format_fig4b(&study));
}
