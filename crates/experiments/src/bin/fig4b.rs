//! Regenerate Figure 4b (performance-vs-lifetime trade-off).
use experiments::figures::lifetime;
use experiments::obs;

fn main() {
    let (sink, budget) = obs::standard_args();
    let cfg = obs::default_config();
    let study = lifetime::run("Actual Results", cfg, budget);
    println!("{}", lifetime::format_fig4b(&study));
    obs::emit_study_manifest(&sink, "fig4b", Some(&cfg), budget, &study);
}
