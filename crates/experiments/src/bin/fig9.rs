//! Regenerate Figure 9 (criticality-predictor characterization).
use experiments::figures::predictor_study;
use experiments::{obs, Budget, StatsSink};
use renuca_core::CptConfig;

fn main() {
    let sink = StatsSink::from_env_args();
    let budget = Budget::from_env();
    let study = predictor_study::run(budget, &CptConfig::THRESHOLD_SWEEP);
    println!("{}", predictor_study::format_fig9(&study));
    sink.emit_with("fig9", "predictor threshold sweep", None, budget, |m| {
        obs::register_predictor(m.stats_mut(), &study)
    });
}
