//! Regenerate Figure 18 (sensitivity study: ROB = 168, IPC).
use experiments::figures::sensitivity::{self, Sensitivity};
use experiments::Budget;

fn main() {
    let study = sensitivity::run(Sensitivity::RobLarge, Budget::from_env());
    println!("{}", sensitivity::format_ipc(Sensitivity::RobLarge, &study));
}
