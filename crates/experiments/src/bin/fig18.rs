//! Regenerate Figure 18 (sensitivity study: ROB = 168, IPC).
use experiments::figures::sensitivity::{self, Sensitivity};
use experiments::{obs, Budget, StatsSink};

fn main() {
    let sink = StatsSink::from_env_args();
    let which = Sensitivity::RobLarge;
    let budget = Budget::from_env();
    let study = sensitivity::run(which, budget);
    println!("{}", sensitivity::format_ipc(which, &study));
    sink.emit_with("fig18", which.label(), Some(&which.config()), budget, |m| {
        obs::register_study(m, &study)
    });
}
