//! Regenerate Figure 18 (sensitivity study: ROB = 168, IPC).
use experiments::figures::sensitivity::{self, Sensitivity};
use experiments::obs;

fn main() {
    let (sink, budget) = obs::standard_args();
    let which = Sensitivity::RobLarge;
    let study = sensitivity::run(which, budget);
    println!("{}", sensitivity::format_ipc(which, &study));
    obs::emit_study_manifest(&sink, "fig18", Some(&which.config()), budget, &study);
}
