//! Differential verification driver: replay seeded traces through the
//! real simulator and the golden model, cross-check every step, shrink
//! and serialize any divergence (see `TESTING.md`).
//!
//! ```text
//! diffcheck [--seeds N] [--ops N] [--out DIR] [--quick]
//! diffcheck --replay FILE [--mutant]
//! ```
//!
//! The default sweep is the acceptance corpus: 100 seeds × 8 schemes ×
//! 2 mesh configs (pow2 and non-pow2) = 1600 differential replays, plus
//! the metamorphic invariants and the per-scheme mutation self-checks
//! (S-NUCA's wrapped mutant and the bugged twins of WEC, Coloring and
//! MAC). `--quick` is the bounded CI smoke variant and runs the same
//! mutation schemes. `--replay` re-runs a previously shrunk
//! `renuca-trace-v1` file; add `--mutant` for traces produced by the
//! mutation self-check (they only diverge under the injected bug).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use experiments::diff;
use golden::parse_trace;
use renuca_core::Scheme;

struct Args {
    seeds: u64,
    ops: usize,
    out: PathBuf,
    replay_file: Option<PathBuf>,
    mutant: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 100,
        ops: 4000,
        out: PathBuf::from("out"),
        replay_file: None,
        mutant: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--seeds" => args.seeds = value("--seeds")?.parse().map_err(|e| format!("{e}"))?,
            "--ops" => args.ops = value("--ops")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--quick" => {
                args.seeds = 3;
                args.ops = 2000;
            }
            "--replay" => args.replay_file = Some(PathBuf::from(value("--replay")?)),
            "--mutant" => args.mutant = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn replay_file(path: &Path, mutant: bool) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let (scheme_name, cols, rows, seed, ops) = parse_trace(&text)
        .ok_or_else(|| format!("{} is not a renuca-trace-v1 file", path.display()))?;
    let scheme = Scheme::ALL
        .into_iter()
        .find(|s| s.name() == scheme_name)
        .ok_or_else(|| format!("unknown scheme {scheme_name:?} in trace header"))?;
    let cfg = diff::tiny_cfg(cols, rows);
    println!(
        "replaying {} ops: scheme {} on {cols}x{rows}, seed {seed}{}",
        ops.len(),
        scheme.name(),
        if mutant { " (mutant injected)" } else { "" }
    );
    let result = if mutant {
        diff::replay_mutated(scheme, &cfg, &ops)
    } else {
        diff::replay(scheme, &cfg, &ops)
    };
    match result {
        Ok(report) => {
            println!(
                "no divergence: {} fills, {} L3 writes, histogram {:?}",
                report.l3_fills, report.l3_writes, report.bank_totals
            );
            Ok(())
        }
        Err(m) => Err(format!("divergence reproduced — {m}")),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("diffcheck: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &args.replay_file {
        return match replay_file(path, args.mutant) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("diffcheck: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut failed = false;

    // 1. The differential corpus: seeds × schemes × configs.
    let report = diff::run_corpus(0..args.seeds, args.ops, &args.out);
    println!(
        "corpus: {} replays ({} ops cross-checked), {} mismatch(es)",
        report.replays,
        report.ops_checked,
        report.failures.len()
    );
    for f in &report.failures {
        failed = true;
        println!(
            "  MISMATCH {} / {} / seed {}: {} (shrunk to {} ops{})",
            f.scheme.name(),
            f.config,
            f.seed,
            f.mismatch,
            f.minimal_len,
            f.trace_path
                .as_deref()
                .map(|p| format!(", written to {}", p.display()))
                .unwrap_or_default()
        );
    }

    // 2. Metamorphic invariants.
    let checks: [(&str, Result<(), String>); 4] = [
        (
            "write conservation (2x2)",
            diff::write_conservation(2, 2, 1, args.ops.min(2000)),
        ),
        (
            "write conservation (3x2)",
            diff::write_conservation(3, 2, 2, args.ops.min(2000)),
        ),
        (
            "S-NUCA shift symmetry",
            diff::snuca_shift_symmetry(2, 2, 3, args.ops.min(2000)),
        ),
        (
            "serial == parallel",
            diff::parallel_matches_serial(&[5, 6, 7, 8], 4, args.ops.min(1500)),
        ),
    ];
    for (name, result) in checks {
        match result {
            Ok(()) => println!("metamorphic: {name}: ok"),
            Err(e) => {
                failed = true;
                println!("metamorphic: {name}: FAILED — {e}");
            }
        }
    }

    // 3. Mutation self-checks: the harness must catch an injected bug in
    // every scheme that ships one (wrapped mutant + bugged twins).
    for scheme in diff::MUTATION_SCHEMES {
        match diff::mutation_check(scheme, 42, args.ops.min(3000), &args.out) {
            Ok(m) => println!(
                "mutation check [{}]: caught ({}), shrunk {} -> {} ops, reproducer {}",
                scheme.name(),
                m.detail,
                m.original_len,
                m.minimal_len,
                m.trace_path.display()
            ),
            Err(e) => {
                failed = true;
                println!("mutation check [{}]: FAILED — {e}", scheme.name());
            }
        }
    }

    if failed {
        eprintln!("diffcheck: FAILED");
        ExitCode::FAILURE
    } else {
        println!("diffcheck: all checks passed");
        ExitCode::SUCCESS
    }
}
