//! Head-to-head wear-management study: Re-NUCA and its compressed
//! Re-NUCA-C2 variant vs the related-work competitors — WEC hot-bank
//! redirection, epoch-rotated Coloring and MAC's write-aware replacement —
//! with S-NUCA as the neutral reference (DESIGN.md §14–§15, EXPERIMENTS.md
//! "Head-to-head").
//!
//! Two grids on the 16-core default machine:
//!
//! * the WL1–WL10 mix set, reported as mean IPC, harmonic-mean and
//!   raw-minimum lifetime, per-bank lifetime CV (the paper's "variation")
//!   and the inter-set / intra-set write-variation CVs that the
//!   competitors specifically target;
//! * the WB1–WB4 write-burst family, reported as IPC and raw-minimum
//!   lifetime per pressure level.
//!
//! The durable/resumable equivalent of this binary is
//! `campaigns/headtohead.campaign`.

use experiments::obs;
use experiments::pool::parallel_map;
use experiments::runner::{aggregate_study, lifetime_model, run_workload, SchemeStudy};
use renuca_core::{CptConfig, Scheme};
use sim_stats::Table;
use workloads::{workload_mix, N_WBURST, N_WORKLOADS, WBURST_ID_BASE};

struct Contender {
    study: SchemeStudy,
    /// Mean over WL1–WL10 of the inter-set write-variation CV.
    interset_cv: f64,
    /// Mean over WL1–WL10 of the intra-set write-variation CV.
    intraset_cv: f64,
    /// IPC per WB level (index 0 = WB1).
    wb_ipc: Vec<f64>,
    /// Raw minimum lifetime per WB level.
    wb_raw_min: Vec<f64>,
}

fn main() {
    let (sink, budget) = obs::standard_args();
    let cfg = obs::default_config();
    let model = lifetime_model(&cfg);
    let cpt = CptConfig::default();
    let assoc = cfg.l3_bank.assoc;

    let mut contenders = vec![Scheme::ReNuca, Scheme::ReNucaC2, Scheme::SNuca];
    contenders.extend(Scheme::COMPETITORS);

    let rows: Vec<(Scheme, Contender)> = contenders
        .iter()
        .map(|&s| {
            let wl_ids: Vec<usize> = (1..=N_WORKLOADS).collect();
            let results = parallel_map(&wl_ids, |&id| {
                run_workload(&workload_mix(id, cfg.n_cores), s, cfg, cpt, budget)
            });
            let interset: Vec<f64> = results.iter().map(|r| r.wear.interset_cv(assoc)).collect();
            let intraset: Vec<f64> = results.iter().map(|r| r.wear.intraset_cv(assoc)).collect();
            let study = aggregate_study(s, &results, &model);

            let wb_ids: Vec<usize> = (1..=N_WBURST).map(|l| WBURST_ID_BASE + l).collect();
            let wb = parallel_map(&wb_ids, |&id| {
                run_workload(&workload_mix(id, cfg.n_cores), s, cfg, cpt, budget)
            });
            let wb_raw_min: Vec<f64> = wb
                .iter()
                .map(|r| {
                    model
                        .all_bank_lifetimes(&r.wear, r.cycles)
                        .iter()
                        .cloned()
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let row = Contender {
                study,
                interset_cv: sim_stats::amean(&interset),
                intraset_cv: sim_stats::amean(&intraset),
                wb_ipc: wb.iter().map(|r| r.total_ipc()).collect(),
                wb_raw_min,
            };
            (s, row)
        })
        .collect();

    let mut t = Table::new(&[
        "Scheme",
        "IPC (mean WLs)",
        "hmean life [y]",
        "raw-min [y]",
        "bank CV",
        "inter-set CV",
        "intra-set CV",
    ]);
    for (s, row) in &rows {
        t.row(&[
            s.name().to_owned(),
            format!("{:.3}", row.study.mean_ipc()),
            format!("{:.2}", row.study.hmean_lifetime()),
            format!("{:.2}", row.study.raw_min),
            format!("{:.3}", row.study.variation),
            format!("{:.3}", row.interset_cv),
            format!("{:.3}", row.intraset_cv),
        ]);
    }
    println!(
        "Head-to-head — Re-NUCA vs wear-management competitors (WL1-WL10)\n{}",
        t.render()
    );

    let level_names: Vec<String> = (1..=N_WBURST).map(|l| format!("WB{l}")).collect();
    let mut headers: Vec<&str> = vec![""];
    headers.extend(level_names.iter().map(String::as_str));
    let mut ipc_t = Table::new(&headers);
    let mut life_t = Table::new(&headers);
    for (s, row) in &rows {
        ipc_t.row_f64(s.name(), &row.wb_ipc, 2);
        life_t.row_f64(s.name(), &row.wb_raw_min, 2);
    }
    println!(
        "Head-to-head — total IPC under the WB write-burst family\n{}",
        ipc_t.render()
    );
    println!(
        "Head-to-head — raw minimum lifetime [years] under the WB family\n{}",
        life_t.render()
    );

    // The verdict line the study exists for: does any competitor beat
    // Re-NUCA's lifetime without giving up its IPC?
    let re = &rows[0].1;
    for (s, row) in rows.iter().skip(1) {
        println!(
            "vs {}: lifetime {:+.1}% (hmean), IPC {:+.1}%",
            s.name(),
            (re.study.hmean_lifetime() / row.study.hmean_lifetime() - 1.0) * 100.0,
            (re.study.mean_ipc() / row.study.mean_ipc() - 1.0) * 100.0
        );
    }

    sink.emit_with("headtohead", "Head-to-head", Some(&cfg), budget, |m| {
        m.set_wear_unit("years");
        for (s, row) in &rows {
            let p = format!("scheme.{}", s.name());
            let reg = m.stats_mut();
            reg.set(format!("{p}.mean_ipc"), row.study.mean_ipc());
            reg.set(
                format!("{p}.hmean_lifetime_years"),
                row.study.hmean_lifetime(),
            );
            reg.set(format!("{p}.raw_min_years"), row.study.raw_min);
            reg.set(format!("{p}.variation"), row.study.variation);
            reg.set(format!("{p}.interset_cv"), row.interset_cv);
            reg.set(format!("{p}.intraset_cv"), row.intraset_cv);
            for (i, (ipc, life)) in row.wb_ipc.iter().zip(row.wb_raw_min.iter()).enumerate() {
                reg.set(format!("{p}.wb[{}].ipc", i + 1), *ipc);
                reg.set(format!("{p}.wb[{}].raw_min_years", i + 1), *life);
            }
            m.push_wear_row(s.name(), &row.study.hmean_per_bank);
        }
    });
}
