//! Regenerate Figure 11 (IPC improvements over S-NUCA).
use cmp_sim::SystemConfig;
use experiments::figures::lifetime;
use experiments::Budget;

fn main() {
    let study = lifetime::run(
        "Actual Results",
        SystemConfig::default(),
        Budget::from_env(),
    );
    println!("{}", lifetime::format_fig11(&study));
    println!("{}", lifetime::headline(&study));
}
