//! Regenerate Figure 11 (IPC improvements over S-NUCA).
use experiments::figures::lifetime;
use experiments::obs;

fn main() {
    let (sink, budget) = obs::standard_args();
    let cfg = obs::default_config();
    let study = lifetime::run("Actual Results", cfg, budget);
    println!("{}", lifetime::format_fig11(&study));
    println!("{}", lifetime::headline(&study));
    obs::emit_study_manifest(&sink, "fig11", Some(&cfg), budget, &study);
}
