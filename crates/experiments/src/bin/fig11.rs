//! Regenerate Figure 11 (IPC improvements over S-NUCA).
use cmp_sim::SystemConfig;
use experiments::figures::lifetime;
use experiments::{obs, Budget, StatsSink};

fn main() {
    let sink = StatsSink::from_env_args();
    let cfg = SystemConfig::default();
    let budget = Budget::from_env();
    let study = lifetime::run("Actual Results", cfg, budget);
    println!("{}", lifetime::format_fig11(&study));
    println!("{}", lifetime::headline(&study));
    sink.emit_with("fig11", study.label, Some(&cfg), budget, |m| {
        obs::register_study(m, &study)
    });
}
