//! Regenerate Figure 12 (Re-NUCA wear-leveling, all five schemes).
use cmp_sim::SystemConfig;
use experiments::figures::lifetime;
use experiments::Budget;

fn main() {
    let study = lifetime::run(
        "Actual Results",
        SystemConfig::default(),
        Budget::from_env(),
    );
    println!("{}", lifetime::format_fig12(&study));
    println!("{}", lifetime::headline(&study));
}
