//! Regenerate Figure 12 (Re-NUCA wear-leveling, all five schemes).
use cmp_sim::SystemConfig;
use experiments::figures::lifetime;
use experiments::{obs, Budget, StatsSink};

fn main() {
    let sink = StatsSink::from_env_args();
    let cfg = SystemConfig::default();
    let budget = Budget::from_env();
    let study = lifetime::run("Actual Results", cfg, budget);
    println!("{}", lifetime::format_fig12(&study));
    println!("{}", lifetime::headline(&study));
    sink.emit_with("fig12", study.label, Some(&cfg), budget, |m| {
        obs::register_study(m, &study)
    });
}
