//! Regenerate Figure 12 (Re-NUCA wear-leveling, all five schemes).
use experiments::figures::lifetime;
use experiments::obs;

fn main() {
    let (sink, budget) = obs::standard_args();
    let cfg = obs::default_config();
    let study = lifetime::run("Actual Results", cfg, budget);
    println!("{}", lifetime::format_fig12(&study));
    println!("{}", lifetime::headline(&study));
    obs::emit_study_manifest(&sink, "fig12", Some(&cfg), budget, &study);
}
