//! Write-burst saturation study: scheme head-to-head under L3 bank
//! pressure (DESIGN.md §12, EXPERIMENTS.md "Write-burst saturation").
//!
//! Runs every scheme over the homogeneous WB1–WB4 workloads
//! (`workloads::wburst`), whose escalating fill/writeback pressure makes
//! reads queue behind slow ReRAM writes in the per-bank service model.
//! Reports per-level IPC, per-level total bank queueing and the raw
//! minimum lifetime, plus a per-bank queue-cycle heatmap per scheme.
//!
//! `--trickle` instead runs the single-core trickle probe (isolated
//! read-only misses spaced far wider than the write latency): even under
//! the asymmetric default every bank must report **zero** queue cycles —
//! the CI smoke asserts both directions.

use cmp_sim::SystemConfig;
use experiments::obs;
use experiments::runner::{lifetime_model, run_workload};
use renuca_core::{CptConfig, Scheme};
use sim_stats::Table;
use workloads::{workload_mix, N_WBURST, TRICKLE_ID, WBURST_ID_BASE};

fn main() {
    let (sink, budget) = obs::standard_args();
    if std::env::args().any(|a| a == "--trickle") {
        run_trickle(&sink, budget);
        return;
    }

    let cfg = obs::default_config();
    let model = lifetime_model(&cfg);
    let levels: Vec<usize> = (1..=N_WBURST).collect();

    struct Cell {
        ipc: f64,
        queue_total: u64,
        per_bank_queue: Vec<u64>,
        raw_min_years: f64,
    }
    let run_cell = |scheme: Scheme, level: usize| -> Cell {
        let wl = workload_mix(WBURST_ID_BASE + level, cfg.n_cores);
        let r = run_workload(&wl, scheme, cfg, CptConfig::default(), budget);
        let per_bank_queue: Vec<u64> = r
            .bank_service
            .iter()
            .map(|b| b.queue_cycles.get())
            .collect();
        let lifetimes = model.all_bank_lifetimes(&r.wear, r.cycles);
        Cell {
            ipc: r.total_ipc(),
            queue_total: per_bank_queue.iter().sum(),
            per_bank_queue,
            raw_min_years: lifetimes.iter().cloned().fold(f64::INFINITY, f64::min),
        }
    };

    let cells: Vec<(Scheme, Vec<Cell>)> = Scheme::ALL
        .iter()
        .map(|&s| {
            let row: Vec<Cell> = experiments::pool::parallel_map(&levels, |&l| run_cell(s, l));
            (s, row)
        })
        .collect();

    let level_names: Vec<String> = levels.iter().map(|l| format!("WB{l}")).collect();
    let mut headers: Vec<&str> = vec![""];
    headers.extend(level_names.iter().map(String::as_str));

    let mut ipc_t = Table::new(&headers);
    let mut queue_t = Table::new(&headers);
    let mut life_t = Table::new(&headers);
    for (s, row) in &cells {
        let ipcs: Vec<f64> = row.iter().map(|c| c.ipc).collect();
        let queues: Vec<f64> = row.iter().map(|c| c.queue_total as f64).collect();
        let lives: Vec<f64> = row.iter().map(|c| c.raw_min_years).collect();
        ipc_t.row_f64(s.name(), &ipcs, 2);
        queue_t.row_f64(s.name(), &queues, 0);
        life_t.row_f64(s.name(), &lives, 2);
    }
    println!(
        "Write-burst saturation — total IPC under escalating bank pressure\n{}",
        ipc_t.render()
    );
    println!(
        "Write-burst saturation — bank queue cycles (sum over banks)\n{}",
        queue_t.render()
    );
    println!(
        "Write-burst saturation — raw minimum lifetime [years]\n{}",
        life_t.render()
    );

    // The head-to-head spread at the saturating level: how much scheme
    // choice is worth once banks are the bottleneck.
    let last = N_WBURST - 1;
    let (best, worst) = cells.iter().fold(
        (("", f64::MIN), ("", f64::MAX)),
        |(mut hi, mut lo), (s, row)| {
            let ipc = row[last].ipc;
            if ipc > hi.1 {
                hi = (s.name(), ipc);
            }
            if ipc < lo.1 {
                lo = (s.name(), ipc);
            }
            (hi, lo)
        },
    );
    println!(
        "WB{N_WBURST} IPC spread: {} {:.2} vs {} {:.2} ({:+.1}%)",
        best.0,
        best.1,
        worst.0,
        worst.1,
        (best.1 / worst.1 - 1.0) * 100.0
    );

    sink.emit_with(
        "wburst",
        "Write-burst saturation",
        Some(&cfg),
        budget,
        |m| {
            m.set_wear_unit("queue_cycles");
            let mut grand_total = 0u64;
            for (s, row) in &cells {
                let p = format!("scheme.{}", s.name());
                let mut per_bank = vec![0u64; cfg.n_banks];
                let mut scheme_total = 0u64;
                for (level, c) in levels.iter().zip(row.iter()) {
                    let reg = m.stats_mut();
                    reg.set(format!("{p}.wb[{level}].ipc"), c.ipc);
                    reg.set(format!("{p}.wb[{level}].queue_cycles_total"), c.queue_total);
                    reg.set(format!("{p}.wb[{level}].raw_min_years"), c.raw_min_years);
                    for (b, q) in c.per_bank_queue.iter().enumerate() {
                        per_bank[b] += q;
                    }
                    scheme_total += c.queue_total;
                }
                let reg = m.stats_mut();
                for (b, q) in per_bank.iter().enumerate() {
                    reg.set(format!("{p}.llc.bank[{b}].queue_cycles"), *q);
                }
                reg.set(format!("{p}.llc.queue_cycles_total"), scheme_total);
                grand_total += scheme_total;
                let row_f64: Vec<f64> = per_bank.iter().map(|&q| q as f64).collect();
                m.push_wear_row(s.name(), &row_f64);
            }
            m.stats_mut().set("llc.queue_cycles_total", grand_total);
        },
    );
}

/// The zero-contention control: one core, isolated read-only misses.
fn run_trickle(sink: &obs::StatsSink, budget: experiments::Budget) {
    let cfg = SystemConfig::small(1);
    let wl = workload_mix(TRICKLE_ID, cfg.n_cores);
    let r = run_workload(&wl, Scheme::SNuca, cfg, CptConfig::default(), budget);
    let per_bank: Vec<u64> = r
        .bank_service
        .iter()
        .map(|b| b.queue_cycles.get())
        .collect();
    let total: u64 = per_bank.iter().sum();
    println!(
        "trickle probe (1 core, S-NUCA): ipc={:.3} fills={} llc.queue_cycles_total={}",
        r.total_ipc(),
        r.hierarchy.l3_fills.get(),
        total
    );
    sink.emit_with("wburst", "trickle", Some(&cfg), budget, |m| {
        let reg = m.stats_mut();
        reg.set("ipc", r.total_ipc());
        reg.set("l3_fills", r.hierarchy.l3_fills.get());
        for (b, q) in per_bank.iter().enumerate() {
            reg.set(format!("llc.bank[{b}].queue_cycles"), *q);
        }
        reg.set("llc.queue_cycles_total", total);
    });
}
