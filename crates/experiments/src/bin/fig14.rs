//! Regenerate Figure 14 (sensitivity study: L2 = 128 KB, IPC).
use experiments::figures::sensitivity::{self, Sensitivity};
use experiments::{obs, Budget, StatsSink};

fn main() {
    let sink = StatsSink::from_env_args();
    let which = Sensitivity::L2Small;
    let budget = Budget::from_env();
    let study = sensitivity::run(which, budget);
    println!("{}", sensitivity::format_ipc(which, &study));
    sink.emit_with("fig14", which.label(), Some(&which.config()), budget, |m| {
        obs::register_study(m, &study)
    });
}
