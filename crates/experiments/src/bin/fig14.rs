//! Regenerate Figure 14 (sensitivity study: L2 = 128 KB, IPC).
use experiments::figures::sensitivity::{self, Sensitivity};
use experiments::Budget;

fn main() {
    let study = sensitivity::run(Sensitivity::L2Small, Budget::from_env());
    println!("{}", sensitivity::format_ipc(Sensitivity::L2Small, &study));
}
