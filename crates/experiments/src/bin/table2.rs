//! Regenerate the paper's Table II (application characteristics).
use experiments::figures::table2;
use experiments::obs;

fn main() {
    let (sink, budget) = obs::standard_args();
    let rows = table2::run(budget);
    println!("{}", table2::format_table2(&rows));
    sink.emit_with("table2", "app characteristics", None, budget, |m| {
        obs::register_table2(m.stats_mut(), &rows)
    });
}
