//! Regenerate the paper's Table II (application characteristics).
use experiments::figures::table2;
use experiments::Budget;

fn main() {
    let rows = table2::run(Budget::from_env());
    println!("{}", table2::format_table2(&rows));
}
