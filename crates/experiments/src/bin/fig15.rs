//! Regenerate Figure 15 (sensitivity study: L3 bank = 1 MB, wear).
use experiments::figures::sensitivity::{self, Sensitivity};
use experiments::obs;

fn main() {
    let (sink, budget) = obs::standard_args();
    let which = Sensitivity::L3Small;
    let study = sensitivity::run(which, budget);
    println!("{}", sensitivity::format_wear(which, &study));
    obs::emit_study_manifest(&sink, "fig15", Some(&which.config()), budget, &study);
}
