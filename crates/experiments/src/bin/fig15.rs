//! Regenerate Figure 15 (sensitivity study: L3 bank = 1 MB, wear).
use experiments::figures::sensitivity::{self, Sensitivity};
use experiments::{obs, Budget, StatsSink};

fn main() {
    let sink = StatsSink::from_env_args();
    let which = Sensitivity::L3Small;
    let budget = Budget::from_env();
    let study = sensitivity::run(which, budget);
    println!("{}", sensitivity::format_wear(which, &study));
    sink.emit_with("fig15", which.label(), Some(&which.config()), budget, |m| {
        obs::register_study(m, &study)
    });
}
