//! Regenerate Figure 15 (sensitivity study: L3 bank = 1 MB, wear).
use experiments::figures::sensitivity::{self, Sensitivity};
use experiments::Budget;

fn main() {
    let study = sensitivity::run(Sensitivity::L3Small, Budget::from_env());
    println!("{}", sensitivity::format_wear(Sensitivity::L3Small, &study));
}
