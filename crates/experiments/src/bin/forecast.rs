//! L2C2 analytical lifetime forecast vs full simulation (DESIGN.md §15,
//! EXPERIMENTS.md "Compression & forecast").
//!
//! For every WL1–WL10 mix and every WB1–WB4 write-burst level on the
//! 16-core default machine, runs the uncompressed Re-NUCA baseline (the
//! forecast's only input), applies the closed form
//! `lifetime × S / E[c]`, runs the fully simulated Re-NUCA-C2 compressed
//! cache, and reports the relative error on the lifetime aggregates
//! (raw minimum and harmonic mean over banks). The comparison is
//! iso-timing — compressed wear is evaluated over the baseline's cycle
//! window, the closed form's own assumption — and the expansion-induced
//! slowdown is printed as its own column (see `experiments::forecast`).
//!
//! **This binary is a gate**: it exits non-zero when any workload's error
//! exceeds `compress::FORECAST_TOLERANCE`. The CI forecast smoke runs it
//! at a reduced budget; the committed campaign report pins the full-budget
//! numbers.

use experiments::forecast::forecast_study;
use experiments::obs;
use experiments::runner::lifetime_model;
use renuca_core::CptConfig;
use sim_stats::Table;
use workloads::{N_WBURST, N_WORKLOADS, WBURST_ID_BASE};

fn main() {
    let (sink, budget) = obs::standard_args();
    let cfg = obs::default_config();
    let model = lifetime_model(&cfg);

    let mut ids: Vec<usize> = (1..=N_WORKLOADS).collect();
    ids.extend((1..=N_WBURST).map(|l| WBURST_ID_BASE + l));
    let study = forecast_study(&ids, cfg, CptConfig::default(), budget, &model);

    let mut t = Table::new(&[
        "Workload",
        "Re-NUCA raw-min [y]",
        "C2 sim raw-min [y]",
        "forecast [y]",
        "rel err (min/hmean)",
        "C2 slowdown",
    ]);
    for r in &study.rows {
        t.row(&[
            r.label.clone(),
            format!("{:.2}", r.base_min_years),
            format!("{:.2}", r.sim_min_years),
            format!("{:.2}", r.forecast_min_years),
            format!("{:.1}%", r.rel_err * 100.0),
            format!("{:.2}x", r.slowdown),
        ]);
    }
    println!(
        "L2C2 lifetime forecast vs simulation — gain {:.2}x ({} sub-blocks)\n{}",
        study.gain,
        study.sub_blocks,
        t.render()
    );
    println!(
        "max relative error {:.1}% over {} workloads (tolerance {:.0}%)",
        study.max_rel_err() * 100.0,
        study.rows.len(),
        study.tolerance * 100.0
    );

    sink.emit_with(
        "forecast",
        "Forecast vs simulation",
        Some(&cfg),
        budget,
        |m| {
            m.set_wear_unit("years");
            let reg = m.stats_mut();
            reg.set("forecast.sub_blocks", study.sub_blocks as u64);
            reg.set("forecast.gain", study.gain);
            reg.set("forecast.tolerance", study.tolerance);
            reg.set("forecast.max_rel_err", study.max_rel_err());
            for r in &study.rows {
                let p = format!("forecast.{}", r.label);
                reg.set(format!("{p}.base_min_years"), r.base_min_years);
                reg.set(format!("{p}.sim_min_years"), r.sim_min_years);
                reg.set(format!("{p}.forecast_min_years"), r.forecast_min_years);
                reg.set(format!("{p}.rel_err"), r.rel_err);
                reg.set(format!("{p}.slowdown"), r.slowdown);
            }
            for r in &study.rows {
                m.push_wear_row(&r.label, &r.sim_per_bank);
            }
        },
    );

    if !study.all_within_tolerance() {
        eprintln!(
            "error: forecast outside the {:.0}% tolerance — the closed form no longer \
             describes the simulated compressed cache",
            study.tolerance * 100.0
        );
        std::process::exit(1);
    }
}
