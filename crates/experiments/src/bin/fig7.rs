//! Regenerate Figure 7 (criticality-predictor characterization).
use experiments::figures::predictor_study;
use experiments::obs;
use renuca_core::CptConfig;

fn main() {
    let (sink, budget) = obs::standard_args();
    let study = predictor_study::run(budget, &CptConfig::THRESHOLD_SWEEP);
    println!("{}", predictor_study::format_fig7(&study));
    sink.emit_with("fig7", "predictor threshold sweep", None, budget, |m| {
        obs::register_predictor(m.stats_mut(), &study)
    });
}
