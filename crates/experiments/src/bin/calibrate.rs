//! Quick calibration/performance probe (development tool, kept as a
//! diagnostic): runs a few single-app characterizations and one 16-core
//! workload, printing measured vs Table II values and wall-clock speed.

use experiments::{obs, run_single_app, run_workload};
use renuca_core::{CptConfig, Scheme};
use std::time::Instant;

fn main() {
    let (sink, budget) = obs::standard_args();
    println!(
        "budget: warmup={} measure={}",
        budget.warmup, budget.measure
    );
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>6} | {:>8} {:>8} {:>6}",
        "app", "WPKI", "MPKI", "hit", "IPC", "pWPKI", "pMPKI", "pIPC"
    );
    for name in [
        "mcf",
        "streamL",
        "lbm",
        "libquantum",
        "omnetpp",
        "xalancbmk",
        "leslie3d",
        "bzip2",
        "hmmer",
        "sjeng",
        "povray",
        "namd",
        "GemsFDTD",
        "milc",
        "astar",
        "dealII",
    ] {
        let spec = workloads::app_by_name(name).unwrap();
        let t = Instant::now();
        let r = run_single_app(
            spec,
            Scheme::SNuca,
            CptConfig::default(),
            budget.single_core(),
            false,
        );
        let c = &r.per_core[0];
        println!(
            "{:<12} {:>8.2} {:>8.2} {:>8.2} {:>6.2} | {:>8.2} {:>8.2} {:>6.2}  ncl={:.0}% [{:?}]",
            name,
            c.wpki,
            c.mpki,
            c.l3_hit_rate,
            c.ipc,
            spec.paper_wpki,
            spec.paper_mpki,
            spec.paper_ipc,
            c.core_stats.noncritical_load_fraction() * 100.0,
            t.elapsed()
        );
    }
    let cfg = cmp_sim::SystemConfig::default();
    let wl = workloads::workload_mix(1, 16);
    let t = Instant::now();
    let r = run_workload(&wl, Scheme::SNuca, cfg, CptConfig::default(), budget);
    println!(
        "16-core S-NUCA WL1: ipc={:.2} cycles={} wall={:?}",
        r.total_ipc(),
        r.cycles,
        t.elapsed()
    );
    println!("bank writes: {:?}", r.bank_writes);
    let t = Instant::now();
    let r2 = run_workload(&wl, Scheme::ReNuca, cfg, CptConfig::default(), budget);
    println!(
        "16-core Re-NUCA WL1: ipc={:.2} cycles={} wall={:?}",
        r2.total_ipc(),
        r2.cycles,
        t.elapsed()
    );
    println!("bank writes: {:?}", r2.bank_writes);
    let t = Instant::now();
    let r3 = run_workload(&wl, Scheme::RNuca, cfg, CptConfig::default(), budget);
    println!(
        "16-core R-NUCA WL1: ipc={:.2} cycles={} wall={:?}",
        r3.total_ipc(),
        r3.cycles,
        t.elapsed()
    );
    println!("bank writes: {:?}", r3.bank_writes);

    // The manifest carries the full component-level registry snapshot of the
    // S-NUCA run — every counter in the hierarchy under its dotted path —
    // plus the raw per-bank write totals of all three runs as heatmap rows.
    sink.emit_with("calibrate", "WL1 16-core probe", Some(&cfg), budget, |m| {
        m.set_stats(r.registry());
        m.stats_mut()
            .set("compare.Re-NUCA.total_ipc", r2.total_ipc());
        m.stats_mut()
            .set("compare.R-NUCA.total_ipc", r3.total_ipc());
        m.set_wear_unit("writes");
        for (scheme, res) in [("S-NUCA", &r), ("Re-NUCA", &r2), ("R-NUCA", &r3)] {
            let per_bank: Vec<f64> = res.bank_writes.iter().map(|&w| w as f64).collect();
            m.push_wear_row(scheme, &per_bank);
        }
    });
}
