//! Regenerate Figure 3 (motivation: baseline per-bank lifetimes).
use cmp_sim::SystemConfig;
use experiments::figures::lifetime;
use experiments::Budget;

fn main() {
    let study = lifetime::run(
        "Actual Results",
        SystemConfig::default(),
        Budget::from_env(),
    );
    println!("{}", lifetime::format_fig3(&study));
}
