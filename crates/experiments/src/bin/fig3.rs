//! Regenerate Figure 3 (motivation: baseline per-bank lifetimes).
use cmp_sim::SystemConfig;
use experiments::figures::lifetime;
use experiments::{obs, Budget, StatsSink};

fn main() {
    let sink = StatsSink::from_env_args();
    let cfg = SystemConfig::default();
    let budget = Budget::from_env();
    let study = lifetime::run("Actual Results", cfg, budget);
    println!("{}", lifetime::format_fig3(&study));
    sink.emit_with("fig3", study.label, Some(&cfg), budget, |m| {
        obs::register_study(m, &study)
    });
}
