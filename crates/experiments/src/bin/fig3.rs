//! Regenerate Figure 3 (motivation: baseline per-bank lifetimes).
use experiments::figures::lifetime;
use experiments::obs;

fn main() {
    let (sink, budget) = obs::standard_args();
    let cfg = obs::default_config();
    let study = lifetime::run("Actual Results", cfg, budget);
    println!("{}", lifetime::format_fig3(&study));
    obs::emit_study_manifest(&sink, "fig3", Some(&cfg), budget, &study);
}
