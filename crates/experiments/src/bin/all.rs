//! Regenerate every table and figure of the paper in one run, sharing
//! simulations where possible (the main study feeds Figures 3, 4b, 11, 12
//! and Table III's first row; each sensitivity study feeds two figures and
//! one Table III row).
use experiments::figures::{criticality, lifetime, predictor_study, sensitivity, table2, table3};
use experiments::obs;
use renuca_core::CptConfig;
use std::time::Instant;

fn main() {
    let (sink, budget) = obs::standard_args();
    let t0 = Instant::now();

    let rows = table2::run(budget);
    println!("{}", table2::format_table2(&rows));
    println!("{}", table2::format_fig2(&rows));

    let f5 = criticality::run(budget);
    println!("{}", criticality::format_fig5(&f5));

    let ps = predictor_study::run(budget, &CptConfig::THRESHOLD_SWEEP);
    println!("{}", predictor_study::format_fig7(&ps));
    println!("{}", predictor_study::format_fig8(&ps));
    println!("{}", predictor_study::format_fig9(&ps));

    let main_study = lifetime::run("Actual Results", obs::default_config(), budget);
    println!("{}", lifetime::format_fig3(&main_study));
    println!("{}", lifetime::format_fig4b(&main_study));
    println!("{}", lifetime::format_fig11(&main_study));
    println!("{}", lifetime::format_fig12(&main_study));
    println!("{}", lifetime::headline(&main_study));

    let mut studies = vec![main_study];
    for s in [
        sensitivity::Sensitivity::L2Small,
        sensitivity::Sensitivity::L3Small,
        sensitivity::Sensitivity::RobLarge,
    ] {
        let st = sensitivity::run(s, budget);
        println!("{}", sensitivity::format_wear(s, &st));
        println!("{}", sensitivity::format_ipc(s, &st));
        studies.push(st);
    }
    let t3 = table3::Table3 { studies };
    println!("{}", table3::format_table3(&t3));

    // Persist the raw study data for external plotting/analysis.
    let mut json = String::from("{\n");
    for (i, study) in t3.studies.iter().enumerate() {
        json.push_str(&format!("  \"{}\": [", study.label));
        let docs: Vec<String> = study.studies.iter().map(|s| s.to_json()).collect();
        json.push_str(&docs.join(", "));
        json.push_str(if i + 1 < t3.studies.len() {
            "],\n"
        } else {
            "]\n"
        });
    }
    json.push_str("}\n");
    if let Err(e) = std::fs::write("results.json", &json) {
        eprintln!("could not write results.json: {e}");
    } else {
        eprintln!("raw study data written to results.json");
    }

    sink.emit_with("all", "full paper run", None, budget, |m| {
        obs::register_table2(m.stats_mut(), &rows);
        obs::register_fig5(m.stats_mut(), &f5, criticality::average(&f5));
        obs::register_predictor(m.stats_mut(), &ps);
        obs::register_multi_study(m, &t3.studies);
    });
    eprintln!("total wall time: {:?}", t0.elapsed());
}
