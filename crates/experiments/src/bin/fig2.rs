//! Regenerate Figure 2 (WPKI+MPKI per application).
use experiments::figures::table2;
use experiments::obs;

fn main() {
    let (sink, budget) = obs::standard_args();
    let rows = table2::run(budget);
    println!("{}", table2::format_fig2(&rows));
    sink.emit_with("fig2", "app characteristics", None, budget, |m| {
        obs::register_table2(m.stats_mut(), &rows)
    });
}
