//! Regenerate Figure 2 (WPKI+MPKI per application).
use experiments::figures::table2;
use experiments::Budget;

fn main() {
    let rows = table2::run(Budget::from_env());
    println!("{}", table2::format_fig2(&rows));
}
