//! Regenerate Figure 17 (sensitivity study: ROB = 168, wear).
use experiments::figures::sensitivity::{self, Sensitivity};
use experiments::Budget;

fn main() {
    let study = sensitivity::run(Sensitivity::RobLarge, Budget::from_env());
    println!(
        "{}",
        sensitivity::format_wear(Sensitivity::RobLarge, &study)
    );
}
