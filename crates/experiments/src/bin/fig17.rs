//! Regenerate Figure 17 (sensitivity study: ROB = 168, wear).
use experiments::figures::sensitivity::{self, Sensitivity};
use experiments::obs;

fn main() {
    let (sink, budget) = obs::standard_args();
    let which = Sensitivity::RobLarge;
    let study = sensitivity::run(which, budget);
    println!("{}", sensitivity::format_wear(which, &study));
    obs::emit_study_manifest(&sink, "fig17", Some(&which.config()), budget, &study);
}
