//! Regenerate Figure 5 (non-critical load percentage per application).
use experiments::figures::criticality;
use experiments::obs;

fn main() {
    let (sink, budget) = obs::standard_args();
    let rows = criticality::run(budget);
    println!("{}", criticality::format_fig5(&rows));
    println!("Average: {:.1}% (paper: >80%)", criticality::average(&rows));
    sink.emit_with("fig5", "ROB-stall criticality", None, budget, |m| {
        obs::register_fig5(m.stats_mut(), &rows, criticality::average(&rows))
    });
}
