//! Regenerate Figure 5 (non-critical load percentage per application).
use experiments::figures::criticality;
use experiments::Budget;

fn main() {
    let rows = criticality::run(Budget::from_env());
    println!("{}", criticality::format_fig5(&rows));
    println!("Average: {:.1}% (paper: >80%)", criticality::average(&rows));
}
