//! Regenerate Figure 8 (criticality-predictor characterization).
use experiments::figures::predictor_study;
use experiments::Budget;
use renuca_core::CptConfig;

fn main() {
    let study = predictor_study::run(Budget::from_env(), &CptConfig::THRESHOLD_SWEEP);
    println!("{}", predictor_study::format_fig8(&study));
}
