//! Capacity-retention curves per scheme (extension of the paper's §III.B).
use experiments::figures::{capacity, lifetime};
use experiments::obs;

fn main() {
    let (sink, budget) = obs::standard_args();
    let cfg = obs::default_config();
    let study = lifetime::run("Actual Results", cfg, budget);
    println!("{}", capacity::format_retention(&study, 16.0, 9));
    obs::emit_study_manifest(&sink, "capacity", Some(&cfg), budget, &study);
}
