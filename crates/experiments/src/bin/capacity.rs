//! Capacity-retention curves per scheme (extension of the paper's §III.B).
use cmp_sim::SystemConfig;
use experiments::figures::{capacity, lifetime};
use experiments::{obs, Budget, StatsSink};

fn main() {
    let sink = StatsSink::from_env_args();
    let cfg = SystemConfig::default();
    let budget = Budget::from_env();
    let study = lifetime::run("Actual Results", cfg, budget);
    println!("{}", capacity::format_retention(&study, 16.0, 9));
    sink.emit_with("capacity", study.label, Some(&cfg), budget, |m| {
        obs::register_study(m, &study)
    });
}
