//! Capacity-retention curves per scheme (extension of the paper's §III.B).
use cmp_sim::SystemConfig;
use experiments::figures::{capacity, lifetime};
use experiments::Budget;

fn main() {
    let study = lifetime::run(
        "Actual Results",
        SystemConfig::default(),
        Budget::from_env(),
    );
    println!("{}", capacity::format_retention(&study, 16.0, 9));
}
