//! Regenerate Table III (raw minimum lifetimes, 4 configs x 5 schemes).
use experiments::figures::table3;
use experiments::Budget;

fn main() {
    let t3 = table3::run(Budget::from_env());
    println!("{}", table3::format_table3(&t3));
}
