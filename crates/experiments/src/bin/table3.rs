//! Regenerate Table III (raw minimum lifetimes, 4 configs x 5 schemes).
use experiments::figures::table3;
use experiments::obs;

fn main() {
    let (sink, budget) = obs::standard_args();
    let t3 = table3::run(budget);
    println!("{}", table3::format_table3(&t3));
    sink.emit_with("table3", "raw minimum lifetimes", None, budget, |m| {
        obs::register_multi_study(m, &t3.studies)
    });
}
