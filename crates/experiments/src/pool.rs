//! A deterministic scoped-thread worker pool.
//!
//! The experiment harness fans independent simulations (scheme × workload ×
//! configuration cells) across CPU cores. Each cell is a pure function of
//! its inputs, so the only parallelism requirement is *order-preserving
//! collection*: the result vector must be byte-identical to a serial run,
//! regardless of thread count or scheduling. This module provides exactly
//! that on `std::thread::scope` — no work stealing, no channels, no
//! external crates.
//!
//! Workers pull item indices from a shared atomic counter and write results
//! into the slot matching the item's position, so output order never
//! depends on completion order.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Worker threads to use: `RENUCA_THREADS` when set to a positive integer,
/// otherwise the machine's available parallelism (at least 1). An invalid
/// `RENUCA_THREADS` is reported on stderr before falling back, so a
/// misconfigured run (`RENUCA_THREADS=all`, `=0`, stray whitespace…) is
/// visible instead of silently using every core.
pub fn default_threads() -> usize {
    match std::env::var("RENUCA_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => eprintln!(
                "warning: RENUCA_THREADS={v:?} is not a positive integer; \
                 falling back to available parallelism"
            ),
        },
        Err(std::env::VarError::NotPresent) => {}
        Err(e) => eprintln!(
            "warning: RENUCA_THREADS is unreadable ({e}); \
             falling back to available parallelism"
        ),
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Lock a mutex whether or not it is poisoned. The pool catches worker
/// panics itself (re-raising the first one), so a poisoned lock carries no
/// information here — recovering the guard keeps sibling slots readable
/// instead of replacing the original panic with a `PoisonError` abort.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Apply `f` to every item on up to [`default_threads`] workers, returning
/// results in item order (identical to `items.iter().map(f).collect()`).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_threads(items, default_threads(), f)
}

/// [`parallel_map`] with an explicit worker count. `threads <= 1` runs
/// serially on the caller's thread.
pub fn parallel_map_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let panicked = AtomicBool::new(false);
    let payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if panicked.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                // Catch the panic on the worker so (a) the original payload
                // survives to be re-raised on the caller's thread and (b) no
                // mutex is poisoned mid-store, which would turn siblings'
                // results into `PoisonError` aborts.
                match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                    Ok(r) => *lock_unpoisoned(&slots[i]) = Some(r),
                    Err(p) => {
                        let mut first = lock_unpoisoned(&payload);
                        if first.is_none() {
                            *first = Some(p);
                        }
                        panicked.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });
    if let Some(p) = lock_unpoisoned(&payload).take() {
        // Re-raise the first worker's panic with its payload intact.
        resume_unwind(p);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| panic!("pool: slot {i} never filled"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 200] {
            let par = parallel_map_threads(&items, threads, |x| x * x);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |x| *x).is_empty());
        assert_eq!(parallel_map(&[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn invalid_renuca_threads_falls_back() {
        // One test owns the env var (parallel test threads share it).
        for bad in ["all", "0", "-3", "4x"] {
            std::env::set_var("RENUCA_THREADS", bad);
            assert!(default_threads() >= 1, "RENUCA_THREADS={bad}");
        }
        std::env::set_var("RENUCA_THREADS", " 3 ");
        assert_eq!(default_threads(), 3, "surrounding whitespace is fine");
        std::env::remove_var("RENUCA_THREADS");
    }

    #[test]
    fn worker_panic_propagates_original_message() {
        let items: Vec<u64> = (0..64).collect();
        let err = std::panic::catch_unwind(|| {
            parallel_map_threads(&items, 4, |&x| {
                if x == 13 {
                    panic!("boom at item {x}");
                }
                x * 2
            })
        })
        .expect_err("a worker panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("boom at item 13"),
            "original panic payload must survive, got {msg:?}"
        );
    }

    #[test]
    fn one_of_many_panics_surfaces_without_poison_abort() {
        // Several workers panic concurrently: exactly one original payload
        // (any of them) must come back — never a PoisonError panic.
        let items: Vec<u64> = (0..128).collect();
        let err = std::panic::catch_unwind(|| {
            parallel_map_threads(&items, 8, |&x| {
                if x % 2 == 1 {
                    panic!("odd item {x}");
                }
                x
            })
        })
        .expect_err("panics must propagate");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.starts_with("odd item "), "got {msg:?}");
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Later items finish first; order must hold anyway.
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map_threads(&items, 8, |&x| {
            let spins = (31 - x) * 10_000;
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(i);
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(out, items);
    }
}
