//! A deterministic scoped-thread worker pool.
//!
//! The experiment harness fans independent simulations (scheme × workload ×
//! configuration cells) across CPU cores. Each cell is a pure function of
//! its inputs, so the only parallelism requirement is *order-preserving
//! collection*: the result vector must be byte-identical to a serial run,
//! regardless of thread count or scheduling. This module provides exactly
//! that on `std::thread::scope` — no work stealing, no channels, no
//! external crates.
//!
//! Workers pull item indices from a shared atomic counter and write results
//! into the slot matching the item's position, so output order never
//! depends on completion order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker threads to use: `RENUCA_THREADS` when set, otherwise the
/// machine's available parallelism (at least 1).
pub fn default_threads() -> usize {
    std::env::var("RENUCA_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Apply `f` to every item on up to [`default_threads`] workers, returning
/// results in item order (identical to `items.iter().map(f).collect()`).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_threads(items, default_threads(), f)
}

/// [`parallel_map`] with an explicit worker count. `threads <= 1` runs
/// serially on the caller's thread.
pub fn parallel_map_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap()
                .unwrap_or_else(|| panic!("pool: slot {i} never filled"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 200] {
            let par = parallel_map_threads(&items, threads, |x| x * x);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |x| *x).is_empty());
        assert_eq!(parallel_map(&[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Later items finish first; order must hold anyway.
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map_threads(&items, 8, |&x| {
            let spins = (31 - x) * 10_000;
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(i);
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(out, items);
    }
}
