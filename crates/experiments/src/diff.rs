//! Differential verification: the real simulator vs the golden model.
//!
//! [`replay`] drives one seeded trace through `cmp_sim::MemoryHierarchy`
//! and `golden::GoldenSystem` in lockstep and cross-checks, per access:
//!
//! * every placement event (fill / writeback → which bank), with the
//!   timing-dependent `cycle` field ignored;
//! * the acting core's [`PerCoreMemStats`] counters;
//! * the per-bank write histogram;
//! * for Re-NUCA, the issue-time criticality prediction of twin CPTs.
//!
//! At end of trace it additionally compares a full [`StatsRegistry`] dump
//! (per-core, hierarchy and coherence-directory counters, byte for byte),
//! the per-slot wear counters, the bank service model's op accounting
//! against the wear histogram, and the policy-internal state reachable
//! through [`LlcPlacement::as_any`]: Re-NUCA's Mapping Bit Vectors and the
//! Naive oracle's directory + write counters.
//!
//! On a mismatch, [`shrink`] runs classic ddmin delta debugging to find a
//! 1-minimal failing sub-trace, which [`write_shrunk_trace`] serializes in
//! the `renuca-trace-v1` format (seed in the filename) for replay with
//! `cargo run -p experiments --bin diffcheck -- --replay <file>`.
//!
//! [`mutation_check`] proves the harness has teeth, per scheme: the
//! stateless schemes get a `MutantPolicy` wrapper that deliberately
//! mis-places a subset of lines; the directory-backed competitors (WEC,
//! Coloring, MAC) get internally-consistent bugged twins built into
//! `renuca_core` (a skewed redirect target, an off-by-one epoch, an
//! inverted replacement policy). In every case the harness must catch the
//! injected bug and shrink it to a 1-minimal reproducer.
//!
//! The metamorphic checks ([`write_conservation`], [`snuca_shift_symmetry`],
//! [`parallel_matches_serial`]) assert relations that must hold *across*
//! runs: placement policy cannot change total write volume in an
//! eviction-free regime, S-NUCA histograms translate with the address
//! stream, and the worker pool cannot change any result.
//!
//! [`PerCoreMemStats`]: cmp_sim::hierarchy::PerCoreMemStats
//! [`LlcPlacement::as_any`]: cmp_sim::placement::LlcPlacement::as_any

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use cmp_sim::config::SystemConfig;
use cmp_sim::hierarchy::MemoryHierarchy;
use cmp_sim::placement::{AccessMeta, CriticalityPredictor, LlcPlacement};
use cmp_sim::types::{line_of, owner_of_line, page_of_line, BankId, Cycle};
use golden::{
    generate, trace_to_text, GoldenCpt, GoldenEvent, GoldenEventKind, GoldenPolicy, GoldenScheme,
    GoldenSystem, TraceOp, TraceSpec,
};
use renuca_core::{
    Coloring, Cpt, CptConfig, Mac, NaiveOracle, ReNuca, ReNucaC2, Scheme, Wec, COLORING_EPOCH,
};
use sim_stats::{StatsRegistry, TraceBuffer, TraceCategory, TraceEvent};

use crate::pool::parallel_map_threads;

/// A divergence between the real simulator and the golden model.
#[derive(Clone, Debug)]
pub struct Mismatch {
    /// Index of the op after which the divergence was detected
    /// (`ops.len()` for end-of-trace state divergences).
    pub op_index: usize,
    /// Human-readable description of what differed.
    pub detail: String,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op {}: {}", self.op_index, self.detail)
    }
}

/// Order-insensitive digest of one verified replay — everything the
/// metamorphic checks compare across runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayReport {
    /// Ops replayed.
    pub ops: usize,
    /// Demand fills into the L3.
    pub l3_fills: u64,
    /// All L3 writes (fills + L2 writebacks).
    pub l3_writes: u64,
    /// Dirty L2 victims written back, summed over cores.
    pub l2_writebacks: u64,
    /// Per-bank write totals (the wear histogram).
    pub bank_totals: Vec<u64>,
}

/// The two mesh geometries every corpus run covers: placement masking is
/// only sound for power-of-two tile counts, so a non-pow2 mesh rides along
/// to catch any `& (n-1)` where a `% n` was needed.
pub fn harness_configs() -> Vec<(&'static str, SystemConfig)> {
    vec![
        ("pow2-2x2", tiny_cfg(2, 2)),
        ("nonpow2-3x2", tiny_cfg(3, 2)),
    ]
}

/// A scaled-down machine whose caches churn under the default trace
/// footprint: L1/L2/L3 evictions, writebacks, back-invalidations and TLB
/// evictions all fire within a few thousand ops.
pub fn tiny_cfg(cols: usize, rows: usize) -> SystemConfig {
    let mut cfg = SystemConfig::mesh(cols, rows);
    cfg.l1.size_bytes = 1024; // 16 lines, 2-way
    cfg.l1.assoc = 2;
    cfg.l2.size_bytes = 4 * 1024; // 64 lines, 4-way
    cfg.l2.assoc = 4;
    cfg.l3_bank.size_bytes = 8 * 1024; // 128 lines/bank, 4-way
    cfg.l3_bank.assoc = 4;
    cfg.tlb_entries = 8; // forces MBV write-back/refill traffic
    cfg.tlb_assoc = 2;
    cfg.prefetch.enabled = false;
    cfg.validate();
    cfg
}

/// A machine roomy enough that a small-footprint trace causes *no*
/// capacity evictions at any level — the regime where the metamorphic
/// invariants (write conservation, histogram translation) hold exactly.
pub fn roomy_cfg(cols: usize, rows: usize) -> SystemConfig {
    let mut cfg = SystemConfig::mesh(cols, rows);
    cfg.l3_bank.size_bytes = 512 * 1024; // 8192 lines/bank
    cfg.prefetch.enabled = false;
    cfg.validate();
    cfg
}

/// Replay `ops` through both simulators and cross-check; `Ok` carries the
/// run digest, `Err` the first divergence.
pub fn replay(
    scheme: Scheme,
    cfg: &SystemConfig,
    ops: &[TraceOp],
) -> Result<ReplayReport, Mismatch> {
    run_diff(scheme, cfg, ops, false)
}

/// [`replay`] with a deliberate per-scheme bug injected into the real
/// side — used by [`mutation_check`] to prove the harness catches real
/// divergences. Stateless schemes (S-NUCA / R-NUCA / Private) get the
/// `MutantPolicy` wrapper; WEC / Coloring / MAC get their bugged twins
/// (see `inject_bug` for the dispatch).
pub fn replay_mutated(
    scheme: Scheme,
    cfg: &SystemConfig,
    ops: &[TraceOp],
) -> Result<ReplayReport, Mismatch> {
    run_diff(scheme, cfg, ops, true)
}

/// The injected bug: lines with `line % 17 == 3` are routed one bank to
/// the right of where the wrapped policy wants them. Lookup and fill are
/// twisted *consistently*, so the real hierarchy stays internally coherent
/// (no inclusion violations, no duplicate fills) — only the differential
/// comparison can notice.
struct MutantPolicy {
    inner: Box<dyn LlcPlacement>,
    n_banks: usize,
}

impl MutantPolicy {
    fn mutates(line: u64) -> bool {
        line % 17 == 3
    }

    fn twist(&self, bank: BankId, line: u64) -> BankId {
        if Self::mutates(line) {
            (bank + 1) % self.n_banks
        } else {
            bank
        }
    }
}

impl LlcPlacement for MutantPolicy {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn lookup_bank(&mut self, meta: &AccessMeta) -> BankId {
        let bank = self.inner.lookup_bank(meta);
        self.twist(bank, meta.line)
    }

    fn fill_bank(&mut self, meta: &AccessMeta) -> BankId {
        let bank = self.inner.fill_bank(meta);
        self.twist(bank, meta.line)
    }

    fn on_fill(&mut self, meta: &AccessMeta, bank: BankId) {
        self.inner.on_fill(meta, bank);
    }

    fn on_l3_write(&mut self, bank: BankId) {
        self.inner.on_l3_write(bank);
    }

    fn on_evict(&mut self, line: u64, bank: BankId) {
        self.inner.on_evict(line, bank);
    }

    fn lookup_overhead(&self) -> Cycle {
        self.inner.lookup_overhead()
    }

    fn secondary_bank(&mut self, meta: &AccessMeta) -> Option<BankId> {
        self.inner.secondary_bank(meta)
    }

    fn l3_replacement(&self) -> cmp_sim::cache::ReplacementKind {
        self.inner.l3_replacement()
    }

    fn compression(&self) -> Option<compress::CompressSpec> {
        self.inner.compression()
    }
}

/// Per-scheme bug injection for [`replay_mutated`]. The stateless schemes
/// take the `MutantPolicy` wrapper around the policy they already built;
/// the directory-backed competitors cannot (twisted bank ids would trip
/// their on-evict directory assertions), so they substitute the
/// internally-consistent bugged twins shipped with `renuca_core`:
///
/// * WEC redirects hot fills one bank past the coldest;
/// * Coloring rotates its remap one write too early (epoch 63, not 64);
/// * MAC inverts its replacement policy (evict dirty-first, not clean-first);
/// * Re-NUCA-C2 expands on class *equality*, not strict growth
///   (`CompressSpec::expand_on_equal`) — placement stays identical and
///   only the expansion counters and bank `expand_ops` drift, so catching
///   it requires the compression-state comparison.
fn inject_bug(
    scheme: Scheme,
    cfg: &SystemConfig,
    policy: Box<dyn LlcPlacement>,
) -> Box<dyn LlcPlacement> {
    let max_lines = cfg.n_banks * cfg.l3_bank.lines();
    match scheme {
        Scheme::Wec => Box::new(Wec::bugged(cfg.n_banks, max_lines)),
        Scheme::Coloring => Box::new(Coloring::with_epoch(
            cfg.n_banks,
            max_lines,
            COLORING_EPOCH - 1,
        )),
        Scheme::Mac => Box::new(Mac::bugged(cfg.n_banks)),
        Scheme::ReNucaC2 => Box::new(
            ReNucaC2::new(
                ReNuca::with_tlb_geometry(
                    cfg.noc.cols,
                    cfg.noc.rows,
                    cfg.tlb_entries,
                    cfg.tlb_assoc,
                ),
                compress::CompressSpec::new(cfg.l3_subblocks, cfg.compress_seed),
            )
            .bugged(),
        ),
        _ => Box::new(MutantPolicy {
            inner: policy,
            n_banks: cfg.n_banks,
        }),
    }
}

/// The owning core of a line, exactly as `renuca_core::mapping` computes
/// it: mask for pow2 machine sizes, modulo otherwise.
fn owner(line: u64, n: usize) -> usize {
    let raw = owner_of_line(line);
    if n.is_power_of_two() {
        raw & (n - 1)
    } else {
        raw % n
    }
}

fn convert_event(ev: &TraceEvent) -> Option<GoldenEvent> {
    match *ev {
        TraceEvent::Fill {
            core, bank, line, ..
        } => Some(GoldenEvent {
            kind: GoldenEventKind::Fill,
            core: core as usize,
            bank: bank as usize,
            line,
        }),
        TraceEvent::Writeback {
            core, bank, line, ..
        } => Some(GoldenEvent {
            kind: GoldenEventKind::Writeback,
            core: core as usize,
            bank: bank as usize,
            line,
        }),
        _ => None,
    }
}

fn run_diff(
    scheme: Scheme,
    cfg: &SystemConfig,
    ops: &[TraceOp],
    mutate: bool,
) -> Result<ReplayReport, Mismatch> {
    let (cols, rows) = (cfg.noc.cols, cfg.noc.rows);
    assert_eq!(
        cfg.n_cores,
        cols * rows,
        "harness expects one core per tile"
    );
    assert_eq!(
        cfg.n_banks, cfg.n_cores,
        "harness expects one bank per tile"
    );

    let mut policy = scheme.build_policy(cfg);
    if mutate {
        policy = inject_bug(scheme, cfg, policy);
    }
    let mut h = MemoryHierarchy::new(cfg, policy);
    // Capture placement events per access; one op emits at most one fill
    // plus one writeback, so a small buffer drained every op never wraps.
    h.trace = TraceBuffer::with_categories(16, &[TraceCategory::Fill, TraceCategory::Writeback]);

    let gscheme = GoldenScheme::from_name(scheme.name()).expect("golden mirrors every scheme");
    let mut g = GoldenSystem::new(cfg, GoldenPolicy::new(gscheme, cols, rows));

    // Twin criticality predictors (both Re-NUCA flavours): the real CPT
    // feeds the real hierarchy, the golden CPT feeds the golden system,
    // and their verdicts must agree at every issue.
    let renuca = matches!(scheme, Scheme::ReNuca | Scheme::ReNucaC2);
    let cpt_cfg = CptConfig::default();
    let mut cpts: Vec<Cpt> = (0..cfg.n_cores).map(|_| Cpt::new(cpt_cfg)).collect();
    let mut gcpts: Vec<GoldenCpt> = (0..cfg.n_cores)
        .map(|_| GoldenCpt::new(cpt_cfg.entries, cpt_cfg.threshold_pct, cpt_cfg.aging_cap))
        .collect();

    for (i, op) in ops.iter().enumerate() {
        // Timing is not compared, but the hierarchy wants monotone time.
        let now = i as u64 * 100;

        let predicted = if renuca && !op.is_store {
            let real = cpts[op.core].predict(op.pc);
            let gold = gcpts[op.core].predict(op.pc);
            if real != gold {
                return Err(Mismatch {
                    op_index: i,
                    detail: format!(
                        "CPT verdicts diverged for pc {:#x}: real {real}, golden {gold}",
                        op.pc
                    ),
                });
            }
            real
        } else {
            false
        };

        if op.is_store {
            h.store(op.core, op.phys, op.pc, now);
        } else {
            h.load(op.core, op.phys, op.pc, predicted, now);
        }
        let real_events: Vec<GoldenEvent> = h.trace.iter().filter_map(convert_event).collect();
        h.trace.clear();

        let golden_events = g.step(op.core, op.phys, predicted, op.is_store);
        if real_events != golden_events {
            return Err(Mismatch {
                op_index: i,
                detail: format!(
                    "placement events diverged for line {:#x} (core {}): real {:?}, golden {:?}",
                    line_of(op.phys),
                    op.core,
                    real_events,
                    golden_events
                ),
            });
        }

        let rc = h.per_core_stats(op.core);
        let gc = &g.per_core[op.core];
        let real_tuple = (
            rc.l1_misses,
            rc.l3_accesses,
            rc.l3_hits,
            rc.l3_misses,
            rc.l2_writebacks,
        );
        let gold_tuple = (
            gc.l1_misses,
            gc.l3_accesses,
            gc.l3_hits,
            gc.l3_misses,
            gc.l2_writebacks,
        );
        if real_tuple != gold_tuple {
            return Err(Mismatch {
                op_index: i,
                detail: format!(
                    "core {} counters diverged (l1_misses, l3_accesses, l3_hits, l3_misses, \
                     l2_writebacks): real {:?}, golden {:?}",
                    op.core, real_tuple, gold_tuple
                ),
            });
        }

        if h.wear.bank_totals() != g.bank_totals().as_slice() {
            return Err(Mismatch {
                op_index: i,
                detail: format!(
                    "per-bank write histogram diverged: real {:?}, golden {:?}",
                    h.wear.bank_totals(),
                    g.bank_totals()
                ),
            });
        }

        // CPT training happens at retirement, after the access completes.
        if renuca && !op.is_store {
            if op.blocked {
                cpts[op.core].on_rob_block(op.pc);
                gcpts[op.core].on_rob_block(op.pc);
            }
            cpts[op.core].on_load_commit(op.pc, op.blocked);
            gcpts[op.core].on_load_commit(op.pc, op.blocked);
        }
    }

    final_state_compare(&h, &g, cfg, ops, &cpts, &gcpts, renuca)?;

    Ok(ReplayReport {
        ops: ops.len(),
        l3_fills: h.stats.l3_fills.get(),
        l3_writes: h.stats.l3_writes.get(),
        l2_writebacks: (0..cfg.n_cores)
            .map(|c| h.per_core_stats(c).l2_writebacks)
            .sum(),
        bank_totals: h.wear.bank_totals().to_vec(),
    })
}

/// End-of-trace comparison: full registry dump, per-slot wear, policy
/// internals, CPT counters.
fn final_state_compare(
    h: &MemoryHierarchy,
    g: &GoldenSystem,
    cfg: &SystemConfig,
    ops: &[TraceOp],
    cpts: &[Cpt],
    gcpts: &[GoldenCpt],
    renuca: bool,
) -> Result<(), Mismatch> {
    let end = ops.len();
    let fail = |detail: String| Mismatch {
        op_index: end,
        detail,
    };

    // 1. Aggregate counters through the registry, compared as rendered
    // dumps so key naming and ordering are part of the checked contract.
    let mut real_reg = StatsRegistry::new();
    for c in 0..cfg.n_cores {
        h.per_core_stats(c)
            .register(&mut real_reg, &format!("core{c}"));
    }
    h.stats.register(&mut real_reg, "hierarchy");
    h.dir.stats.register(&mut real_reg, "dir");

    let mut gold_reg = StatsRegistry::new();
    for c in 0..cfg.n_cores {
        let p = format!("core{c}");
        let s = &g.per_core[c];
        gold_reg.set(format!("{p}.l1_misses"), s.l1_misses);
        gold_reg.set(format!("{p}.l3_accesses"), s.l3_accesses);
        gold_reg.set(format!("{p}.l3_hits"), s.l3_hits);
        gold_reg.set(format!("{p}.l3_misses"), s.l3_misses);
        gold_reg.set(format!("{p}.l2_writebacks"), s.l2_writebacks);
    }
    // HierarchyStats keys in declaration order. Under the harness
    // preconditions (no prefetch, no rotation, no block-criticality, no
    // two-probe policy) the last seven must be zero on the real side, and
    // l3_writes_noncritical is only bumped on the fill path — i.e. it
    // equals l3_fills_noncritical.
    gold_reg.set("hierarchy.l3_fills", g.stats.l3_fills);
    gold_reg.set(
        "hierarchy.l3_fills_noncritical",
        g.stats.l3_fills_noncritical,
    );
    gold_reg.set("hierarchy.l3_writes", g.stats.l3_writes);
    gold_reg.set(
        "hierarchy.l3_writes_noncritical",
        g.stats.l3_fills_noncritical,
    );
    gold_reg.set(
        "hierarchy.l3_writebacks_to_dram",
        g.stats.l3_writebacks_to_dram,
    );
    gold_reg.set("hierarchy.back_invalidations", g.stats.back_invalidations);
    for zero_key in [
        "hierarchy.prefetches_issued",
        "hierarchy.prefetch_fills",
        "hierarchy.prefetch_l3_hits",
        "hierarchy.set_rotations",
        "hierarchy.rotation_flushes",
        "hierarchy.secondary_probes",
        "hierarchy.secondary_hits",
    ] {
        gold_reg.set(zero_key, 0u64);
    }
    gold_reg.set("dir.grants_exclusive", g.dir_stats.grants_exclusive);
    gold_reg.set("dir.grants_shared", g.dir_stats.grants_shared);
    gold_reg.set("dir.upgrades_modified", g.dir_stats.upgrades_modified);
    gold_reg.set("dir.invalidations_sent", g.dir_stats.invalidations_sent);
    gold_reg.set("dir.back_invalidations", g.dir_stats.back_invalidations);

    let (real_dump, gold_dump) = (real_reg.dump(), gold_reg.dump());
    if real_dump != gold_dump {
        let diff = real_dump
            .lines()
            .zip(gold_dump.lines())
            .find(|(a, b)| a != b)
            .map(|(a, b)| format!("real `{a}` vs golden `{b}`"))
            .unwrap_or_else(|| "dumps differ in length".to_owned());
        return Err(fail(format!("stats-registry dump diverged: {diff}")));
    }

    // 2. Per-slot wear counters.
    let slots = cfg.l3_bank.lines();
    for bank in 0..cfg.n_banks {
        for slot in 0..slots {
            let (real, gold) = (h.wear.slot_writes(bank, slot), g.wear[bank][slot]);
            if real != gold {
                return Err(fail(format!(
                    "wear diverged at bank {bank} slot {slot}: real {real}, golden {gold}"
                )));
            }
        }
    }

    // 3. Bank service-model accounting against the wear model: every
    // data-array write the service model performed (fills + L2
    // writebacks) must also be a wear-histogram write, and the op-class
    // transition counters must chain (rar+raw+war+waw == ops - 1 per
    // bank). The golden model has no timing, so these are invariants of
    // the real side that the harness pins on every corpus trace.
    for bank in 0..cfg.n_banks {
        let bs = h.banks.stats(bank);
        let writes = bs.fill_ops.get() + bs.write_ops.get();
        let wear = h.wear.bank_totals()[bank];
        if writes != wear {
            return Err(fail(format!(
                "bank {bank} service-model writes diverged from wear histogram: \
                 fills+writebacks {writes}, wear {wear}"
            )));
        }
        let (n_ops, trans) = (bs.ops(), bs.transitions());
        if n_ops > 0 && trans != n_ops - 1 {
            return Err(fail(format!(
                "bank {bank} op transitions must chain: {trans} transitions over {n_ops} ops"
            )));
        }
    }

    // 4. Policy-internal state via the as_any escape hatch.
    if let Some(any) = h.policy().as_any() {
        if let Some(real) = any.downcast_ref::<NaiveOracle>() {
            if real.write_counters() != g.policy.naive_writes.as_slice() {
                return Err(fail(format!(
                    "Naive write counters diverged: real {:?}, golden {:?}",
                    real.write_counters(),
                    g.policy.naive_writes
                )));
            }
            if real.directory_len() != g.policy.naive_directory.len() {
                return Err(fail(format!(
                    "Naive directory size diverged: real {}, golden {}",
                    real.directory_len(),
                    g.policy.naive_directory.len()
                )));
            }
        }
        if let Some(real) = any.downcast_ref::<Wec>() {
            if real.write_counters() != g.policy.wec_writes.as_slice() {
                return Err(fail(format!(
                    "WEC write counters diverged: real {:?}, golden {:?}",
                    real.write_counters(),
                    g.policy.wec_writes
                )));
            }
            if real.directory_len() != g.policy.wec_directory.len() {
                return Err(fail(format!(
                    "WEC redirect-directory size diverged: real {}, golden {}",
                    real.directory_len(),
                    g.policy.wec_directory.len()
                )));
            }
        }
        if let Some(real) = any.downcast_ref::<Coloring>() {
            if real.total_writes() != g.policy.coloring_writes {
                return Err(fail(format!(
                    "Coloring write total diverged: real {}, golden {}",
                    real.total_writes(),
                    g.policy.coloring_writes
                )));
            }
            if real.directory_len() != g.policy.coloring_directory.len() {
                return Err(fail(format!(
                    "Coloring directory size diverged: real {}, golden {}",
                    real.directory_len(),
                    g.policy.coloring_directory.len()
                )));
            }
        }
        if let Some(real) = any.downcast_ref::<ReNuca>() {
            compare_renuca_state(real, g, cfg, ops, end)?;
        }
        // The compressed variant wraps a Re-NUCA whose MBV/placement state
        // must match the golden Re-NUCA-C2 model exactly the same way.
        if let Some(real) = any.downcast_ref::<ReNucaC2>() {
            compare_renuca_state(real.renuca(), g, cfg, ops, end)?;
        }
    }

    // 4b. Compressed-array state (Re-NUCA-C2): per-bank expansion and
    // class-histogram counters, per-slot allocation class and write
    // version, and the per-cell (sub-block) wear counters — plus the bank
    // service model's expand ops, which must equal the expansion count
    // (every expansion is exactly one extra data-array program).
    match (h.compression_spec(), g.compress.as_ref()) {
        (None, None) => {}
        (Some(_), None) | (None, Some(_)) => {
            return Err(fail(
                "compression modelled on one side only (real vs golden)".to_owned(),
            ));
        }
        (Some(spec), Some(gc)) => {
            if spec.sub_blocks != gc.sub_blocks {
                return Err(fail(format!(
                    "sub-block geometry diverged: real {}, golden {}",
                    spec.sub_blocks, gc.sub_blocks
                )));
            }
            for bank in 0..cfg.n_banks {
                let real_cs = h.compress_stats(bank);
                let expand_ops = h.banks.stats(bank).expand_ops.get();
                if expand_ops != real_cs.expansions {
                    return Err(fail(format!(
                        "bank {bank} service-model expand ops diverged from expansion count: \
                         {expand_ops} ops, {} expansions",
                        real_cs.expansions
                    )));
                }
                if real_cs.expansions != gc.expansions[bank] {
                    return Err(fail(format!(
                        "bank {bank} expansions diverged: real {}, golden {}",
                        real_cs.expansions, gc.expansions[bank]
                    )));
                }
                if real_cs.class_writes != gc.class_writes[bank] {
                    return Err(fail(format!(
                        "bank {bank} class-write histogram diverged: real {:?}, golden {:?}",
                        real_cs.class_writes, gc.class_writes[bank]
                    )));
                }
                for slot in 0..slots {
                    let real_cv = h
                        .compress_slot(bank, slot)
                        .expect("compression state present");
                    let gold_cv = (gc.class[bank][slot], gc.version[bank][slot]);
                    if real_cv != gold_cv {
                        return Err(fail(format!(
                            "compressed slot state diverged at bank {bank} slot {slot} \
                             (class, version): real {real_cv:?}, golden {gold_cv:?}"
                        )));
                    }
                    for k in 0..spec.sub_blocks {
                        let (real_w, gold_w) = (
                            h.wear.cell_writes(bank, slot, k),
                            gc.cell_wear[bank][slot * gc.sub_blocks + k],
                        );
                        if real_w != gold_w {
                            return Err(fail(format!(
                                "cell wear diverged at bank {bank} slot {slot} sub-block {k}: \
                                 real {real_w}, golden {gold_w}"
                            )));
                        }
                    }
                }
            }
        }
    }

    // 5. CPT lifecycle counters (Re-NUCA only).
    if renuca {
        for (c, (real, gold)) in cpts.iter().zip(gcpts.iter()).enumerate() {
            let rs = real.cpt_stats;
            let rp = real.stats();
            let real_tuple = (
                rs.hits,
                rs.misses,
                rs.insertions,
                rs.replacements,
                rp.predicted_critical,
                rp.predicted_noncritical,
            );
            let gold_tuple = (
                gold.hits,
                gold.misses,
                gold.insertions,
                gold.replacements,
                gold.predicted_critical,
                gold.predicted_noncritical,
            );
            if real_tuple != gold_tuple {
                return Err(fail(format!(
                    "core {c} CPT counters diverged (hits, misses, insertions, replacements, \
                     predicted_critical, predicted_noncritical): real {:?}, golden {:?}",
                    real_tuple, gold_tuple
                )));
            }
        }
    }

    Ok(())
}

/// Compare a real `ReNuca`'s placement counters and MBV contents against
/// the golden policy model — shared between Re-NUCA and the Re-NUCA it
/// carries inside Re-NUCA-C2.
fn compare_renuca_state(
    real: &ReNuca,
    g: &GoldenSystem,
    cfg: &SystemConfig,
    ops: &[TraceOp],
    end: usize,
) -> Result<(), Mismatch> {
    let fail = |detail: String| Mismatch {
        op_index: end,
        detail,
    };
    let rs = &real.renuca_stats;
    let gs = &g.policy.renuca_stats;
    let real_tuple = (
        rs.critical_fills,
        rs.noncritical_fills,
        rs.lookups_rnuca,
        rs.lookups_snuca,
    );
    let gold_tuple = (
        gs.critical_fills,
        gs.noncritical_fills,
        gs.lookups_rnuca,
        gs.lookups_snuca,
    );
    if real_tuple != gold_tuple {
        return Err(fail(format!(
            "Re-NUCA placement counters diverged (critical_fills, noncritical_fills, \
             lookups_rnuca, lookups_snuca): real {:?}, golden {:?}",
            real_tuple, gold_tuple
        )));
    }
    // MBV contents over every (owner core, page) the trace could have
    // touched, plus everything the golden map still holds — catches both
    // stale bits and lost bits.
    let mut keys: BTreeSet<(usize, u64)> = g.policy.mbv.keys().copied().collect();
    for op in ops {
        let line = line_of(op.phys);
        keys.insert((owner(line, cfg.n_cores), page_of_line(line)));
    }
    for (core, page) in keys {
        let real_word = real.tlb(core).mbv(page);
        let gold_word = g.policy.mbv_word(core, page);
        if real_word != gold_word {
            return Err(fail(format!(
                "MBV diverged for core {core} page {page:#x}: real {real_word:#018x}, \
                 golden {gold_word:#018x}"
            )));
        }
    }
    Ok(())
}

// --- delta debugging -----------------------------------------------------

/// Classic ddmin: shrink `ops` to a 1-minimal subsequence for which
/// `still_fails` holds. `still_fails(ops)` must be true on entry.
pub fn ddmin<F>(ops: &[TraceOp], still_fails: F) -> Vec<TraceOp>
where
    F: Fn(&[TraceOp]) -> bool,
{
    assert!(still_fails(ops), "ddmin needs a failing input to shrink");
    let mut cur = ops.to_vec();
    let mut n = 2usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(n);
        let mut reduced = false;

        // Try each chunk alone.
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let subset = cur[start..end].to_vec();
            if still_fails(&subset) {
                cur = subset;
                n = 2;
                reduced = true;
                break;
            }
            start = end;
        }
        if reduced {
            continue;
        }

        // Try each complement.
        start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut complement = cur[..start].to_vec();
            complement.extend_from_slice(&cur[end..]);
            if !complement.is_empty() && still_fails(&complement) {
                cur = complement;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if reduced {
            continue;
        }

        if n >= cur.len() {
            break; // at granularity 1 with nothing removable: 1-minimal
        }
        n = (n * 2).min(cur.len());
    }
    cur
}

/// Shrink a failing trace to a 1-minimal failing sub-trace with ddmin.
pub fn shrink(scheme: Scheme, cfg: &SystemConfig, ops: &[TraceOp], mutated: bool) -> Vec<TraceOp> {
    ddmin(ops, |sub| run_diff(scheme, cfg, sub, mutated).is_err())
}

/// Serialize a (shrunk) trace to `<out_dir>/<tag>_<scheme>_seed<seed>.trace`
/// in the `renuca-trace-v1` format.
pub fn write_shrunk_trace(
    out_dir: &Path,
    tag: &str,
    scheme: Scheme,
    cfg: &SystemConfig,
    seed: u64,
    ops: &[TraceOp],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let slug: String = scheme
        .name()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    let path = out_dir.join(format!("{tag}_{slug}_seed{seed}.trace"));
    std::fs::write(
        &path,
        trace_to_text(scheme.name(), cfg.noc.cols, cfg.noc.rows, seed, ops),
    )?;
    Ok(path)
}

// --- corpus driver -------------------------------------------------------

/// One failing corpus cell, shrunk and serialized.
#[derive(Debug)]
pub struct CorpusFailure {
    /// Scheme that diverged.
    pub scheme: Scheme,
    /// Label of the mesh configuration (see [`harness_configs`]).
    pub config: &'static str,
    /// Generator seed.
    pub seed: u64,
    /// The first divergence on the full trace.
    pub mismatch: Mismatch,
    /// Length of the ddmin-shrunk reproducer.
    pub minimal_len: usize,
    /// Where the shrunk trace was written (`None` if the write failed).
    pub trace_path: Option<PathBuf>,
}

/// Summary of a corpus sweep.
#[derive(Debug, Default)]
pub struct CorpusReport {
    /// Traces replayed (seeds × schemes × configs).
    pub replays: usize,
    /// Total ops cross-checked.
    pub ops_checked: usize,
    /// Every divergence found, shrunk.
    pub failures: Vec<CorpusFailure>,
}

/// Replay `seeds` seeded traces of `ops_per_trace` ops through every
/// scheme on every harness config; shrink and serialize any divergence
/// into `out_dir`.
pub fn run_corpus(
    seeds: std::ops::Range<u64>,
    ops_per_trace: usize,
    out_dir: &Path,
) -> CorpusReport {
    let mut report = CorpusReport::default();
    for (label, cfg) in harness_configs() {
        for seed in seeds.clone() {
            let spec = TraceSpec::new(seed, cfg.noc.cols, cfg.noc.rows, ops_per_trace);
            let ops = generate(&spec);
            for scheme in Scheme::ALL {
                report.replays += 1;
                report.ops_checked += ops.len();
                if let Err(mismatch) = replay(scheme, &cfg, &ops) {
                    let minimal = shrink(scheme, &cfg, &ops, false);
                    let trace_path =
                        write_shrunk_trace(out_dir, "diff_mismatch", scheme, &cfg, seed, &minimal)
                            .ok();
                    report.failures.push(CorpusFailure {
                        scheme,
                        config: label,
                        seed,
                        mismatch,
                        minimal_len: minimal.len(),
                        trace_path,
                    });
                }
            }
        }
    }
    report
}

// --- mutation self-check -------------------------------------------------

/// Outcome of a successful [`mutation_check`].
#[derive(Debug)]
pub struct MutationReport {
    /// Scheme the bug was injected under.
    pub scheme: Scheme,
    /// Ops in the original failing trace.
    pub original_len: usize,
    /// Ops left after ddmin.
    pub minimal_len: usize,
    /// The first divergence the harness reported.
    pub detail: String,
    /// Where the shrunk reproducer was written.
    pub trace_path: PathBuf,
}

/// The schemes whose injected bugs the self-check exercises: one
/// stateless scheme for the `MutantPolicy` wrapper, plus every scheme
/// with a bugged twin (see `inject_bug`).
pub const MUTATION_SCHEMES: [Scheme; 5] = [
    Scheme::SNuca,
    Scheme::Wec,
    Scheme::Coloring,
    Scheme::Mac,
    Scheme::ReNucaC2,
];

/// Prove the harness catches bugs: inject the per-scheme bug of
/// `inject_bug` under `scheme`, demand a divergence, shrink it to a
/// 1-minimal trace and serialize it. Errors describe which leg of the
/// proof failed.
pub fn mutation_check(
    scheme: Scheme,
    seed: u64,
    ops_n: usize,
    out_dir: &Path,
) -> Result<MutationReport, String> {
    let cfg = tiny_cfg(2, 2);
    let spec = TraceSpec::new(seed, 2, 2, ops_n);
    let ops = generate(&spec);

    replay(scheme, &cfg, &ops)
        .map_err(|m| format!("harness diverges even without the mutant: {m}"))?;

    let mismatch = match replay_mutated(scheme, &cfg, &ops) {
        Ok(_) => {
            return Err(format!(
                "injected {} bug escaped the harness (seed {seed}, {ops_n} ops)",
                scheme.name()
            ))
        }
        Err(m) => m,
    };

    let minimal = shrink(scheme, &cfg, &ops, true);
    if !minimal.is_empty() && replay_mutated(scheme, &cfg, &minimal).is_ok() {
        return Err("shrunk trace no longer reproduces the divergence".to_owned());
    }
    // 1-minimality: removing any single op must make the divergence vanish.
    for i in 0..minimal.len() {
        let mut without: Vec<TraceOp> = minimal.clone();
        without.remove(i);
        if !without.is_empty() && replay_mutated(scheme, &cfg, &without).is_err() {
            return Err(format!(
                "shrunk trace is not 1-minimal: dropping op {i} still diverges"
            ));
        }
    }

    let trace_path = write_shrunk_trace(out_dir, "mutant", scheme, &cfg, seed, &minimal)
        .map_err(|e| format!("failed to write shrunk trace: {e}"))?;

    Ok(MutationReport {
        scheme,
        original_len: ops.len(),
        minimal_len: minimal.len(),
        detail: mismatch.to_string(),
        trace_path,
    })
}

// --- metamorphic invariants ----------------------------------------------

/// Placement cannot change write volume: in an eviction-free regime every
/// scheme sees the same distinct-line fills and the same writebacks, so
/// `l3_fills`, `l3_writes`, `l2_writebacks` and the histogram *total* must
/// agree across all eight schemes (the histograms themselves differ — that
/// is the point of the paper; MAC rides along because with zero capacity
/// evictions its write-aware replacement never picks a victim).
pub fn write_conservation(cols: usize, rows: usize, seed: u64, ops_n: usize) -> Result<(), String> {
    let cfg = roomy_cfg(cols, rows);
    let mut spec = TraceSpec::new(seed, cols, rows, ops_n);
    spec.footprint_pages = 4; // fits every level: zero capacity evictions
    let ops = generate(&spec);

    let mut baseline: Option<(Scheme, ReplayReport)> = None;
    for scheme in Scheme::ALL {
        let report = replay(scheme, &cfg, &ops)
            .map_err(|m| format!("{} diverged during conservation check: {m}", scheme.name()))?;
        let total: u64 = report.bank_totals.iter().sum();
        if total != report.l3_writes {
            return Err(format!(
                "{}: histogram total {total} != l3_writes {}",
                scheme.name(),
                report.l3_writes
            ));
        }
        match &baseline {
            None => baseline = Some((scheme, report)),
            Some((base_scheme, base)) => {
                let same = base.l3_fills == report.l3_fills
                    && base.l3_writes == report.l3_writes
                    && base.l2_writebacks == report.l2_writebacks;
                if !same {
                    return Err(format!(
                        "write totals not conserved: {} (fills {}, writes {}, wb {}) vs {} \
                         (fills {}, writes {}, wb {})",
                        base_scheme.name(),
                        base.l3_fills,
                        base.l3_writes,
                        base.l2_writebacks,
                        scheme.name(),
                        report.l3_fills,
                        report.l3_writes,
                        report.l2_writebacks
                    ));
                }
            }
        }
    }
    Ok(())
}

/// S-NUCA striping commutes with address translation: shifting every
/// access by one line rotates the per-bank histogram by one position
/// (eviction-free, private regime, so wear is exactly the distinct-line
/// fill histogram).
pub fn snuca_shift_symmetry(
    cols: usize,
    rows: usize,
    seed: u64,
    ops_n: usize,
) -> Result<(), String> {
    let cfg = roomy_cfg(cols, rows);
    let n = cfg.n_banks;
    let mut spec = TraceSpec::new(seed, cols, rows, ops_n);
    spec.footprint_pages = 4;
    spec.sharing = 0.0; // keep each core in its own region: no coherence churn
    let ops = generate(&spec);
    let shifted: Vec<TraceOp> = ops
        .iter()
        .map(|op| TraceOp {
            phys: op.phys + 64, // one line over; stays inside the region
            ..*op
        })
        .collect();

    let base =
        replay(Scheme::SNuca, &cfg, &ops).map_err(|m| format!("base trace diverged: {m}"))?;
    let moved = replay(Scheme::SNuca, &cfg, &shifted)
        .map_err(|m| format!("shifted trace diverged: {m}"))?;

    for bank in 0..n {
        let (orig, rotated) = (base.bank_totals[bank], moved.bank_totals[(bank + 1) % n]);
        if orig != rotated {
            return Err(format!(
                "histogram did not rotate: bank {bank} wrote {orig}, shifted bank {} wrote \
                 {rotated} (base {:?}, shifted {:?})",
                (bank + 1) % n,
                base.bank_totals,
                moved.bank_totals
            ));
        }
    }
    Ok(())
}

/// The worker pool cannot change results: replaying a batch of seeds with
/// one thread and with several must produce identical digests.
pub fn parallel_matches_serial(seeds: &[u64], threads: usize, ops_n: usize) -> Result<(), String> {
    let run = |seed: &u64| -> Result<ReplayReport, String> {
        let cfg = tiny_cfg(2, 2);
        let ops = generate(&TraceSpec::new(*seed, 2, 2, ops_n));
        replay(Scheme::ReNuca, &cfg, &ops).map_err(|m| format!("seed {seed}: {m}"))
    };
    let serial = parallel_map_threads(seeds, 1, run);
    let parallel = parallel_map_threads(seeds, threads, run);
    for (s, p) in serial.iter().zip(parallel.iter()) {
        match (s, p) {
            (Err(e), _) | (_, Err(e)) => return Err(e.clone()),
            (Ok(a), Ok(b)) if a != b => {
                return Err(format!(
                    "serial and parallel digests differ: {a:?} vs {b:?}"
                ))
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddmin_finds_single_culprit() {
        // A synthetic predicate: the "bug" is op with pc == 99.
        let mut ops: Vec<TraceOp> = (0..40)
            .map(|i| TraceOp {
                core: 0,
                phys: i * 64,
                pc: 1 + i as u32,
                is_store: false,
                blocked: false,
            })
            .collect();
        ops[23].pc = 99;
        let minimal = ddmin(&ops, |sub| sub.iter().any(|op| op.pc == 99));
        assert_eq!(minimal.len(), 1);
        assert_eq!(minimal[0].pc, 99);
    }

    #[test]
    fn ddmin_keeps_interacting_pair() {
        // The failure needs *both* markers: ddmin must keep exactly the two.
        let mut ops: Vec<TraceOp> = (0..32)
            .map(|i| TraceOp {
                core: 0,
                phys: i * 64,
                pc: 1 + i as u32,
                is_store: false,
                blocked: false,
            })
            .collect();
        ops[3].pc = 77;
        ops[28].pc = 88;
        let minimal = ddmin(&ops, |sub| {
            sub.iter().any(|o| o.pc == 77) && sub.iter().any(|o| o.pc == 88)
        });
        assert_eq!(minimal.len(), 2);
        assert_eq!((minimal[0].pc, minimal[1].pc), (77, 88));
    }

    #[test]
    fn golden_constants_mirror_the_real_policies() {
        // The golden crate cannot depend on renuca-core, so WEC's redirect
        // threshold and Coloring's epoch length are duplicated there. This
        // crate depends on both — pin the twins together.
        assert_eq!(renuca_core::WEC_THRESHOLD, golden::GOLDEN_WEC_THRESHOLD);
        assert_eq!(renuca_core::COLORING_EPOCH, golden::GOLDEN_COLORING_EPOCH);
    }

    #[test]
    fn golden_compression_model_mirrors_the_real_one() {
        // Same duplication discipline for the compression content model:
        // golden re-implements the size-class hash and mask arithmetic.
        // Pin them together over a (seed, line, version) sweep.
        for seed in [0u64, 0xC0DEC, u64::MAX] {
            for line in (0..2048u64).map(|i| i.wrapping_mul(0x1234_5677)) {
                for version in 0..8u32 {
                    let real = compress::size_class(seed, line, version);
                    let gold = golden::golden_size_class(seed, line, version);
                    assert_eq!(real, gold, "class for ({seed:#x}, {line:#x}, {version})");
                    for sub_blocks in [1usize, 2, 4, 8] {
                        assert_eq!(
                            compress::subblock_mask(sub_blocks, real, version),
                            golden::golden_subblock_mask(sub_blocks, gold, version),
                            "mask for ({sub_blocks}, {real}, {version})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tiny_config_actually_churns() {
        // The harness relies on the tiny config exercising evictions; a
        // quiet config would silently weaken every differential run.
        let cfg = tiny_cfg(2, 2);
        let ops = generate(&TraceSpec::new(11, 2, 2, 2000));
        let report = replay(Scheme::SNuca, &cfg, &ops).expect("differential mismatch");
        assert!(report.l3_fills > 0);
        assert!(
            report.l3_writes > report.l3_fills,
            "no writebacks reached the L3 — shrink the private caches"
        );
    }
}
