//! Forecast-vs-simulation cross-check for the compressed LLC.
//!
//! The L2C2 analytical procedure (`compress::forecast`) predicts the
//! compressed cache's per-bank lifetime from the *uncompressed* run alone:
//! `forecast(bank) = lifetime_uncompressed(bank) × S / E[c]`. This module
//! runs both sides of the prediction — Re-NUCA uncompressed as the input,
//! Re-NUCA-C2 fully simulated (sub-block wear, expansions, bank occupancy)
//! as the ground truth — and reports the relative error on the lifetime
//! aggregates (raw minimum and harmonic mean over banks) per workload.
//!
//! The comparison is **iso-timing**: simulated compressed wear is evaluated
//! over the *baseline's* cycle window, because the closed form predicts the
//! wear effect of compression under the L2C2 assumption that performance is
//! unchanged. Our simulator additionally models a performance effect the
//! closed form deliberately omits — expansion re-fills occupy the slow
//! ReRAM write ports, stretching the compressed run's wall-clock and (in a
//! rate-based lifetime model) inflating its lifetime beyond the wear gain.
//! That timing effect is surfaced separately as [`ForecastRow::slowdown`]
//! rather than being allowed to contaminate the wear cross-check.
//!
//! The `forecast` binary sweeps WL1–WL10 and WB1–WB4 and **fails** (exit 1)
//! when any workload's error exceeds [`compress::FORECAST_TOLERANCE`]; the
//! CI forecast smoke runs the same gate at a reduced budget. Together with
//! the golden-model differential check this gives the compression subsystem
//! two independent verification paths: state-exact (golden) and
//! closed-form (forecast).

use cmp_sim::config::SystemConfig;
use renuca_core::{CptConfig, Scheme};
use wear_model::LifetimeModel;
use workloads::{workload_mix, WBURST_ID_BASE};

use crate::budget::Budget;
use crate::pool::parallel_map;
use crate::runner::run_workload;

/// One workload's forecast-vs-simulation comparison.
#[derive(Clone, Debug)]
pub struct ForecastRow {
    /// Workload label (`WL3`, `WB2`).
    pub label: String,
    /// Workload id (as accepted by `workloads::workload_mix`).
    pub id: usize,
    /// Uncompressed (Re-NUCA) raw-minimum bank lifetime in years — the
    /// forecast's only input.
    pub base_min_years: f64,
    /// Simulated compressed (Re-NUCA-C2) raw-minimum bank lifetime,
    /// evaluated over the baseline's cycle window (iso-timing; the
    /// wall-clock lifetime is this × [`ForecastRow::slowdown`]).
    pub sim_min_years: f64,
    /// Forecast raw-minimum bank lifetime (`base × gain`).
    pub forecast_min_years: f64,
    /// Simulated compressed per-bank lifetimes (iso-timing, for heatmaps).
    pub sim_per_bank: Vec<f64>,
    /// Compressed-run cycle stretch relative to the baseline
    /// (`sim.cycles / base.cycles`, > 1 when expansions slow the machine).
    /// The closed form does not predict this term; it is reported so the
    /// performance cost of expansions stays visible.
    pub slowdown: f64,
    /// Relative error of the forecast on the lifetime aggregates: the
    /// worse of the raw-minimum and harmonic-mean errors. The gate runs on
    /// aggregates, not individual banks — per-bank write counts carry
    /// finite-sample class noise *and* timing drift (expansions shift CPT
    /// training, which shifts placement), while the aggregates the study
    /// family actually reports are stable.
    pub rel_err: f64,
}

/// The full cross-check: one row per workload, plus the geometry the
/// forecast was evaluated at.
#[derive(Clone, Debug)]
pub struct ForecastStudy {
    /// Sub-blocks per line the compressed scheme ran with.
    pub sub_blocks: usize,
    /// The closed-form lifetime gain `S / E[c]`.
    pub gain: f64,
    /// The documented acceptance tolerance.
    pub tolerance: f64,
    /// Per-workload comparisons, in sweep order.
    pub rows: Vec<ForecastRow>,
}

impl ForecastStudy {
    /// The worst relative error over all workloads and banks.
    pub fn max_rel_err(&self) -> f64 {
        self.rows.iter().map(|r| r.rel_err).fold(0.0, f64::max)
    }

    /// Whether every workload is inside the tolerance — the gate the
    /// `forecast` binary and the CI smoke enforce.
    pub fn all_within_tolerance(&self) -> bool {
        self.rows.iter().all(|r| r.rel_err <= self.tolerance)
    }
}

/// Relative error that treats a shared infinity (an unwritten bank on
/// both sides) as exact agreement and a one-sided infinity as maximal
/// disagreement.
fn rel_err(forecast: f64, sim: f64) -> f64 {
    match (forecast.is_finite(), sim.is_finite()) {
        (true, true) => (forecast - sim).abs() / sim,
        (false, false) => 0.0,
        _ => f64::INFINITY,
    }
}

/// Human label of a workload id: `WL<k>` for the mix set, `WB<k>` for the
/// write-burst family.
pub fn workload_label(id: usize) -> String {
    if id > WBURST_ID_BASE {
        format!("WB{}", id - WBURST_ID_BASE)
    } else {
        format!("WL{id}")
    }
}

/// Cross-check one workload: simulate Re-NUCA (forecast input) and
/// Re-NUCA-C2 (ground truth) and apply the closed form per bank.
///
/// The comparison lifts `model`'s lifetime cap: the cap is a plotting
/// convenience that saturates lightly-written banks at `cap_years` and
/// would break the forecast's linear scaling exactly there (a capped
/// baseline forecasts past a capped simulation). Unwritten banks are
/// infinite on both sides and compare as exact agreement.
pub fn forecast_workload(
    id: usize,
    cfg: SystemConfig,
    cpt: CptConfig,
    budget: Budget,
    model: &LifetimeModel,
) -> ForecastRow {
    let wl = workload_mix(id, cfg.n_cores);
    let base = run_workload(&wl, Scheme::ReNuca, cfg, cpt, budget);
    let sim = run_workload(&wl, Scheme::ReNucaC2, cfg, cpt, budget);

    let uncapped = LifetimeModel {
        cap_years: f64::INFINITY,
        ..*model
    };
    // Iso-timing: both sides ran the same instruction budget; evaluating
    // the compressed wear over the baseline's window isolates the wear
    // effect the closed form predicts from the timing effect it omits
    // (see the module docs). The timing term survives as `slowdown`.
    let base_years = uncapped.all_bank_lifetimes(&base.wear, base.cycles);
    let sim_years = uncapped.all_bank_lifetimes(&sim.wear, base.cycles);
    let forecast_years = compress::forecast_bank_lifetimes(&base_years, cfg.l3_subblocks);

    let min = |xs: &[f64]| xs.iter().copied().fold(f64::INFINITY, f64::min);
    // Harmonic mean with unwritten (infinite-lifetime) banks contributing
    // zero reciprocal — the aggregate every lifetime figure uses.
    let hmean = |xs: &[f64]| {
        let recip: f64 = xs
            .iter()
            .map(|&y| if y.is_finite() { 1.0 / y } else { 0.0 })
            .sum();
        if recip == 0.0 {
            f64::INFINITY
        } else {
            xs.len() as f64 / recip
        }
    };
    let worst = f64::max(
        rel_err(min(&forecast_years), min(&sim_years)),
        rel_err(hmean(&forecast_years), hmean(&sim_years)),
    );
    ForecastRow {
        label: workload_label(id),
        id,
        base_min_years: min(&base_years),
        sim_min_years: min(&sim_years),
        forecast_min_years: min(&forecast_years),
        sim_per_bank: sim_years,
        slowdown: sim.cycles as f64 / base.cycles as f64,
        rel_err: worst,
    }
}

/// Run the cross-check over `ids` (typically WL1–WL10 then WB1–WB4),
/// workloads in parallel.
pub fn forecast_study(
    ids: &[usize],
    cfg: SystemConfig,
    cpt: CptConfig,
    budget: Budget,
    model: &LifetimeModel,
) -> ForecastStudy {
    let rows = parallel_map(&ids.to_vec(), |&id| {
        forecast_workload(id, cfg, cpt, budget, model)
    });
    ForecastStudy {
        sub_blocks: cfg.l3_subblocks,
        gain: compress::lifetime_gain(cfg.l3_subblocks),
        tolerance: compress::FORECAST_TOLERANCE,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::lifetime_model;

    /// A budget big enough for the realized class distribution to settle
    /// but still cheap for a unit test.
    fn prop_budget() -> Budget {
        Budget {
            warmup: 5_000,
            measure: 60_000,
        }
    }

    #[test]
    fn forecast_matches_simulation_on_odd_meshes() {
        // The closed form must hold on 1-, 3-, 6- and 12-core machines,
        // including non-power-of-two meshes where placement stripes by
        // modulo — geometry must not leak into the lifetime scaling.
        for (cols, rows) in [(1usize, 1usize), (3, 1), (3, 2), (4, 3)] {
            let cfg = SystemConfig::mesh(cols, rows);
            let model = lifetime_model(&cfg);
            let row = forecast_workload(1, cfg, CptConfig::default(), prop_budget(), &model);
            assert!(
                row.rel_err <= compress::FORECAST_TOLERANCE,
                "{cols}x{rows}: forecast off by {:.1}% (> {:.0}%): {row:?}",
                row.rel_err * 100.0,
                compress::FORECAST_TOLERANCE * 100.0
            );
            assert!(
                row.sim_min_years > row.base_min_years,
                "{cols}x{rows}: compression must extend the minimum lifetime"
            );
            assert!(
                row.slowdown >= 1.0,
                "{cols}x{rows}: expansion re-fills can only add cycles"
            );
        }
    }

    #[test]
    fn subblock_writes_conserve_line_writes() {
        // Write conservation at sub-block granularity: every line write
        // appears exactly once in the per-bank class histogram, and the
        // cell-write total equals the class-weighted sum of the histogram.
        let cfg = SystemConfig::small(4);
        let wl = workload_mix(2, cfg.n_cores);
        let r = run_workload(
            &wl,
            Scheme::ReNucaC2,
            cfg,
            CptConfig::default(),
            Budget::test(),
        );
        assert_eq!(r.compress_banks.len(), cfg.n_banks);
        let mut weighted = 0u64;
        let mut lines = 0u64;
        for (b, cb) in r.compress_banks.iter().enumerate() {
            let bank_lines: u64 = cb.class_writes.iter().sum();
            let bank_weighted: u64 = cb
                .class_writes
                .iter()
                .enumerate()
                .map(|(i, &n)| n * (1u64 << i))
                .sum();
            assert_eq!(
                bank_lines,
                r.wear.bank_totals()[b],
                "bank {b}: class histogram must cover every line write"
            );
            assert_eq!(
                bank_weighted,
                r.wear.subblock_bank_writes(b),
                "bank {b}: cell writes must equal the class-weighted histogram"
            );
            weighted += bank_weighted;
            lines += bank_lines;
        }
        assert_eq!(lines, r.wear.total_writes());
        assert_eq!(weighted, r.wear.subblock_total_writes());
        assert!(weighted > lines, "some write must compress below full line");
        assert!(weighted < lines * cfg.l3_subblocks as u64);
        // Per-slot sandwich: a slot's cell writes are bounded by its line
        // writes (all class 1) and line writes × sub-blocks (all class 4).
        for b in 0..cfg.n_banks {
            for s in 0..cfg.l3_bank.lines() {
                let lw = r.wear.slot_writes(b, s);
                let cw = r.wear.subblock_slot_sum(b, s);
                assert!(lw <= cw && cw <= lw * cfg.l3_subblocks as u64);
            }
        }
    }

    #[test]
    fn labels_cover_both_families() {
        assert_eq!(workload_label(3), "WL3");
        assert_eq!(workload_label(WBURST_ID_BASE + 2), "WB2");
    }
}
