//! Legacy-timing regression: a symmetric-latency L3 with bank occupancy
//! disabled (`SystemConfig::with_symmetric_llc`) must reproduce the
//! pre-asymmetric-split timing model cycle-for-cycle.
//!
//! The reference values below were captured from the scalar-`l3_latency`
//! model (before the per-bank service model landed) on a deterministic
//! 4-core mixed workload exercising every retimed path: L3 hits, tag-check
//! misses with DRAM fills, L2→L3 writebacks, stride prefetches and
//! coherence invalidations. Any drift here means the symmetric mapping of
//! the new bank model is no longer exact.

use cmp_sim::config::SystemConfig;
use cmp_sim::instr::{CyclicSource, Instr};
use cmp_sim::placement::{AccessMeta, LlcPlacement};
use cmp_sim::system::System;
use cmp_sim::types::BankId;

struct Striped {
    nbanks: usize,
}
impl LlcPlacement for Striped {
    fn name(&self) -> &'static str {
        "striped"
    }
    fn lookup_bank(&mut self, m: &AccessMeta) -> BankId {
        (m.line as usize) & (self.nbanks - 1)
    }
    fn fill_bank(&mut self, m: &AccessMeta) -> BankId {
        (m.line as usize) & (self.nbanks - 1)
    }
}

fn mixed_source(core: u64) -> Box<dyn cmp_sim::instr::InstrSource> {
    // Mixed hit/miss/store stream: loads sweep a window beyond the 4x2MB
    // L3, a third of them store back to the swept line (L2 writeback
    // traffic once the 8192-line footprint overflows the L2), plus a
    // shared region for coherence invalidations.
    let mut v = Vec::new();
    for i in 0..8192u64 {
        v.push(Instr::Load {
            vaddr: core * (1 << 26) + i * 64 * 97,
            pc: 1,
        });
        if i % 3 == 0 {
            v.push(Instr::Store {
                vaddr: core * (1 << 26) + i * 64 * 97,
                pc: 2,
            });
        }
        if i % 7 == 0 {
            v.push(Instr::Load {
                vaddr: (1 << 30) + (i % 64) * 64,
                pc: 3,
            });
            v.push(Instr::Store {
                vaddr: (1 << 30) + (i % 64) * 64,
                pc: 4,
            });
        }
        v.push(Instr::Alu { latency: 1 });
    }
    Box::new(CyclicSource::new("mixed", v))
}

#[test]
fn symmetric_config_reproduces_legacy_timings_exactly() {
    let cfg = SystemConfig::small(4).with_symmetric_llc();
    let preds = System::never_critical(&cfg);
    let sources = (0..4).map(mixed_source).collect();
    let mut sys = System::new(cfg, Box::new(Striped { nbanks: 4 }), sources, preds);
    sys.run(20_000);
    let r = sys.result();

    // Captured from the pre-split scalar-latency model.
    assert_eq!(sys.now(), 283_656, "end-to-end cycle count drifted");
    assert_eq!(r.cycles, 283_656);
    assert_eq!(r.hierarchy.l3_writes.get(), 35_614);
    assert_eq!(r.hierarchy.l3_fills.get(), 30_815);
    assert_eq!(r.noc.flit_hops.get(), 208_896, "mesh traffic drifted");
    assert!((r.total_ipc() - 0.282_247).abs() < 1e-6, "IPC drifted");

    // The occupancy-disabled model must never queue, while op accounting
    // still matches the wear model per bank.
    for (b, s) in r.bank_service.iter().enumerate() {
        assert_eq!(
            s.queue_cycles.get(),
            0,
            "bank {b} queued with occupancy off"
        );
        assert_eq!(
            s.fill_ops.get() + s.write_ops.get(),
            r.wear.bank_totals()[b],
            "bank {b}: data-array writes vs wear"
        );
        if s.ops() > 0 {
            assert_eq!(s.transitions(), s.ops() - 1, "bank {b} transition sum");
        }
    }
}
