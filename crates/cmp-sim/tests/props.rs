//! Property-based tests for the substrate's core structures, driven by
//! seeded `sim-rng` generator loops (hermetic replacement for proptest).

use sim_rng::SimRng;

use cmp_sim::cache::{LookupResult, SetAssocCache};
use cmp_sim::config::{CacheGeometry, DramConfig, NocConfig};
use cmp_sim::cpu::rob::{Rob, RobEntry};
use cmp_sim::dram::Dram;
use cmp_sim::noc::Mesh;
use cmp_sim::tlb::Tlb;

const CASES: usize = 48;

fn u64_vec(rng: &mut SimRng, len: std::ops::Range<usize>, bound: u64) -> Vec<u64> {
    let n = rng.gen_range_usize(len);
    (0..n).map(|_| rng.gen_bounded(bound)).collect()
}

fn bool_vec(rng: &mut SimRng, len: std::ops::Range<usize>) -> Vec<bool> {
    let n = rng.gen_range_usize(len);
    (0..n).map(|_| rng.gen_bool(0.5)).collect()
}

/// LRU correctness: after any access sequence, the most recently
/// touched `assoc` lines of a set are all resident.
#[test]
fn lru_keeps_most_recent_ways() {
    let mut rng = SimRng::seed_from_u64(0xCACE_0001);
    for case in 0..CASES {
        let accesses = u64_vec(&mut rng, 1..200, 64);
        // Single-set cache: 4 ways, 4 lines * 64B... geometry: 256B, assoc 4 -> 1 set.
        let geo = CacheGeometry::symmetric(256, 4, 1);
        let mut cache = SetAssocCache::new(geo, false);
        // Map every access to set 0 by multiplying by the set count (1): all collide.
        let mut recency: Vec<u64> = Vec::new();
        for &line in &accesses {
            if matches!(cache.access(line, false), LookupResult::Miss) {
                cache.fill(line, false);
            }
            recency.retain(|&l| l != line);
            recency.push(line);
        }
        let mru: Vec<u64> = recency.iter().rev().take(4).copied().collect();
        for &line in &mru {
            assert!(cache.contains(line), "case {case}: MRU line {line} evicted");
        }
    }
}

/// Dirty data is never lost: every line stored-to is either resident
/// and dirty, or was reported as a dirty eviction.
#[test]
fn no_silent_dirty_loss() {
    let mut rng = SimRng::seed_from_u64(0xCACE_0002);
    for case in 0..CASES {
        let n_ops = rng.gen_range_usize(1..300);
        let ops: Vec<(u64, bool)> = (0..n_ops)
            .map(|_| (rng.gen_bounded(128), rng.gen_bool(0.5)))
            .collect();
        let geo = CacheGeometry::symmetric(2048, 4, 1); // 8 sets
        let mut cache = SetAssocCache::new(geo, false);
        let mut dirty_outstanding: std::collections::HashSet<u64> = Default::default();
        for (line, is_write) in ops {
            match cache.access(line, is_write) {
                LookupResult::Hit { .. } => {
                    if is_write {
                        dirty_outstanding.insert(line);
                    }
                }
                LookupResult::Miss => {
                    let out = cache.fill(line, is_write);
                    if is_write {
                        dirty_outstanding.insert(line);
                    }
                    if let Some(ev) = out.evicted {
                        if dirty_outstanding.remove(&ev.line) {
                            assert!(
                                ev.dirty,
                                "case {case}: dirty line {:#x} evicted clean",
                                ev.line
                            );
                        } else {
                            assert!(
                                !ev.dirty,
                                "case {case}: clean line {:#x} evicted dirty",
                                ev.line
                            );
                        }
                    }
                }
            }
        }
        for &line in &dirty_outstanding {
            let present = matches!(cache.probe(line), LookupResult::Hit { .. });
            assert!(present, "case {case}: dirty line {line:#x} vanished");
        }
    }
}

/// The ROB is an exact FIFO for any interleaving of pushes and pops.
#[test]
fn rob_is_fifo() {
    let mut rng = SimRng::seed_from_u64(0xCACE_0003);
    for case in 0..CASES {
        let ops = bool_vec(&mut rng, 1..300);
        let mut rob = Rob::new(16);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        let mut next_pc = 0u32;
        for push in ops {
            if push && !rob.is_full() {
                rob.push(RobEntry {
                    complete_at: 0,
                    pc: next_pc,
                    is_load: true,
                    blocked_head: false,
                    predicted_critical: false,
                });
                model.push_back(next_pc);
                next_pc += 1;
            } else if !push && !rob.is_empty() {
                let got = rob.pop_head().pc;
                let want = model.pop_front().unwrap();
                assert_eq!(got, want, "case {case}");
            }
            assert_eq!(rob.len(), model.len(), "case {case}");
        }
    }
}

/// Mesh latency is monotone in distance for uncontended traffic, and
/// every traversal is at least the ideal latency.
#[test]
fn mesh_latency_bounds() {
    let mut rng = SimRng::seed_from_u64(0xCACE_0004);
    for case in 0..CASES {
        let n_pairs = rng.gen_range_usize(1..64);
        let pairs: Vec<(usize, usize)> = (0..n_pairs)
            .map(|_| (rng.gen_range_usize(0..16), rng.gen_range_usize(0..16)))
            .collect();
        let mut mesh = Mesh::new(NocConfig::default());
        let hop = mesh.config().hop_cycles;
        let mut now = 0u64;
        for (src, dst) in pairs {
            now += 1_000; // spaced out: uncontended
            let t = mesh.traverse(src, dst, 1, now);
            let d = mesh.hop_distance(src, dst);
            assert_eq!(t - now, d * hop, "case {case}: {src}->{dst}");
        }
    }
}

/// DRAM requests complete after arrival with bounded latency, and the
/// decomposition covers all channels/banks.
#[test]
fn dram_latency_bounds() {
    let mut rng = SimRng::seed_from_u64(0xCACE_0005);
    for case in 0..CASES {
        let lines = u64_vec(&mut rng, 1..128, 1_000_000);
        let cfg = DramConfig::default();
        let mut dram = Dram::new(cfg);
        let worst_single = cfg.t_rp + cfg.t_rcd + cfg.t_cas + cfg.t_burst;
        let mut now = 0u64;
        for &line in &lines {
            now += 2 * worst_single; // spaced: no queueing
            let done = dram.access(line, false, now);
            assert!(done > now, "case {case}");
            assert!(
                done - now <= worst_single,
                "case {case}: {} > {worst_single}",
                done - now
            );
            let c = dram.coord_of(line);
            assert!(c.channel < cfg.channels, "case {case}");
            assert!(c.bank < cfg.ranks * cfg.banks_per_rank, "case {case}");
        }
    }
}

/// TLB residency never exceeds capacity and hits always follow a prior
/// access that was not since evicted.
#[test]
fn tlb_capacity_respected() {
    let mut rng = SimRng::seed_from_u64(0xCACE_0006);
    for case in 0..CASES {
        let pages = u64_vec(&mut rng, 1..200, 64);
        let mut tlb: Tlb<u64> = Tlb::new(16, 4, 60);
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for &page in &pages {
            let acc = tlb.access(page, |_| 0);
            assert_eq!(
                acc.hit,
                resident.contains(&page),
                "case {case}: page {page}"
            );
            resident.insert(page);
            if let Some((evicted, _)) = acc.evicted {
                resident.remove(&evicted);
            }
            assert!(resident.len() <= 16, "case {case}");
        }
    }
}
