//! Property-based tests for the substrate's core structures.

use proptest::prelude::*;

use cmp_sim::cache::{LookupResult, SetAssocCache};
use cmp_sim::config::{CacheGeometry, DramConfig, NocConfig};
use cmp_sim::cpu::rob::{Rob, RobEntry};
use cmp_sim::dram::Dram;
use cmp_sim::noc::Mesh;
use cmp_sim::tlb::Tlb;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// LRU correctness: after any access sequence, the most recently
    /// touched `assoc` lines of a set are all resident.
    #[test]
    fn lru_keeps_most_recent_ways(accesses in prop::collection::vec(0u64..64, 1..200)) {
        // Single-set cache: 4 ways, 4 lines * 64B... geometry: 256B, assoc 4 -> 1 set.
        let geo = CacheGeometry { size_bytes: 256, assoc: 4, latency: 1 };
        let mut cache = SetAssocCache::new(geo, false);
        // Map every access to set 0 by multiplying by the set count (1): all collide.
        let mut recency: Vec<u64> = Vec::new();
        for &line in &accesses {
            if matches!(cache.access(line, false), LookupResult::Miss) {
                cache.fill(line, false);
            }
            recency.retain(|&l| l != line);
            recency.push(line);
        }
        let mru: Vec<u64> = recency.iter().rev().take(4).copied().collect();
        for &line in &mru {
            prop_assert!(cache.contains(line), "MRU line {line} evicted");
        }
    }

    /// Dirty data is never lost: every line stored-to is either resident
    /// and dirty, or was reported as a dirty eviction.
    #[test]
    fn no_silent_dirty_loss(ops in prop::collection::vec((0u64..128, any::<bool>()), 1..300)) {
        let geo = CacheGeometry { size_bytes: 2048, assoc: 4, latency: 1 }; // 8 sets
        let mut cache = SetAssocCache::new(geo, false);
        let mut dirty_outstanding: std::collections::HashSet<u64> = Default::default();
        for (line, is_write) in ops {
            match cache.access(line, is_write) {
                LookupResult::Hit { .. } => {
                    if is_write {
                        dirty_outstanding.insert(line);
                    }
                }
                LookupResult::Miss => {
                    let out = cache.fill(line, is_write);
                    if is_write {
                        dirty_outstanding.insert(line);
                    }
                    if let Some(ev) = out.evicted {
                        if dirty_outstanding.remove(&ev.line) {
                            prop_assert!(ev.dirty, "dirty line {:#x} evicted clean", ev.line);
                        } else {
                            prop_assert!(!ev.dirty, "clean line {:#x} evicted dirty", ev.line);
                        }
                    }
                }
            }
        }
        for &line in &dirty_outstanding {
            let present = matches!(cache.probe(line), LookupResult::Hit { .. });
            prop_assert!(present, "dirty line {line:#x} vanished");
        }
    }

    /// The ROB is an exact FIFO for any interleaving of pushes and pops.
    #[test]
    fn rob_is_fifo(ops in prop::collection::vec(any::<bool>(), 1..300)) {
        let mut rob = Rob::new(16);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        let mut next_pc = 0u32;
        for push in ops {
            if push && !rob.is_full() {
                rob.push(RobEntry {
                    complete_at: 0,
                    pc: next_pc,
                    is_load: true,
                    blocked_head: false,
                    predicted_critical: false,
                });
                model.push_back(next_pc);
                next_pc += 1;
            } else if !push && !rob.is_empty() {
                let got = rob.pop_head().pc;
                let want = model.pop_front().unwrap();
                prop_assert_eq!(got, want);
            }
            prop_assert_eq!(rob.len(), model.len());
        }
    }

    /// Mesh latency is monotone in distance for uncontended traffic, and
    /// every traversal is at least the ideal latency.
    #[test]
    fn mesh_latency_bounds(pairs in prop::collection::vec((0usize..16, 0usize..16), 1..64)) {
        let mut mesh = Mesh::new(NocConfig::default());
        let hop = mesh.config().hop_cycles;
        let mut now = 0u64;
        for (src, dst) in pairs {
            now += 1_000; // spaced out: uncontended
            let t = mesh.traverse(src, dst, 1, now);
            let d = mesh.hop_distance(src, dst);
            prop_assert_eq!(t - now, d * hop, "{}->{}", src, dst);
        }
    }

    /// DRAM requests complete after arrival with bounded latency, and the
    /// decomposition covers all channels/banks.
    #[test]
    fn dram_latency_bounds(lines in prop::collection::vec(0u64..1_000_000, 1..128)) {
        let cfg = DramConfig::default();
        let mut dram = Dram::new(cfg);
        let worst_single = cfg.t_rp + cfg.t_rcd + cfg.t_cas + cfg.t_burst;
        let mut now = 0u64;
        for &line in &lines {
            now += 2 * worst_single; // spaced: no queueing
            let done = dram.access(line, false, now);
            prop_assert!(done > now);
            prop_assert!(done - now <= worst_single, "{} > {worst_single}", done - now);
            let c = dram.coord_of(line);
            prop_assert!(c.channel < cfg.channels);
            prop_assert!(c.bank < cfg.ranks * cfg.banks_per_rank);
        }
    }

    /// TLB residency never exceeds capacity and hits always follow a prior
    /// access that was not since evicted.
    #[test]
    fn tlb_capacity_respected(pages in prop::collection::vec(0u64..64, 1..200)) {
        let mut tlb: Tlb<u64> = Tlb::new(16, 4, 60);
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for &page in &pages {
            let acc = tlb.access(page, |_| 0);
            prop_assert_eq!(acc.hit, resident.contains(&page), "page {}", page);
            resident.insert(page);
            if let Some((evicted, _)) = acc.evicted {
                resident.remove(&evicted);
            }
            prop_assert!(resident.len() <= 16);
        }
    }
}
