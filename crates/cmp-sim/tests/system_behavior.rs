//! Behavioural tests of the full-system loop: timing plumbing, budget
//! accounting, prefetcher effects and predictor integration.

use cmp_sim::config::SystemConfig;
use cmp_sim::instr::{CyclicSource, Instr, InstrSource};
use cmp_sim::placement::{AccessMeta, CriticalityPredictor, LlcPlacement};
use cmp_sim::system::System;
use cmp_sim::types::{BankId, Pc};

/// Address-interleaved static placement (local S-NUCA stand-in).
struct Striped {
    nbanks: usize,
}
impl LlcPlacement for Striped {
    fn name(&self) -> &'static str {
        "striped"
    }
    fn lookup_bank(&mut self, m: &AccessMeta) -> BankId {
        (m.line as usize) & (self.nbanks - 1)
    }
    fn fill_bank(&mut self, m: &AccessMeta) -> BankId {
        (m.line as usize) & (self.nbanks - 1)
    }
}

fn sys_with(cfg: SystemConfig, sources: Vec<Box<dyn InstrSource>>) -> System {
    let preds = System::never_critical(&cfg);
    System::new(
        cfg,
        Box::new(Striped {
            nbanks: cfg.n_banks,
        }),
        sources,
        preds,
    )
}

fn alu_source() -> Box<dyn InstrSource> {
    Box::new(CyclicSource::new("alu", vec![Instr::Alu { latency: 1 }]))
}

fn stream_source(lines: u64, stride_pages: u64) -> Box<dyn InstrSource> {
    let instrs: Vec<Instr> = (0..lines)
        .map(|i| Instr::Load {
            vaddr: i * 64 + stride_pages * 4096,
            pc: 3,
        })
        .collect();
    Box::new(CyclicSource::new("stream", instrs))
}

#[test]
fn heterogeneous_cores_finish_at_different_times() {
    // One compute core and one memory-bound core: the memory one takes
    // longer for the same instruction budget.
    let cfg = SystemConfig::small(4);
    let sources: Vec<Box<dyn InstrSource>> = vec![
        alu_source(),
        stream_source(4096, 100),
        alu_source(),
        alu_source(),
    ];
    let mut sys = sys_with(cfg, sources);
    sys.run(5_000);
    let r = sys.result();
    let alu_cycles = r.per_core[0].cycles;
    let mem_cycles = r.per_core[1].cycles;
    assert!(
        mem_cycles > alu_cycles * 2,
        "memory-bound core ({mem_cycles}) must run much longer than the ALU core ({alu_cycles})"
    );
    // Per-core IPC is budget / own-cycles, not global cycles.
    assert!(r.per_core[0].ipc > 3.0);
    assert!(r.per_core[1].ipc < 1.5);
}

#[test]
fn prefetcher_reduces_stream_stalls() {
    let run = |enabled: bool| {
        let mut cfg = SystemConfig::small(1);
        cfg.prefetch.enabled = enabled;
        let mut sys = sys_with(cfg, vec![stream_source(32_768, 200)]);
        sys.warmup(5_000);
        sys.run(30_000);
        let r = sys.result();
        (
            r.per_core[0].ipc,
            r.per_core[0].core_stats.noncritical_load_fraction(),
            r.hierarchy.prefetch_fills.get(),
        )
    };
    let (ipc_off, _ncl_off, pf_off) = run(false);
    let (ipc_on, ncl_on, pf_on) = run(true);
    assert_eq!(pf_off, 0);
    assert!(
        pf_on > 1_000,
        "prefetches must fire on a pure stream: {pf_on}"
    );
    assert!(
        ipc_on > ipc_off,
        "prefetching must speed up a stream: {ipc_on} vs {ipc_off}"
    );
    // Note: this stream is a stress shape — 4 back-to-back loads per cycle
    // with no ALU work to hide behind — so the prefetcher cannot outrun the
    // consumer and some head blocks remain (the criticality effect on
    // realistic instruction mixes is asserted by the workload-level tests).
    assert!(ncl_on > 0.5, "stream must retain substantial MLP: {ncl_on}");
}

#[test]
fn prefetch_fills_count_toward_mpki_and_wear() {
    let mut cfg = SystemConfig::small(1);
    cfg.prefetch.enabled = true;
    let mut sys = sys_with(cfg, vec![stream_source(32_768, 200)]);
    sys.warmup(2_000);
    sys.run(20_000);
    let r = sys.result();
    // Every fetched line (demand or prefetch) is charged: MPKI reflects
    // the stream's true memory traffic and wear matches total L3 writes.
    assert!(
        r.per_core[0].mpki > 20.0,
        "stream MPKI must include prefetch fills: {}",
        r.per_core[0].mpki
    );
    assert_eq!(r.wear.total_writes(), r.hierarchy.l3_writes.get());
}

#[test]
fn predictions_flow_into_fill_classification() {
    // An always-critical predictor must classify every load fill critical.
    struct Always;
    impl CriticalityPredictor for Always {
        fn predict(&mut self, _: Pc) -> bool {
            true
        }
        fn on_rob_block(&mut self, _: Pc) {}
        fn on_load_commit(&mut self, _: Pc, _: bool) {}
    }
    let mut cfg = SystemConfig::small(1);
    cfg.prefetch.enabled = false; // prefetch fills are always non-critical
    let preds: Vec<Box<dyn CriticalityPredictor>> = vec![Box::new(Always)];
    let mut sys = System::new(
        cfg,
        Box::new(Striped { nbanks: 1 }),
        vec![stream_source(8_192, 300)],
        preds,
    );
    sys.run(10_000);
    let r = sys.result();
    assert!(r.hierarchy.l3_fills.get() > 100);
    assert_eq!(
        r.hierarchy.l3_fills_noncritical.get(),
        0,
        "always-critical predictions must reach the fill path"
    );
}

#[test]
fn run_measured_equals_manual_phases() {
    let cfg = SystemConfig::small(4);
    let mk = || -> Vec<Box<dyn InstrSource>> {
        (0..4).map(|i| stream_source(1024, i as u64 * 7)).collect()
    };
    let mut a = sys_with(cfg, mk());
    a.prewarm();
    let ra = a.run_measured(3_000, 6_000);

    let mut b = sys_with(cfg, mk());
    b.prewarm();
    b.warmup(3_000);
    b.run(6_000);
    let rb = b.result();

    assert_eq!(ra.cycles, rb.cycles);
    assert_eq!(ra.bank_writes, rb.bank_writes);
}

#[test]
fn intra_bank_rotation_is_transparent_to_execution() {
    // Rotation changes wear slots, not program semantics: committed
    // instruction counts are identical with and without it.
    let run = |rotation| {
        let mut cfg = SystemConfig::small(1);
        cfg.intra_bank_rotation_writes = rotation;
        let mut sys = sys_with(cfg, vec![stream_source(8_192, 50)]);
        sys.run(15_000);
        let r = sys.result();
        (r.per_core[0].committed, r.hierarchy.set_rotations.get())
    };
    let (committed_off, rot_off) = run(None);
    let (committed_on, rot_on) = run(Some(500));
    assert_eq!(committed_off, committed_on);
    assert_eq!(rot_off, 0);
    assert!(rot_on > 0, "rotations must have fired");
}

#[test]
fn tlb_walks_charged_on_page_crossings() {
    // A stream touching a new page every line pays page walks; a stream
    // within one page does not.
    let run = |vaddrs: Vec<u64>| {
        let cfg = SystemConfig::small(1);
        let instrs: Vec<Instr> = vaddrs
            .into_iter()
            .map(|vaddr| Instr::Load { vaddr, pc: 9 })
            .collect();
        let mut sys = sys_with(cfg, vec![Box::new(CyclicSource::new("t", instrs))]);
        sys.run(4_000);
        sys.core_stats(0);
        sys.result().cycles
    };
    // 64 lines in one page, cycled.
    let one_page = run((0..64u64).map(|i| i * 64).collect());
    // 4096 distinct pages (TLB always misses).
    let many_pages = run((0..4096u64).map(|i| i * 4096).collect());
    assert!(
        many_pages > one_page,
        "page-crossing stream ({many_pages}) must pay walks vs ({one_page})"
    );
}
