//! Property tests for `FixedTable`: long seeded churn at full capacity
//! cross-checked against a `BTreeMap` model, exercising the
//! backward-shift deletion path that open addressing gets wrong most
//! often, plus the hard capacity bound.

use std::collections::BTreeMap;

use cmp_sim::table::FixedTable;
use sim_rng::SimRng;

/// Churn a table at (and around) full capacity for `steps` operations and
/// require every observable — `len`, `contains_key`, `get`, `remove`
/// return values and the full iterated contents — to match a `BTreeMap`
/// driven by the same operation stream.
fn churn_against_model(seed: u64, bound: usize, steps: usize) {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut table: FixedTable<u64> = FixedTable::new(bound);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();

    // A small key universe forces constant collisions, re-insertions of
    // tombstoned slots and probe chains that wrap the backing array.
    let universe = (bound * 3) as u64;

    for step in 0..steps {
        let key = rng.gen_range(0..universe);
        let value = step as u64;
        // Bias toward inserts so the table spends most of the run pinned
        // at its capacity bound, where deletion bookkeeping matters.
        if rng.gen_bool(0.6) {
            if model.len() == bound && !model.contains_key(&key) {
                // Inserting a new key at the bound must panic (covered by
                // `overflow_at_capacity_panics`); evict a victim instead,
                // through the same API a caller under the bound would use.
                let victim = *model.keys().nth(key as usize % model.len()).unwrap();
                assert_eq!(table.remove(victim), model.remove(&victim));
            }
            assert_eq!(table.insert(key, value), model.insert(key, value));
        } else {
            assert_eq!(table.remove(key), model.remove(&key));
        }

        assert_eq!(table.len(), model.len());
        assert_eq!(table.is_empty(), model.is_empty());
        assert_eq!(table.contains_key(key), model.contains_key(&key));
        // Probe a second, unrelated key each step: backward-shift bugs
        // corrupt *other* keys in the same probe chain, not the one
        // removed.
        let other = rng.gen_range(0..universe);
        assert_eq!(table.get(other), model.get(&other));
    }

    let mut dumped: Vec<(u64, u64)> = table.iter().map(|(k, v)| (k, *v)).collect();
    dumped.sort_unstable();
    let expected: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(dumped, expected, "iterated contents diverged from model");
}

#[test]
fn full_capacity_churn_matches_btreemap_model() {
    // Power-of-two and odd bounds hit different probe-wrap arithmetic.
    churn_against_model(1, 64, 20_000);
    churn_against_model(2, 61, 20_000);
    churn_against_model(3, 8, 30_000);
}

#[test]
fn get_mut_updates_are_visible_through_get() {
    let mut rng = SimRng::seed_from_u64(7);
    let mut table: FixedTable<u64> = FixedTable::new(32);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for step in 0..5_000u64 {
        let key = rng.gen_range(0..48);
        if model.len() < 32 || model.contains_key(&key) {
            table.get_or_insert_with(key, || 0);
            *model.entry(key).or_insert(0) += step;
            *table.get_mut(key).unwrap() += step;
        } else {
            assert_eq!(table.remove(key), model.remove(&key));
        }
        assert_eq!(table.get(key), model.get(&key));
    }
}

#[test]
#[should_panic(expected = "FixedTable capacity bound exceeded")]
fn overflow_at_capacity_panics() {
    let mut table: FixedTable<u64> = FixedTable::new(16);
    // Fill to the bound, churn removals/re-insertions (tombstones must
    // not consume capacity), then one extra distinct key must panic.
    for k in 0..16 {
        table.insert(k, k);
    }
    for k in 0..16 {
        table.remove(k);
        table.insert(k + 100, k);
    }
    assert_eq!(table.len(), 16);
    table.insert(1_000, 0);
}
