//! A from-scratch chip-multiprocessor (CMP) simulator substrate for the
//! Re-NUCA reproduction.
//!
//! The Re-NUCA paper (Kotra et al., IPDPS 2016) evaluates its placement
//! policy on gem5: 16 out-of-order cores, a three-level cache hierarchy with
//! a 16-bank NUCA ReRAM L3 connected by a 4×4 mesh, MESI coherence, and a
//! DDR3 memory system. None of that substrate exists as reusable Rust code,
//! so this crate builds it:
//!
//! * [`bank`] — the per-bank LLC service model: asymmetric ReRAM
//!   read/write latencies and data-array occupancy calendars, so slow
//!   writes delay later reads to the same bank,
//! * [`cache`] — set-associative caches with LRU replacement, write-back /
//!   write-allocate, per-slot fill reporting (the wear model needs to know
//!   the physical (set, way) every write lands in),
//! * [`coherence`] — MESI states and a home directory with inclusive-L3
//!   back-invalidation,
//! * [`noc`] — a 2-D mesh with XY routing, per-link serialization and
//!   contention accounting,
//! * [`dram`] — a DDR3-style memory system: channels, ranks, banks, open-page
//!   row-buffer policy and bandwidth/occupancy modelling,
//! * [`tlb`] — a set-associative TLB with pluggable per-entry payload (the
//!   Re-NUCA *Mapping Bit Vector* rides in that payload),
//! * [`table`] — the bounded open-addressed address→value table backing
//!   every per-access map (coherence directory, Naive directory, Enhanced
//!   TLB backing store, block-criticality tracker),
//! * [`cpu`] — a trace-driven out-of-order core: ROB with in-order commit,
//!   head-of-ROB stall detection (the signal the criticality predictor
//!   consumes), MSHR-limited memory-level parallelism,
//! * [`event`] — the hierarchical timing wheel that drives the
//!   event-driven system loop,
//! * [`hierarchy`] — the glue: L1 → L2 → NUCA L3 → DRAM access paths with a
//!   pluggable L3 placement policy,
//! * [`system`] — the full 16-core simulation loop and results.
//!
//! The *placement policy* and *criticality predictor* are traits
//! ([`placement::LlcPlacement`], [`placement::CriticalityPredictor`]); their
//! implementations — S-NUCA, R-NUCA, Private, the Naive oracle and Re-NUCA
//! itself — live in the `renuca-core` crate, which is the paper's actual
//! contribution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod cache;
pub mod coherence;
pub mod config;
pub mod cpu;
pub mod dram;
pub mod event;
pub mod hierarchy;
pub mod instr;
pub mod noc;
pub mod placement;
pub mod reserve;
pub mod system;
pub mod table;
pub mod tlb;
pub mod types;

pub use cache::ReplacementKind;
pub use config::SystemConfig;
pub use instr::{Instr, InstrSource};
pub use placement::{AccessMeta, CriticalityPredictor, LlcAccessKind, LlcPlacement};
pub use system::{SimResult, System};
pub use table::FixedTable;
pub use types::{BankId, CoreId, Cycle, Pc};
