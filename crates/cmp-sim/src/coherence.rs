//! MESI coherence states and a home directory.
//!
//! The paper's Table I lists MESI coherence. The workloads are
//! multiprogrammed (one single-threaded application per core, disjoint
//! address spaces), so there is never read-write sharing — but the directory
//! still has real work to do in this design:
//!
//! * it tracks which private cache holds each L3-resident line, enabling the
//!   **inclusive-L3 back-invalidation** that keeps the hierarchy consistent
//!   when a NUCA bank evicts a line (and which forces the Re-NUCA Mapping
//!   Bit Vector to be reset, §IV.C of the paper),
//! * it records the MESI state transitions so coherence traffic can be
//!   counted and asserted on.
//!
//! The full state machine (including the S state and multi-sharer
//! invalidation that multiprogrammed runs never exercise) is implemented and
//! unit-tested so the substrate is reusable for shared-memory workloads.

use crate::table::FixedTable;
use crate::types::CoreId;
use sim_stats::Counter;

/// MESI state of a line in a private cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mesi {
    /// Modified: this cache holds the only, dirty copy.
    Modified,
    /// Exclusive: this cache holds the only, clean copy.
    Exclusive,
    /// Shared: one of several clean copies.
    Shared,
    /// Invalid (not present).
    Invalid,
}

/// Directory record for one line: which cores hold it and in what state.
#[derive(Clone, Debug, Default)]
pub struct DirEntry {
    /// Bitmask of sharer cores (bit i = core i).
    pub sharers: u32,
    /// True when exactly one core holds the line in M or E.
    pub exclusive: bool,
}

impl DirEntry {
    /// Number of sharers.
    pub fn n_sharers(&self) -> u32 {
        self.sharers.count_ones()
    }
}

/// Coherence event counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoherenceStats {
    /// Read requests granting Exclusive (no other sharer).
    pub grants_exclusive: Counter,
    /// Read requests downgrading to Shared.
    pub grants_shared: Counter,
    /// Write requests upgrading to Modified.
    pub upgrades_modified: Counter,
    /// Invalidation messages sent to sharers.
    pub invalidations_sent: Counter,
    /// Back-invalidations caused by inclusive-L3 evictions.
    pub back_invalidations: Counter,
}

impl CoherenceStats {
    /// Register every counter under `<prefix>.grants_exclusive`,
    /// `<prefix>.grants_shared`, `<prefix>.upgrades_modified`,
    /// `<prefix>.invalidations_sent`, `<prefix>.back_invalidations`.
    pub fn register(&self, reg: &mut sim_stats::StatsRegistry, prefix: &str) {
        reg.set(
            format!("{prefix}.grants_exclusive"),
            self.grants_exclusive.get(),
        );
        reg.set(format!("{prefix}.grants_shared"), self.grants_shared.get());
        reg.set(
            format!("{prefix}.upgrades_modified"),
            self.upgrades_modified.get(),
        );
        reg.set(
            format!("{prefix}.invalidations_sent"),
            self.invalidations_sent.get(),
        );
        reg.set(
            format!("{prefix}.back_invalidations"),
            self.back_invalidations.get(),
        );
    }
}

/// The home directory: line → sharer set.
///
/// Capacity is bounded by the total private-cache capacity (Σ L2 lines),
/// since entries are removed when the last private copy disappears; the
/// backing [`FixedTable`] enforces that bound so a bookkeeping leak fails
/// loudly instead of growing memory over a long run.
#[derive(Clone, Debug)]
pub struct Directory {
    entries: FixedTable<DirEntry>,
    /// Event counters.
    pub stats: CoherenceStats,
}

impl Default for Directory {
    fn default() -> Self {
        Self::new()
    }
}

impl Directory {
    /// An empty directory with the default generous capacity bound (unit
    /// tests and ad-hoc use; the hierarchy sizes its directory exactly via
    /// [`Directory::with_capacity`]).
    pub fn new() -> Self {
        Directory {
            entries: FixedTable::default(),
            stats: CoherenceStats::default(),
        }
    }

    /// An empty directory bounded to `max_lines` tracked lines (Σ private
    /// L2 lines plus in-flight slack).
    pub fn with_capacity(max_lines: usize) -> Self {
        Directory {
            entries: FixedTable::with_capacity(max_lines.min(4096), max_lines),
            stats: CoherenceStats::default(),
        }
    }

    /// Number of tracked lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no lines are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current sharers of a line.
    pub fn entry(&self, line: u64) -> Option<&DirEntry> {
        self.entries.get(line)
    }

    /// A core fetches a line for reading. Returns the MESI state granted.
    /// Any existing exclusive holder is downgraded to Shared (pure-clean
    /// sharing; dirty data forwarding is charged by the hierarchy).
    pub fn read(&mut self, line: u64, core: CoreId) -> Mesi {
        let bit = 1u32 << core;
        match self.entries.get_mut(line) {
            None => {
                self.entries.insert(
                    line,
                    DirEntry {
                        sharers: bit,
                        exclusive: true,
                    },
                );
                self.stats.grants_exclusive.inc();
                Mesi::Exclusive
            }
            Some(e) => {
                if e.sharers == bit {
                    // Re-read by the sole owner keeps its state.
                    return if e.exclusive {
                        Mesi::Exclusive
                    } else {
                        Mesi::Shared
                    };
                }
                e.sharers |= bit;
                e.exclusive = false;
                self.stats.grants_shared.inc();
                Mesi::Shared
            }
        }
    }

    /// A core fetches (or upgrades) a line for writing. All other sharers
    /// are invalidated; returns them (ascending core id) so the caller can
    /// drop their private copies — a sharer left resident after its
    /// directory bit is cleared would be invisible to a later inclusive-L3
    /// back-invalidation, and its eventual dirty eviction would write back
    /// a line the L3 no longer holds.
    pub fn write(&mut self, line: u64, core: CoreId) -> Vec<CoreId> {
        let bit = 1u32 << core;
        let e = self.entries.get_or_insert_with(line, DirEntry::default);
        let victims = e.sharers & !bit;
        e.sharers = bit;
        e.exclusive = true;
        self.stats.upgrades_modified.inc();
        self.stats
            .invalidations_sent
            .add(victims.count_ones() as u64);
        (0..32).filter(|c| victims & (1 << c) != 0).collect()
    }

    /// A core silently drops its copy (clean eviction) or writes it back
    /// (dirty eviction) — either way it stops being a sharer.
    pub fn evict(&mut self, line: u64, core: CoreId) {
        let bit = 1u32 << core;
        if let Some(e) = self.entries.get_mut(line) {
            e.sharers &= !bit;
            if e.sharers == 0 {
                self.entries.remove(line);
            } else if e.n_sharers() == 1 {
                // Last man standing could be promoted to E; real MESI keeps
                // it S until it re-requests. We keep S (conservative).
                e.exclusive = false;
            }
        }
    }

    /// The L3 evicts a line: every private copy must be invalidated
    /// (inclusive hierarchy). Returns the cores that held it. The caller
    /// performs the actual private-cache invalidation and any dirty
    /// writeback.
    pub fn back_invalidate(&mut self, line: u64) -> Vec<CoreId> {
        match self.entries.remove(line) {
            None => Vec::new(),
            Some(e) => {
                let holders: Vec<CoreId> = (0..32).filter(|c| e.sharers & (1 << c) != 0).collect();
                self.stats.back_invalidations.add(holders.len() as u64);
                holders
            }
        }
    }

    /// Reset statistics (warm-up boundary).
    pub fn reset_stats(&mut self) {
        self.stats = CoherenceStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_read_grants_exclusive() {
        let mut d = Directory::new();
        assert_eq!(d.read(100, 0), Mesi::Exclusive);
        assert_eq!(d.entry(100).unwrap().n_sharers(), 1);
        assert!(d.entry(100).unwrap().exclusive);
    }

    #[test]
    fn second_reader_downgrades_to_shared() {
        let mut d = Directory::new();
        d.read(100, 0);
        assert_eq!(d.read(100, 1), Mesi::Shared);
        let e = d.entry(100).unwrap();
        assert_eq!(e.n_sharers(), 2);
        assert!(!e.exclusive);
    }

    #[test]
    fn re_read_by_owner_keeps_exclusive() {
        let mut d = Directory::new();
        d.read(7, 3);
        assert_eq!(d.read(7, 3), Mesi::Exclusive);
        assert_eq!(d.stats.grants_exclusive.get(), 1);
        assert_eq!(d.stats.grants_shared.get(), 0);
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut d = Directory::new();
        d.read(9, 0);
        d.read(9, 1);
        d.read(9, 2);
        let invals = d.write(9, 0);
        assert_eq!(invals, vec![1, 2]);
        let e = d.entry(9).unwrap();
        assert_eq!(e.n_sharers(), 1);
        assert!(e.exclusive);
        assert_eq!(d.stats.invalidations_sent.get(), 2);
    }

    #[test]
    fn write_by_sole_owner_sends_no_invalidations() {
        let mut d = Directory::new();
        d.read(9, 4);
        assert!(d.write(9, 4).is_empty());
    }

    #[test]
    fn evict_removes_sharer_and_cleans_up() {
        let mut d = Directory::new();
        d.read(1, 0);
        d.read(1, 1);
        d.evict(1, 0);
        assert_eq!(d.entry(1).unwrap().n_sharers(), 1);
        d.evict(1, 1);
        assert!(d.entry(1).is_none());
        assert!(d.is_empty());
    }

    #[test]
    fn evict_of_untracked_line_is_noop() {
        let mut d = Directory::new();
        d.evict(42, 0); // must not panic
        assert!(d.is_empty());
    }

    #[test]
    fn back_invalidate_returns_all_holders() {
        let mut d = Directory::new();
        d.read(5, 2);
        d.read(5, 7);
        let holders = d.back_invalidate(5);
        assert_eq!(holders, vec![2, 7]);
        assert!(d.entry(5).is_none());
        assert_eq!(d.stats.back_invalidations.get(), 2);
        assert!(d.back_invalidate(5).is_empty());
    }

    #[test]
    fn disjoint_address_spaces_never_share() {
        // The multiprogrammed invariant: distinct cores touch distinct
        // lines, so every grant is Exclusive and no invalidations flow.
        let mut d = Directory::new();
        for core in 0..16usize {
            let line = (core as u64) << 22; // per-core address slice
            assert_eq!(d.read(line, core), Mesi::Exclusive);
            d.write(line, core);
        }
        assert_eq!(d.stats.invalidations_sent.get(), 0);
        assert_eq!(d.stats.grants_shared.get(), 0);
    }
}
