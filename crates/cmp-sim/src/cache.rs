//! Set-associative cache with true-LRU replacement.
//!
//! One `SetAssocCache` models a single physically-indexed cache array: an
//! L1D, a private L2, or one L3 NUCA bank. It tracks valid/dirty state per
//! way and reports the physical slot `(set, way)` of every fill so the wear
//! model can charge writes to the ReRAM cells that actually absorb them.
//!
//! Set indexing uses an XOR-folded hash of the line address (optional, on
//! for L3 banks) so that NUCA bank-selection bits and large power-of-two
//! strides do not alias pathologically.

use crate::config::CacheGeometry;
use sim_stats::Counter;

/// Outcome of a lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupResult {
    /// Line present; `way` within its set.
    Hit {
        /// Set index of the line.
        set: usize,
        /// Way within the set.
        way: usize,
    },
    /// Line absent.
    Miss,
}

/// A line evicted by a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eviction {
    /// Line address of the victim.
    pub line: u64,
    /// Whether the victim held modified data (needs writeback).
    pub dirty: bool,
}

/// Result of a fill: the slot used plus the victim, if a valid line was
/// displaced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FillOutcome {
    /// Set index the line was placed in.
    pub set: usize,
    /// Way the line was placed in.
    pub way: usize,
    /// Displaced valid line, if any.
    pub evicted: Option<Eviction>,
}

/// Per-cache hit/miss/writeback counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: Counter,
    /// Lookups that missed.
    pub misses: Counter,
    /// Fills performed.
    pub fills: Counter,
    /// Dirty evictions produced.
    pub dirty_evictions: Counter,
}

impl CacheStats {
    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits.get() + self.misses.get()
    }

    /// Hit rate in \[0,1\]; 0 for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        self.hits.ratio(self.accesses())
    }

    /// Register every counter plus the derived hit rate under
    /// `<prefix>.hits`, `<prefix>.misses`, `<prefix>.fills`,
    /// `<prefix>.dirty_evictions`, `<prefix>.hit_rate`.
    pub fn register(&self, reg: &mut sim_stats::StatsRegistry, prefix: &str) {
        reg.set(format!("{prefix}.hits"), self.hits.get());
        reg.set(format!("{prefix}.misses"), self.misses.get());
        reg.set(format!("{prefix}.fills"), self.fills.get());
        reg.set(
            format!("{prefix}.dirty_evictions"),
            self.dirty_evictions.get(),
        );
        reg.set(format!("{prefix}.hit_rate"), self.hit_rate());
    }
}

/// Per-line state flag: line holds valid data.
const F_VALID: u8 = 1 << 0;
/// Per-line state flag: line holds modified data (needs writeback).
const F_DIRTY: u8 = 1 << 1;

/// Victim-selection policy of a [`SetAssocCache`].
///
/// Placement schemes choose the replacement of the L3 banks they drive via
/// [`crate::placement::LlcPlacement::l3_replacement`]; everything else
/// (L1/L2/TLB arrays) stays true-LRU. All kinds share the same tie-break
/// discipline: ways are scanned in order and a candidate only displaces the
/// current victim on a *strictly* smaller stamp, so victim choice is a pure
/// function of the set's contents — the golden model mirrors it exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplacementKind {
    /// True LRU: first invalid way, else the smallest stamp.
    #[default]
    Lru,
    /// MAC-style write-aware replacement (Ruan et al., arXiv:1606.03248):
    /// prefer evicting *clean* lines so dirty victims — each of which costs
    /// a ReRAM write somewhere below — stay resident longer. Victim levels:
    /// invalid way, else LRU among clean lines, else LRU among dirty lines.
    WriteAware,
    /// Deliberately wrong twin of [`ReplacementKind::WriteAware`] that
    /// prefers evicting *dirty* lines first. Exists only as the injected
    /// bug for the MAC mutation self-check (`experiments::diff`); never
    /// built by a production scheme.
    DirtyFirst,
}

/// A set-associative, write-back, write-allocate cache array.
///
/// Per-line metadata is stored structure-of-arrays: parallel `tags` /
/// `flags` / `stamps` vectors indexed by `set * assoc + way`. A lookup
/// only touches the tag lane (8 contiguous bytes per way), so a whole
/// set's tags share a cache line and the common probe/access path never
/// loads the LRU stamps or dirty bits it does not need.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    sets: usize,
    assoc: usize,
    set_mask: u64,
    hash_index: bool,
    /// Victim-selection policy (see [`ReplacementKind`]).
    replacement: ReplacementKind,
    /// Intra-bank wear-leveling rotation: logical set `s` lives in physical
    /// row `(s + set_shift) % sets`. Rotating the shift migrates hot sets
    /// across the physical array — the i2wap-style inter-set leveling the
    /// paper's §VI describes as complementary to Re-NUCA. Affects only the
    /// *physical slot* reported for wear accounting; lookup semantics are
    /// unchanged (tags are logical).
    set_shift: usize,
    /// Line address per way (valid only where `F_VALID` is set).
    tags: Vec<u64>,
    /// Valid/dirty flag byte per way.
    flags: Vec<u8>,
    /// LRU stamp per way: global monotonic access counter value at last
    /// touch.
    stamps: Vec<u64>,
    clock: u64,
    /// Event counters.
    pub stats: CacheStats,
}

impl SetAssocCache {
    /// Build a cache from a geometry. `hash_index` enables XOR-folded set
    /// indexing (recommended for L3 banks, where the low line bits select
    /// the bank under S-NUCA and must not starve sets).
    pub fn new(geo: CacheGeometry, hash_index: bool) -> Self {
        Self::with_replacement(geo, hash_index, ReplacementKind::Lru)
    }

    /// Build a cache with an explicit victim-selection policy. Used by the
    /// hierarchy for L3 banks, whose replacement is chosen by the placement
    /// scheme; `new` keeps every other array on true LRU.
    pub fn with_replacement(
        geo: CacheGeometry,
        hash_index: bool,
        replacement: ReplacementKind,
    ) -> Self {
        let sets = geo.sets();
        let slots = sets * geo.assoc;
        SetAssocCache {
            sets,
            assoc: geo.assoc,
            set_mask: sets as u64 - 1,
            hash_index,
            replacement,
            set_shift: 0,
            tags: vec![0; slots],
            flags: vec![0; slots],
            stamps: vec![0; slots],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The victim-selection policy this array was built with.
    pub fn replacement(&self) -> ReplacementKind {
        self.replacement
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Physical slot index (for wear tracking): the rotated row times the
    /// associativity plus the way. With a zero shift this is simply
    /// `set * assoc + way`.
    #[inline]
    pub fn slot_index(&self, set: usize, way: usize) -> usize {
        ((set + self.set_shift) & self.set_mask as usize) * self.assoc + way
    }

    /// Current wear-leveling rotation offset.
    pub fn set_shift(&self) -> usize {
        self.set_shift
    }

    /// Advance the intra-bank wear-leveling rotation by one row: logical
    /// sets migrate to their physical neighbours. Every resident line is
    /// invalidated (the physical rows now belong to different logical
    /// sets) and returned so the caller can clean up inclusion, coherence
    /// and placement state — and write dirty data back. This flush-based
    /// model is a conservative simplification of i2wap's gradual swaps;
    /// rotations are infrequent (every N-hundred-thousand writes), so the
    /// flush cost is amortized to noise.
    pub fn rotate_set_mapping(&mut self) -> Vec<Eviction> {
        self.set_shift = (self.set_shift + 1) & self.set_mask as usize;
        let mut flushed = Vec::new();
        for slot in 0..self.flags.len() {
            if self.flags[slot] & F_VALID != 0 {
                flushed.push(Eviction {
                    line: self.tags[slot],
                    dirty: self.flags[slot] & F_DIRTY != 0,
                });
                self.flags[slot] = 0;
            }
        }
        flushed
    }

    /// Set index of a line address.
    #[inline]
    pub fn set_of(&self, line: u64) -> usize {
        let idx = if self.hash_index {
            // XOR-fold three windows of the line address. Mixes in the NUCA
            // bank bits' neighbours and the per-core address-space bits.
            line ^ (line >> 11) ^ (line >> 22)
        } else {
            line
        };
        (idx & self.set_mask) as usize
    }

    /// The way holding `line` within `set`, if valid and present. The tag
    /// scan touches only the contiguous tag lane.
    #[inline]
    fn find(&self, set: usize, line: u64) -> Option<usize> {
        let base = set * self.assoc;
        let tags = &self.tags[base..base + self.assoc];
        let flags = &self.flags[base..base + self.assoc];
        (0..self.assoc).find(|&w| flags[w] & F_VALID != 0 && tags[w] == line)
    }

    /// Look up a line *without* updating replacement state or statistics
    /// (for assertions and invariant checks).
    pub fn probe(&self, line: u64) -> LookupResult {
        let set = self.set_of(line);
        match self.find(set, line) {
            Some(way) => LookupResult::Hit { set, way },
            None => LookupResult::Miss,
        }
    }

    /// Look up a line, updating LRU and hit/miss statistics. If `is_write`,
    /// a hit marks the line dirty.
    pub fn access(&mut self, line: u64, is_write: bool) -> LookupResult {
        self.clock += 1;
        let set = self.set_of(line);
        if let Some(w) = self.find(set, line) {
            let slot = set * self.assoc + w;
            self.stamps[slot] = self.clock;
            if is_write {
                self.flags[slot] |= F_DIRTY;
            }
            self.stats.hits.inc();
            return LookupResult::Hit { set, way: w };
        }
        self.stats.misses.inc();
        LookupResult::Miss
    }

    /// Insert a line (after a miss), evicting the LRU way if the set is
    /// full. `dirty` marks the new line modified on arrival (write-allocate
    /// stores and dirty writebacks landing in a lower level).
    pub fn fill(&mut self, line: u64, dirty: bool) -> FillOutcome {
        self.clock += 1;
        let set = self.set_of(line);
        let base = set * self.assoc;
        debug_assert!(
            matches!(self.probe(line), LookupResult::Miss),
            "fill of already-present line {line:#x}"
        );
        let victim = self.pick_victim(base);
        let vslot = base + victim;
        let evicted = if self.flags[vslot] & F_VALID != 0 {
            let was_dirty = self.flags[vslot] & F_DIRTY != 0;
            if was_dirty {
                self.stats.dirty_evictions.inc();
            }
            Some(Eviction {
                line: self.tags[vslot],
                dirty: was_dirty,
            })
        } else {
            None
        };
        self.tags[vslot] = line;
        self.flags[vslot] = if dirty { F_VALID | F_DIRTY } else { F_VALID };
        self.stamps[vslot] = self.clock;
        self.stats.fills.inc();
        FillOutcome {
            set,
            way: victim,
            evicted,
        }
    }

    /// Victim way for a fill into the set at `base`. Always an invalid way
    /// first (in way order); past that, [`ReplacementKind`] decides which
    /// valid lines are candidates before falling back to the rest.
    fn pick_victim(&self, base: usize) -> usize {
        for w in 0..self.assoc {
            if self.flags[base + w] & F_VALID == 0 {
                return w;
            }
        }
        let lru_among = |want_dirty: Option<bool>| -> Option<usize> {
            let mut victim = None;
            let mut victim_stamp = u64::MAX;
            for w in 0..self.assoc {
                let slot = base + w;
                if let Some(d) = want_dirty {
                    if (self.flags[slot] & F_DIRTY != 0) != d {
                        continue;
                    }
                }
                if self.stamps[slot] < victim_stamp {
                    victim_stamp = self.stamps[slot];
                    victim = Some(w);
                }
            }
            victim
        };
        match self.replacement {
            ReplacementKind::Lru => lru_among(None),
            ReplacementKind::WriteAware => lru_among(Some(false)).or_else(|| lru_among(None)),
            ReplacementKind::DirtyFirst => lru_among(Some(true)).or_else(|| lru_among(None)),
        }
        .expect("full set has a victim")
    }

    /// Invalidate a line if present. Returns whether it was present and
    /// whether it was dirty (the caller owns the writeback decision — this
    /// is the back-invalidation path).
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let set = self.set_of(line);
        if let Some(w) = self.find(set, line) {
            let slot = set * self.assoc + w;
            let was_dirty = self.flags[slot] & F_DIRTY != 0;
            self.flags[slot] = 0;
            return Some(was_dirty);
        }
        None
    }

    /// Whether a line is present (no state change).
    pub fn contains(&self, line: u64) -> bool {
        matches!(self.probe(line), LookupResult::Hit { .. })
    }

    /// Mark a present line dirty (writeback arriving from an upper level).
    /// Returns false if the line is absent.
    pub fn mark_dirty(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        if let Some(w) = self.find(set, line) {
            let slot = set * self.assoc + w;
            self.flags[slot] |= F_DIRTY;
            self.stamps[slot] = self.clock; // a writeback is a use
            return true;
        }
        false
    }

    /// Number of valid lines currently resident (O(capacity); test helper).
    pub fn occupancy(&self) -> usize {
        self.flags.iter().filter(|&&f| f & F_VALID != 0).count()
    }

    /// Reset statistics (warm-up boundary) without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways of 64B lines = 512B.
        SetAssocCache::new(CacheGeometry::symmetric(512, 2, 1), false)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(10, false), LookupResult::Miss);
        c.fill(10, false);
        assert!(matches!(c.access(10, false), LookupResult::Hit { .. }));
        assert_eq!(c.stats.hits.get(), 1);
        assert_eq!(c.stats.misses.get(), 1);
        assert!((c.stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.fill(0, false);
        c.fill(4, false);
        // Touch 0 so 4 becomes LRU.
        c.access(0, false);
        let out = c.fill(8, false);
        assert_eq!(
            out.evicted,
            Some(Eviction {
                line: 4,
                dirty: false
            })
        );
        assert!(c.contains(0));
        assert!(c.contains(8));
        assert!(!c.contains(4));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        c.fill(0, false);
        c.access(0, true); // store -> dirty
        c.fill(4, false);
        let out = c.fill(8, false); // evicts 0 (LRU) which is dirty? 0 touched after fill...
                                    // After fill(0), access(0): stamp(0) newest until fill(4).
                                    // fill(8) evicts LRU = 0? stamps: 0 filled @1 touched @2, 4 filled @3.
                                    // LRU is 0 (stamp 2 < 3). It is dirty.
        assert_eq!(
            out.evicted,
            Some(Eviction {
                line: 0,
                dirty: true
            })
        );
        assert_eq!(c.stats.dirty_evictions.get(), 1);
    }

    #[test]
    fn fill_uses_invalid_way_first() {
        let mut c = tiny();
        let a = c.fill(0, false);
        assert_eq!(a.evicted, None);
        let b = c.fill(4, false);
        assert_eq!(b.evicted, None);
        assert_ne!(a.way, b.way);
        assert_eq!(a.set, b.set);
    }

    #[test]
    fn invalidate_returns_dirtiness() {
        let mut c = tiny();
        c.fill(3, false);
        assert_eq!(c.invalidate(3), Some(false));
        assert_eq!(c.invalidate(3), None);
        c.fill(3, true);
        assert_eq!(c.invalidate(3), Some(true));
    }

    #[test]
    fn mark_dirty_only_if_present() {
        let mut c = tiny();
        assert!(!c.mark_dirty(7));
        c.fill(7, false);
        assert!(c.mark_dirty(7));
        let out = c.fill(3, false); // same set 3? line 3 -> set 3; line 7 -> set 3. yes
        let out2 = c.fill(11, false);
        let out3 = c.fill(15, false);
        // One of these evictions must carry line 7 dirty.
        let evs = [out.evicted, out2.evicted, out3.evicted];
        assert!(evs.iter().flatten().any(|e| e.line == 7 && e.dirty));
    }

    #[test]
    fn hashed_index_still_covers_all_sets() {
        let geo = CacheGeometry::symmetric(64 * 1024, 4, 1);
        let c = SetAssocCache::new(geo, true);
        let mut seen = vec![false; c.sets()];
        for line in 0..(4 * c.sets() as u64) {
            seen[c.set_of(line)] = true;
        }
        assert!(seen.iter().all(|&s| s), "hashed index must reach every set");
    }

    #[test]
    fn occupancy_saturates_at_capacity() {
        let mut c = tiny();
        for line in 0..100u64 {
            if !c.contains(line) {
                c.fill(line, false);
            }
        }
        assert_eq!(c.occupancy(), 8); // 4 sets x 2 ways
    }

    #[test]
    fn slot_index_unique_per_slot() {
        let c = tiny();
        let mut seen = std::collections::HashSet::new();
        for s in 0..c.sets() {
            for w in 0..c.assoc() {
                assert!(seen.insert(c.slot_index(s, w)));
            }
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn write_aware_prefers_clean_victims() {
        // 4 sets x 2 ways; lines 0 and 4 share set 0, line 8 forces eviction.
        let geo = CacheGeometry::symmetric(512, 2, 1);
        let mut c = SetAssocCache::with_replacement(geo, false, ReplacementKind::WriteAware);
        c.fill(0, true); // dirty, and LRU by stamp
        c.fill(4, false); // clean, more recently used
        let out = c.fill(8, false);
        // True LRU would evict dirty line 0; write-aware spares it.
        assert_eq!(
            out.evicted,
            Some(Eviction {
                line: 4,
                dirty: false
            })
        );
        assert!(c.contains(0));
        // With only dirty lines resident, it falls back to plain LRU.
        c.access(8, true);
        let out = c.fill(12, false);
        assert_eq!(out.evicted.map(|e| e.line), Some(0));
    }

    #[test]
    fn dirty_first_is_the_inverse_twin() {
        let geo = CacheGeometry::symmetric(512, 2, 1);
        let mut c = SetAssocCache::with_replacement(geo, false, ReplacementKind::DirtyFirst);
        c.fill(0, false); // clean, LRU by stamp
        c.fill(4, true); // dirty, more recently used
        let out = c.fill(8, false);
        assert_eq!(out.evicted.map(|e| e.line), Some(4), "evicts dirty first");
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = tiny();
        c.fill(1, false);
        c.access(1, false);
        c.reset_stats();
        assert_eq!(c.stats.hits.get(), 0);
        assert!(c.contains(1));
    }
}
