//! The full-system simulator: N cores stepping against a shared memory
//! hierarchy, with warm-up / measurement phases and result extraction.

use crate::config::SystemConfig;
use crate::cpu::{CoreModel, CoreStats};
use crate::hierarchy::{BankCompressStats, HierarchyStats, MemoryHierarchy, PerCoreMemStats};
use crate::instr::InstrSource;
use crate::placement::{CriticalityPredictor, LlcPlacement, NeverCritical, PredictorStats};
use crate::types::{CoreId, Cycle};
use wear_model::WearTracker;

/// Per-core results of a measured run.
#[derive(Clone, Debug)]
pub struct CoreResult {
    /// Workload label running on this core.
    pub label: String,
    /// Instructions committed during measurement.
    pub committed: u64,
    /// Cycles from measurement start to this core draining.
    pub cycles: Cycle,
    /// Committed instructions per cycle.
    pub ipc: f64,
    /// L3 misses per kilo-instruction.
    pub mpki: f64,
    /// L2→L3 writebacks per kilo-instruction.
    pub wpki: f64,
    /// L3 hit rate for this core's demand stream.
    pub l3_hit_rate: f64,
    /// Core execution counters.
    pub core_stats: CoreStats,
    /// Hierarchy counters for this core.
    pub mem_stats: PerCoreMemStats,
    /// Predictor issue-time counters.
    pub predictor: PredictorStats,
    /// Data-TLB counters for this core.
    pub tlb: crate::tlb::TlbStats,
    /// This core's private L1D counters.
    pub l1: crate::cache::CacheStats,
    /// This core's private L2 counters.
    pub l2: crate::cache::CacheStats,
}

/// Results of one measured simulation window.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Placement scheme that produced this run.
    pub scheme: &'static str,
    /// Measured window length in cycles (to the last core's drain).
    pub cycles: Cycle,
    /// Per-core results.
    pub per_core: Vec<CoreResult>,
    /// Total writes each L3 bank absorbed (index = bank).
    pub bank_writes: Vec<u64>,
    /// Full per-slot wear counters (lifetime extrapolation input).
    pub wear: WearTracker,
    /// Global hierarchy counters.
    pub hierarchy: HierarchyStats,
    /// NoC statistics.
    pub noc: crate::noc::NocStats,
    /// DRAM statistics.
    pub dram: crate::dram::DramStats,
    /// MESI directory statistics.
    pub coherence: crate::coherence::CoherenceStats,
    /// Per-bank L3 cache counters (index = bank).
    pub l3_banks: Vec<crate::cache::CacheStats>,
    /// Per-bank data-array service/contention statistics (index = bank).
    pub bank_service: Vec<crate::bank::BankStats>,
    /// Per-bank compression counters (index = bank); empty for
    /// uncompressed schemes.
    pub compress_banks: Vec<BankCompressStats>,
    /// Echo of the configuration that produced this run.
    pub config: SystemConfig,
}

impl SimResult {
    /// System throughput: sum of per-core IPC (the paper's Figure 11
    /// metric, normalized there to S-NUCA).
    pub fn total_ipc(&self) -> f64 {
        self.per_core.iter().map(|c| c.ipc).sum()
    }

    /// Average MPKI across cores.
    pub fn avg_mpki(&self) -> f64 {
        sim_stats::amean(&self.per_core.iter().map(|c| c.mpki).collect::<Vec<_>>())
    }

    /// Average WPKI across cores.
    pub fn avg_wpki(&self) -> f64 {
        sim_stats::amean(&self.per_core.iter().map(|c| c.wpki).collect::<Vec<_>>())
    }

    /// Full hierarchical statistics snapshot under stable dotted paths,
    /// using the paper's endurance budget
    /// ([`wear_model::EnduranceSpec::PAPER`]) for the wear section.
    ///
    /// Section order (documented in EXPERIMENTS.md "Observability"):
    /// `system.*`, `config.*`, `cpu[i].*` (core counters, then derived
    /// rates, then `cpu[i].mem.*`, `cpu[i].tlb.*`, `cpu[i].l1.*`,
    /// `cpu[i].l2.*`, `cpu[i].pred.*`), `llc.bank[b].*`, `hierarchy.*`,
    /// `noc.*`, `dram.*`, `coherence.*`, `wear.*`. Two runs that execute
    /// identically produce byte-identical `to_json()` dumps.
    pub fn registry(&self) -> sim_stats::StatsRegistry {
        self.registry_with_endurance(&wear_model::EnduranceSpec::PAPER)
    }

    /// [`SimResult::registry`] with an explicit endurance budget for the
    /// `wear.bank[i].min_endurance_frac` entries.
    pub fn registry_with_endurance(
        &self,
        endurance: &wear_model::EnduranceSpec,
    ) -> sim_stats::StatsRegistry {
        let mut reg = sim_stats::StatsRegistry::new();
        reg.set("system.scheme", self.scheme);
        reg.set("system.cycles", self.cycles);
        reg.set("system.total_ipc", self.total_ipc());
        reg.set("system.avg_mpki", self.avg_mpki());
        reg.set("system.avg_wpki", self.avg_wpki());
        self.config.register(&mut reg, "config");
        for (i, c) in self.per_core.iter().enumerate() {
            let p = format!("cpu[{i}]");
            reg.set(format!("{p}.label"), c.label.as_str());
            c.core_stats.register(&mut reg, &p);
            reg.set(format!("{p}.cycles"), c.cycles);
            reg.set(format!("{p}.ipc"), c.ipc);
            reg.set(format!("{p}.mpki"), c.mpki);
            reg.set(format!("{p}.wpki"), c.wpki);
            reg.set(format!("{p}.l3_hit_rate"), c.l3_hit_rate);
            c.mem_stats.register(&mut reg, &format!("{p}.mem"));
            c.tlb.register(&mut reg, &format!("{p}.tlb"));
            c.l1.register(&mut reg, &format!("{p}.l1"));
            c.l2.register(&mut reg, &format!("{p}.l2"));
            reg.set(
                format!("{p}.pred.predicted_critical"),
                c.predictor.predicted_critical,
            );
            reg.set(
                format!("{p}.pred.predicted_noncritical"),
                c.predictor.predicted_noncritical,
            );
        }
        for (b, writes) in self.bank_writes.iter().enumerate() {
            let p = format!("llc.bank[{b}]");
            reg.set(format!("{p}.writes"), *writes);
            if let Some(cs) = self.l3_banks.get(b) {
                cs.register(&mut reg, &p);
            }
            if let Some(bs) = self.bank_service.get(b) {
                bs.register(&mut reg, &p);
            }
            // Only compressed schemes carry these banks, so uncompressed
            // manifests are unchanged.
            if let Some(cb) = self.compress_banks.get(b) {
                cb.register(&mut reg, &p);
            }
        }
        self.hierarchy.register(&mut reg, "hierarchy");
        self.noc.register(&mut reg, "noc");
        self.dram.register(&mut reg, "dram");
        self.coherence.register(&mut reg, "coherence");
        self.wear.register(&mut reg, "wear", endurance);
        // Write-variation CVs over the L3 slot geometry: inter-set (what
        // coloring-style remaps flatten) and intra-set (what write-aware
        // replacement flattens).
        let assoc = self.config.l3_bank.assoc;
        reg.set("wear.interset_cv", self.wear.interset_cv(assoc));
        reg.set("wear.intraset_cv", self.wear.intraset_cv(assoc));
        // Cell-granularity spread across sub-block positions — what the
        // rotating compressed-write mask flattens. Only meaningful (and
        // only emitted) when sub-block accounting is on.
        if self.wear.subblocks_per_slot() != 0 {
            reg.set("wear.subblock_cv", self.wear.subblock_cv());
        }
        reg
    }
}

/// The simulated machine: configuration, cores, workload sources, criticality
/// predictors and the shared memory system.
pub struct System {
    cfg: SystemConfig,
    cores: Vec<CoreModel>,
    sources: Vec<Box<dyn InstrSource>>,
    predictors: Vec<Box<dyn CriticalityPredictor>>,
    /// The shared memory system (public for inspection).
    pub mem: MemoryHierarchy,
    now: Cycle,
    measure_start: Cycle,
}

impl System {
    /// Build a system. `sources` must provide one instruction stream per
    /// core; `predictors` one criticality predictor per core (use
    /// [`System::never_critical`] for schemes without criticality logic).
    ///
    /// # Panics
    /// Panics when the source/predictor counts do not match `cfg.n_cores`.
    pub fn new(
        cfg: SystemConfig,
        policy: Box<dyn LlcPlacement>,
        sources: Vec<Box<dyn InstrSource>>,
        predictors: Vec<Box<dyn CriticalityPredictor>>,
    ) -> Self {
        cfg.validate();
        assert_eq!(
            sources.len(),
            cfg.n_cores,
            "one instruction source per core"
        );
        assert_eq!(predictors.len(), cfg.n_cores, "one predictor per core");
        System {
            cores: (0..cfg.n_cores).map(|i| CoreModel::new(i, &cfg)).collect(),
            sources,
            predictors,
            mem: MemoryHierarchy::new(&cfg, policy),
            cfg,
            now: 0,
            measure_start: 0,
        }
    }

    /// A vector of [`NeverCritical`] predictors sized for `cfg`.
    pub fn never_critical(cfg: &SystemConfig) -> Vec<Box<dyn CriticalityPredictor>> {
        (0..cfg.n_cores)
            .map(|_| Box::new(NeverCritical) as Box<dyn CriticalityPredictor>)
            .collect()
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Run every core for `instr_per_core` further instructions; returns
    /// when the last core drains.
    ///
    /// Event-driven: cores register their next wake cycle in an
    /// [`EventWheel`](crate::event::EventWheel) and only the cores due at
    /// the popped cycle are stepped. Cores due at the same cycle step in
    /// ascending core-id order — the same deterministic order the
    /// poll-everything loop used, so the two advance schemes execute
    /// identically.
    ///
    /// # Panics
    /// Panics if time fails to advance between event batches (a
    /// non-advancing event queue means a substrate bug; this is checked
    /// in release builds too), or if the system livelocks, after a
    /// generous cycle bound of `10_000 × instr_per_core + 1_000_000`.
    pub fn run(&mut self, instr_per_core: u64) {
        let bound = self
            .now
            .saturating_add(10_000u64.saturating_mul(instr_per_core) + 1_000_000);
        for c in &mut self.cores {
            c.add_budget(instr_per_core);
        }
        let mut wheel = crate::event::EventWheel::new(self.now);
        for i in 0..self.cores.len() {
            wheel.schedule(self.now, i as u32);
        }
        let mut due: Vec<u32> = Vec::with_capacity(self.cores.len());
        let mut first = true;
        while let Some(cycle) = wheel.pop_due(&mut due) {
            // Time must advance: the first batch fires at the current
            // cycle, every later one strictly after it. A wheel handing
            // back the past (or the present, twice) would silently corrupt
            // timing, so this stays on in release builds.
            assert!(
                if first {
                    cycle >= self.now
                } else {
                    cycle > self.now
                },
                "event time must advance: wheel popped cycle {cycle} at now={}",
                self.now
            );
            first = false;
            self.now = cycle;
            assert!(
                self.now < bound,
                "simulation exceeded {bound} cycles for {instr_per_core} instructions/core — livelock?"
            );
            // Every resource reservation a step makes starts at or after the
            // dispatch cycle, and `now` is monotone — so the hierarchy's
            // busy calendars can drop everything ending before this point.
            self.mem.set_time_floor(self.now);
            for &i in &due {
                let i = i as usize;
                let nxt = self.cores[i].step(
                    self.now,
                    self.sources[i].as_mut(),
                    self.predictors[i].as_mut(),
                    &mut self.mem,
                );
                if nxt != Cycle::MAX {
                    assert!(nxt > self.now, "core {i} scheduled a non-future wake {nxt}");
                    wheel.schedule(nxt, i as u32);
                }
            }
            due.clear();
        }
    }

    /// Run a warm-up phase of `instr_per_core` instructions and then reset
    /// all statistics (cache/TLB/predictor/policy *state* is preserved).
    pub fn warmup(&mut self, instr_per_core: u64) {
        self.run(instr_per_core);
        self.mem.reset_stats();
        for c in &mut self.cores {
            c.reset_stats();
        }
        self.measure_start = self.now;
    }

    /// Functionally install each source's `warm_ranges` into the hierarchy
    /// (checkpoint-style cache warming; see
    /// [`InstrSource::warm_ranges`]).
    /// Call before `warmup`/`run` — statistics accumulated here are wiped
    /// by the warm-up reset.
    pub fn prewarm(&mut self) {
        use crate::types::{line_of, phys_addr, LINE_BYTES};
        let pf = self.mem.prefetcher_enabled();
        self.mem.set_prefetcher_enabled(false);
        for core in 0..self.cores.len() {
            for (start, bytes) in self.sources[core].warm_ranges() {
                let first = line_of(start);
                let last = line_of(start + bytes.saturating_sub(1));
                for line in first..=last {
                    let phys = phys_addr(core, line * LINE_BYTES);
                    self.mem.prewarm_fill(core, phys);
                }
            }
        }
        self.mem.set_prefetcher_enabled(pf);
        self.mem.reset_stats();
    }

    /// Extract the results of the measurement window (call after `run`).
    pub fn result(&self) -> SimResult {
        let per_core = (0..self.cores.len())
            .map(|i| {
                let core = &self.cores[i];
                let cs = core.stats;
                let ms = self.mem.per_core_stats(i);
                let cycles = core
                    .finished_at()
                    .unwrap_or(self.now)
                    .saturating_sub(self.measure_start)
                    .max(1);
                let kinstr = cs.committed.get() as f64 / 1000.0;
                CoreResult {
                    label: self.sources[i].label().to_owned(),
                    committed: cs.committed.get(),
                    cycles,
                    ipc: cs.committed.get() as f64 / cycles as f64,
                    mpki: if kinstr > 0.0 {
                        ms.l3_misses as f64 / kinstr
                    } else {
                        0.0
                    },
                    wpki: if kinstr > 0.0 {
                        ms.l2_writebacks as f64 / kinstr
                    } else {
                        0.0
                    },
                    l3_hit_rate: ms.l3_hit_rate(),
                    core_stats: cs,
                    mem_stats: ms,
                    predictor: self.predictors[i].stats(),
                    tlb: core.tlb_stats(),
                    l1: self.mem.l1_stats(i),
                    l2: self.mem.l2_stats(i),
                }
            })
            .collect();
        SimResult {
            scheme: self.mem.policy_name(),
            cycles: (self.now - self.measure_start).max(1),
            per_core,
            bank_writes: self.mem.wear.bank_totals().to_vec(),
            wear: self.mem.wear.clone(),
            hierarchy: self.mem.stats,
            noc: self.mem.mesh.stats,
            dram: self.mem.dram.stats,
            coherence: self.mem.dir.stats,
            l3_banks: (0..self.cfg.n_banks)
                .map(|b| self.mem.l3_stats(b))
                .collect(),
            bank_service: self.mem.banks.stats_vec(),
            compress_banks: self.mem.compress_stats_vec(),
            config: self.cfg,
        }
    }

    /// Convenience: warm up, measure, and return results in one call.
    pub fn run_measured(&mut self, warmup: u64, measure: u64) -> SimResult {
        self.warmup(warmup);
        self.run(measure);
        self.result()
    }

    /// Per-core access to a predictor (ablation statistics).
    pub fn predictor(&self, core: CoreId) -> &dyn CriticalityPredictor {
        self.predictors[core].as_ref()
    }

    /// Per-core access to core stats.
    pub fn core_stats(&self, core: CoreId) -> CoreStats {
        self.cores[core].stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{CyclicSource, Instr};
    use crate::placement::{AccessMeta, LlcPlacement};
    use crate::types::BankId;

    struct Striped {
        nbanks: usize,
    }
    impl LlcPlacement for Striped {
        fn name(&self) -> &'static str {
            "striped"
        }
        fn lookup_bank(&mut self, m: &AccessMeta) -> BankId {
            (m.line as usize) & (self.nbanks - 1)
        }
        fn fill_bank(&mut self, m: &AccessMeta) -> BankId {
            (m.line as usize) & (self.nbanks - 1)
        }
    }

    fn alu_heavy_source() -> Box<dyn InstrSource> {
        Box::new(CyclicSource::new(
            "alu",
            vec![
                Instr::Alu { latency: 1 },
                Instr::Alu { latency: 1 },
                Instr::Alu { latency: 1 },
                Instr::Load { vaddr: 64, pc: 1 },
            ],
        ))
    }

    fn stream_source(span_lines: u64) -> Box<dyn InstrSource> {
        let instrs: Vec<Instr> = (0..span_lines)
            .flat_map(|i| {
                vec![
                    Instr::Load {
                        vaddr: i * 64,
                        pc: 2,
                    },
                    Instr::Alu { latency: 1 },
                ]
            })
            .collect();
        Box::new(CyclicSource::new("stream", instrs))
    }

    fn build(n: usize, sources: Vec<Box<dyn InstrSource>>) -> System {
        let cfg = SystemConfig::small(n);
        let preds = System::never_critical(&cfg);
        System::new(cfg, Box::new(Striped { nbanks: n }), sources, preds)
    }

    #[test]
    fn four_cores_run_to_completion() {
        let sources = (0..4).map(|_| alu_heavy_source()).collect();
        let mut sys = build(4, sources);
        sys.run(2_000);
        let r = sys.result();
        assert_eq!(r.per_core.len(), 4);
        for c in &r.per_core {
            assert_eq!(c.committed, 2_000);
            assert!(c.ipc > 0.5, "ipc {}", c.ipc);
        }
        assert!(r.total_ipc() > 2.0);
    }

    #[test]
    fn warmup_resets_statistics_but_keeps_caches() {
        let sources = (0..4).map(|_| alu_heavy_source()).collect();
        let mut sys = build(4, sources);
        sys.warmup(1_000);
        // After warm-up the hot line is cached: the measured window has
        // (nearly) no L3 misses and zero wear.
        assert_eq!(sys.mem.wear.total_writes(), 0);
        sys.run(1_000);
        let r = sys.result();
        assert_eq!(r.per_core[0].committed, 1_000);
        assert_eq!(
            r.per_core[0].mem_stats.l3_misses, 0,
            "hot line must be warm"
        );
    }

    #[test]
    fn streaming_cores_generate_misses_and_wear() {
        // Streams larger than L3: 4 cores x 1 MB L3 span... use 3x the
        // total L3 (4 banks x 2MB = 8MB -> 128K lines); span 64K lines/core
        // with 4 cores = 16 MB total footprint.
        let sources = (0..4).map(|_| stream_source(65_536)).collect();
        let mut sys = build(4, sources);
        sys.run(20_000);
        let r = sys.result();
        assert!(
            r.per_core[0].mpki > 100.0,
            "stream mpki {}",
            r.per_core[0].mpki
        );
        assert!(sys.mem.wear.total_writes() > 10_000);
        // Striped placement: bank write counts within 2x of each other.
        let totals = r.bank_writes.clone();
        let max = *totals.iter().max().unwrap() as f64;
        let min = *totals.iter().min().unwrap() as f64;
        assert!(
            max / min.max(1.0) < 2.0,
            "striping should balance: {totals:?}"
        );
    }

    #[test]
    fn result_metrics_are_consistent() {
        let sources = (0..4).map(|_| stream_source(1024)).collect();
        let mut sys = build(4, sources);
        let r = sys.run_measured(500, 2_000);
        for c in &r.per_core {
            assert_eq!(c.committed, 2_000);
            assert!(c.mpki >= 0.0 && c.wpki >= 0.0);
            assert!(c.l3_hit_rate >= 0.0 && c.l3_hit_rate <= 1.0);
            assert!(c.cycles > 0);
        }
        // Total L3 writes equal wear-tracked writes.
        assert_eq!(r.hierarchy.l3_writes.get(), r.wear.total_writes());
    }

    #[test]
    #[should_panic(expected = "one instruction source per core")]
    fn source_count_mismatch_rejected() {
        let cfg = SystemConfig::small(4);
        let preds = System::never_critical(&cfg);
        System::new(cfg, Box::new(Striped { nbanks: 4 }), vec![], preds);
    }

    #[test]
    fn single_core_system_works() {
        let mut sys = build(1, vec![alu_heavy_source()]);
        sys.run(1_000);
        assert_eq!(sys.result().per_core[0].committed, 1_000);
    }

    #[test]
    fn time_advances_monotonically_across_runs() {
        let mut sys = build(1, vec![alu_heavy_source()]);
        sys.run(100);
        let t1 = sys.now();
        sys.run(100);
        assert!(sys.now() > t1);
    }
}
