//! The instruction stream interface between workloads and cores.

use crate::types::Pc;

/// One dynamic instruction produced by a workload model.
///
/// The simulator is trace-driven: it does not interpret opcodes, it only
/// needs to know whether an instruction touches memory (and where) and how
/// long its execution latency is. `Alu` covers every non-memory instruction
/// class; long-latency units (FP divide, etc.) are modelled by the workload
/// choosing a larger `latency`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instr {
    /// A non-memory instruction completing `latency` cycles after dispatch.
    Alu {
        /// Execution latency in cycles (≥ 1).
        latency: u8,
    },
    /// A load from `vaddr`, issued by static instruction `pc`.
    Load {
        /// Virtual (per-application) byte address.
        vaddr: u64,
        /// Program counter of the load.
        pc: Pc,
    },
    /// A store to `vaddr`, issued by static instruction `pc`.
    Store {
        /// Virtual (per-application) byte address.
        vaddr: u64,
        /// Program counter of the store.
        pc: Pc,
    },
}

impl Instr {
    /// Whether this instruction accesses memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }

    /// Whether this instruction is a load.
    pub fn is_load(&self) -> bool {
        matches!(self, Instr::Load { .. })
    }
}

/// An infinite stream of instructions for one core.
///
/// Implementors are the synthetic application models in the `workloads`
/// crate; tests use small closures/arrays. The stream must be infinite —
/// the instruction *budget* is enforced by the core model, not the source.
pub trait InstrSource {
    /// Produce the next dynamic instruction.
    fn next_instr(&mut self) -> Instr;

    /// Consume a run of up to `max` consecutive single-cycle ALU
    /// instructions in one call, returning the run length (possibly 0).
    ///
    /// This is the batched fast path for the dominant instruction class:
    /// the core dispatches the `n` returned instructions as `Alu
    /// { latency: 1 }` without a per-instruction virtual call. The stream
    /// is unchanged — the source must buffer the first non-run instruction
    /// it drew past the run's end and return it from the next
    /// [`next_instr`](Self::next_instr) call. The default implementation
    /// returns 0 (no batching), which is always correct.
    fn next_alu_run(&mut self, max: u32) -> u32 {
        let _ = max;
        0
    }

    /// Short label for reports ("mcf", "streamL", …).
    fn label(&self) -> &str {
        "anonymous"
    }

    /// Virtual-address ranges `(start, bytes)` that should be resident in
    /// the cache hierarchy before measurement begins.
    ///
    /// The paper warms caches by simulating 100 M instructions after a 2 B
    /// fast-forward; at this reproduction's much shorter instruction
    /// budgets, cache-resident working sets (the hot and mid regions of the
    /// synthetic models) would otherwise spend the whole measured window
    /// faulting in. `System::prewarm` installs these ranges functionally —
    /// the checkpoint-restore equivalent — before the timed warm-up, and
    /// all statistics (including wear) are reset afterwards.
    fn warm_ranges(&self) -> Vec<(u64, u64)> {
        Vec::new()
    }
}

/// A trivially repeating instruction source for tests and benchmarks.
#[derive(Clone, Debug)]
pub struct CyclicSource {
    instrs: Vec<Instr>,
    pos: usize,
    name: String,
}

impl CyclicSource {
    /// Cycle through `instrs` forever.
    ///
    /// # Panics
    /// Panics on an empty instruction list.
    pub fn new(name: impl Into<String>, instrs: Vec<Instr>) -> Self {
        assert!(!instrs.is_empty(), "CyclicSource needs at least one instr");
        CyclicSource {
            instrs,
            pos: 0,
            name: name.into(),
        }
    }
}

impl InstrSource for CyclicSource {
    fn next_instr(&mut self) -> Instr {
        let i = self.instrs[self.pos];
        self.pos = (self.pos + 1) % self.instrs.len();
        i
    }

    fn label(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instr_classification() {
        assert!(Instr::Load { vaddr: 0, pc: 0 }.is_mem());
        assert!(Instr::Load { vaddr: 0, pc: 0 }.is_load());
        assert!(Instr::Store { vaddr: 0, pc: 0 }.is_mem());
        assert!(!Instr::Store { vaddr: 0, pc: 0 }.is_load());
        assert!(!Instr::Alu { latency: 1 }.is_mem());
    }

    #[test]
    fn cyclic_source_repeats() {
        let mut s = CyclicSource::new(
            "t",
            vec![Instr::Alu { latency: 1 }, Instr::Load { vaddr: 64, pc: 7 }],
        );
        assert_eq!(s.next_instr(), Instr::Alu { latency: 1 });
        assert_eq!(s.next_instr(), Instr::Load { vaddr: 64, pc: 7 });
        assert_eq!(s.next_instr(), Instr::Alu { latency: 1 });
        assert_eq!(s.label(), "t");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_cyclic_source_rejected() {
        CyclicSource::new("t", vec![]);
    }
}
