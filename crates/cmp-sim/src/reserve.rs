//! Busy-interval reservation for shared timed resources.
//!
//! The hierarchy computes an access's timing functionally: path segments
//! (mesh links, DRAM banks, channel buses) are reserved at *future* times,
//! and accesses from different cores interleave in dispatch order, not in
//! resource-time order. A single `next_free` scalar per resource would make
//! an earlier-time request queue behind a later-time reservation; keeping
//! the (few) busy intervals per resource and inserting into the earliest
//! fitting gap models the queueing correctly.
//!
//! Intervals are sorted, disjoint, and merged when touching. Entries older
//! than a horizon far beyond any path latency are garbage-collected by the
//! owner (see [`gc`]).

use crate::types::Cycle;

/// One resource's reservation calendar: sorted, disjoint busy intervals.
pub type Calendar = Vec<(Cycle, Cycle)>;

/// Backward-scan budget before falling back to a binary search for the
/// live boundary: the tail of intervals still relevant at `now` is almost
/// always just the handful of in-flight reservations, so a short reverse
/// walk from the end beats a `log n` probe over the (mostly dead) history.
const TAIL_SCAN: usize = 64;

/// Reserve the earliest `hold`-cycle gap at or after `now`. Returns the
/// start of the granted slot. Zero-length holds return `now` untouched.
///
/// `floor` is the caller's promise that no future call on this calendar
/// will use a smaller `now`: intervals ending at or before it are dead and
/// are dropped inline, so a floor that tracks simulation time (see
/// [`MemoryHierarchy::set_time_floor`](crate::hierarchy::MemoryHierarchy::set_time_floor))
/// keeps each calendar down to its handful of live in-flight reservations.
/// Callers without such a promise pass 0 and rely on the owner's
/// slack-horizon [`gc`] instead; dead history is then skipped per call —
/// reservations arrive in near-time-order, so the live boundary is found
/// with a short backward scan from the end (binary-search fallback for
/// pathological tails).
pub fn reserve(busy: &mut Calendar, now: Cycle, hold: Cycle, floor: Cycle) -> Cycle {
    // A floor ahead of `now` breaks the promise the floor encodes: an
    // interval that ends in (now, floor] is still live for this request
    // but would be dropped as dead history, silently un-queueing it.
    debug_assert!(
        floor <= now,
        "reserve: floor {floor} > now {now} would drop live intervals"
    );
    if hold == 0 {
        return now;
    }
    // Append fast path: the request starts at or after every booked
    // interval, so the grant is immediate — no gap scan, no shifting
    // insert. With a live floor this is the overwhelmingly common case
    // (reservations arrive in near-time-order).
    match busy.last() {
        None => {
            busy.push((now, now + hold));
            return now;
        }
        Some(&(_, end)) if end <= now => {
            if end <= floor {
                // Whole calendar is dead history: truncate in place, no
                // element shifting.
                busy.clear();
                busy.push((now, now + hold));
                return now;
            }
            if busy[0].1 <= floor {
                let dead = busy.iter().take_while(|&&(_, e)| e <= floor).count();
                busy.drain(..dead);
            }
            match busy.last_mut() {
                // Touching intervals merge, exactly as the slow path does.
                Some(last) if last.1 == now => last.1 = now + hold,
                _ => busy.push((now, now + hold)),
            }
            return now;
        }
        _ => {}
    }
    let dead = busy.iter().take_while(|&&(_, end)| end <= floor).count();
    if dead > 0 {
        busy.drain(..dead);
    }
    let mut t = now;
    let scan_floor = busy.len().saturating_sub(TAIL_SCAN);
    let mut first = busy.len();
    while first > scan_floor && busy[first - 1].1 > now {
        first -= 1;
    }
    if first == scan_floor && first > 0 && busy[first - 1].1 > now {
        first = busy.partition_point(|&(_, end)| end <= now);
    }
    let mut idx = busy.len();
    for (i, &(start, end)) in busy.iter().enumerate().skip(first) {
        if end <= t {
            continue;
        }
        if t + hold <= start {
            idx = i;
            break;
        }
        t = end;
    }
    busy.insert(idx, (t, t + hold));
    // Merge touching neighbours to keep calendars compact.
    if idx + 1 < busy.len() && busy[idx].1 >= busy[idx + 1].0 {
        busy[idx].1 = busy[idx].1.max(busy[idx + 1].1);
        busy.remove(idx + 1);
    }
    if idx > 0 && busy[idx - 1].1 >= busy[idx].0 {
        busy[idx - 1].1 = busy[idx - 1].1.max(busy[idx].1);
        busy.remove(idx);
    }
    t
}

/// Drop intervals that ended before `horizon` (no future request can start
/// earlier than the horizon, so they can never matter again).
pub fn gc(busy: &mut Calendar, horizon: Cycle) {
    let keep_from = busy.partition_point(|&(_, end)| end < horizon);
    if keep_from > 0 {
        busy.drain(..keep_from);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal(intervals: &[(Cycle, Cycle)]) -> Calendar {
        intervals.to_vec()
    }

    #[test]
    fn empty_calendar_grants_immediately() {
        let mut c = Calendar::new();
        assert_eq!(reserve(&mut c, 100, 10, 0), 100);
        assert_eq!(c, cal(&[(100, 110)]));
    }

    #[test]
    fn fits_into_gap_before_future_reservation() {
        let mut c = cal(&[(1000, 1010)]);
        assert_eq!(reserve(&mut c, 0, 10, 0), 0);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0], (0, 10));
    }

    #[test]
    fn too_small_gap_skipped() {
        let mut c = cal(&[(5, 10), (12, 20)]);
        // A 3-cycle hold at t=10 fits in [10,12)? No: 10+3 > 12 -> after 20.
        assert_eq!(reserve(&mut c, 10, 3, 0), 20);
    }

    #[test]
    fn exact_gap_used() {
        let mut c = cal(&[(5, 10), (12, 20)]);
        assert_eq!(reserve(&mut c, 10, 2, 0), 10);
        // Touching intervals merged: (5,10)+(10,12)+(12,20) -> one.
        assert_eq!(c, cal(&[(5, 20)]));
    }

    #[test]
    fn queues_behind_overlapping_interval() {
        let mut c = cal(&[(0, 50)]);
        assert_eq!(reserve(&mut c, 10, 5, 0), 50);
        assert_eq!(c, cal(&[(0, 55)]));
    }

    #[test]
    fn zero_hold_is_free() {
        let mut c = cal(&[(0, 50)]);
        assert_eq!(reserve(&mut c, 10, 0, 0), 10);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn gc_drops_stale_intervals() {
        let mut c = cal(&[(0, 10), (20, 30), (40, 50)]);
        gc(&mut c, 35);
        assert_eq!(c, cal(&[(40, 50)]));
        gc(&mut c, 1000);
        assert!(c.is_empty());
    }

    #[test]
    fn floor_drops_dead_prefix_without_changing_grants() {
        // Two calendars fed the same requests, one with a tracking floor:
        // grants must agree while the floored calendar stays short.
        let mut plain = Calendar::new();
        let mut floored = Calendar::new();
        let mut x: u64 = 0x5DEECE66D;
        let mut now = 0u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            now += (x >> 33) % 30;
            let ahead = (x >> 50) % 200; // future path-segment reservation
            let hold = 1 + (x >> 40) % 20;
            assert_eq!(
                reserve(&mut plain, now + ahead, hold, 0),
                reserve(&mut floored, now + ahead, hold, now),
            );
        }
        assert!(plain.len() >= floored.len());
        assert!(
            floored.len() < 64,
            "floored calendar must stay near its live set: {}",
            floored.len()
        );
    }

    #[test]
    fn append_fast_path_drains_partially_dead_calendar() {
        // busy[0] is dead history (ends at or before the floor) but the
        // tail is live: the append fast path must drop exactly the dead
        // prefix and keep the live tail intact.
        let mut c = cal(&[(0, 10), (20, 30)]);
        assert_eq!(reserve(&mut c, 40, 5, 15), 40);
        assert_eq!(c, cal(&[(20, 30), (40, 45)]));

        // Same shape, but the new reservation touches the live tail: the
        // drain must compose with the touching-interval merge.
        let mut c = cal(&[(0, 10), (20, 30)]);
        assert_eq!(reserve(&mut c, 30, 5, 15), 30);
        assert_eq!(c, cal(&[(20, 35)]));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "floor")]
    fn floor_ahead_of_now_is_rejected() {
        let mut c = cal(&[(0, 50)]);
        reserve(&mut c, 10, 5, 20);
    }

    #[test]
    fn reservations_never_overlap_property() {
        // Deterministic pseudo-random stress: invariants hold throughout.
        let mut c = Calendar::new();
        let mut x: u64 = 0x12345;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let now = (x >> 33) % 10_000;
            let hold = 1 + (x >> 50) % 40;
            let t = reserve(&mut c, now, hold, 0);
            assert!(t >= now);
            for w in c.iter().zip(c.iter().skip(1)) {
                assert!(w.0 .1 <= w.1 .0, "overlap: {:?} then {:?}", w.0, w.1);
                assert!(w.0 .0 < w.0 .1);
            }
        }
    }
}
