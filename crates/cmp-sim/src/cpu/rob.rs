//! The Reorder Buffer: a fixed-capacity ring of in-flight instructions.
//!
//! Out-of-order cores execute instructions in any order but *commit* them in
//! program order through the ROB. The Re-NUCA criticality definition lives
//! exactly here (paper §IV.A): *"A load issued by a processor is considered
//! critical if it blocks the head of the ROB"* — a load whose data has not
//! returned when it reaches the ROB head stalls every younger, ready
//! instruction behind it.

use crate::types::{Cycle, Pc};

/// One in-flight instruction.
#[derive(Clone, Copy, Debug)]
pub struct RobEntry {
    /// Cycle at which this instruction's result is ready to commit.
    pub complete_at: Cycle,
    /// PC (meaningful for loads; 0 otherwise).
    pub pc: Pc,
    /// Whether this is a load (criticality tracking applies).
    pub is_load: bool,
    /// Set the first time this entry blocks the ROB head, so the
    /// `robBlockCount` of its PC is incremented once per dynamic load.
    pub blocked_head: bool,
    /// The criticality prediction made for this load at issue (for
    /// accuracy accounting at commit).
    pub predicted_critical: bool,
}

/// Fixed-capacity circular reorder buffer.
#[derive(Clone, Debug)]
pub struct Rob {
    entries: Vec<RobEntry>,
    head: usize,
    len: usize,
}

impl Rob {
    /// A ROB with `capacity` entries (Table I: 128; sensitivity: 168).
    ///
    /// # Panics
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB needs at least one entry");
        Rob {
            entries: vec![
                RobEntry {
                    complete_at: 0,
                    pc: 0,
                    is_load: false,
                    blocked_head: false,
                    predicted_critical: false,
                };
                capacity
            ],
            head: 0,
            len: 0,
        }
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ROB holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether dispatch must stall.
    pub fn is_full(&self) -> bool {
        self.len == self.entries.len()
    }

    /// Dispatch an instruction into the tail.
    ///
    /// # Panics
    /// Panics when full — the core model must check `is_full` first.
    pub fn push(&mut self, entry: RobEntry) {
        assert!(!self.is_full(), "ROB overflow");
        // head + len wraps at most once past capacity, so a compare beats
        // the hardware divide a runtime `%` would cost on every dispatch.
        let mut tail = self.head + self.len;
        if tail >= self.entries.len() {
            tail -= self.entries.len();
        }
        self.entries[tail] = entry;
        self.len += 1;
    }

    /// The oldest in-flight instruction, if any.
    pub fn head(&self) -> Option<&RobEntry> {
        (self.len > 0).then(|| &self.entries[self.head])
    }

    /// Mutable access to the oldest entry (to set `blocked_head`).
    pub fn head_mut(&mut self) -> Option<&mut RobEntry> {
        (self.len > 0).then(|| &mut self.entries[self.head])
    }

    /// Commit (remove) the oldest instruction.
    ///
    /// # Panics
    /// Panics when empty.
    pub fn pop_head(&mut self) -> RobEntry {
        assert!(self.len > 0, "ROB underflow");
        let e = self.entries[self.head];
        self.head += 1;
        if self.head == self.entries.len() {
            self.head = 0;
        }
        self.len -= 1;
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(complete_at: Cycle, pc: Pc) -> RobEntry {
        RobEntry {
            complete_at,
            pc,
            is_load: true,
            blocked_head: false,
            predicted_critical: false,
        }
    }

    #[test]
    fn fifo_order() {
        let mut rob = Rob::new(4);
        rob.push(load(10, 1));
        rob.push(load(20, 2));
        assert_eq!(rob.len(), 2);
        assert_eq!(rob.pop_head().pc, 1);
        assert_eq!(rob.pop_head().pc, 2);
        assert!(rob.is_empty());
    }

    #[test]
    fn wraps_around() {
        let mut rob = Rob::new(2);
        rob.push(load(1, 1));
        rob.push(load(2, 2));
        assert!(rob.is_full());
        rob.pop_head();
        rob.push(load(3, 3));
        assert_eq!(rob.pop_head().pc, 2);
        assert_eq!(rob.pop_head().pc, 3);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn push_when_full_panics() {
        let mut rob = Rob::new(1);
        rob.push(load(1, 1));
        rob.push(load(2, 2));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn pop_when_empty_panics() {
        Rob::new(1).pop_head();
    }

    #[test]
    fn head_mut_marks_blocked() {
        let mut rob = Rob::new(2);
        rob.push(load(100, 7));
        assert!(!rob.head().unwrap().blocked_head);
        rob.head_mut().unwrap().blocked_head = true;
        assert!(rob.head().unwrap().blocked_head);
    }

    #[test]
    fn capacity_reported() {
        assert_eq!(Rob::new(128).capacity(), 128);
        assert_eq!(Rob::new(168).capacity(), 168);
    }
}
