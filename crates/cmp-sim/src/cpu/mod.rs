//! Trace-driven out-of-order core model.
//!
//! The model reproduces the microarchitectural behaviour the paper's
//! mechanism depends on, at a fraction of a full OoO simulator's cost:
//!
//! * a real ROB ([`rob::Rob`]) with in-order commit and configurable
//!   fetch/commit widths,
//! * loads issue to the memory hierarchy at dispatch and complete when the
//!   hierarchy returns their data — a load that reaches the ROB head before
//!   its data arrives **blocks the head**, which is exactly the signal the
//!   Re-NUCA criticality predictor consumes,
//! * memory-level parallelism is bounded by an MSHR file: at most
//!   `mshrs_per_core` outstanding L1-miss loads; a load to an
//!   already-outstanding line coalesces onto the existing miss,
//! * stores retire through a write buffer (complete one cycle after
//!   dispatch; their cache/wear side effects are applied immediately),
//! * a per-core data TLB charges page-walk latency on first touch of a page.
//!
//! Register dependences are not tracked; serialized miss chains are instead
//! produced by the workload models' burstiness parameter (see the
//! `workloads` crate and DESIGN.md §2).

pub mod rob;

use crate::hierarchy::MemoryHierarchy;
use crate::instr::{Instr, InstrSource};
use crate::placement::CriticalityPredictor;
use crate::tlb::Tlb;
use crate::types::{line_of, page_of, phys_addr, CoreId, Cycle};
use rob::{Rob, RobEntry};
use sim_stats::Counter;

/// Per-core execution statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoreStats {
    /// Instructions committed.
    pub committed: Counter,
    /// Instructions dispatched.
    pub dispatched: Counter,
    /// Loads dispatched.
    pub loads: Counter,
    /// Stores dispatched.
    pub stores: Counter,
    /// Dynamic loads that blocked the ROB head at least once.
    pub loads_blocked_head: Counter,
    /// Committed loads (denominator for the non-critical-load fraction).
    pub loads_committed: Counter,
    /// Cycles the ROB head was blocked by an incomplete load.
    pub head_stall_cycles: Counter,
    /// Dispatch stalls due to a full MSHR file (cycles).
    pub mshr_stall_cycles: Counter,
    /// Criticality-prediction accuracy accounting (evaluated at commit):
    /// predicted critical & blocked head.
    pub pred_true_pos: Counter,
    /// Predicted critical & did not block.
    pub pred_false_pos: Counter,
    /// Predicted non-critical & did not block.
    pub pred_true_neg: Counter,
    /// Predicted non-critical & blocked head (a missed critical load).
    pub pred_false_neg: Counter,
}

impl CoreStats {
    /// Fraction of committed loads that never blocked the ROB head — the
    /// paper's Figure 5 metric.
    pub fn noncritical_load_fraction(&self) -> f64 {
        let blocked = self.loads_blocked_head.get() as f64;
        let total = self.loads_committed.get() as f64;
        if total == 0.0 {
            0.0
        } else {
            1.0 - blocked / total
        }
    }

    /// Recall of actually-critical loads: of the committed loads that
    /// blocked the ROB head, the fraction the predictor had marked critical
    /// at issue — the paper's Figure 7 "criticality prediction accuracy".
    pub fn critical_recall(&self) -> f64 {
        let tp = self.pred_true_pos.get() as f64;
        let fneg = self.pred_false_neg.get() as f64;
        if tp + fneg == 0.0 {
            0.0
        } else {
            tp / (tp + fneg)
        }
    }

    /// Overall prediction accuracy (both classes).
    pub fn prediction_accuracy(&self) -> f64 {
        let correct = self.pred_true_pos.get() + self.pred_true_neg.get();
        let total = correct + self.pred_false_pos.get() + self.pred_false_neg.get();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Register every counter plus the derived criticality metrics under
    /// `<prefix>.committed`, `<prefix>.dispatched`, `<prefix>.loads`, … and
    /// `<prefix>.noncritical_load_fraction`, `<prefix>.critical_recall`,
    /// `<prefix>.prediction_accuracy`.
    pub fn register(&self, reg: &mut sim_stats::StatsRegistry, prefix: &str) {
        reg.set(format!("{prefix}.committed"), self.committed.get());
        reg.set(format!("{prefix}.dispatched"), self.dispatched.get());
        reg.set(format!("{prefix}.loads"), self.loads.get());
        reg.set(format!("{prefix}.stores"), self.stores.get());
        reg.set(
            format!("{prefix}.loads_blocked_head"),
            self.loads_blocked_head.get(),
        );
        reg.set(
            format!("{prefix}.loads_committed"),
            self.loads_committed.get(),
        );
        reg.set(
            format!("{prefix}.head_stall_cycles"),
            self.head_stall_cycles.get(),
        );
        reg.set(
            format!("{prefix}.mshr_stall_cycles"),
            self.mshr_stall_cycles.get(),
        );
        reg.set(format!("{prefix}.pred_true_pos"), self.pred_true_pos.get());
        reg.set(
            format!("{prefix}.pred_false_pos"),
            self.pred_false_pos.get(),
        );
        reg.set(format!("{prefix}.pred_true_neg"), self.pred_true_neg.get());
        reg.set(
            format!("{prefix}.pred_false_neg"),
            self.pred_false_neg.get(),
        );
        reg.set(
            format!("{prefix}.noncritical_load_fraction"),
            self.noncritical_load_fraction(),
        );
        reg.set(format!("{prefix}.critical_recall"), self.critical_recall());
        reg.set(
            format!("{prefix}.prediction_accuracy"),
            self.prediction_accuracy(),
        );
    }
}

/// An outstanding L1 miss (MSHR entry).
#[derive(Clone, Copy, Debug)]
struct Mshr {
    line: u64,
    complete_at: Cycle,
}

/// One out-of-order core.
pub struct CoreModel {
    id: CoreId,
    rob: Rob,
    fetch_width: usize,
    commit_width: usize,
    stall_threshold: Cycle,
    mshr_cap: usize,
    mshrs: Vec<Mshr>,
    dtlb: Tlb<()>,
    /// Instruction budget for the current measurement (dispatch stops when
    /// `dispatched` reaches it).
    budget: u64,
    /// An instruction fetched but not yet dispatched (MSHR stall).
    pending: Option<Instr>,
    /// Single-cycle ALU instructions already drawn from the source (via
    /// [`InstrSource::next_alu_run`]) and awaiting dispatch.
    alu_run: u32,
    /// Cycle the core finished its budget (ROB drained), if it has.
    finished_at: Option<Cycle>,
    /// Execution statistics.
    pub stats: CoreStats,
}

impl CoreModel {
    /// Build a core from the system configuration.
    pub fn new(id: CoreId, cfg: &crate::config::SystemConfig) -> Self {
        CoreModel {
            id,
            rob: Rob::new(cfg.rob_entries),
            fetch_width: cfg.fetch_width,
            commit_width: cfg.commit_width,
            stall_threshold: cfg.criticality_stall_threshold,
            mshr_cap: cfg.mshrs_per_core,
            mshrs: Vec::with_capacity(cfg.mshrs_per_core),
            dtlb: Tlb::new(cfg.tlb_entries, cfg.tlb_assoc, cfg.page_walk_latency),
            budget: 0,
            pending: None,
            alu_run: 0,
            finished_at: None,
            stats: CoreStats::default(),
        }
    }

    /// Core id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Grant `n` more instructions of budget and clear the finished flag.
    pub fn add_budget(&mut self, n: u64) {
        self.budget = self.stats.dispatched.get() + n;
        self.finished_at = None;
    }

    /// Whether the budget is exhausted and the ROB has drained.
    pub fn is_done(&self) -> bool {
        self.finished_at.is_some()
    }

    /// Cycle at which the core drained, if done.
    pub fn finished_at(&self) -> Option<Cycle> {
        self.finished_at
    }

    /// TLB statistics (hit rate, walks).
    pub fn tlb_stats(&self) -> crate::tlb::TlbStats {
        self.dtlb.stats
    }

    /// Reset measurement statistics (budget boundary). Microarchitectural
    /// state — ROB, MSHRs, TLB contents — is preserved.
    pub fn reset_stats(&mut self) {
        self.stats = CoreStats::default();
        self.dtlb.reset_stats();
    }

    /// Advance this core by one cycle at time `now`. Returns the next cycle
    /// at which the core needs attention (`Cycle::MAX` when done).
    pub fn step(
        &mut self,
        now: Cycle,
        src: &mut dyn InstrSource,
        pred: &mut dyn CriticalityPredictor,
        mem: &mut MemoryHierarchy,
    ) -> Cycle {
        self.commit(now, pred, &mut mem.trace);
        let dispatch_blocked = self.dispatch(now, src, pred, mem);

        if self.budget_done() && self.rob.is_empty() {
            if self.finished_at.is_none() {
                self.finished_at = Some(now);
            }
            return Cycle::MAX;
        }
        // When nothing can happen until a memory response arrives, skip
        // ahead: the earliest interesting cycle is the head's completion
        // (commit progress) or an MSHR release (dispatch progress).
        let can_dispatch_now = !self.budget_done() && !self.rob.is_full() && !dispatch_blocked;
        if can_dispatch_now {
            return now + 1;
        }
        let mut next = self.rob.head().map(|h| h.complete_at).unwrap_or(Cycle::MAX);
        if dispatch_blocked {
            for m in &self.mshrs {
                next = next.min(m.complete_at);
            }
        }
        next.max(now + 1)
    }

    #[inline]
    fn budget_done(&self) -> bool {
        self.stats.dispatched.get() >= self.budget
    }

    /// In-order commit of completed instructions, plus head-stall tracking.
    fn commit(
        &mut self,
        now: Cycle,
        pred: &mut dyn CriticalityPredictor,
        trace: &mut sim_stats::TraceBuffer,
    ) {
        for _ in 0..self.commit_width {
            let Some(head) = self.rob.head() else { break };
            if head.complete_at > now {
                // Head not done. If it is a load, this is a head-of-ROB
                // block — the criticality event.
                if head.is_load {
                    self.stats.head_stall_cycles.inc();
                    // A load counts as *blocking* only when the remaining
                    // stall exceeds the threshold (see
                    // `SystemConfig::criticality_stall_threshold`): brief
                    // skews between overlapped miss returns are performance
                    // noise, not criticality.
                    let threshold = self.stall_threshold;
                    let head = self.rob.head_mut().expect("head exists");
                    if !head.blocked_head && head.complete_at - now > threshold {
                        head.blocked_head = true;
                        let pc = head.pc;
                        self.stats.loads_blocked_head.inc();
                        pred.on_rob_block(pc);
                        trace.record(sim_stats::TraceEvent::RobBlock {
                            cycle: now,
                            core: self.id as u32,
                            pc: pc as u64,
                        });
                    }
                }
                break;
            }
            let e = self.rob.pop_head();
            self.stats.committed.inc();
            if e.is_load {
                self.stats.loads_committed.inc();
                pred.on_load_commit(e.pc, e.blocked_head);
                match (e.predicted_critical, e.blocked_head) {
                    (true, true) => self.stats.pred_true_pos.inc(),
                    (true, false) => self.stats.pred_false_pos.inc(),
                    (false, false) => self.stats.pred_true_neg.inc(),
                    (false, true) => self.stats.pred_false_neg.inc(),
                }
            }
        }
    }

    /// Dispatch up to `fetch_width` instructions. Returns true when
    /// dispatch stalled on a full MSHR file.
    fn dispatch(
        &mut self,
        now: Cycle,
        src: &mut dyn InstrSource,
        pred: &mut dyn CriticalityPredictor,
        mem: &mut MemoryHierarchy,
    ) -> bool {
        // Free completed MSHRs.
        self.mshrs.retain(|m| m.complete_at > now);

        /// Longest ALU run requested from the source in one call. Runs are
        /// drawn eagerly but dispatched under the same width/ROB/budget
        /// limits as unbatched instructions, so the bound only caps how far
        /// ahead of dispatch the source stream is materialized.
        const ALU_RUN_MAX: u32 = 1024;

        for _ in 0..self.fetch_width {
            if self.rob.is_full() || self.budget_done() {
                return false;
            }
            // Fast path: single-cycle ALU instructions from a batched run
            // dispatch without a source call or `Instr` round-trip. The
            // ROB entry is identical to the `Instr::Alu { latency: 1 }`
            // arm below.
            if self.alu_run > 0 {
                self.alu_run -= 1;
                self.rob.push(RobEntry {
                    complete_at: now + 1,
                    pc: 0,
                    is_load: false,
                    blocked_head: false,
                    predicted_critical: false,
                });
                self.stats.dispatched.inc();
                continue;
            }
            let instr = match self.pending.take() {
                Some(i) => i,
                None => {
                    let run = src.next_alu_run(ALU_RUN_MAX);
                    if run > 0 {
                        // First instruction of the run fills this slot; the
                        // rest wait in `alu_run` for later slots/cycles.
                        self.alu_run = run - 1;
                        self.rob.push(RobEntry {
                            complete_at: now + 1,
                            pc: 0,
                            is_load: false,
                            blocked_head: false,
                            predicted_critical: false,
                        });
                        self.stats.dispatched.inc();
                        continue;
                    }
                    src.next_instr()
                }
            };
            match instr {
                Instr::Alu { latency } => {
                    self.rob.push(RobEntry {
                        complete_at: now + latency.max(1) as Cycle,
                        pc: 0,
                        is_load: false,
                        blocked_head: false,
                        predicted_critical: false,
                    });
                    self.stats.dispatched.inc();
                }
                Instr::Store { vaddr, pc } => {
                    let phys = phys_addr(self.id, vaddr);
                    let tlb = self.dtlb.access(page_of(phys), |_| ());
                    // Stores retire through the write buffer: architectural
                    // completion is immediate; the cache/wear side effects
                    // happen now, off the critical path.
                    mem.store(self.id, phys, pc, now + tlb.latency);
                    self.rob.push(RobEntry {
                        complete_at: now + 1,
                        pc,
                        is_load: false,
                        blocked_head: false,
                        predicted_critical: false,
                    });
                    self.stats.dispatched.inc();
                    self.stats.stores.inc();
                }
                Instr::Load { vaddr, pc } => {
                    let phys = phys_addr(self.id, vaddr);
                    let line = line_of(phys);
                    // Coalesce onto an outstanding miss for the same line.
                    if let Some(m) = self.mshrs.iter().find(|m| m.line == line) {
                        let critical = pred.predict(pc);
                        self.rob.push(RobEntry {
                            complete_at: m.complete_at,
                            pc,
                            is_load: true,
                            blocked_head: false,
                            predicted_critical: critical,
                        });
                        self.stats.dispatched.inc();
                        self.stats.loads.inc();
                        continue;
                    }
                    // A new L1 miss needs an MSHR; stall dispatch if the
                    // file is full (bounded memory-level parallelism). The
                    // L1 probe is pure, so it only runs in the full case.
                    if self.mshrs.len() >= self.mshr_cap && !mem.l1_contains(self.id, line) {
                        self.pending = Some(instr);
                        self.stats.mshr_stall_cycles.inc();
                        return true;
                    }
                    let critical = pred.predict(pc);
                    let tlb = self.dtlb.access(page_of(phys), |_| ());
                    let out = mem.load(self.id, phys, pc, critical, now + tlb.latency);
                    let complete_at = now + tlb.latency + out.latency;
                    if !out.l1_hit {
                        self.mshrs.push(Mshr { line, complete_at });
                    }
                    self.rob.push(RobEntry {
                        complete_at,
                        pc,
                        is_load: true,
                        blocked_head: false,
                        predicted_critical: critical,
                    });
                    self.stats.dispatched.inc();
                    self.stats.loads.inc();
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::hierarchy::MemoryHierarchy;
    use crate::instr::CyclicSource;
    use crate::placement::{AccessMeta, LlcPlacement, NeverCritical};
    use crate::types::Pc;

    /// Minimal static placement for substrate tests: bank 0 always.
    struct Bank0;
    impl LlcPlacement for Bank0 {
        fn name(&self) -> &'static str {
            "bank0"
        }
        fn lookup_bank(&mut self, _m: &AccessMeta) -> usize {
            0
        }
        fn fill_bank(&mut self, _m: &AccessMeta) -> usize {
            0
        }
    }

    fn setup() -> (CoreModel, MemoryHierarchy) {
        let cfg = SystemConfig::small(1);
        let core = CoreModel::new(0, &cfg);
        let mem = MemoryHierarchy::new(&cfg, Box::new(Bank0));
        (core, mem)
    }

    fn run_core(
        core: &mut CoreModel,
        mem: &mut MemoryHierarchy,
        src: &mut dyn InstrSource,
        budget: u64,
    ) -> Cycle {
        let mut pred = NeverCritical;
        core.add_budget(budget);
        let mut now = 0;
        let mut guard = 0u64;
        while !core.is_done() {
            let next = core.step(now, src, &mut pred, mem);
            now = next.min(now + 1).max(now + 1);
            if next != Cycle::MAX {
                now = next;
            }
            guard += 1;
            assert!(guard < 10_000_000, "core livelocked");
        }
        core.finished_at().unwrap()
    }

    #[test]
    fn alu_only_ipc_is_commit_width() {
        let (mut core, mut mem) = setup();
        let mut src = CyclicSource::new("alu", vec![Instr::Alu { latency: 1 }]);
        let end = run_core(&mut core, &mut mem, &mut src, 4000);
        let ipc = 4000.0 / end as f64;
        assert!(
            ipc > 3.0 && ipc <= 4.0,
            "ALU-only IPC should approach the width of 4, got {ipc}"
        );
        assert_eq!(core.stats.committed.get(), 4000);
    }

    #[test]
    fn isolated_miss_blocks_rob_head() {
        let (mut core, mut mem) = setup();
        // One load to a far line between long ALU runs: the load's DRAM
        // latency dwarfs the ROB drain time, so it must block the head.
        let mut instrs = vec![Instr::Load {
            vaddr: 1 << 20,
            pc: 42,
        }];
        instrs.extend(std::iter::repeat(Instr::Alu { latency: 1 }).take(511));
        let mut src = CyclicSource::new("miss", instrs);
        run_core(&mut core, &mut mem, &mut src, 512);
        assert_eq!(core.stats.loads.get(), 1);
        assert_eq!(
            core.stats.loads_blocked_head.get(),
            1,
            "a DRAM-latency load must block the ROB head"
        );
        // head_stall_cycles is an *observed* count (the system skips ahead
        // while fully stalled), so just require that some stall was seen.
        assert!(core.stats.head_stall_cycles.get() >= 1);
    }

    #[test]
    fn l1_hits_do_not_block_head() {
        let (mut core, mut mem) = setup();
        // Loads to a single line: first access misses, the rest hit L1.
        let mut src = CyclicSource::new(
            "hot",
            vec![
                Instr::Load { vaddr: 0, pc: 1 },
                Instr::Alu { latency: 1 },
                Instr::Alu { latency: 1 },
                Instr::Alu { latency: 1 },
            ],
        );
        run_core(&mut core, &mut mem, &mut src, 4000);
        // Only the first (cold) load should have blocked.
        assert!(
            core.stats.loads_blocked_head.get() <= 1,
            "L1-hit loads must not block: {}",
            core.stats.loads_blocked_head.get()
        );
        let frac = core.stats.noncritical_load_fraction();
        assert!(frac > 0.99, "noncritical fraction {frac}");
    }

    #[test]
    fn mshr_limits_outstanding_misses() {
        let (mut core, mut mem) = setup();
        // A pure streaming load pattern: every line distinct.
        let loads: Vec<Instr> = (0..64u64)
            .map(|i| Instr::Load {
                vaddr: i * 64 * 512,
                pc: 5,
            })
            .collect();
        let mut src = CyclicSource::new("stream", loads);
        run_core(&mut core, &mut mem, &mut src, 64);
        assert!(
            core.stats.mshr_stall_cycles.get() > 0,
            "64 distinct misses must exhaust 8 MSHRs"
        );
    }

    #[test]
    fn coalesced_loads_share_completion() {
        let (mut core, mut mem) = setup();
        // Two loads to the same line back-to-back: one miss, one coalesce.
        let mut instrs = vec![
            Instr::Load { vaddr: 4096, pc: 1 },
            Instr::Load {
                vaddr: 4096 + 8,
                pc: 2,
            },
        ];
        instrs.extend(std::iter::repeat(Instr::Alu { latency: 1 }).take(126));
        let mut src = CyclicSource::new("coal", instrs);
        run_core(&mut core, &mut mem, &mut src, 128);
        assert_eq!(core.stats.loads.get(), 2);
        // Only one hierarchy access happened for the pair: the L1 sees one
        // demand miss for that line.
        assert_eq!(mem.per_core_stats(0).l1_misses, 1);
    }

    #[test]
    fn burst_of_misses_blocks_head_once() {
        let (mut core, mut mem) = setup();
        // 8 distinct-line misses dispatched back-to-back, then ALU work.
        // They overlap in the memory system; only the first (oldest) should
        // block the head — the rest complete under its shadow.
        let mut instrs: Vec<Instr> = (0..8u64)
            .map(|i| Instr::Load {
                vaddr: (1 << 22) + i * 64,
                pc: 10 + i as Pc,
            })
            .collect();
        instrs.extend(std::iter::repeat(Instr::Alu { latency: 1 }).take(1016));
        let mut src = CyclicSource::new("burst", instrs);
        run_core(&mut core, &mut mem, &mut src, 1024);
        assert!(
            core.stats.loads_blocked_head.get() <= 3,
            "most burst loads must resolve in the shadow of the first: {} blocked",
            core.stats.loads_blocked_head.get()
        );
    }

    #[test]
    fn budget_exhaustion_finishes_core() {
        let (mut core, mut mem) = setup();
        let mut src = CyclicSource::new("alu", vec![Instr::Alu { latency: 1 }]);
        let end = run_core(&mut core, &mut mem, &mut src, 100);
        assert!(core.is_done());
        assert_eq!(core.stats.dispatched.get(), 100);
        assert_eq!(core.stats.committed.get(), 100);
        assert!(end > 0);
        // Granting more budget reactivates the core.
        core.add_budget(50);
        assert!(!core.is_done());
    }

    #[test]
    fn prediction_accounting_at_commit() {
        let (mut core, mut mem) = setup();
        struct Always(bool);
        impl CriticalityPredictor for Always {
            fn predict(&mut self, _: Pc) -> bool {
                self.0
            }
            fn on_rob_block(&mut self, _: Pc) {}
            fn on_load_commit(&mut self, _: Pc, _: bool) {}
        }
        let mut pred = Always(true);
        // One isolated DRAM miss: actually critical, predicted critical.
        let mut instrs = vec![Instr::Load {
            vaddr: 1 << 21,
            pc: 9,
        }];
        instrs.extend(std::iter::repeat(Instr::Alu { latency: 1 }).take(255));
        let mut src = CyclicSource::new("one", instrs);
        core.add_budget(256);
        let mut now = 0;
        while !core.is_done() {
            let next = core.step(now, &mut src, &mut pred, &mut mem);
            now = if next == Cycle::MAX { now + 1 } else { next };
        }
        assert_eq!(core.stats.pred_true_pos.get(), 1);
        assert_eq!(core.stats.pred_false_neg.get(), 0);
        assert!((core.stats.critical_recall() - 1.0).abs() < 1e-12);
    }
}
