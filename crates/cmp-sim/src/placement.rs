//! The interfaces between the substrate and the NUCA placement policies.
//!
//! The Re-NUCA paper's contribution is a *placement policy* (where in the
//! 16-bank L3 each cache block lives) plus a *criticality predictor* (which
//! loads matter for performance). Both are expressed here as traits so the
//! simulator is policy-agnostic; the concrete S-NUCA / R-NUCA / Private /
//! Naive / Re-NUCA implementations live in the `renuca-core` crate.

use crate::cache::ReplacementKind;
use crate::types::{BankId, CoreId, Cycle, Pc};

/// Why the LLC is being consulted about a line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LlcAccessKind {
    /// A demand fetch after an L2 miss (load or store-allocate).
    Demand,
    /// A dirty line written back from a private L2.
    Writeback,
}

/// Everything a placement policy may consider for one LLC access.
#[derive(Clone, Copy, Debug)]
pub struct AccessMeta {
    /// Requesting core.
    pub core: CoreId,
    /// Physical line address.
    pub line: u64,
    /// Page number of the line (`line >> 6`).
    pub page: u64,
    /// PC of the triggering load/store (0 for writebacks).
    pub pc: Pc,
    /// Access kind.
    pub kind: LlcAccessKind,
    /// Criticality prediction for the triggering load, made at issue time
    /// by the core's [`CriticalityPredictor`]. Always `false` for
    /// writebacks and store-allocates.
    pub predicted_critical: bool,
}

/// A last-level-cache placement policy.
///
/// The hierarchy calls `lookup_bank` to find where a line *would* live,
/// `fill_bank` to decide where a newly fetched line *will* live, and the
/// notification hooks so stateful policies (Re-NUCA's Mapping Bit Vector,
/// Naive's write counters and directory) can stay consistent.
pub trait LlcPlacement {
    /// Human-readable scheme name ("S-NUCA", "Re-NUCA", …).
    fn name(&self) -> &'static str;

    /// The bank to search for `meta.line`.
    fn lookup_bank(&mut self, meta: &AccessMeta) -> BankId;

    /// The bank a new fill of `meta.line` should be placed in. For static
    /// schemes this must equal `lookup_bank` for the same meta.
    fn fill_bank(&mut self, meta: &AccessMeta) -> BankId;

    /// A fill of `meta.line` actually happened into `bank`.
    fn on_fill(&mut self, meta: &AccessMeta, bank: BankId) {
        let _ = (meta, bank);
    }

    /// Any write (fill or writeback) landed in `bank`.
    fn on_l3_write(&mut self, bank: BankId) {
        let _ = bank;
    }

    /// `line` was evicted from `bank` (capacity replacement). Policies
    /// holding per-line residency state must clear it here — the paper's
    /// §IV.C: "When a cache line is being evicted, the corresponding MBV
    /// bit needs to be reset back to 0."
    fn on_evict(&mut self, line: u64, bank: BankId) {
        let _ = (line, bank);
    }

    /// Extra cycles charged on every LLC lookup before the bank access
    /// (e.g. the Naive oracle's global-directory indirection).
    fn lookup_overhead(&self) -> Cycle {
        0
    }

    /// A second bank to probe when `lookup_bank`'s misses, for policies
    /// whose lines can live in one of two places and that keep no per-line
    /// residency state (the MBV-less Re-NUCA ablation). The hierarchy
    /// charges a full serialized second probe — which is exactly the cost
    /// the paper's enhanced TLB exists to avoid (§IV.C).
    fn secondary_bank(&mut self, meta: &AccessMeta) -> Option<BankId> {
        let _ = meta;
        None
    }

    /// Victim-selection policy of the L3 banks this placement drives. The
    /// hierarchy queries this once at construction; replacement-policy
    /// schemes (MAC) override it while placement-only schemes keep the
    /// default true LRU. This keeps replacement a property of the scheme —
    /// no `SystemConfig` knob, no manifest churn.
    fn l3_replacement(&self) -> ReplacementKind {
        ReplacementKind::Lru
    }

    /// Compression model this placement drives, if any. The hierarchy
    /// queries this once at construction (like
    /// [`LlcPlacement::l3_replacement`]) and, when `Some`, keeps per-slot
    /// size-class state, charges sub-block wear masks instead of full-line
    /// writes, and services expansion re-fills through the bank model.
    /// Placement-only schemes keep the default — same pattern as the
    /// replacement hook: compression is a property of the scheme, not a
    /// `SystemConfig` switch.
    fn compression(&self) -> Option<compress::CompressSpec> {
        None
    }

    /// Concrete-type escape hatch for verification tooling: policies with
    /// inspectable internal state (Re-NUCA's Mapping Bit Vectors, the Naive
    /// oracle's directory and write counters) return `Some(self)` so the
    /// differential harness can downcast and compare that state against a
    /// reference model after a run. Stateless policies keep the default.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Statistics exposed by a criticality predictor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Loads predicted critical at issue.
    pub predicted_critical: u64,
    /// Loads predicted non-critical at issue.
    pub predicted_noncritical: u64,
}

/// A per-core load-criticality predictor.
///
/// The simulator core calls `predict` at load dispatch (the prediction
/// rides with the access down the hierarchy), `on_rob_block` the first time
/// a given dynamic load blocks the head of the ROB, and `on_load_commit`
/// when the load retires (the paper inserts new CPT entries at commit).
pub trait CriticalityPredictor {
    /// Predict whether the load at `pc` is performance-critical, and count
    /// the issue (paper: `numLoadsCount += 1` on a CPT hit).
    fn predict(&mut self, pc: Pc) -> bool;

    /// The dynamic load at `pc` blocked the ROB head (counted once per
    /// dynamic instance; paper: `robBlockCount += 1`).
    fn on_rob_block(&mut self, pc: Pc);

    /// The load at `pc` committed; `blocked` tells whether it ever blocked
    /// the ROB head. New CPT entries are inserted here.
    fn on_load_commit(&mut self, pc: Pc, blocked: bool);

    /// Issue-time prediction counters.
    fn stats(&self) -> PredictorStats {
        PredictorStats::default()
    }
}

/// The default predictor for schemes without criticality logic: predicts
/// every load non-critical and learns nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeverCritical;

impl CriticalityPredictor for NeverCritical {
    fn predict(&mut self, _pc: Pc) -> bool {
        false
    }
    fn on_rob_block(&mut self, _pc: Pc) {}
    fn on_load_commit(&mut self, _pc: Pc, _blocked: bool) {}
}

/// A predictor that marks every load critical (turns Re-NUCA into pure
/// R-NUCA; used in ablations and tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysCritical;

impl CriticalityPredictor for AlwaysCritical {
    fn predict(&mut self, _pc: Pc) -> bool {
        true
    }
    fn on_rob_block(&mut self, _pc: Pc) {}
    fn on_load_commit(&mut self, _pc: Pc, _blocked: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_critical_predicts_false() {
        let mut p = NeverCritical;
        assert!(!p.predict(123));
        p.on_rob_block(123);
        p.on_load_commit(123, true);
        assert_eq!(p.stats(), PredictorStats::default());
    }

    #[test]
    fn always_critical_predicts_true() {
        let mut p = AlwaysCritical;
        assert!(p.predict(0));
    }

    #[test]
    fn access_meta_is_copy() {
        let m = AccessMeta {
            core: 1,
            line: 2,
            page: 0,
            pc: 3,
            kind: LlcAccessKind::Demand,
            predicted_critical: true,
        };
        let m2 = m;
        assert_eq!(m.line, m2.line); // still usable: Copy
    }
}
