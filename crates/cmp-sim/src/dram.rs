//! DDR3-style main-memory model.
//!
//! Channels → ranks → banks with per-bank row buffers and an open-page
//! policy. Requests are serviced in arrival order per bank with row-hit
//! timing when the open row matches (a first-order approximation of the
//! FR-FCFS scheduler in the paper's Table I — true FR-FCFS reordering needs
//! future-request knowledge a single-pass functional model does not have;
//! with per-bank open rows and line-interleaved channels the row-hit rate
//! the reordering would create is largely captured by the address layout).
//!
//! All timings are in core cycles (see [`crate::config::DramConfig`]).

use crate::config::DramConfig;
use crate::reserve::{gc, reserve, Calendar};
use crate::types::Cycle;
use sim_stats::Counter;

/// Reservations older than this below the newest arrival are dropped.
const GC_SLACK: Cycle = 100_000;

/// Decomposed DRAM coordinates of a line address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramCoord {
    /// Channel index.
    pub channel: usize,
    /// Bank index within the channel (rank × banks_per_rank flattened).
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
}

/// DRAM statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct DramStats {
    /// Read requests serviced.
    pub reads: Counter,
    /// Write requests serviced.
    pub writes: Counter,
    /// Row-buffer hits.
    pub row_hits: Counter,
    /// Accesses to a closed bank (first touch of a row).
    pub row_empty: Counter,
    /// Row-buffer conflicts (precharge + activate needed).
    pub row_conflicts: Counter,
    /// Cycles requests spent queued behind busy banks/buses.
    pub queue_cycles: Counter,
}

impl DramStats {
    /// Row-hit rate over all accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.reads.get() + self.writes.get();
        self.row_hits.ratio(total)
    }

    /// Register every counter plus the derived row-hit rate under
    /// `<prefix>.reads`, `<prefix>.writes`, `<prefix>.row_hits`,
    /// `<prefix>.row_empty`, `<prefix>.row_conflicts`,
    /// `<prefix>.queue_cycles`, `<prefix>.row_hit_rate`.
    pub fn register(&self, reg: &mut sim_stats::StatsRegistry, prefix: &str) {
        reg.set(format!("{prefix}.reads"), self.reads.get());
        reg.set(format!("{prefix}.writes"), self.writes.get());
        reg.set(format!("{prefix}.row_hits"), self.row_hits.get());
        reg.set(format!("{prefix}.row_empty"), self.row_empty.get());
        reg.set(format!("{prefix}.row_conflicts"), self.row_conflicts.get());
        reg.set(format!("{prefix}.queue_cycles"), self.queue_cycles.get());
        reg.set(format!("{prefix}.row_hit_rate"), self.row_hit_rate());
    }
}

#[derive(Clone, Debug, Default)]
struct BankState {
    open_row: Option<u64>,
    busy: Calendar,
}

/// The memory system: all channels and banks.
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<BankState>,
    /// Per-channel data-bus reservation calendars.
    bus: Vec<Calendar>,
    /// Largest arrival time seen (garbage-collection horizon).
    max_now: Cycle,
    /// Horizon of the last GC sweep (amortization).
    last_gc: Cycle,
    /// Monotone time floor (see [`Dram::set_floor`]): reservations ending
    /// at or before it are dropped inline by [`reserve`].
    floor: Cycle,
    /// Line-address bit layout derived from the config.
    col_bits: u32,
    bank_bits: u32,
    chan_mask: u64,
    /// Event counters.
    pub stats: DramStats,
}

impl Dram {
    /// Build the memory system.
    ///
    /// # Panics
    /// Panics unless channel count and banks-per-channel are powers of two
    /// (the address decomposition uses masks).
    pub fn new(cfg: DramConfig) -> Self {
        let banks_per_channel = cfg.ranks * cfg.banks_per_rank;
        assert!(cfg.channels.is_power_of_two(), "channels must be pow2");
        assert!(
            banks_per_channel.is_power_of_two(),
            "ranks*banks_per_rank must be pow2"
        );
        let lines_per_row = cfg.row_bytes / crate::types::LINE_BYTES;
        assert!(lines_per_row.is_power_of_two() && lines_per_row > 0);
        Dram {
            banks: vec![BankState::default(); cfg.channels * banks_per_channel],
            bus: vec![Calendar::new(); cfg.channels],
            max_now: 0,
            last_gc: 0,
            floor: 0,
            col_bits: lines_per_row.trailing_zeros(),
            bank_bits: banks_per_channel.trailing_zeros(),
            chan_mask: cfg.channels as u64 - 1,
            cfg,
            stats: DramStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Promise that no future [`Dram::access`] will arrive before `now`.
    /// Bank and bus calendars drop reservations ending at or before the
    /// floor inline, keeping them down to the live in-flight set. Callers
    /// that cannot make the promise simply never call this; the
    /// slack-horizon GC in `access` still bounds calendar growth.
    pub fn set_floor(&mut self, now: Cycle) {
        self.floor = self.floor.max(now);
    }

    /// Address decomposition: `line = [row | bank | column | channel]`.
    ///
    /// Channel bits are lowest so consecutive lines stripe across channels
    /// (maximizing bandwidth for streams); column bits next so that lines
    /// within one channel stay in one row (row-buffer locality); banks and
    /// rows above.
    pub fn coord_of(&self, line: u64) -> DramCoord {
        let channel = (line & self.chan_mask) as usize;
        let rest = line >> self.chan_mask.count_ones();
        let col_mask = (1u64 << self.col_bits) - 1;
        let _col = rest & col_mask;
        let rest2 = rest >> self.col_bits;
        let bank = (rest2 & ((1u64 << self.bank_bits) - 1)) as usize;
        let row = rest2 >> self.bank_bits;
        DramCoord { channel, bank, row }
    }

    /// Service a request for `line` arriving at `now`. Returns the cycle
    /// the data transfer completes. `is_write` requests occupy the same
    /// resources but are counted separately (they are fire-and-forget for
    /// the caller — nobody waits on a DRAM write).
    pub fn access(&mut self, line: u64, is_write: bool, now: Cycle) -> Cycle {
        if now > self.max_now {
            self.max_now = now;
            let horizon = self.max_now.saturating_sub(GC_SLACK);
            if horizon > self.last_gc + GC_SLACK / 4 {
                self.last_gc = horizon;
                for b in &mut self.banks {
                    gc(&mut b.busy, horizon);
                }
                for bus in &mut self.bus {
                    gc(bus, horizon);
                }
            }
        }
        let c = self.coord_of(line);
        let banks_per_channel = self.cfg.ranks * self.cfg.banks_per_rank;
        let bank_idx = c.channel * banks_per_channel + c.bank;
        let bank = &mut self.banks[bank_idx];

        // Row-buffer state is tracked in arrival order — an approximation,
        // since the functional-timing model visits requests slightly out of
        // resource-time order; row-hit rates are first-order correct.
        let row_hit = bank.open_row == Some(c.row);
        let array_latency = match bank.open_row {
            Some(r) if r == c.row => {
                self.stats.row_hits.inc();
                self.cfg.t_cas
            }
            None => {
                self.stats.row_empty.inc();
                self.cfg.t_rcd + self.cfg.t_cas
            }
            Some(_) => {
                self.stats.row_conflicts.inc();
                self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas
            }
        };
        bank.open_row = Some(c.row);
        // Bank occupancy: column accesses to an open row pipeline at
        // CAS-to-CAS (= burst) spacing, so a row hit holds the bank for one
        // burst time; precharge/activate sequences occupy it for the full
        // array latency plus the transfer.
        let bank_hold = if row_hit {
            self.cfg.t_burst
        } else {
            array_latency + self.cfg.t_burst
        };
        let start = reserve(&mut bank.busy, now, bank_hold, self.floor);
        let data_ready = start + array_latency;
        // The 64B transfer needs the channel's data bus.
        let xfer_start = reserve(
            &mut self.bus[c.channel],
            data_ready,
            self.cfg.t_burst,
            self.floor,
        );
        let done = xfer_start + self.cfg.t_burst;
        self.stats.queue_cycles.add(start - now);
        if is_write {
            self.stats.writes.inc();
        } else {
            self.stats.reads.inc();
        }
        done
    }

    /// Reset statistics and timing state (warm-up boundary). Open rows are
    /// preserved — they are cache-like state, not statistics.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
        for b in &mut self.banks {
            b.busy.clear();
        }
        self.bus.iter_mut().for_each(|b| b.clear());
        self.max_now = 0;
        self.last_gc = 0;
        self.floor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default())
    }

    #[test]
    fn coord_striping_across_channels() {
        let d = dram();
        // Consecutive lines hit consecutive channels.
        for line in 0..8u64 {
            assert_eq!(d.coord_of(line).channel, (line & 3) as usize);
        }
    }

    #[test]
    fn lines_within_channel_share_row() {
        let d = dram();
        // Lines 0, 4, 8, ... (same channel 0) share a row until the column
        // bits roll over (128 lines per 8KB row).
        let a = d.coord_of(0);
        let b = d.coord_of(4);
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank, b.bank);
        // 128 columns later: next bank.
        let c = d.coord_of(4 * 128);
        assert!(c.bank != a.bank || c.row != a.row);
    }

    #[test]
    fn first_access_pays_activate() {
        let mut d = dram();
        let cfg = *d.config();
        let done = d.access(0, false, 0);
        assert_eq!(done, cfg.t_rcd + cfg.t_cas + cfg.t_burst);
        assert_eq!(d.stats.row_empty.get(), 1);
    }

    #[test]
    fn row_hit_is_cheaper() {
        let mut d = dram();
        let cfg = *d.config();
        let t1 = d.access(0, false, 0);
        // Same row, issued after the first completes.
        let t2 = d.access(4, false, t1);
        assert_eq!(t2 - t1, cfg.t_cas + cfg.t_burst);
        assert_eq!(d.stats.row_hits.get(), 1);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut d = dram();
        let cfg = *d.config();
        let t1 = d.access(0, false, 0);
        // Different row, same bank: channel 0, bank 0, row 1.
        // row 1 starts at rest2 = 1<<bank_bits<<col_bits... construct via coord search.
        let mut conflict_line = None;
        for line in (0..1u64 << 24).step_by(4) {
            let c = d.coord_of(line);
            if c.channel == 0 && c.bank == 0 && c.row == 1 {
                conflict_line = Some(line);
                break;
            }
        }
        let line = conflict_line.expect("found a conflicting line");
        let t2 = d.access(line, false, t1);
        assert_eq!(t2 - t1, cfg.t_rp + cfg.t_rcd + cfg.t_cas + cfg.t_burst);
        assert_eq!(d.stats.row_conflicts.get(), 1);
    }

    #[test]
    fn bank_busy_queues_requests() {
        let mut d = dram();
        let t1 = d.access(0, false, 0);
        // Immediately request the same bank again: must wait.
        let t2 = d.access(4, false, 0);
        assert!(t2 > t1);
        assert!(d.stats.queue_cycles.get() > 0);
    }

    #[test]
    fn different_banks_overlap() {
        let mut d = dram();
        let t1 = d.access(0, false, 0); // chan 0 bank 0
        let t2 = d.access(1, false, 0); // chan 1 bank 0 — fully parallel
        assert_eq!(t1, t2);
    }

    #[test]
    fn channel_bus_serializes_transfers() {
        let mut d = dram();
        let cfg = *d.config();
        // Two requests to the same channel, different banks: arrays overlap
        // but the data bus serializes the bursts.
        let mut second_bank_line = None;
        for line in (0..1u64 << 24).step_by(4) {
            let c = d.coord_of(line);
            if c.channel == 0 && c.bank == 1 {
                second_bank_line = Some(line);
                break;
            }
        }
        let l2 = second_bank_line.unwrap();
        let t1 = d.access(0, false, 0);
        let t2 = d.access(l2, false, 0);
        assert_eq!(t2, t1 + cfg.t_burst, "bus hands over back-to-back");
    }

    #[test]
    fn writes_counted_separately() {
        let mut d = dram();
        d.access(0, true, 0);
        d.access(4, false, 100);
        assert_eq!(d.stats.writes.get(), 1);
        assert_eq!(d.stats.reads.get(), 1);
    }

    #[test]
    fn open_row_streaming_is_bus_limited() {
        // Back-to-back row hits to one bank pipeline at the burst rate, not
        // at CAS+burst: the hallmark of open-page streaming.
        let mut d = dram();
        let cfg = *d.config();
        let t1 = d.access(0, false, 0); // opens the row
        let t2 = d.access(4, false, t1); // hit, issued at t1
        let t3 = d.access(8, false, t1); // hit, queued behind t2
        assert_eq!(t2 - t1, cfg.t_cas + cfg.t_burst);
        assert_eq!(
            t3 - t2,
            cfg.t_burst,
            "second row hit must pipeline at burst spacing"
        );
    }

    #[test]
    fn row_hit_rate_reported() {
        let mut d = dram();
        let mut t = 0;
        for i in 0..10u64 {
            t = d.access(i * 4, false, t); // same channel, same row at first
        }
        assert!(d.stats.row_hit_rate() > 0.5);
    }
}
