//! The three-level memory hierarchy: private L1D and L2 per core, a shared
//! 16-bank NUCA L3 over the mesh, and DRAM behind it.
//!
//! This module owns every *state* effect of a memory access — cache
//! contents, inclusion, coherence-directory updates, ReRAM wear, DRAM row
//! buffers — and computes the *timing* of loads functionally: one call
//! returns the full latency of the access, with shared-resource contention
//! (mesh links, DRAM banks/buses) carried in `next_free` reservations.
//!
//! Writes into the L3 — the quantity whose spatial distribution the whole
//! paper is about — happen on exactly two paths, matching §III of the
//! paper: *"writes to the L3 caches come from both write backs from L2 and
//! a cache line fetch upon a L3 miss."* Both paths charge the
//! [`wear_model::WearTracker`] at the physical (set, way) slot that absorbs
//! the write, and notify the placement policy.
//!
//! Inclusion: L2 ⊇ L1 and L3 ⊇ L2. L3 evictions back-invalidate the private
//! copies through the MESI directory (and trigger the policy's `on_evict`,
//! which is what resets Re-NUCA's Mapping Bit Vector).

use crate::bank::LlcBanks;
use crate::cache::{LookupResult, SetAssocCache};
use crate::coherence::Directory;
use crate::config::{PrefetchConfig, SystemConfig};
use crate::dram::Dram;
use crate::noc::Mesh;
use crate::placement::{AccessMeta, LlcAccessKind, LlcPlacement};
use crate::table::FixedTable;
use crate::types::{page_of_line, BankId, CoreId, Cycle, Pc};
use sim_stats::{Counter, TraceBuffer, TraceEvent};
use wear_model::WearTracker;

/// Timing outcome of one core-side memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Total latency from issue to data return, in cycles.
    pub latency: Cycle,
    /// Whether the access hit in the L1 (MSHR allocation gate).
    pub l1_hit: bool,
}

/// Per-core hierarchy counters (the paper's WPKI / MPKI / hit-rate inputs).
#[derive(Clone, Copy, Debug, Default)]
pub struct PerCoreMemStats {
    /// L1 demand misses.
    pub l1_misses: u64,
    /// L2 demand misses (accesses that reached the L3).
    pub l3_accesses: u64,
    /// L3 hits for this core's demands.
    pub l3_hits: u64,
    /// L3 misses (lines fetched from memory) — MPKI numerator.
    pub l3_misses: u64,
    /// Dirty L2 lines written back into the L3 — WPKI numerator.
    pub l2_writebacks: u64,
}

impl PerCoreMemStats {
    /// L3 hit rate for this core.
    pub fn l3_hit_rate(&self) -> f64 {
        if self.l3_accesses == 0 {
            0.0
        } else {
            self.l3_hits as f64 / self.l3_accesses as f64
        }
    }

    /// Register every counter under `<prefix>.l1_misses`,
    /// `<prefix>.l3_accesses`, `<prefix>.l3_hits`, `<prefix>.l3_misses`,
    /// `<prefix>.l2_writebacks`.
    pub fn register(&self, reg: &mut sim_stats::StatsRegistry, prefix: &str) {
        reg.set(format!("{prefix}.l1_misses"), self.l1_misses);
        reg.set(format!("{prefix}.l3_accesses"), self.l3_accesses);
        reg.set(format!("{prefix}.l3_hits"), self.l3_hits);
        reg.set(format!("{prefix}.l3_misses"), self.l3_misses);
        reg.set(format!("{prefix}.l2_writebacks"), self.l2_writebacks);
    }
}

/// Global hierarchy counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct HierarchyStats {
    /// Fills into L3 banks (one per L3 miss).
    pub l3_fills: Counter,
    /// Fills whose triggering load was predicted non-critical (or was a
    /// store/writeback path) — Figure 8's numerator.
    pub l3_fills_noncritical: Counter,
    /// All writes into L3 banks (fills + L2 writebacks).
    pub l3_writes: Counter,
    /// L3 writes that landed in blocks recorded non-critical — Figure 9's
    /// numerator (requires `track_block_criticality`).
    pub l3_writes_noncritical: Counter,
    /// Dirty L3 victims written back to DRAM.
    pub l3_writebacks_to_dram: Counter,
    /// Lines invalidated in private caches by inclusive-L3 evictions.
    pub back_invalidations: Counter,
    /// Prefetches issued by the stride prefetchers.
    pub prefetches_issued: Counter,
    /// Prefetches that fetched a line from DRAM into L3+L2.
    pub prefetch_fills: Counter,
    /// Prefetches satisfied by an L3 hit (promoted into the L2).
    pub prefetch_l3_hits: Counter,
    /// Intra-bank set-mapping rotations performed.
    pub set_rotations: Counter,
    /// Lines flushed by rotations.
    pub rotation_flushes: Counter,
    /// Two-probe lookups issued (MBV-less policies).
    pub secondary_probes: Counter,
    /// Two-probe lookups that hit at the second bank.
    pub secondary_hits: Counter,
}

impl HierarchyStats {
    /// Register every counter under `<prefix>.<field>` (e.g.
    /// `hierarchy.l3_fills`), in declaration order.
    pub fn register(&self, reg: &mut sim_stats::StatsRegistry, prefix: &str) {
        reg.set(format!("{prefix}.l3_fills"), self.l3_fills.get());
        reg.set(
            format!("{prefix}.l3_fills_noncritical"),
            self.l3_fills_noncritical.get(),
        );
        reg.set(format!("{prefix}.l3_writes"), self.l3_writes.get());
        reg.set(
            format!("{prefix}.l3_writes_noncritical"),
            self.l3_writes_noncritical.get(),
        );
        reg.set(
            format!("{prefix}.l3_writebacks_to_dram"),
            self.l3_writebacks_to_dram.get(),
        );
        reg.set(
            format!("{prefix}.back_invalidations"),
            self.back_invalidations.get(),
        );
        reg.set(
            format!("{prefix}.prefetches_issued"),
            self.prefetches_issued.get(),
        );
        reg.set(
            format!("{prefix}.prefetch_fills"),
            self.prefetch_fills.get(),
        );
        reg.set(
            format!("{prefix}.prefetch_l3_hits"),
            self.prefetch_l3_hits.get(),
        );
        reg.set(format!("{prefix}.set_rotations"), self.set_rotations.get());
        reg.set(
            format!("{prefix}.rotation_flushes"),
            self.rotation_flushes.get(),
        );
        reg.set(
            format!("{prefix}.secondary_probes"),
            self.secondary_probes.get(),
        );
        reg.set(
            format!("{prefix}.secondary_hits"),
            self.secondary_hits.get(),
        );
    }
}

/// Per-bank compression counters, populated only when the placement policy
/// drives a [`compress::CompressSpec`] (see [`LlcPlacement::compression`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BankCompressStats {
    /// Writes (fills and writebacks) whose content compressed to each size
    /// class, indexed by `log2(class)`: `[class-1, class-2, class-4]`.
    pub class_writes: [u64; 3],
    /// In-place expansions: writebacks whose size class outgrew the slot's
    /// allocation, re-programming the line through an extra bank operation.
    pub expansions: u64,
}

impl BankCompressStats {
    /// Register every counter under `<prefix>.compress.<field>`.
    pub fn register(&self, reg: &mut sim_stats::StatsRegistry, prefix: &str) {
        for (i, &w) in self.class_writes.iter().enumerate() {
            reg.set(format!("{prefix}.compress.class{}_writes", 1u32 << i), w);
        }
        reg.set(format!("{prefix}.compress.expansions"), self.expansions);
    }
}

/// Per-slot compression bookkeeping for a compressed L3 (L2C2-style).
///
/// Each physical slot records the size class its resident line was last
/// *allocated* at and a write version (reset on fill) that drives both the
/// content model and the rotating sub-block mask. Allocation only grows in
/// place — a write that compresses smaller leaves the allocation alone (no
/// re-compaction), one that compresses larger triggers an expansion.
struct CompressState {
    spec: compress::CompressSpec,
    /// Allocated size class per physical slot, `[bank][slot]`.
    class: Vec<Vec<u8>>,
    /// Write version per physical slot, `[bank][slot]`.
    version: Vec<Vec<u32>>,
    stats: Vec<BankCompressStats>,
}

/// One stride-detector entry of a per-core prefetcher.
#[derive(Clone, Copy, Debug, Default)]
struct StreamEntry {
    last: u64,
    stride: i64,
    confidence: u8,
    lru: u64,
}

/// The full memory system below the cores.
pub struct MemoryHierarchy {
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    l3: Vec<SetAssocCache>,
    /// The mesh interconnect (public for traffic statistics).
    pub mesh: Mesh,
    /// The DRAM model (public for row-buffer statistics).
    pub dram: Dram,
    /// Per-bank L3 data-array service model: asymmetric read/write
    /// latencies plus busy-calendar occupancy (public for contention
    /// statistics).
    pub banks: LlcBanks,
    /// The MESI home directory.
    pub dir: Directory,
    /// ReRAM wear counters for the L3 banks.
    pub wear: WearTracker,
    /// Compressed-placement state, present iff the policy drives one.
    compress: Option<CompressState>,
    policy: Box<dyn LlcPlacement>,
    per_core: Vec<PerCoreMemStats>,
    /// Global counters.
    pub stats: HierarchyStats,
    /// Event trace. Disabled (zero-capacity, empty mask) by default so the
    /// record calls on the hot paths reduce to one branch each; enable by
    /// installing a configured [`TraceBuffer`] before running.
    pub trace: TraceBuffer,
    /// Criticality recorded per resident L3 line (Figure 9 bookkeeping),
    /// enabled by `SystemConfig::track_block_criticality`. Bounded by the
    /// L3 capacity (entries are removed on eviction).
    block_criticality: Option<FixedTable<bool>>,
    prefetch_cfg: PrefetchConfig,
    /// Per-core stride tables.
    streams: Vec<Vec<StreamEntry>>,
    stream_clock: u64,
    /// Intra-bank set-rotation threshold (writes per bank per step).
    rotation_writes: Option<u64>,
    /// Writes into each bank since its last rotation.
    writes_since_rotation: Vec<u64>,
    l1_latency: Cycle,
    l2_latency: Cycle,
    /// SRAM tag-check cost of an L3 bank: what a *miss* pays at the bank
    /// (hits overlap it with the data read, which `banks` times).
    l3_tag_latency: Cycle,
    ctrl_flits: u32,
    data_flits: u32,
    /// Mesh tile of each memory controller, indexed by DRAM channel.
    mc_tiles: Vec<usize>,
}

impl MemoryHierarchy {
    /// Build the hierarchy for `cfg` with the given L3 placement policy.
    pub fn new(cfg: &SystemConfig, policy: Box<dyn LlcPlacement>) -> Self {
        cfg.validate();
        let mesh = Mesh::new(cfg.noc);
        // Memory controllers sit at the mesh corners (or fewer tiles on
        // small test meshes), one per DRAM channel.
        let n = cfg.n_cores;
        let corners = [0, cfg.noc.cols - 1, n - cfg.noc.cols, n - 1];
        let mc_tiles = (0..cfg.dram.channels)
            .map(|c| corners[c % corners.len()])
            .collect();
        // Queried once at construction, like `l3_replacement` below: a
        // compressed policy switches the wear model to per-cell sub-block
        // accounting for the whole run.
        let compression = policy.compression();
        MemoryHierarchy {
            l1: (0..cfg.n_cores)
                .map(|_| SetAssocCache::new(cfg.l1, false))
                .collect(),
            l2: (0..cfg.n_cores)
                .map(|_| SetAssocCache::new(cfg.l2, false))
                .collect(),
            // The placement scheme owns L3 victim selection (MAC swaps in
            // write-aware replacement; everything else is true LRU).
            l3: (0..cfg.n_banks)
                .map(|_| {
                    SetAssocCache::with_replacement(cfg.l3_bank, true, policy.l3_replacement())
                })
                .collect(),
            mesh,
            dram: Dram::new(cfg.dram),
            banks: LlcBanks::new(cfg.n_banks, &cfg.l3_bank, cfg.l3_bank_occupancy),
            // Directory bound: the inclusive hierarchy caps tracked lines
            // at Σ L2 lines, plus one in-flight grant per core (a line is
            // granted before its L2 victim is evicted).
            dir: Directory::with_capacity(cfg.n_cores * cfg.l2.lines() + cfg.n_cores),
            wear: match compression {
                Some(spec) => {
                    WearTracker::with_subblocks(cfg.n_banks, cfg.l3_bank.lines(), spec.sub_blocks)
                }
                None => WearTracker::new(cfg.n_banks, cfg.l3_bank.lines()),
            },
            compress: compression.map(|spec| CompressState {
                spec,
                class: vec![vec![0; cfg.l3_bank.lines()]; cfg.n_banks],
                version: vec![vec![0; cfg.l3_bank.lines()]; cfg.n_banks],
                stats: vec![BankCompressStats::default(); cfg.n_banks],
            }),
            policy,
            per_core: vec![PerCoreMemStats::default(); cfg.n_cores],
            stats: HierarchyStats::default(),
            trace: TraceBuffer::disabled(),
            // Criticality-tracker bound: one entry per resident L3 line,
            // plus one in-flight fill per bank (the fill is recorded
            // before its victim is evicted).
            block_criticality: cfg.track_block_criticality.then(|| {
                let bound = cfg.n_banks * cfg.l3_bank.lines() + cfg.n_banks;
                FixedTable::with_capacity(bound.min(4096), bound)
            }),
            prefetch_cfg: cfg.prefetch,
            streams: vec![vec![StreamEntry::default(); cfg.prefetch.streams]; cfg.n_cores],
            stream_clock: 0,
            rotation_writes: cfg.intra_bank_rotation_writes,
            writes_since_rotation: vec![0; cfg.n_banks],
            l1_latency: cfg.l1.read_latency,
            l2_latency: cfg.l2.read_latency,
            l3_tag_latency: cfg.l3_bank.tag_latency,
            ctrl_flits: cfg.noc.ctrl_flits,
            data_flits: cfg.noc.data_flits,
            mc_tiles,
        }
    }

    /// The placement policy's display name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Access to the policy (ablation statistics).
    pub fn policy(&self) -> &dyn LlcPlacement {
        self.policy.as_ref()
    }

    /// Per-core counters.
    pub fn per_core_stats(&self, core: CoreId) -> PerCoreMemStats {
        self.per_core[core]
    }

    /// Whether `line` currently resides in `core`'s L1 (MSHR gating; no
    /// statistics or LRU side effects).
    pub fn l1_contains(&self, core: CoreId, line: u64) -> bool {
        self.l1[core].contains(line)
    }

    /// Promise that no future access will be dispatched before `now`
    /// (see [`crate::reserve::reserve`]). The event-driven run loop calls
    /// this on every time advance so mesh-link and DRAM calendars shed
    /// dead history inline instead of scanning past it on every
    /// reservation. Monotone and idempotent; resets with the stats.
    pub fn set_time_floor(&mut self, now: Cycle) {
        self.mesh.set_floor(now);
        self.dram.set_floor(now);
        self.banks.set_floor(now);
    }

    /// L3 occupancy across all banks (test/diagnostic helper).
    pub fn l3_occupancy(&self) -> usize {
        self.l3.iter().map(|b| b.occupancy()).sum()
    }

    /// Whether `line` is present in L3 bank `bank` (invariant checks).
    pub fn l3_bank_contains(&self, bank: BankId, line: u64) -> bool {
        self.l3[bank].contains(line)
    }

    /// The compression spec the placement policy drives, if any.
    pub fn compression_spec(&self) -> Option<compress::CompressSpec> {
        self.compress.as_ref().map(|c| c.spec)
    }

    /// One bank's compression counters (default/zero when compression is
    /// off).
    pub fn compress_stats(&self, bank: BankId) -> BankCompressStats {
        self.compress
            .as_ref()
            .map(|c| c.stats[bank])
            .unwrap_or_default()
    }

    /// All banks' compression counters; empty when compression is off.
    pub fn compress_stats_vec(&self) -> Vec<BankCompressStats> {
        self.compress
            .as_ref()
            .map(|c| c.stats.clone())
            .unwrap_or_default()
    }

    /// The `(allocated size class, write version)` of one physical L3
    /// slot, or `None` when compression is off (differential-harness
    /// state comparison; slots never filled read `(0, 0)`).
    pub fn compress_slot(&self, bank: BankId, slot: usize) -> Option<(u8, u32)> {
        self.compress
            .as_ref()
            .map(|c| (c.class[bank][slot], c.version[bank][slot]))
    }

    /// Charge one L3 data-array write of `line` at `(bank, slot)` against
    /// the wear model.
    ///
    /// Uncompressed: a full-line write. Compressed: the content model
    /// yields the write's size class and rotating sub-block mask; only
    /// those cells age. Returns `true` when a non-fill write outgrew the
    /// slot's allocated class — the caller must then service the expansion
    /// re-program through the bank model ([`LlcBanks::expand`]). The
    /// expansion itself charges *no* extra wear: the triggering write's
    /// mask already aged every cell this write touches.
    fn charge_l3_write(&mut self, bank: BankId, slot: usize, line: u64, is_fill: bool) -> bool {
        let Some(cs) = self.compress.as_mut() else {
            self.wear.record_write(bank, slot);
            return false;
        };
        if is_fill {
            // A fill installs fresh content: version restarts, and the
            // slot's allocation is exactly the fill's compressed size.
            cs.version[bank][slot] = 0;
        }
        let v = cs.version[bank][slot];
        let c = cs.spec.class_of(line, v);
        self.wear
            .record_subblock_write(bank, slot, cs.spec.mask_of(line, v));
        cs.stats[bank].class_writes[c.trailing_zeros() as usize] += 1;
        cs.version[bank][slot] = v + 1;
        if is_fill {
            cs.class[bank][slot] = c;
            return false;
        }
        let alloc = cs.class[bank][slot];
        let expand = if cs.spec.expand_on_equal {
            c >= alloc
        } else {
            c > alloc
        };
        if expand {
            cs.class[bank][slot] = c.max(alloc);
            cs.stats[bank].expansions += 1;
        }
        expand
    }

    /// A demand load from `core` for physical address `phys`.
    pub fn load(
        &mut self,
        core: CoreId,
        phys: u64,
        pc: Pc,
        predicted_critical: bool,
        now: Cycle,
    ) -> AccessOutcome {
        self.access(core, phys, pc, predicted_critical, false, now)
    }

    /// A store from `core` to physical address `phys` (write-allocate; the
    /// returned latency is off the critical path — stores retire through
    /// the write buffer).
    pub fn store(&mut self, core: CoreId, phys: u64, pc: Pc, now: Cycle) -> AccessOutcome {
        self.access(core, phys, pc, false, true, now)
    }

    fn access(
        &mut self,
        core: CoreId,
        phys: u64,
        pc: Pc,
        predicted_critical: bool,
        is_store: bool,
        now: Cycle,
    ) -> AccessOutcome {
        let line = crate::types::line_of(phys);

        // L1.
        if let LookupResult::Hit { .. } = self.l1[core].access(line, is_store) {
            return AccessOutcome {
                latency: self.l1_latency,
                l1_hit: true,
            };
        }
        self.per_core[core].l1_misses += 1;
        let mut latency = self.l1_latency + self.l2_latency;

        // L2.
        if let LookupResult::Hit { .. } = self.l2[core].access(line, false) {
            self.fill_l2_l1(core, line, is_store, now + latency);
            return AccessOutcome {
                latency,
                l1_hit: false,
            };
        }

        // L3 (NUCA).
        self.per_core[core].l3_accesses += 1;
        let meta = AccessMeta {
            core,
            line,
            page: page_of_line(line),
            pc,
            kind: LlcAccessKind::Demand,
            predicted_critical: predicted_critical && !is_store,
        };
        latency += self.policy.lookup_overhead();
        let bank = self.policy.lookup_bank(&meta);
        let t_req = self
            .mesh
            .traverse(core, bank, self.ctrl_flits, now + latency);

        // The bank that ends up sourcing the data (primary hit bank,
        // secondary-probe hit bank, or the fill bank on a miss): reply and
        // invalidation traffic must originate here, not at the primary
        // lookup bank.
        let mut serving_bank = bank;
        let data_at_core = if let LookupResult::Hit { .. } = self.l3[bank].access(line, false) {
            self.per_core[core].l3_hits += 1;
            // Hit: the SRAM tag check overlaps the data-array read; the
            // read queues behind any in-flight bank operation.
            let t_data = self.banks.read(bank, t_req);
            self.mesh.traverse(bank, core, self.data_flits, t_data)
        } else if let Some(hit_at) = self.probe_secondary(&meta, line, t_req) {
            // A residency-state-free policy found the line at its second
            // candidate bank after a full serialized extra probe.
            self.per_core[core].l3_hits += 1;
            serving_bank = hit_at.0;
            self.mesh
                .traverse(hit_at.0, core, self.data_flits, hit_at.1)
        } else {
            // L3 miss: fetch from DRAM, fill at the policy's fill bank.
            // The miss is known after the tag check alone — no data-array
            // operation happens at the lookup bank.
            self.per_core[core].l3_misses += 1;
            let fill_bank = self.policy.fill_bank(&meta);
            serving_bank = fill_bank;
            let mc = self.mc_tiles[self.dram.coord_of(line).channel];
            let t_mc = self
                .mesh
                .traverse(bank, mc, self.ctrl_flits, t_req + self.l3_tag_latency);
            let t_dram = self.dram.access(line, false, t_mc);
            let t_fill = self.mesh.traverse(mc, fill_bank, self.data_flits, t_dram);
            self.fill_l3(&meta, fill_bank, t_fill);
            self.mesh.traverse(fill_bank, core, self.data_flits, t_fill)
        };

        // Coherence: grant the line to this core's private caches. A store
        // invalidates every other sharer's private copy; their dirty data
        // (if any) is superseded by the incoming store, exactly as a
        // dirty-forwarding MESI transfer would — it is never written back.
        // Leaving those copies resident would break L3 inclusion: a later
        // bank eviction back-invalidates only the cores the directory
        // lists, and an untracked dirty copy would eventually write back a
        // line the L3 no longer holds.
        if is_store {
            for holder in self.dir.write(line, core) {
                self.l1[holder].invalidate(line);
                self.l2[holder].invalidate(line);
                self.trace.record(TraceEvent::Coherence {
                    cycle: data_at_core,
                    core: holder as u32,
                    line,
                });
                self.mesh
                    .traverse(serving_bank, holder, self.ctrl_flits, data_at_core);
            }
        } else {
            self.dir.read(line, core);
        }
        self.fill_l2_l1(core, line, is_store, data_at_core);

        // Train the stride prefetcher on demand loads that left the L1.
        if !is_store {
            self.train_prefetcher(core, line, now);
        }

        AccessOutcome {
            latency: data_at_core - now,
            l1_hit: false,
        }
    }

    /// Count a write into `bank` against its rotation budget and rotate
    /// the bank's set mapping when the threshold is reached.
    fn note_bank_write(&mut self, bank: BankId, now: Cycle) {
        let Some(threshold) = self.rotation_writes else {
            return;
        };
        self.writes_since_rotation[bank] += 1;
        if self.writes_since_rotation[bank] < threshold {
            return;
        }
        self.writes_since_rotation[bank] = 0;
        self.stats.set_rotations.inc();
        let flushed = self.l3[bank].rotate_set_mapping();
        self.stats.rotation_flushes.add(flushed.len() as u64);
        self.trace.record(TraceEvent::Remap {
            cycle: now,
            bank: bank as u32,
            flushed: flushed.len() as u32,
        });
        for ev in flushed {
            self.evict_l3_victim(ev.line, ev.dirty, bank, now);
        }
    }

    /// State-only install of a line for checkpoint-style prewarming: fills
    /// L3 (placement policy, wear, inclusion) and the core's L2/L1 without
    /// any timing-model work. Statistics accumulated here are wiped by the
    /// warm-up reset.
    pub fn prewarm_fill(&mut self, core: CoreId, phys: u64) {
        let line = crate::types::line_of(phys);
        if self.l1[core].contains(line) {
            return;
        }
        let meta = AccessMeta {
            core,
            line,
            page: page_of_line(line),
            pc: 0,
            kind: LlcAccessKind::Demand,
            predicted_critical: false,
        };
        let bank = self.policy.lookup_bank(&meta);
        if !matches!(self.l3[bank].access(line, false), LookupResult::Hit { .. }) {
            self.per_core[core].l3_misses += 1;
            let fill_bank = self.policy.fill_bank(&meta);
            self.fill_l3(&meta, fill_bank, 0);
        }
        self.dir.read(line, core);
        self.fill_l2_l1(core, line, false, 0);
    }

    /// Temporarily enable/disable the stride prefetchers (used by
    /// checkpoint-style prewarming, whose linear sweep would otherwise
    /// train every stream table and triple the prewarm cost for nothing).
    pub fn set_prefetcher_enabled(&mut self, on: bool) {
        self.prefetch_cfg.enabled = on && self.prefetch_cfg.streams > 0;
    }

    /// Whether the stride prefetchers are active.
    pub fn prefetcher_enabled(&self) -> bool {
        self.prefetch_cfg.enabled
    }

    /// Stride detection + confidence-gated prefetch issue (see
    /// [`PrefetchConfig`]).
    fn train_prefetcher(&mut self, core: CoreId, line: u64, now: Cycle) {
        if !self.prefetch_cfg.enabled {
            return;
        }
        self.stream_clock += 1;
        let clock = self.stream_clock;
        let table = &mut self.streams[core];
        // Match an existing stream tracking this address neighbourhood.
        let hit = table.iter().position(|e| {
            e.confidence > 0 && e.last != line && (line as i64 - e.last as i64).abs() <= 64
        });
        match hit {
            Some(i) => {
                let e = &mut table[i];
                let stride = line as i64 - e.last as i64;
                if stride == e.stride {
                    e.confidence = (e.confidence + 1).min(4);
                } else {
                    e.stride = stride;
                    e.confidence = 1;
                }
                e.last = line;
                e.lru = clock;
                if e.confidence >= 2 {
                    let stride = e.stride;
                    let degree = self.prefetch_cfg.degree;
                    for k in 1..=degree as i64 {
                        let target = line as i64 + stride * k;
                        if target > 0 {
                            self.prefetch_line(core, target as u64, now);
                        }
                    }
                }
            }
            None => {
                // Allocate the LRU entry for a new candidate stream.
                let victim = table
                    .iter_mut()
                    .min_by_key(|e| e.lru)
                    .expect("stream table non-empty");
                *victim = StreamEntry {
                    last: line,
                    stride: 0,
                    confidence: 1,
                    lru: clock,
                };
            }
        }
    }

    /// Fetch `line` into this core's L2 ahead of demand. Off the critical
    /// path; state effects (L3 placement, wear, DRAM/NoC occupancy) are
    /// identical to a non-critical demand fill.
    fn prefetch_line(&mut self, core: CoreId, line: u64, now: Cycle) {
        if self.l1[core].contains(line) || self.l2[core].contains(line) {
            return;
        }
        self.stats.prefetches_issued.inc();
        let meta = AccessMeta {
            core,
            line,
            page: page_of_line(line),
            pc: 0,
            kind: LlcAccessKind::Demand,
            predicted_critical: false,
        };
        let bank = self.policy.lookup_bank(&meta);
        let t_req = self.mesh.traverse(core, bank, self.ctrl_flits, now);
        let (data_bank, t_data) =
            if let LookupResult::Hit { .. } = self.l3[bank].access(line, false) {
                self.stats.prefetch_l3_hits.inc();
                (bank, self.banks.read(bank, t_req))
            } else {
                // Count the memory fetch against the core's MPKI: a prefetch
                // fill replaces the demand miss it hides.
                self.per_core[core].l3_misses += 1;
                self.stats.prefetch_fills.inc();
                let fill_bank = self.policy.fill_bank(&meta);
                let mc = self.mc_tiles[self.dram.coord_of(line).channel];
                let t_mc =
                    self.mesh
                        .traverse(bank, mc, self.ctrl_flits, t_req + self.l3_tag_latency);
                let t_dram = self.dram.access(line, false, t_mc);
                let t_fill = self.mesh.traverse(mc, fill_bank, self.data_flits, t_dram);
                self.fill_l3(&meta, fill_bank, t_fill);
                (fill_bank, t_fill)
            };
        let t_at_core = self.mesh.traverse(data_bank, core, self.data_flits, t_data);
        self.dir.read(line, core);
        self.fill_l2_only(core, line, t_at_core);
    }

    /// Install a prefetched line into the L2 (not the L1), handling the
    /// victim like any L2 fill.
    fn fill_l2_only(&mut self, core: CoreId, line: u64, now: Cycle) {
        if self.l2[core].contains(line) {
            return;
        }
        let out = self.l2[core].fill(line, false);
        if let Some(ev) = out.evicted {
            let l1_dirty = self.l1[core].invalidate(ev.line).unwrap_or(false);
            self.dir.evict(ev.line, core);
            if ev.dirty || l1_dirty {
                self.writeback_to_l3(core, ev.line, now);
            }
        }
    }

    /// Probe the policy's secondary candidate bank (MBV-less two-probe
    /// lookup). Returns `(bank, data_ready_time)` on a hit there.
    fn probe_secondary(
        &mut self,
        meta: &AccessMeta,
        line: u64,
        t_primary_miss: Cycle,
    ) -> Option<(BankId, Cycle)> {
        let second = self.policy.secondary_bank(meta)?;
        let primary = self.policy.lookup_bank(meta);
        if second == primary {
            return None;
        }
        self.stats.secondary_probes.inc();
        // Serialized: the miss at the primary (a tag check) is known
        // before the forwarded probe departs.
        let t_fwd = self.mesh.traverse(
            primary,
            second,
            self.ctrl_flits,
            t_primary_miss + self.l3_tag_latency,
        );
        if let LookupResult::Hit { .. } = self.l3[second].access(line, false) {
            self.stats.secondary_hits.inc();
            Some((second, self.banks.read(second, t_fwd)))
        } else {
            None
        }
    }

    /// Install a line into one L3 bank, charging wear and handling the
    /// victim (back-invalidation, dirty writeback to DRAM, policy reset).
    fn fill_l3(&mut self, meta: &AccessMeta, bank: BankId, now: Cycle) {
        #[cfg(debug_assertions)]
        for (b, l3) in self.l3.iter().enumerate() {
            debug_assert!(
                !l3.contains(meta.line),
                "line {:#x} already in bank {b}; fill into {bank} would duplicate",
                meta.line
            );
        }
        // Rotation boundary first, so a triggered flush cannot orphan the
        // line this very fill is installing.
        self.note_bank_write(bank, now);
        // The fill programs the ReRAM array: the requester's data forwards
        // at `now` (write-buffer semantics) but the bank stays busy for the
        // slow write, delaying later operations.
        self.banks.fill(bank, now);
        let out = self.l3[bank].fill(meta.line, false);
        let slot = self.l3[bank].slot_index(out.set, out.way);
        self.charge_l3_write(bank, slot, meta.line, true);
        self.stats.l3_fills.inc();
        self.stats.l3_writes.inc();
        self.trace.record(TraceEvent::Fill {
            cycle: now,
            core: meta.core as u32,
            bank: bank as u32,
            line: meta.line,
        });
        if !meta.predicted_critical {
            self.stats.l3_fills_noncritical.inc();
            self.stats.l3_writes_noncritical.inc();
        }
        if let Some(map) = self.block_criticality.as_mut() {
            map.insert(meta.line, meta.predicted_critical);
        }
        self.policy.on_fill(meta, bank);
        self.policy.on_l3_write(bank);

        if let Some(ev) = out.evicted {
            self.evict_l3_victim(ev.line, ev.dirty, bank, now);
        }
    }

    /// Handle an L3 capacity victim: back-invalidate private copies,
    /// write dirty data to DRAM, notify the policy.
    fn evict_l3_victim(&mut self, victim: u64, l3_dirty: bool, bank: BankId, now: Cycle) {
        let mut dirty = l3_dirty;
        for holder in self.dir.back_invalidate(victim) {
            let d1 = self.l1[holder].invalidate(victim).unwrap_or(false);
            let d2 = self.l2[holder].invalidate(victim).unwrap_or(false);
            dirty |= d1 || d2;
            self.stats.back_invalidations.inc();
            self.trace.record(TraceEvent::Coherence {
                cycle: now,
                core: holder as u32,
                line: victim,
            });
            // Invalidation control message to the holder tile.
            self.mesh.traverse(bank, holder, self.ctrl_flits, now);
        }
        if dirty {
            let mc = self.mc_tiles[self.dram.coord_of(victim).channel];
            let t_mc = self.mesh.traverse(bank, mc, self.data_flits, now);
            self.dram.access(victim, true, t_mc);
            self.stats.l3_writebacks_to_dram.inc();
        }
        if let Some(map) = self.block_criticality.as_mut() {
            map.remove(victim);
        }
        self.policy.on_evict(victim, bank);
    }

    /// Install a line into a core's L2 and L1 after the data returned,
    /// handling inclusion and dirty writebacks of victims.
    fn fill_l2_l1(&mut self, core: CoreId, line: u64, is_store: bool, now: Cycle) {
        if !self.l2[core].contains(line) {
            let out = self.l2[core].fill(line, false);
            if let Some(ev) = out.evicted {
                // Inclusion: the L2 victim's L1 copy must go too.
                let l1_dirty = self.l1[core].invalidate(ev.line).unwrap_or(false);
                self.dir.evict(ev.line, core);
                if ev.dirty || l1_dirty {
                    self.writeback_to_l3(core, ev.line, now);
                }
            }
        }
        match self.l1[core].probe(line) {
            LookupResult::Hit { .. } => {
                // Already present (e.g. race between coalesced accesses):
                // just set the dirty bit for stores.
                self.l1[core].access(line, is_store);
            }
            LookupResult::Miss => {
                let out = self.l1[core].fill(line, is_store);
                if let Some(ev) = out.evicted {
                    if ev.dirty {
                        // L1 victim's dirty data merges into the inclusive L2.
                        let present = self.l2[core].mark_dirty(ev.line);
                        debug_assert!(
                            present,
                            "L1 victim {:#x} missing from inclusive L2",
                            ev.line
                        );
                    }
                }
            }
        }
    }

    /// A dirty L2 victim is written back into the L3 bank that holds the
    /// line — the second of the paper's two L3 write sources.
    fn writeback_to_l3(&mut self, core: CoreId, line: u64, now: Cycle) {
        let meta = AccessMeta {
            core,
            line,
            page: page_of_line(line),
            pc: 0,
            kind: LlcAccessKind::Writeback,
            predicted_critical: false,
        };
        let mut bank = self.policy.lookup_bank(&meta);
        // Residency-state-free policies may hold the line at their second
        // candidate bank.
        if matches!(self.l3[bank].probe(line), LookupResult::Miss) {
            if let Some(second) = self.policy.secondary_bank(&meta) {
                if self.l3[second].contains(line) {
                    bank = second;
                }
            }
        }
        // The dirty line arrives at the bank when the data message lands,
        // then programs the ReRAM array (occupying it for the write
        // latency — nothing waits on the completion, but later reads of
        // this bank queue behind it).
        let t_arrive = self.mesh.traverse(core, bank, self.data_flits, now);
        self.banks.write(bank, t_arrive);
        self.per_core[core].l2_writebacks += 1;
        self.trace.record(TraceEvent::Writeback {
            cycle: now,
            core: core as u32,
            bank: bank as u32,
            line,
        });
        match self.l3[bank].probe(line) {
            LookupResult::Hit { set, way } => {
                self.l3[bank].mark_dirty(line);
                let slot = self.l3[bank].slot_index(set, way);
                if self.charge_l3_write(bank, slot, line, false) {
                    self.banks.expand(bank, t_arrive);
                }
            }
            LookupResult::Miss => {
                // Inclusion makes this unreachable unless an intra-bank
                // rotation flushed the line between the L2 eviction and
                // this writeback; recover by allocating (write-allocate
                // writeback) so wear accounting and data are never
                // silently dropped.
                debug_assert!(
                    self.rotation_writes.is_some(),
                    "writeback {:#x} missed inclusive L3",
                    line
                );
                let out = self.l3[bank].fill(line, true);
                let slot = self.l3[bank].slot_index(out.set, out.way);
                self.charge_l3_write(bank, slot, line, true);
                if let Some(ev) = out.evicted {
                    self.evict_l3_victim(ev.line, ev.dirty, bank, now);
                }
            }
        }
        self.stats.l3_writes.inc();
        if let Some(map) = self.block_criticality.as_ref() {
            if !map.get(line).copied().unwrap_or(false) {
                self.stats.l3_writes_noncritical.inc();
            }
        }
        self.policy.on_l3_write(bank);
        self.note_bank_write(bank, now);
    }

    /// Reset every statistic (warm-up boundary) while keeping all cache,
    /// directory, TLB-payload and policy state.
    pub fn reset_stats(&mut self) {
        for c in self
            .l1
            .iter_mut()
            .chain(self.l2.iter_mut())
            .chain(self.l3.iter_mut())
        {
            c.reset_stats();
        }
        self.mesh.reset_stats();
        self.dram.reset_stats();
        self.banks.reset_stats();
        self.dir.reset_stats();
        self.wear.reset();
        // Compression *counters* reset; per-slot class/version is cache
        // state and survives the warm-up boundary like the tags do.
        if let Some(cs) = self.compress.as_mut() {
            cs.stats
                .iter_mut()
                .for_each(|s| *s = BankCompressStats::default());
        }
        self.per_core
            .iter_mut()
            .for_each(|s| *s = PerCoreMemStats::default());
        self.stats = HierarchyStats::default();
        self.trace.clear();
    }

    /// Statistics of one core's L1D.
    pub fn l1_stats(&self, core: CoreId) -> crate::cache::CacheStats {
        self.l1[core].stats
    }

    /// Statistics of one core's private L2.
    pub fn l2_stats(&self, core: CoreId) -> crate::cache::CacheStats {
        self.l2[core].stats
    }

    /// Statistics of one L3 NUCA bank.
    pub fn l3_stats(&self, bank: BankId) -> crate::cache::CacheStats {
        self.l3[bank].stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::NeverCritical;
    use crate::types::phys_addr;

    /// Address-interleaved static placement (an S-NUCA stand-in defined
    /// locally so the substrate tests don't depend on `renuca-core`).
    struct Striped {
        nbanks: usize,
    }
    impl LlcPlacement for Striped {
        fn name(&self) -> &'static str {
            "striped"
        }
        fn lookup_bank(&mut self, m: &AccessMeta) -> BankId {
            (m.line as usize) & (self.nbanks - 1)
        }
        fn fill_bank(&mut self, m: &AccessMeta) -> BankId {
            (m.line as usize) & (self.nbanks - 1)
        }
    }

    fn hier(n: usize) -> MemoryHierarchy {
        let cfg = SystemConfig::small(n);
        MemoryHierarchy::new(&cfg, Box::new(Striped { nbanks: n }))
    }

    #[test]
    fn first_touch_misses_everywhere_then_hits_l1() {
        let mut h = hier(4);
        let a = h.load(0, phys_addr(0, 0x1000), 1, false, 0);
        assert!(!a.l1_hit);
        assert!(a.latency > 100, "cold miss must pay DRAM: {}", a.latency);
        assert_eq!(h.per_core_stats(0).l3_misses, 1);
        let b = h.load(0, phys_addr(0, 0x1000), 1, false, 1000);
        assert!(b.l1_hit);
        assert_eq!(b.latency, 2);
    }

    #[test]
    fn l3_hit_cheaper_than_miss_dearer_than_l2() {
        // Ordering sanity of the timing plumbing, on the legacy symmetric
        // model where it is unconditional: a miss pays the full bank
        // latency before departing, so it can never undercut a hit. (Under
        // the asymmetric default a 20-cycle tag check plus a best-case
        // open-row DRAM access can rival a 100-cycle ReRAM read — see
        // DESIGN.md §12 — so the ordering there holds only under load.)
        let cfg = SystemConfig::small(4).with_symmetric_llc();
        let mut h = MemoryHierarchy::new(&cfg, Box::new(Striped { nbanks: 4 }));
        let phys = phys_addr(1, 0x8000);
        let miss = h.load(1, phys, 1, false, 0);
        // A second load from the same core hits L1; to measure an L3 hit,
        // invalidate private copies via back-door.
        h.l1[1].invalidate(crate::types::line_of(phys));
        h.l2[1].invalidate(crate::types::line_of(phys));
        let l3hit = h.load(1, phys, 1, false, 10_000);
        assert!(l3hit.latency > 100, "L3 bank read is 100 cycles plus NoC");
        assert!(
            l3hit.latency < miss.latency,
            "L3 hit {} must beat DRAM miss {}",
            l3hit.latency,
            miss.latency
        );
        assert_eq!(h.per_core_stats(1).l3_hits, 1);

        // Asymmetric default: an uncontended hit still pays at least the
        // full ReRAM read latency.
        let mut h = hier(4);
        h.load(1, phys, 1, false, 0);
        h.l1[1].invalidate(crate::types::line_of(phys));
        h.l2[1].invalidate(crate::types::line_of(phys));
        let hit = h.load(1, phys, 1, false, 10_000);
        assert!(hit.latency > 100, "asymmetric hit pays the read latency");
    }

    #[test]
    fn store_allocates_and_dirties() {
        let mut h = hier(4);
        let phys = phys_addr(0, 0x2000);
        h.store(0, phys, 7, 0);
        let line = crate::types::line_of(phys);
        assert!(h.l1_contains(0, line));
        // The dirty data eventually writes back: force the L1+L2 eviction
        // by filling conflicting lines.
        let before = h.stats.l3_writes.get();
        // L2 of small cfg: 256KB 8-way, 512 sets. Thrash the set of `line`.
        for i in 1..=64u64 {
            let conflict = phys + i * (512 * 64 * 8); // same L2 set, different tags
            h.load(0, conflict, 8, false, i * 10_000);
        }
        assert!(
            h.stats.l3_writes.get() > before + 32,
            "writebacks must land in L3"
        );
        assert!(h.per_core_stats(0).l2_writebacks >= 1);
    }

    #[test]
    fn wear_charged_on_fill_and_writeback() {
        let mut h = hier(4);
        assert_eq!(h.wear.total_writes(), 0);
        h.load(0, phys_addr(0, 0), 1, false, 0);
        assert_eq!(h.wear.total_writes(), 1, "fill charges one wear write");
        assert_eq!(h.stats.l3_fills.get(), 1);
    }

    #[test]
    fn striped_placement_spreads_fills() {
        let mut h = hier(4);
        for i in 0..64u64 {
            h.load(0, phys_addr(0, i * 64), 1, false, i * 2000);
        }
        let totals = h.wear.bank_totals();
        assert_eq!(totals.iter().sum::<u64>(), 64);
        for (b, &t) in totals.iter().enumerate() {
            assert_eq!(t, 16, "bank {b} should get a quarter of the stripes");
        }
    }

    #[test]
    fn l3_inclusion_back_invalidates() {
        // 1-core system: L3 bank 2MB 16-way; produce L3 conflict evictions
        // of lines still resident in L2 and verify they are invalidated.
        let cfg = SystemConfig::small(1);
        let mut h = MemoryHierarchy::new(&cfg, Box::new(Striped { nbanks: 1 }));
        // Fill one L3 set beyond capacity: lines with identical hashed set.
        // Use the same stride as the L3 set hash: brute-force collect lines
        // that land in set 0 of bank 0.
        let mut colliders = Vec::new();
        let probe_cache = SetAssocCache::new(cfg.l3_bank, true);
        let mut line = 0u64;
        while colliders.len() < 20 {
            if probe_cache.set_of(line) == 0 {
                colliders.push(line);
            }
            line += 1;
        }
        for (i, &l) in colliders.iter().enumerate() {
            h.load(0, l * 64, 1, false, (i as u64) * 5_000);
        }
        // 20 lines into a 16-way set: at least 4 back-invalidations of
        // L2-resident lines.
        assert!(
            h.stats.back_invalidations.get() >= 4,
            "got {}",
            h.stats.back_invalidations.get()
        );
        // And inclusion holds: everything in L2 is somewhere in L3.
        for &l in &colliders {
            if h.l2[0].contains(l) {
                assert!(h.l3[0].contains(l), "L2-resident {l:#x} missing from L3");
            }
        }
    }

    #[test]
    fn noncritical_fill_accounting() {
        let mut h = hier(4);
        h.load(0, phys_addr(0, 0), 1, true, 0); // predicted critical
        h.load(0, phys_addr(0, 1 << 16), 2, false, 5_000); // non-critical
        assert_eq!(h.stats.l3_fills.get(), 2);
        assert_eq!(h.stats.l3_fills_noncritical.get(), 1);
    }

    #[test]
    fn block_criticality_tracking_feeds_write_attribution() {
        let mut cfg = SystemConfig::small(4);
        cfg.track_block_criticality = true;
        let mut h = MemoryHierarchy::new(&cfg, Box::new(Striped { nbanks: 4 }));
        // Critical fill, then dirty it and force writeback: the writeback
        // must NOT count as non-critical.
        let phys = phys_addr(0, 0x4000);
        h.load(0, phys, 1, true, 0);
        h.store(0, phys, 1, 10);
        let wb_noncrit_before = h.stats.l3_writes_noncritical.get();
        for i in 1..=40u64 {
            let conflict = phys + i * (512 * 64 * 8);
            h.load(0, conflict, 2, false, 1_000 + i * 10_000);
        }
        // The critical line's writeback happened (l3_writes grew) but the
        // non-critical write counter only grew by the non-critical fills.
        let fills_noncrit = h.stats.l3_fills_noncritical.get();
        assert_eq!(
            h.stats.l3_writes_noncritical.get() - wb_noncrit_before,
            fills_noncrit,
            "critical block's writeback must not be attributed non-critical"
        );
    }

    #[test]
    fn intra_bank_rotation_levels_slots() {
        // Hammer one line repeatedly: without rotation, one physical slot
        // absorbs every writeback; with rotation the writes migrate.
        let run = |rotation: Option<u64>| {
            let mut cfg = SystemConfig::small(1);
            cfg.intra_bank_rotation_writes = rotation;
            let mut h = MemoryHierarchy::new(&cfg, Box::new(Striped { nbanks: 1 }));
            let phys = phys_addr(0, 0x4000);
            h.load(0, phys, 1, false, 0);
            for i in 0..400u64 {
                // Dirty the line, then force its writeback with enough
                // same-set conflicts to defeat the L2's LRU protection of
                // the freshly-touched line (2x associativity).
                h.store(0, phys, 1, i * 6_000);
                for j in 1..=16u64 {
                    let conflict = phys + j * (512 * 64 * 8);
                    h.load(0, conflict, 2, false, i * 6_000 + j * 300);
                }
            }
            h.wear.max_slot_writes(0)
        };
        let unleveled = run(None);
        let leveled = run(Some(50));
        assert!(
            leveled * 2 < unleveled,
            "rotation must spread the hot slot: {leveled} vs {unleveled}"
        );
    }

    #[test]
    fn rotation_preserves_inclusion_and_policy_state() {
        let mut cfg = SystemConfig::small(1);
        cfg.intra_bank_rotation_writes = Some(20);
        let mut h = MemoryHierarchy::new(&cfg, Box::new(Striped { nbanks: 1 }));
        for i in 0..200u64 {
            h.load(0, phys_addr(0, i * 64), 1, false, i * 2_000);
        }
        assert!(h.stats.set_rotations.get() > 0, "rotations must fire");
        // Inclusion after flushes: anything in L2 is in L3.
        for i in 0..200u64 {
            let line = crate::types::line_of(phys_addr(0, i * 64));
            if h.l2[0].contains(line) {
                assert!(h.l3[0].contains(line), "inclusion broken for {line:#x}");
            }
        }
    }

    #[test]
    fn coherence_directory_tracks_private_residency() {
        let mut h = hier(4);
        let phys = phys_addr(2, 0x1234_5678);
        h.load(2, phys, 1, false, 0);
        let line = crate::types::line_of(phys);
        assert!(h.dir.entry(line).is_some());
        assert_eq!(h.dir.entry(line).unwrap().n_sharers(), 1);
    }

    /// A policy whose primary lookup bank never holds the line: lines live
    /// at the secondary bank (two-probe path) — the shape that exposed the
    /// invalidation-origin bug.
    struct TwoBank;
    impl LlcPlacement for TwoBank {
        fn name(&self) -> &'static str {
            "twobank"
        }
        fn lookup_bank(&mut self, _m: &AccessMeta) -> BankId {
            0
        }
        fn fill_bank(&mut self, _m: &AccessMeta) -> BankId {
            3
        }
        fn secondary_bank(&mut self, _m: &AccessMeta) -> Option<BankId> {
            Some(3)
        }
    }

    #[test]
    fn invalidation_originates_from_serving_bank() {
        // 2x2 mesh: tiles 0 and 3 are diagonal (2 hops apart). Core 3
        // loads a line that fills at bank 3; core 0 then stores to it,
        // finding it via the secondary probe at bank 3. The invalidation
        // to holder core 3 must originate at the serving bank 3 (0 hops),
        // not the primary lookup bank 0 (2 hops).
        let cfg = SystemConfig::small(4);
        let mut h = MemoryHierarchy::new(&cfg, Box::new(TwoBank));
        let phys = phys_addr(3, 0x7000);
        h.load(3, phys, 1, false, 0);
        assert_eq!(h.per_core_stats(3).l3_misses, 1);

        let hops_before = h.mesh.stats.hops.get();
        h.store(0, phys, 2, 50_000);
        let delta = h.mesh.stats.hops.get() - hops_before;
        assert_eq!(h.stats.secondary_hits.get(), 1, "store must hit at bank 3");
        // Request core0->bank0: 0 hops; probe bank0->bank3: 2; data reply
        // bank3->core0: 2; invalidation bank3->core3(tile 3): 0. Charging
        // the invalidation to the primary bank would add 2 more.
        assert_eq!(
            delta, 4,
            "invalidation must originate at the serving bank (total store hops {delta})"
        );
        // And the holder really was invalidated.
        assert!(!h.l1_contains(3, crate::types::line_of(phys)));
    }

    #[test]
    fn bank_occupancy_delays_reads_behind_write_bursts() {
        // Identical access streams against the asymmetric default (bank
        // occupancy on) and the same latencies with occupancy off: L3 hits
        // issued right behind a fill's slow ReRAM write must queue, and
        // only the occupancy model may accumulate queue cycles.
        let drive = |occupancy: bool| -> (u64, u64) {
            let mut cfg = SystemConfig::small(4);
            cfg.l3_bank_occupancy = occupancy;
            let mut h = MemoryHierarchy::new(&cfg, Box::new(Striped { nbanks: 4 }));
            // Phase 1: park 64 lines of bank 0 in the L3.
            for i in 0..64u64 {
                h.load(0, 4 * i * 64, 1, false, i * 2_000);
            }
            // Phase 2: a miss whose fill occupies bank 0, then an L3 hit
            // to the same bank timed to land inside the write window.
            let mut hit_latency = 0;
            for i in 0..32u64 {
                let t = 200_000 + i * 4_000;
                h.load(0, (4_000 + 4 * i) * 64, 1, false, t);
                let b = 4 * i * 64;
                let line = crate::types::line_of(b);
                h.l1[0].invalidate(line);
                h.l2[0].invalidate(line);
                let out = h.load(0, b, 1, false, t + 300);
                assert!(!out.l1_hit);
                hit_latency += out.latency;
            }
            let queued: u64 = (0..4).map(|b| h.banks.stats(b).queue_cycles.get()).sum();
            (hit_latency, queued)
        };
        let (hits_on, queued_on) = drive(true);
        let (hits_off, queued_off) = drive(false);
        assert_eq!(queued_off, 0, "occupancy off must never queue");
        assert!(queued_on > 0, "hits behind fills must queue");
        assert!(
            hits_on > hits_off,
            "queued hits must be slower: {hits_on} vs {hits_off}"
        );
    }

    #[test]
    fn bank_op_accounting_matches_wear_model() {
        let mut h = hier(4);
        // Mixed traffic: fills, hits, writebacks.
        for i in 0..128u64 {
            h.load(
                (i % 4) as usize,
                phys_addr((i % 4) as usize, i * 64 * 131),
                1,
                false,
                i * 3_000,
            );
            if i % 3 == 0 {
                h.store(
                    (i % 4) as usize,
                    phys_addr((i % 4) as usize, i * 64 * 131),
                    2,
                    i * 3_000 + 500,
                );
            }
        }
        for b in 0..4 {
            let s = h.banks.stats(b);
            assert_eq!(
                s.fill_ops.get() + s.write_ops.get(),
                h.wear.bank_totals()[b],
                "bank {b}: every data-array write charges wear exactly once"
            );
            if s.ops() > 0 {
                assert_eq!(s.transitions(), s.ops() - 1, "bank {b} transition sum");
            }
        }
    }

    /// Striped placement driving the compression model (the substrate-level
    /// stand-in for Re-NUCA-C2, defined locally like `Striped`).
    struct CompressedStriped {
        nbanks: usize,
        spec: compress::CompressSpec,
    }
    impl LlcPlacement for CompressedStriped {
        fn name(&self) -> &'static str {
            "striped-c2"
        }
        fn lookup_bank(&mut self, m: &AccessMeta) -> BankId {
            (m.line as usize) & (self.nbanks - 1)
        }
        fn fill_bank(&mut self, m: &AccessMeta) -> BankId {
            (m.line as usize) & (self.nbanks - 1)
        }
        fn compression(&self) -> Option<compress::CompressSpec> {
            Some(self.spec)
        }
    }

    fn compressed_hier(n: usize) -> MemoryHierarchy {
        let cfg = SystemConfig::small(n);
        let spec = compress::CompressSpec::new(cfg.l3_subblocks, cfg.compress_seed);
        MemoryHierarchy::new(&cfg, Box::new(CompressedStriped { nbanks: n, spec }))
    }

    #[test]
    fn compressed_fills_charge_subblock_wear() {
        let mut h = compressed_hier(4);
        for i in 0..256u64 {
            h.load(0, phys_addr(0, i * 64), 1, false, i * 2_000);
        }
        // Line-level accounting is untouched by compression: every fill
        // still counts one line write.
        assert_eq!(h.wear.total_writes(), h.stats.l3_fills.get());
        // Cell-level accounting is compacted: between 1 (class-1) and 4
        // (class-4) sub-blocks per line write, strictly fewer than the
        // full-line 4x in aggregate (E[class] = 2).
        let sb = h.wear.subblock_total_writes();
        let lines = h.wear.total_writes();
        assert!(sb >= lines && sb < 4 * lines, "sb {sb} vs lines {lines}");
        // Class histogram covers all three classes and sums to the writes.
        let mut hist = [0u64; 3];
        for b in 0..4 {
            let s = h.compress_stats(b);
            for (i, w) in s.class_writes.iter().enumerate() {
                hist[i] += w;
            }
        }
        assert_eq!(hist.iter().sum::<u64>(), lines);
        assert!(hist.iter().all(|&w| w > 0), "all classes used: {hist:?}");
        // Slot state is live: the last-filled line's slot has version 1.
        assert!(h.compress_slot(0, 0).is_some());
    }

    #[test]
    fn expansions_match_bank_ops_and_charge_no_extra_wear() {
        let mut h = compressed_hier(4);
        // Mixed traffic with writebacks so in-place updates (and hence
        // expansions) occur.
        for i in 0..128u64 {
            let c = (i % 4) as usize;
            h.load(c, phys_addr(c, i * 64 * 131), 1, false, i * 3_000);
            h.store(c, phys_addr(c, i * 64 * 131), 2, i * 3_000 + 500);
            for j in 1..=16u64 {
                let conflict = phys_addr(c, i * 64 * 131 + j * (512 * 64 * 8));
                h.load(c, conflict, 3, false, i * 3_000 + 600 + j * 100);
            }
        }
        let expansions: u64 = (0..4).map(|b| h.compress_stats(b).expansions).sum();
        assert!(expansions > 0, "writeback traffic must expand some slots");
        for b in 0..4 {
            let s = h.banks.stats(b);
            // Every expansion is serviced as exactly one extra bank op,
            // kept out of fill_ops so the wear identity is preserved.
            assert_eq!(s.expand_ops.get(), h.compress_stats(b).expansions);
            assert_eq!(
                s.fill_ops.get() + s.write_ops.get(),
                h.wear.bank_totals()[b],
                "bank {b}: line wear counts logical writes only"
            );
        }
        // Expansions charge no line wear: the global write identity holds.
        assert_eq!(h.stats.l3_writes.get(), h.wear.total_writes());
    }

    #[test]
    fn uncompressed_policies_see_no_compression_state() {
        let h = hier(4);
        assert!(h.compression_spec().is_none());
        assert!(h.compress_slot(0, 0).is_none());
        assert_eq!(h.compress_stats_vec(), vec![]);
        assert_eq!(h.wear.subblocks_per_slot(), 0);
    }

    #[test]
    fn never_critical_predictor_compiles_with_hierarchy() {
        // Smoke: the placement/predictor traits interoperate.
        let mut h = hier(4);
        let mut p = NeverCritical;
        use crate::placement::CriticalityPredictor;
        let c = p.predict(5);
        h.load(0, phys_addr(0, 64), 5, c, 0);
        assert_eq!(h.stats.l3_fills_noncritical.get(), 1);
    }
}
