//! Hierarchical timing wheel for the event-driven simulation core.
//!
//! [`System::run`](crate::system::System::run) advances time by popping
//! (cycle, core) wake events from an [`EventWheel`] instead of polling
//! every core each iteration. The wheel is a two-level calendar:
//!
//! * **L0** — 256 one-cycle buckets covering `[l0_base, l0_base + 256)`.
//!   The common wake distance (next cycle, an L1/L2 hit, an L3 round
//!   trip) lands here; scheduling and popping are O(1) via a 256-bit
//!   occupancy bitmap.
//! * **L1** — 256 buckets of 256 cycles covering
//!   `[l1_base, l1_base + 65536)`. DRAM-latency and contention-queue
//!   wakes land here and are re-bucketed into L0 when their 256-cycle
//!   window opens.
//! * **far** — an unsorted overflow list for wakes ≥ 65536 cycles out
//!   (deep all-core stalls); refilled into L1 when both wheels drain.
//!
//! Finding the next event never scans empty cycles one by one — bitmap
//! `trailing_zeros` jumps straight to the next occupied bucket, so a
//! 10 000-cycle dead window costs the same as a 1-cycle one. Events due
//! at the same cycle pop as one batch in ascending payload order, which
//! is exactly the deterministic core-id order the polling loop used —
//! the refactor cannot reorder same-cycle core steps.

use crate::types::Cycle;

const L0_SLOTS: usize = 256;
const L1_SLOTS: usize = 256;
/// Cycles covered by one L1 bucket.
const L1_GRAIN: u64 = L0_SLOTS as u64;
/// Cycles covered by the whole L1 wheel.
const L1_SPAN: u64 = L1_GRAIN * L1_SLOTS as u64;

/// A two-level timing wheel mapping wake cycles to `u32` payloads
/// (core ids).
#[derive(Clone, Debug)]
pub struct EventWheel {
    /// One-cycle buckets; slot `s` holds events due at `l0_base + s`.
    l0: Vec<Vec<u32>>,
    l0_bits: [u64; L0_SLOTS / 64],
    /// 256-cycle buckets; slot `s` holds events due in
    /// `[l1_base + s·256, l1_base + (s+1)·256)`.
    l1: Vec<Vec<(Cycle, u32)>>,
    l1_bits: [u64; L1_SLOTS / 64],
    /// Events at or beyond the L1 horizon.
    far: Vec<(Cycle, u32)>,
    /// Start of the current L0 window (multiple of 256).
    l0_base: Cycle,
    /// Start of the current L1 window (multiple of 65536).
    l1_base: Cycle,
    len: usize,
}

#[inline]
fn bit_set(bits: &mut [u64], slot: usize) {
    bits[slot / 64] |= 1u64 << (slot % 64);
}

#[inline]
fn bit_clear(bits: &mut [u64], slot: usize) {
    bits[slot / 64] &= !(1u64 << (slot % 64));
}

/// Lowest set bit index across the words, or `None` when all are clear.
#[inline]
fn first_set(bits: &[u64]) -> Option<usize> {
    for (w, &word) in bits.iter().enumerate() {
        if word != 0 {
            return Some(w * 64 + word.trailing_zeros() as usize);
        }
    }
    None
}

impl EventWheel {
    /// An empty wheel whose windows start at (the aligned floor of)
    /// `start`. Events may be scheduled at any cycle ≥ `start`.
    pub fn new(start: Cycle) -> Self {
        EventWheel {
            l0: vec![Vec::new(); L0_SLOTS],
            l0_bits: [0; L0_SLOTS / 64],
            l1: vec![Vec::new(); L1_SLOTS],
            l1_bits: [0; L1_SLOTS / 64],
            far: Vec::new(),
            l0_base: start & !(L1_GRAIN - 1),
            l1_base: start & !(L1_SPAN - 1),
            len: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Register an event. `cycle` must not precede the last popped batch
    /// (checked in debug builds); the payload is returned by
    /// [`pop_due`](Self::pop_due) when its cycle is reached.
    pub fn schedule(&mut self, cycle: Cycle, payload: u32) {
        debug_assert!(
            cycle >= self.l0_base,
            "schedule({cycle}) behind the wheel window at {}",
            self.l0_base
        );
        self.len += 1;
        if cycle < self.l0_base + L1_GRAIN {
            let slot = (cycle % L1_GRAIN) as usize;
            self.l0[slot].push(payload);
            bit_set(&mut self.l0_bits, slot);
        } else if cycle < self.l1_base + L1_SPAN {
            let slot = ((cycle / L1_GRAIN) % L1_SLOTS as u64) as usize;
            self.l1[slot].push((cycle, payload));
            bit_set(&mut self.l1_bits, slot);
        } else {
            self.far.push((cycle, payload));
        }
    }

    /// Remove the earliest pending batch: every event due at the single
    /// earliest occupied cycle, appended to `out` in ascending payload
    /// order. Returns that cycle, or `None` when the wheel is empty.
    pub fn pop_due(&mut self, out: &mut Vec<u32>) -> Option<Cycle> {
        if self.len == 0 {
            return None;
        }
        loop {
            if let Some(slot) = first_set(&self.l0_bits) {
                let cycle = self.l0_base + slot as u64;
                let tail = out.len();
                out.extend(self.l0[slot].drain(..));
                bit_clear(&mut self.l0_bits, slot);
                self.len -= out.len() - tail;
                out[tail..].sort_unstable();
                return Some(cycle);
            }
            if let Some(slot) = first_set(&self.l1_bits) {
                // Open the next occupied 256-cycle window: re-bucket its
                // events into L0 at one-cycle granularity.
                self.l0_base = self.l1_base + slot as u64 * L1_GRAIN;
                bit_clear(&mut self.l1_bits, slot);
                for (cycle, payload) in std::mem::take(&mut self.l1[slot]) {
                    let s = (cycle % L1_GRAIN) as usize;
                    self.l0[s].push(payload);
                    bit_set(&mut self.l0_bits, s);
                }
                continue;
            }
            // Both wheels drained: jump the windows to the earliest far
            // event and re-bucket everything that now fits into L1.
            debug_assert!(!self.far.is_empty(), "len > 0 with empty wheels");
            let far_min = self.far.iter().map(|&(c, _)| c).min().unwrap();
            self.l1_base = far_min & !(L1_SPAN - 1);
            self.l0_base = self.l1_base;
            let horizon = self.l1_base + L1_SPAN;
            let mut i = 0;
            while i < self.far.len() {
                let (cycle, payload) = self.far[i];
                if cycle < horizon {
                    self.far.swap_remove(i);
                    let slot = ((cycle / L1_GRAIN) % L1_SLOTS as u64) as usize;
                    self.l1[slot].push((cycle, payload));
                    bit_set(&mut self.l1_bits, slot);
                } else {
                    i += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn drain_all(w: &mut EventWheel) -> Vec<(Cycle, Vec<u32>)> {
        let mut got = Vec::new();
        let mut batch = Vec::new();
        while let Some(c) = w.pop_due(&mut batch) {
            got.push((c, std::mem::take(&mut batch)));
        }
        got
    }

    #[test]
    fn pops_in_time_order_with_sorted_batches() {
        let mut w = EventWheel::new(0);
        w.schedule(10, 3);
        w.schedule(5, 1);
        w.schedule(10, 0);
        w.schedule(5, 2);
        let got = drain_all(&mut w);
        assert_eq!(got, vec![(5, vec![1, 2]), (10, vec![0, 3])]);
        assert!(w.is_empty());
    }

    #[test]
    fn spans_l1_and_far_distances() {
        let mut w = EventWheel::new(0);
        // One event per range: L0 (near), L1 (mid), far (DRAM-stall deep).
        w.schedule(3, 0);
        w.schedule(1_000, 1);
        w.schedule(70_000, 2);
        w.schedule(1_000_000, 3);
        let got = drain_all(&mut w);
        assert_eq!(
            got,
            vec![
                (3, vec![0]),
                (1_000, vec![1]),
                (70_000, vec![2]),
                (1_000_000, vec![3]),
            ]
        );
    }

    #[test]
    fn reschedule_while_popping() {
        // The system's actual usage: each popped core reschedules itself.
        let mut w = EventWheel::new(0);
        for id in 0..4 {
            w.schedule(id as u64 + 1, id);
        }
        let mut batch = Vec::new();
        let mut pops = 0;
        let mut last = 0;
        while let Some(c) = w.pop_due(&mut batch) {
            assert!(c > last || pops == 0);
            last = c;
            for &id in &batch {
                if c < 500 {
                    w.schedule(c + 1 + id as u64 % 3, id);
                }
            }
            batch.clear();
            pops += 1;
        }
        assert!(pops > 100);
        assert!(w.is_empty());
    }

    #[test]
    fn starts_at_nonzero_offset() {
        // Wheels opened mid-simulation (warm-up boundary) must accept
        // unaligned start cycles.
        for start in [1u64, 255, 256, 65_535, 65_536, 1 << 40] {
            let mut w = EventWheel::new(start);
            w.schedule(start, 7);
            w.schedule(start + 300, 8);
            let got = drain_all(&mut w);
            assert_eq!(got, vec![(start, vec![7]), (start + 300, vec![8])]);
        }
    }

    #[test]
    fn matches_binary_heap_reference() {
        // Randomized differential test against a known-correct priority
        // queue, with interleaved schedules (monotone now, mixed spans).
        let mut w = EventWheel::new(0);
        let mut heap: BinaryHeap<Reverse<(Cycle, u32)>> = BinaryHeap::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut now = 0u64;
        for id in 0..8 {
            w.schedule(id as u64 % 3, id);
            heap.push(Reverse((id as u64 % 3, id)));
        }
        let mut batch = Vec::new();
        for _ in 0..5_000 {
            let Some(c) = w.pop_due(&mut batch) else {
                break;
            };
            assert!(c >= now, "time went backwards: {c} < {now}");
            now = c;
            for &id in &batch {
                let Reverse((hc, hid)) = heap.pop().expect("heap empty early");
                assert_eq!((hc, hid), (c, id));
                // Reschedule with a mixed-span pseudo-random delay.
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let delay = match (x >> 60) % 4 {
                    0 => 1 + (x >> 33) % 8,            // next-cycle-ish
                    1 => 30 + (x >> 33) % 400,         // L3 round trip
                    2 => 2_000 + (x >> 33) % 60_000,   // DRAM + queueing
                    _ => 70_000 + (x >> 33) % 300_000, // deep stall
                };
                w.schedule(now + delay, id);
                heap.push(Reverse((now + delay, id)));
            }
            batch.clear();
        }
        assert_eq!(w.len(), heap.len());
    }
}
