//! Fundamental simulator types and address arithmetic.
//!
//! Address layout: each core runs its own application in a disjoint slice of
//! the physical address space (multiprogrammed SE-mode execution, matching
//! the paper). The workload generator offsets each core's virtual addresses
//! by `core_id << CORE_ADDR_STRIDE_BITS`, giving every core a private 256 MB
//! region. All addresses inside the simulator are physical.

/// Simulation time in core clock cycles.
pub type Cycle = u64;

/// Core identifier, `0..n_cores`.
pub type CoreId = usize;

/// L3 bank identifier, `0..n_banks`.
pub type BankId = usize;

/// Program counter of a (synthetic) instruction. 32 bits is plenty for the
/// synthetic applications' loop nests and keeps ROB entries small.
pub type Pc = u32;

/// log2 of the cache line size (64 B lines, paper Table I).
pub const LINE_SHIFT: u32 = 6;

/// Cache line size in bytes.
pub const LINE_BYTES: u64 = 1 << LINE_SHIFT;

/// log2 of the page size (4 KB pages, paper §IV.C).
pub const PAGE_SHIFT: u32 = 12;

/// Page size in bytes.
pub const PAGE_BYTES: u64 = 1 << PAGE_SHIFT;

/// Cache lines per page: 64 for 4 KB pages of 64 B lines. This is the width
/// of the Re-NUCA Mapping Bit Vector.
pub const LINES_PER_PAGE: u64 = PAGE_BYTES / LINE_BYTES;

/// log2 of the per-core physical-address stride (256 MB per core).
pub const CORE_ADDR_STRIDE_BITS: u32 = 28;

/// Line address (byte address / 64) of a byte address.
#[inline]
pub const fn line_of(addr: u64) -> u64 {
    addr >> LINE_SHIFT
}

/// Page number of a byte address.
#[inline]
pub const fn page_of(addr: u64) -> u64 {
    addr >> PAGE_SHIFT
}

/// Page number containing a *line* address.
#[inline]
pub const fn page_of_line(line: u64) -> u64 {
    line >> (PAGE_SHIFT - LINE_SHIFT)
}

/// Index of a line within its page, `0..64` — the MBV bit index.
#[inline]
pub const fn line_index_in_page(line: u64) -> u64 {
    line & (LINES_PER_PAGE - 1)
}

/// The core that owns a physical address (disjoint per-core address spaces).
#[inline]
pub const fn owner_of_addr(addr: u64) -> CoreId {
    (addr >> CORE_ADDR_STRIDE_BITS) as CoreId
}

/// The core that owns a physical *line* address.
#[inline]
pub const fn owner_of_line(line: u64) -> CoreId {
    (line >> (CORE_ADDR_STRIDE_BITS - LINE_SHIFT)) as CoreId
}

/// Translate a per-application virtual address to the core's physical slice.
#[inline]
pub const fn phys_addr(core: CoreId, vaddr: u64) -> u64 {
    ((core as u64) << CORE_ADDR_STRIDE_BITS) | (vaddr & ((1 << CORE_ADDR_STRIDE_BITS) - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_page_arithmetic() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 1);
        assert_eq!(page_of(4095), 0);
        assert_eq!(page_of(4096), 1);
        assert_eq!(LINES_PER_PAGE, 64);
    }

    #[test]
    fn page_of_line_consistent_with_page_of_addr() {
        for addr in [0u64, 64, 4032, 4096, 1 << 20] {
            assert_eq!(page_of(addr), page_of_line(line_of(addr)));
        }
    }

    #[test]
    fn line_index_in_page_covers_0_to_63() {
        assert_eq!(line_index_in_page(line_of(0)), 0);
        assert_eq!(line_index_in_page(line_of(63 * 64)), 63);
        assert_eq!(line_index_in_page(line_of(4096)), 0);
    }

    #[test]
    fn core_address_spaces_are_disjoint() {
        let a0 = phys_addr(0, 0xdead_beef);
        let a5 = phys_addr(5, 0xdead_beef);
        assert_ne!(a0, a5);
        assert_eq!(owner_of_addr(a0), 0);
        assert_eq!(owner_of_addr(a5), 5);
        assert_eq!(owner_of_line(line_of(a5)), 5);
    }

    #[test]
    fn phys_addr_masks_overflowing_vaddrs() {
        // A vaddr that exceeds the per-core slice wraps within the slice
        // instead of bleeding into the neighbour's space.
        let a = phys_addr(1, 1 << CORE_ADDR_STRIDE_BITS);
        assert_eq!(owner_of_addr(a), 1);
    }
}
