//! 2-D mesh network-on-chip with XY routing and link contention.
//!
//! The paper's CMP connects 16 tiles (one core + one L3 bank each) with a
//! 4×4 mesh. NUCA access latency is dominated by hop count — S-NUCA pays an
//! average of ~3 hops to a random bank while R-NUCA stays within one hop —
//! so the mesh model must charge per-hop latency faithfully and account for
//! serialization when multiple messages contend for a link.
//!
//! The model: each directed link keeps a short, sorted list of **busy
//! intervals**. A message of `f` flits traversing a link reserves the
//! earliest gap of `f × cycles_per_flit` cycles at or after its arrival;
//! each hop additionally costs the router pipeline latency. Interval
//! reservation (rather than a single `next_free` scalar) matters because
//! the functional-timing hierarchy reserves path segments at *future*
//! times out of order — a request departing now must not queue behind a
//! response reserved thousands of cycles ahead. Intervals older than a
//! generous path-latency horizon are garbage-collected, and adjacent
//! reservations merge, so lists stay short at realistic loads.

use crate::config::NocConfig;
use crate::reserve::{gc, reserve, Calendar};
use crate::types::Cycle;
use sim_stats::Counter;

/// Reservations ending this many cycles before the newest observed arrival
/// time are dropped: no future reservation can start earlier, because every
/// `traverse(now)` argument is at least the (monotone) dispatch cycle of
/// the access that triggered it, and path latencies are far below this.
const GC_SLACK: Cycle = 100_000;

/// Mesh tile coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tile {
    /// Column, `0..cols`.
    pub x: usize,
    /// Row, `0..rows`.
    pub y: usize,
}

/// NoC traffic statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct NocStats {
    /// Messages injected.
    pub messages: Counter,
    /// Total flits moved across all links (flit-hops).
    pub flit_hops: Counter,
    /// Total hop count over all messages.
    pub hops: Counter,
    /// Cycles spent waiting for busy links.
    pub contention_cycles: Counter,
}

impl NocStats {
    /// Mean hops per message (0 for an idle mesh).
    pub fn avg_hops(&self) -> f64 {
        self.hops.per(self.messages.get(), 1)
    }

    /// Register every counter plus the derived mean hop count under
    /// `<prefix>.messages`, `<prefix>.hops`, `<prefix>.flit_hops`,
    /// `<prefix>.contention_cycles`, `<prefix>.avg_hops`.
    pub fn register(&self, reg: &mut sim_stats::StatsRegistry, prefix: &str) {
        reg.set(format!("{prefix}.messages"), self.messages.get());
        reg.set(format!("{prefix}.hops"), self.hops.get());
        reg.set(format!("{prefix}.flit_hops"), self.flit_hops.get());
        reg.set(
            format!("{prefix}.contention_cycles"),
            self.contention_cycles.get(),
        );
        reg.set(format!("{prefix}.avg_hops"), self.avg_hops());
    }
}

/// A 2-D mesh interconnect.
#[derive(Clone, Debug)]
pub struct Mesh {
    cfg: NocConfig,
    /// Busy intervals per directed link; 4 links (N/E/S/W output) per node.
    links: Vec<Calendar>,
    /// Largest arrival time seen (garbage-collection horizon driver).
    max_now: Cycle,
    /// Horizon of the last GC sweep (amortization).
    last_gc: Cycle,
    /// Monotone lower bound on all future `traverse` times (simulation
    /// time, fed by [`Mesh::set_floor`]); lets `reserve` drop dead
    /// intervals inline instead of waiting for the slack-horizon GC.
    floor: Cycle,
    /// Traffic counters.
    pub stats: NocStats,
}

/// Output directions from a router.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Dir {
    North = 0,
    East = 1,
    South = 2,
    West = 3,
}

impl Mesh {
    /// Build a mesh from its configuration.
    pub fn new(cfg: NocConfig) -> Self {
        Mesh {
            links: vec![Calendar::new(); cfg.cols * cfg.rows * 4],
            max_now: 0,
            last_gc: 0,
            floor: 0,
            cfg,
            stats: NocStats::default(),
        }
    }

    /// Promise that no future [`Mesh::traverse`] will start before `now`.
    /// The event-driven system loop calls this as simulation time advances;
    /// reservations ending at or before the floor are reclaimed inline.
    pub fn set_floor(&mut self, now: Cycle) {
        self.floor = self.floor.max(now);
    }

    /// The configuration in use.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Tile of a node id (row-major).
    #[inline]
    pub fn tile_of(&self, node: usize) -> Tile {
        Tile {
            x: node % self.cfg.cols,
            y: node / self.cfg.cols,
        }
    }

    /// Node id of a tile.
    #[inline]
    pub fn node_of(&self, t: Tile) -> usize {
        t.y * self.cfg.cols + t.x
    }

    /// Manhattan hop distance between two nodes.
    pub fn hop_distance(&self, src: usize, dst: usize) -> u64 {
        let a = self.tile_of(src);
        let b = self.tile_of(dst);
        (a.x.abs_diff(b.x) + a.y.abs_diff(b.y)) as u64
    }

    #[inline]
    fn link_index(&self, node: usize, dir: Dir) -> usize {
        node * 4 + dir as usize
    }

    /// Send a message of `flits` flits from `src` to `dst`, starting at
    /// `now`. Returns the arrival cycle. Zero-hop messages (src == dst, the
    /// local bank) arrive immediately.
    pub fn traverse(&mut self, src: usize, dst: usize, flits: u32, now: Cycle) -> Cycle {
        self.stats.messages.inc();
        if src == dst {
            return now;
        }
        if now > self.max_now {
            self.max_now = now;
            let horizon = self.max_now.saturating_sub(GC_SLACK);
            if horizon > self.last_gc + GC_SLACK / 4 {
                self.last_gc = horizon;
                for link in &mut self.links {
                    gc(link, horizon);
                }
            }
        }
        let mut t = now;
        let mut cur = self.tile_of(src);
        let dst_t = self.tile_of(dst);
        let hold = flits as u64 * self.cfg.cycles_per_flit;
        let mut hops = 0u64;
        // Dimension-ordered (XY) routing: fully resolve x, then y.
        while cur.x != dst_t.x || cur.y != dst_t.y {
            let dir = if cur.x < dst_t.x {
                Dir::East
            } else if cur.x > dst_t.x {
                Dir::West
            } else if cur.y < dst_t.y {
                Dir::South
            } else {
                Dir::North
            };
            let link = self.link_index(self.node_of(cur), dir);
            let depart = reserve(&mut self.links[link], t, hold, self.floor);
            self.stats.contention_cycles.add(depart - t);
            t = depart + self.cfg.hop_cycles;
            cur = match dir {
                Dir::East => Tile {
                    x: cur.x + 1,
                    ..cur
                },
                Dir::West => Tile {
                    x: cur.x - 1,
                    ..cur
                },
                Dir::South => Tile {
                    y: cur.y + 1,
                    ..cur
                },
                Dir::North => Tile {
                    y: cur.y - 1,
                    ..cur
                },
            };
            hops += 1;
        }
        self.stats.hops.add(hops);
        self.stats.flit_hops.add(hops * flits as u64);
        t
    }

    /// Uncontended latency of a `flits`-flit message over `hops` hops
    /// (for analytical checks).
    pub fn ideal_latency(&self, hops: u64) -> u64 {
        hops * self.cfg.hop_cycles
    }

    /// Reset statistics and link state (warm-up boundary).
    pub fn reset_stats(&mut self) {
        self.stats = NocStats::default();
        self.links.iter_mut().for_each(|l| l.clear());
        self.max_now = 0;
        self.last_gc = 0;
        self.floor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh4x4() -> Mesh {
        Mesh::new(NocConfig::default())
    }

    #[test]
    fn tile_node_roundtrip() {
        let m = mesh4x4();
        for node in 0..16 {
            assert_eq!(m.node_of(m.tile_of(node)), node);
        }
        assert_eq!(m.tile_of(5), Tile { x: 1, y: 1 });
    }

    #[test]
    fn hop_distance_manhattan() {
        let m = mesh4x4();
        assert_eq!(m.hop_distance(0, 0), 0);
        assert_eq!(m.hop_distance(0, 3), 3);
        assert_eq!(m.hop_distance(0, 15), 6); // (0,0) -> (3,3)
        assert_eq!(m.hop_distance(5, 6), 1);
    }

    #[test]
    fn zero_hop_message_is_free() {
        let mut m = mesh4x4();
        assert_eq!(m.traverse(7, 7, 5, 100), 100);
        assert_eq!(m.stats.hops.get(), 0);
    }

    #[test]
    fn uncontended_latency_is_hops_times_hop_cycles() {
        let mut m = mesh4x4();
        let t = m.traverse(0, 15, 1, 0);
        assert_eq!(t, 6 * m.config().hop_cycles); // 6 uncontended hops
        assert_eq!(m.stats.hops.get(), 6);
        assert_eq!(m.stats.flit_hops.get(), 6);
    }

    #[test]
    fn xy_routing_is_deterministic_and_minimal() {
        let mut m = mesh4x4();
        // Any src->dst pair takes exactly manhattan-many hops.
        for src in 0..16 {
            for dst in 0..16 {
                let before = m.stats.hops.get();
                m.traverse(src, dst, 1, 0);
                assert_eq!(
                    m.stats.hops.get() - before,
                    m.hop_distance(src, dst),
                    "{src}->{dst} not minimal"
                );
            }
        }
    }

    #[test]
    fn contention_serializes_on_shared_link() {
        let mut m = mesh4x4();
        // Two 5-flit messages over the same single link (0 -> 1) at the
        // same cycle: the second waits for the first's serialization.
        let t1 = m.traverse(0, 1, 5, 0);
        let t2 = m.traverse(0, 1, 5, 0);
        let hop = m.config().hop_cycles;
        assert_eq!(t1, hop);
        assert_eq!(t2, 5 + hop); // waits 5 flit-cycles then one hop
        assert_eq!(m.stats.contention_cycles.get(), 5);
    }

    #[test]
    fn disjoint_paths_do_not_contend() {
        let mut m = mesh4x4();
        let t1 = m.traverse(0, 1, 5, 0);
        let t2 = m.traverse(4, 5, 5, 0); // different row, different links
        assert_eq!(t1, t2);
        assert_eq!(m.stats.contention_cycles.get(), 0);
    }

    #[test]
    fn later_message_sees_freed_link() {
        let mut m = mesh4x4();
        m.traverse(0, 1, 5, 0); // link busy until cycle 5
        let t = m.traverse(0, 1, 1, 100); // long after
        assert_eq!(t, 100 + m.config().hop_cycles);
    }

    #[test]
    fn reset_clears_link_state() {
        let mut m = mesh4x4();
        m.traverse(0, 1, 50, 0);
        m.reset_stats();
        assert_eq!(m.traverse(0, 1, 1, 0), m.config().hop_cycles);
        assert_eq!(m.stats.messages.get(), 1);
    }

    #[test]
    fn earlier_message_slips_before_future_reservation() {
        // A response reserved far in the future must not delay a request
        // departing now — the gap before the reservation is usable.
        let mut m = mesh4x4();
        m.traverse(0, 1, 5, 10_000); // future reservation on link 0->1
        let t = m.traverse(0, 1, 1, 0); // present-time request
        assert_eq!(
            t,
            m.config().hop_cycles,
            "present message must use the idle link now"
        );
        assert_eq!(m.stats.contention_cycles.get(), 0);
    }

    #[test]
    fn gap_too_small_queues_after() {
        let mut m = mesh4x4();
        m.traverse(0, 1, 5, 4); // busy [4, 9)
                                // A 5-flit message at t=0 does not fit in [0,4); departs at 9.
        let t = m.traverse(0, 1, 5, 0);
        assert_eq!(t, 9 + m.config().hop_cycles);
        assert_eq!(m.stats.contention_cycles.get(), 9);
    }

    #[test]
    fn interval_lists_stay_bounded_under_load() {
        let mut m = mesh4x4();
        for i in 0..200_000u64 {
            m.traverse(0, 3, 5, i * 2);
        }
        let worst = m.links.iter().map(|l| l.len()).max().unwrap();
        assert!(worst < 10_000, "interval GC failed: {worst} entries");
    }

    #[test]
    fn non_square_mesh_supported() {
        let mut m = Mesh::new(NocConfig {
            cols: 2,
            rows: 1,
            ..NocConfig::default()
        });
        assert_eq!(m.hop_distance(0, 1), 1);
        assert_eq!(m.traverse(0, 1, 1, 0), m.config().hop_cycles);
    }
}
