//! Per-bank LLC service model: asymmetric read/write latency plus
//! data-array occupancy.
//!
//! The paper's premise is that ReRAM writes are slow (§II: 4–8× the read
//! latency). Before this module, every L3 bank operation — demand read,
//! fill, writeback — charged one symmetric latency and banks had infinite
//! internal bandwidth; only NoC links serialized. [`LlcBanks`] gives each
//! bank a [`reserve`]-style busy calendar: reads occupy the data array for
//! `read_latency`, writes and fills for `write_latency`, and later
//! operations queue behind in-flight ones — the same busy-interval
//! mechanism mesh links ([`crate::noc`]) and DRAM banks ([`crate::dram`])
//! already use.
//!
//! Timing semantics (chosen so a symmetric geometry with occupancy
//! disabled reproduces the pre-split model cycle-for-cycle):
//!
//! * **Read (demand/secondary/prefetch hit)** — the SRAM tag check
//!   overlaps the data read; data is ready `read_latency` after the bank
//!   starts the operation, where the start queues behind any in-flight
//!   operation.
//! * **Tag-check miss** — only the tag array is touched; the request
//!   leaves for memory after `tag_latency` without reserving the data
//!   array (tag arrays are SRAM and effectively unlimited-bandwidth at
//!   this granularity).
//! * **Write / fill** — the operation occupies the data array for
//!   `write_latency` starting when the bank is free. Fills complete into a
//!   write buffer from the requester's point of view: the *core's* data is
//!   forwarded at arrival time, but the bank stays busy for the slow ReRAM
//!   program, which is exactly how write latency hurts — by delaying
//!   *later* reads (RAW turnaround), not the write's own requester.
//!   Consequently `queue_cycles` counts **read** waiting only: it is the
//!   cycles of real stall the bank inflicted, while posted-write backlog
//!   shows up in the `write_service` residency histogram.
//!
//! Each bank also tracks the Sniper-style op-history transition counters
//! (read-after-read / read-after-write / write-after-read /
//! write-after-write); RAW is the expensive turnaround on ReRAM. The
//! transition counters sum to `ops - 1` per bank.

use crate::config::CacheGeometry;
use crate::reserve::{gc, reserve, Calendar};
use crate::types::{BankId, Cycle};
use sim_stats::{Counter, Histogram, StatsRegistry};

/// Reservations older than this many cycles behind the observed time
/// horizon are garbage-collected (same slack as [`crate::dram`]).
const GC_SLACK: Cycle = 100_000;

/// Operation class for occupancy and transition accounting. Fills count
/// as writes: they program the ReRAM array exactly like a writeback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpClass {
    Read,
    Write,
}

/// Contention and service statistics for one LLC bank.
#[derive(Clone, Debug, Default)]
pub struct BankStats {
    /// Data-array reads (demand hits, secondary-probe hits, prefetch hits).
    pub read_ops: Counter,
    /// Data-array writes from L2 writebacks.
    pub write_ops: Counter,
    /// Data-array writes from fills (demand, prefetch, write-allocate).
    pub fill_ops: Counter,
    /// Data-array programs from compression *expansion re-fills*: a
    /// resident line's size class grew past its allocation and the line
    /// was re-compacted into a bigger one. Kept separate from `fill_ops`
    /// because expansions re-program sub-blocks the triggering write
    /// already aged — the wear model charges them zero extra line wear,
    /// so the `fill_ops + write_ops == wear` accounting identity the
    /// differential harness pins stays intact.
    pub expand_ops: Counter,
    /// Cycles *reads* spent queued behind a busy data array. Writes and
    /// fills are posted (write-buffer semantics): a deferred write start
    /// delays no requester, so their waiting is not a stall and is
    /// reported only through the `write_service` residency histogram.
    /// This counter is therefore exactly the performance lost to bank
    /// contention.
    pub queue_cycles: Counter,
    /// Read issued while the previous operation was a read.
    pub rar: Counter,
    /// Read issued while the previous operation was a write — the
    /// expensive ReRAM turnaround the asymmetric model exists to expose.
    pub raw: Counter,
    /// Write issued while the previous operation was a read.
    pub war: Counter,
    /// Write issued while the previous operation was a write.
    pub waw: Counter,
    /// Total bank residency (queue + service) of read operations.
    pub read_service: Histogram,
    /// Total bank residency (queue + service) of write and fill operations.
    pub write_service: Histogram,
}

impl BankStats {
    /// Total operations the bank served.
    pub fn ops(&self) -> u64 {
        self.read_ops.get() + self.write_ops.get() + self.fill_ops.get() + self.expand_ops.get()
    }

    /// Sum of the four op-transition counters; `ops() - 1` when the bank
    /// served at least one operation (the first op has no predecessor).
    pub fn transitions(&self) -> u64 {
        self.rar.get() + self.raw.get() + self.war.get() + self.waw.get()
    }

    /// Register the counters plus service-time summaries under
    /// `<prefix>.read_ops`, `.write_ops`, `.fill_ops`, `.queue_cycles`,
    /// `.rar`, `.raw`, `.war`, `.waw`, and
    /// `.{read,write}_service.{count,mean_cycles,max_cycles,p95_cycles}`.
    pub fn register(&self, reg: &mut StatsRegistry, prefix: &str) {
        reg.set(format!("{prefix}.read_ops"), self.read_ops.get());
        reg.set(format!("{prefix}.write_ops"), self.write_ops.get());
        reg.set(format!("{prefix}.fill_ops"), self.fill_ops.get());
        if self.expand_ops.get() != 0 {
            reg.set(format!("{prefix}.expand_ops"), self.expand_ops.get());
        }
        reg.set(format!("{prefix}.queue_cycles"), self.queue_cycles.get());
        reg.set(format!("{prefix}.rar"), self.rar.get());
        reg.set(format!("{prefix}.raw"), self.raw.get());
        reg.set(format!("{prefix}.war"), self.war.get());
        reg.set(format!("{prefix}.waw"), self.waw.get());
        for (name, h) in [
            ("read_service", &self.read_service),
            ("write_service", &self.write_service),
        ] {
            reg.set(format!("{prefix}.{name}.count"), h.count());
            reg.set(format!("{prefix}.{name}.mean_cycles"), h.mean());
            reg.set(format!("{prefix}.{name}.max_cycles"), h.max().unwrap_or(0));
            reg.set(
                format!("{prefix}.{name}.p95_cycles"),
                h.percentile(95.0).unwrap_or(0),
            );
        }
    }
}

#[derive(Clone, Debug, Default)]
struct BankState {
    busy: Calendar,
    last: Option<OpClass>,
    stats: BankStats,
}

/// All LLC banks' data-array calendars and statistics.
#[derive(Clone, Debug)]
pub struct LlcBanks {
    banks: Vec<BankState>,
    read_latency: Cycle,
    write_latency: Cycle,
    occupancy: bool,
    /// Reservations strictly before this time can never be contended again.
    floor: Cycle,
    /// Largest `now` observed; advances the amortized GC horizon for
    /// callers that never push a floor (direct hierarchy use in tests).
    max_now: Cycle,
    last_gc: Cycle,
}

impl LlcBanks {
    /// Build the service model for `n_banks` banks of geometry `geo`.
    /// With `occupancy` false the calendars are bypassed: operations
    /// still pay their service latency but never queue (the legacy
    /// infinite-internal-bandwidth model).
    pub fn new(n_banks: usize, geo: &CacheGeometry, occupancy: bool) -> Self {
        LlcBanks {
            banks: vec![BankState::default(); n_banks],
            read_latency: geo.read_latency,
            write_latency: geo.write_latency,
            occupancy,
            floor: 0,
            max_now: 0,
            last_gc: 0,
        }
    }

    /// Number of banks.
    pub fn n_banks(&self) -> usize {
        self.banks.len()
    }

    /// A data-array read issued at `now`: returns the cycle the data is
    /// available, after queueing behind any in-flight operation.
    pub fn read(&mut self, bank: BankId, now: Cycle) -> Cycle {
        let done = self.service(bank, OpClass::Read, now);
        self.banks[bank].stats.read_ops.inc();
        done
    }

    /// A writeback arriving at `now`: the bank programs the line for
    /// `write_latency`. Returns the completion cycle (nothing waits on it
    /// directly — it matters by occupying the array).
    pub fn write(&mut self, bank: BankId, now: Cycle) -> Cycle {
        let done = self.service(bank, OpClass::Write, now);
        self.banks[bank].stats.write_ops.inc();
        done
    }

    /// A fill arriving at `now`: identical occupancy to a write, separate
    /// accounting. The requester's data forwards at `now` (write-buffer
    /// semantics); the returned completion is when the array frees up.
    pub fn fill(&mut self, bank: BankId, now: Cycle) -> Cycle {
        let done = self.service(bank, OpClass::Write, now);
        self.banks[bank].stats.fill_ops.inc();
        done
    }

    /// A compression expansion re-fill arriving at `now`: identical
    /// write-class occupancy (the re-compaction programs the data array
    /// like any write), posted like a fill, counted separately — see
    /// [`BankStats::expand_ops`] for why it stays out of `fill_ops`.
    pub fn expand(&mut self, bank: BankId, now: Cycle) -> Cycle {
        let done = self.service(bank, OpClass::Write, now);
        self.banks[bank].stats.expand_ops.inc();
        done
    }

    fn service(&mut self, bank: BankId, class: OpClass, now: Cycle) -> Cycle {
        if now > self.max_now {
            self.max_now = now;
            if self.max_now - self.last_gc > GC_SLACK {
                let horizon = self.floor.max(self.max_now.saturating_sub(GC_SLACK));
                for b in &mut self.banks {
                    gc(&mut b.busy, horizon);
                }
                self.last_gc = self.max_now;
            }
        }
        let hold = match class {
            OpClass::Read => self.read_latency,
            OpClass::Write => self.write_latency,
        };
        let b = &mut self.banks[bank];
        let start = if self.occupancy {
            reserve(&mut b.busy, now, hold, self.floor)
        } else {
            now
        };
        // Only reads stall anyone on a deferred start; posted writes show
        // their waiting in the residency histogram instead.
        if class == OpClass::Read {
            b.stats.queue_cycles.add(start - now);
        }
        match (b.last, class) {
            (Some(OpClass::Read), OpClass::Read) => b.stats.rar.inc(),
            (Some(OpClass::Write), OpClass::Read) => b.stats.raw.inc(),
            (Some(OpClass::Read), OpClass::Write) => b.stats.war.inc(),
            (Some(OpClass::Write), OpClass::Write) => b.stats.waw.inc(),
            (None, _) => {}
        }
        b.last = Some(class);
        let done = start + hold;
        match class {
            OpClass::Read => b.stats.read_service.record(done - now),
            OpClass::Write => b.stats.write_service.record(done - now),
        }
        done
    }

    /// Statistics of one bank.
    pub fn stats(&self, bank: BankId) -> &BankStats {
        &self.banks[bank].stats
    }

    /// Clone out every bank's statistics (for [`crate::system::SimResult`]).
    pub fn stats_vec(&self) -> Vec<BankStats> {
        self.banks.iter().map(|b| b.stats.clone()).collect()
    }

    /// Advance the contention floor: no future operation will be issued
    /// with `now` earlier than this. Monotone.
    pub fn set_floor(&mut self, now: Cycle) {
        self.floor = self.floor.max(now);
    }

    /// Reset statistics, calendars, op history and the time floor (used
    /// between warmup and measurement).
    pub fn reset_stats(&mut self) {
        for b in &mut self.banks {
            b.stats = BankStats::default();
            b.busy.clear();
            b.last = None;
        }
        self.floor = 0;
        self.max_now = 0;
        self.last_gc = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asym() -> LlcBanks {
        let geo = CacheGeometry {
            size_bytes: 2 * 1024 * 1024,
            assoc: 16,
            tag_latency: 20,
            read_latency: 100,
            write_latency: 400,
        };
        LlcBanks::new(4, &geo, true)
    }

    #[test]
    fn idle_read_costs_read_latency() {
        let mut b = asym();
        assert_eq!(b.read(0, 1000), 1100);
        assert_eq!(b.stats(0).queue_cycles.get(), 0);
    }

    #[test]
    fn read_queues_behind_inflight_write() {
        let mut b = asym();
        // Write occupies [1000, 1400); a read at 1100 starts at 1400.
        assert_eq!(b.write(0, 1000), 1400);
        assert_eq!(b.read(0, 1100), 1500);
        assert_eq!(b.stats(0).queue_cycles.get(), 300);
        assert_eq!(b.stats(0).raw.get(), 1);
    }

    #[test]
    fn banks_are_independent() {
        let mut b = asym();
        b.write(0, 1000);
        assert_eq!(b.read(1, 1100), 1200);
        assert_eq!(b.stats(1).queue_cycles.get(), 0);
    }

    #[test]
    fn occupancy_off_never_queues() {
        let geo = CacheGeometry {
            size_bytes: 2 * 1024 * 1024,
            assoc: 16,
            tag_latency: 20,
            read_latency: 100,
            write_latency: 400,
        };
        let mut b = LlcBanks::new(2, &geo, false);
        assert_eq!(b.write(0, 1000), 1400);
        assert_eq!(b.read(0, 1001), 1101);
        assert_eq!(b.stats(0).queue_cycles.get(), 0);
    }

    #[test]
    fn transition_counters_sum_to_ops_minus_one() {
        let mut b = asym();
        let mut t = 0;
        for i in 0..37u64 {
            t += 50;
            match i % 3 {
                0 => b.read(2, t),
                1 => b.write(2, t),
                _ => b.fill(2, t),
            };
        }
        let s = b.stats(2);
        assert_eq!(s.ops(), 37);
        assert_eq!(s.transitions(), 36);
    }

    #[test]
    fn posted_writes_do_not_count_as_queueing() {
        let mut b = asym();
        assert_eq!(b.write(0, 1000), 1400);
        // A second write arriving mid-program is deferred to 1400 but
        // stalls nobody: the backlog lands in the residency histogram,
        // not in queue_cycles.
        assert_eq!(b.fill(0, 1100), 1800);
        let s = b.stats(0);
        assert_eq!(s.queue_cycles.get(), 0);
        assert_eq!(s.write_service.max(), Some(700));
        assert_eq!(s.waw.get(), 1);
    }

    #[test]
    fn service_histograms_include_queueing() {
        let mut b = asym();
        b.write(0, 1000); // busy until 1400
        b.read(0, 1100); // waits 300, served 100 -> residency 400
        let s = b.stats(0);
        assert_eq!(s.write_service.count(), 1);
        assert_eq!(s.write_service.max(), Some(400));
        assert_eq!(s.read_service.count(), 1);
        assert_eq!(s.read_service.max(), Some(400));
    }

    #[test]
    fn expand_occupies_like_a_write_but_counts_separately() {
        let mut b = asym();
        assert_eq!(b.expand(0, 1000), 1400);
        // Posted like a write: a queued expansion stalls nobody.
        assert_eq!(b.expand(0, 1100), 1800);
        let s = b.stats(0);
        assert_eq!(s.expand_ops.get(), 2);
        assert_eq!(s.fill_ops.get(), 0);
        assert_eq!(s.queue_cycles.get(), 0);
        assert_eq!(s.ops(), 2);
        assert_eq!(s.waw.get(), 1);
        assert_eq!(s.transitions(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut b = asym();
        b.write(0, 1000);
        b.set_floor(5000);
        b.reset_stats();
        assert_eq!(b.stats(0).ops(), 0);
        // Calendar cleared: a read at an overlapping time does not queue.
        assert_eq!(b.read(0, 1001), 1101);
    }
}
