//! System configuration. The defaults reproduce the paper's Table I.

use crate::types::LINE_BYTES;

/// Geometry and latency of one set-associative cache.
///
/// Latency is split three ways because the L3 banks are ReRAM: the tag
/// array is SRAM (fast), reads are moderate, and writes are the 4–8×
/// outlier the whole paper is about. SRAM levels (L1/L2) use
/// [`CacheGeometry::symmetric`], which sets all three equal and reproduces
/// the old single-`latency` behaviour exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Tag-array check latency in cycles (charged on a miss, where no data
    /// array operation happens; overlapped with the data read on a hit).
    pub tag_latency: u64,
    /// Data-array read latency in cycles (a hit costs this much total —
    /// the tag check overlaps the data access, as in a parallel-access
    /// SRAM tag / ReRAM data organization).
    pub read_latency: u64,
    /// Data-array write latency in cycles: how long a fill or writeback
    /// occupies the data array. ReRAM SET/RESET is the paper's bottleneck.
    pub write_latency: u64,
}

impl CacheGeometry {
    /// A geometry whose tag, read and write paths all take `latency`
    /// cycles — the pre-split single-latency model, used for the SRAM
    /// levels and for legacy-compatible L3 configurations.
    pub const fn symmetric(size_bytes: u64, assoc: usize, latency: u64) -> Self {
        CacheGeometry {
            size_bytes,
            assoc,
            tag_latency: latency,
            read_latency: latency,
            write_latency: latency,
        }
    }

    /// True when all three latencies are equal (the legacy model).
    pub const fn is_symmetric(&self) -> bool {
        self.tag_latency == self.read_latency && self.read_latency == self.write_latency
    }
    /// Number of sets (`size / (line * assoc)`).
    ///
    /// # Panics
    /// Panics if the geometry does not divide into a whole power-of-two
    /// number of sets — indexing uses bit masks.
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / LINE_BYTES;
        let sets = lines as usize / self.assoc;
        assert!(
            sets > 0 && sets.is_power_of_two() && lines as usize % self.assoc == 0,
            "cache geometry {self:?} must give a power-of-two number of sets"
        );
        sets
    }

    /// Total number of line slots.
    pub fn lines(&self) -> usize {
        (self.size_bytes / LINE_BYTES) as usize
    }
}

/// DDR3-style memory system parameters.
///
/// Timings are in *core* cycles at the configured core frequency. The
/// defaults approximate JEDEC DDR3-1600 under a 2.4 GHz core clock:
/// tRCD = tRP = tCAS ≈ 13.75 ns ≈ 33 core cycles, and a 64 B burst occupies
/// the channel's data bus for 5 ns ≈ 12 core cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of independent channels (Table I: 4).
    pub channels: usize,
    /// Ranks per channel (Table I: 2).
    pub ranks: usize,
    /// Banks per rank (Table I: 8).
    pub banks_per_rank: usize,
    /// Row-buffer size in bytes (8 KB typical for DDR3 x8 devices).
    pub row_bytes: u64,
    /// Activate (row open) latency in core cycles.
    pub t_rcd: u64,
    /// Precharge (row close) latency in core cycles.
    pub t_rp: u64,
    /// Column access latency in core cycles.
    pub t_cas: u64,
    /// Data-bus occupancy of one 64 B transfer in core cycles.
    pub t_burst: u64,
}

impl DramConfig {
    /// Total DRAM banks across all channels and ranks.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks * self.banks_per_rank
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 4,
            ranks: 2,
            banks_per_rank: 8,
            row_bytes: 8192,
            t_rcd: 33,
            t_rp: 33,
            t_cas: 33,
            t_burst: 12,
        }
    }
}

/// Mesh network-on-chip parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NocConfig {
    /// Mesh columns (4 for the paper's 4×4 mesh).
    pub cols: usize,
    /// Mesh rows.
    pub rows: usize,
    /// Per-hop pipeline latency (router traversal + link) in cycles.
    /// A 4–5 stage router plus link at 2.4 GHz; the knob that sets how much
    /// NUCA distance costs (the paper's Table I does not specify it; this
    /// value reproduces the paper's Private-vs-S-NUCA IPC spread).
    pub hop_cycles: u64,
    /// Channel occupancy per flit in cycles (serialization).
    pub cycles_per_flit: u64,
    /// Flits in a control message (request, invalidation).
    pub ctrl_flits: u32,
    /// Flits in a data message (a 64 B line plus header).
    pub data_flits: u32,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            cols: 4,
            rows: 4,
            hop_cycles: 8,
            cycles_per_flit: 1,
            ctrl_flits: 1,
            data_flits: 5,
        }
    }
}

/// Stride-prefetcher parameters (an L2 prefetcher per core).
///
/// The paper does not call out prefetching, but its criticality narrative
/// presumes it: Figure 8's ~50% *non-critical fetched blocks* include the
/// streaming/scanning misses whose latency a stride prefetcher hides —
/// without one, every DRAM-bound load in a scan blocks the ROB head and
/// everything classifies critical. A classic per-core stride table with
/// confidence-gated degree-N next-line prefetching into the L2 reproduces
/// the paper's criticality mix. Prefetch fills traverse the full L3/DRAM
/// path (charging wear, traffic and placement exactly like demand fills —
/// predicted non-critical, which is exactly Re-NUCA's intent for them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Master enable.
    pub enabled: bool,
    /// Stream-table entries per core.
    pub streams: usize,
    /// Lines fetched ahead once a stream is confident.
    pub degree: u32,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            enabled: true,
            streams: 16,
            degree: 4,
        }
    }
}

/// Full system configuration; `SystemConfig::default()` is the paper's
/// Table I machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SystemConfig {
    /// Number of cores (Table I: 16 @ 2.4 GHz, out-of-order).
    pub n_cores: usize,
    /// Core clock in Hz.
    pub freq_hz: f64,
    /// Reorder-buffer entries (Table I: 128; 168 in the sensitivity study).
    pub rob_entries: usize,
    /// Instructions fetched/dispatched per cycle.
    pub fetch_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Outstanding L1-miss loads per core (MSHR count). gem5's default
    /// O3 configuration is in this range; bounds memory-level parallelism.
    pub mshrs_per_core: usize,
    /// L1 data cache (Table I: 32 KB, 4-way, 2-cycle).
    pub l1: CacheGeometry,
    /// Private L2 (Table I: 256 KB, 8-way, 5-cycle; 128 KB in sensitivity).
    pub l2: CacheGeometry,
    /// One L3 NUCA bank (Table I: 2 MB, 16-way, 100-cycle read; 1 MB
    /// sensitivity). The default is asymmetric ReRAM timing: a 20-cycle
    /// SRAM tag check, 100-cycle reads, 400-cycle writes (§II of the
    /// paper: ReRAM writes are 4–8× slower than reads).
    pub l3_bank: CacheGeometry,
    /// Number of L3 banks (= number of cores, 16).
    pub n_banks: usize,
    /// Mesh NoC parameters (4×4).
    pub noc: NocConfig,
    /// DRAM parameters (Table I: JEDEC DDR3, 4 channels, 2 ranks, 8 banks).
    pub dram: DramConfig,
    /// Data-TLB entries per core (§IV.C: 64 entries).
    pub tlb_entries: usize,
    /// TLB associativity (§IV.C: 8-way).
    pub tlb_assoc: usize,
    /// Page-walk latency on a TLB miss, cycles (not specified by the paper;
    /// a typical 2-level walk with cached PTEs).
    pub page_walk_latency: u64,
    /// Extra lookup latency charged by the Naive oracle's global directory
    /// (the paper argues this directory is what makes Naive impractical:
    /// a line-granular directory over a 32 MB LLC is a multi-megabyte
    /// serialized structure). Calibrated to reproduce the paper's ~21%
    /// Naive performance loss vs S-NUCA.
    pub naive_dir_latency: u64,
    /// Minimum head-of-ROB stall, in cycles, for a load to count as having
    /// *blocked* the head (the criticality event). The paper's predictor is
    /// a binary simplification of Ghose et al.'s stall-time-ranked commit
    /// block predictor; without a minimal-stall floor, the few cycles of
    /// skew between overlapped miss returns (one DRAM burst ≈ 12 cycles)
    /// would mark every load in a high-MLP burst critical, which
    /// contradicts the paper's measured ~50% non-critical fetched blocks.
    /// One burst time is the natural floor.
    pub criticality_stall_threshold: u64,
    /// Record per-block criticality at fill time so writeback criticality
    /// can be attributed (needed by Figure 9's measurement; off by default
    /// because it allocates a map proportional to the footprint).
    pub track_block_criticality: bool,
    /// Per-core L2 stride prefetcher.
    pub prefetch: PrefetchConfig,
    /// Intra-bank wear-leveling: rotate each L3 bank's logical→physical
    /// set mapping after this many writes into the bank (i2wap-style
    /// inter-set leveling, §VI of the paper — orthogonal to Re-NUCA and
    /// composable with it). `None` disables (the paper's baseline).
    pub intra_bank_rotation_writes: Option<u64>,
    /// Model L3 bank data-array occupancy: reads/writes/fills reserve the
    /// bank's busy calendar for their service time and later operations
    /// queue behind them (the same mechanism mesh links and DRAM banks
    /// use). Disabling it reverts to the pre-queue model where banks have
    /// infinite internal bandwidth — combined with a symmetric
    /// [`CacheGeometry`] that reproduces the legacy timings exactly.
    pub l3_bank_occupancy: bool,
    /// Sub-blocks per 64 B L3 line for the compressed-LLC schemes
    /// (L2C2-style compaction, ROADMAP item 4): the granularity size
    /// classes are allocated and sub-block wear is counted at. Must
    /// divide the line size ([`SystemConfig::validate`] enforces it).
    /// Only consulted when the placement policy advertises a compression
    /// model; placement-only schemes ignore it entirely.
    pub l3_subblocks: usize,
    /// Seed of the deterministic compression content model (which size
    /// class each `(line, version)` write compresses to).
    pub compress_seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            n_cores: 16,
            freq_hz: 2.4e9,
            rob_entries: 128,
            fetch_width: 4,
            commit_width: 4,
            mshrs_per_core: 8,
            l1: CacheGeometry::symmetric(32 * 1024, 4, 2),
            l2: CacheGeometry::symmetric(256 * 1024, 8, 5),
            l3_bank: CacheGeometry {
                size_bytes: 2 * 1024 * 1024,
                assoc: 16,
                tag_latency: 20,
                read_latency: 100,
                write_latency: 400,
            },
            n_banks: 16,
            noc: NocConfig::default(),
            dram: DramConfig::default(),
            tlb_entries: 64,
            tlb_assoc: 8,
            page_walk_latency: 60,
            naive_dir_latency: 150,
            criticality_stall_threshold: 12,
            track_block_criticality: false,
            prefetch: PrefetchConfig::default(),
            intra_bank_rotation_writes: None,
            l3_bank_occupancy: true,
            l3_subblocks: 4,
            compress_seed: 0xC0DEC,
        }
    }
}

impl SystemConfig {
    /// The sensitivity-study variant with 128 KB L2 (§V.C).
    pub fn with_l2_128k(mut self) -> Self {
        self.l2.size_bytes = 128 * 1024;
        self
    }

    /// The sensitivity-study variant with 1 MB L3 banks (§V.C).
    pub fn with_l3_1m(mut self) -> Self {
        self.l3_bank.size_bytes = 1024 * 1024;
        self
    }

    /// The sensitivity-study variant with a 168-entry ROB (§V.C).
    pub fn with_rob_168(mut self) -> Self {
        self.rob_entries = 168;
        self
    }

    /// The legacy symmetric-latency L3: every bank operation takes the
    /// read latency and banks never serialize internally. This is the
    /// pre-asymmetric-split timing model, kept for regression comparison
    /// and for studies that want NoC-only contention.
    pub fn with_symmetric_llc(mut self) -> Self {
        let r = self.l3_bank.read_latency;
        self.l3_bank.tag_latency = r;
        self.l3_bank.write_latency = r;
        self.l3_bank_occupancy = false;
        self
    }

    /// Scale the machine down to `n` cores (n a square number ≤ 16) for
    /// fast unit tests. Banks scale with cores; the mesh becomes √n × √n.
    pub fn small(n: usize) -> Self {
        assert!(
            matches!(n, 1 | 4 | 16),
            "small() supports 1, 4 or 16 cores (square meshes)"
        );
        let side = (n as f64).sqrt() as usize;
        SystemConfig {
            n_cores: n,
            n_banks: n,
            noc: NocConfig {
                cols: side,
                rows: side,
                ..NocConfig::default()
            },
            ..SystemConfig::default()
        }
    }

    /// A machine with an arbitrary `cols × rows` mesh (one core and one
    /// bank per tile), including non-power-of-two tile counts — the
    /// placement policies stripe by modulo when masking is unsound (see
    /// `renuca_core::mapping`). Used by the differential harness to check
    /// that no pow2 assumption leaks into the placement or cache paths.
    pub fn mesh(cols: usize, rows: usize) -> Self {
        let n = cols * rows;
        assert!(n > 0, "mesh needs at least one tile");
        SystemConfig {
            n_cores: n,
            n_banks: n,
            noc: NocConfig {
                cols,
                rows,
                ..NocConfig::default()
            },
            ..SystemConfig::default()
        }
    }

    /// Echo every configuration knob into `reg` under `<prefix>.<field>`
    /// dotted paths (e.g. `config.n_cores`, `config.l3_bank.size_bytes`),
    /// in declaration order. Booleans register as 0/1;
    /// `intra_bank_rotation_writes` registers its threshold, with 0 meaning
    /// disabled.
    pub fn register(&self, reg: &mut sim_stats::StatsRegistry, prefix: &str) {
        reg.set(format!("{prefix}.n_cores"), self.n_cores as u64);
        reg.set(format!("{prefix}.freq_hz"), self.freq_hz);
        reg.set(format!("{prefix}.rob_entries"), self.rob_entries as u64);
        reg.set(format!("{prefix}.fetch_width"), self.fetch_width as u64);
        reg.set(format!("{prefix}.commit_width"), self.commit_width as u64);
        reg.set(
            format!("{prefix}.mshrs_per_core"),
            self.mshrs_per_core as u64,
        );
        for (name, g) in [("l1", self.l1), ("l2", self.l2), ("l3_bank", self.l3_bank)] {
            reg.set(format!("{prefix}.{name}.size_bytes"), g.size_bytes);
            reg.set(format!("{prefix}.{name}.assoc"), g.assoc as u64);
            // Legacy key: the read latency under the pre-split schema name,
            // always emitted so symmetric configs echo byte-identically to
            // pre-split manifests. Asymmetric geometries additionally emit
            // the full three-way split.
            reg.set(format!("{prefix}.{name}.latency"), g.read_latency);
            if !g.is_symmetric() {
                reg.set(format!("{prefix}.{name}.tag_latency"), g.tag_latency);
                reg.set(format!("{prefix}.{name}.read_latency"), g.read_latency);
                reg.set(format!("{prefix}.{name}.write_latency"), g.write_latency);
            }
        }
        reg.set(format!("{prefix}.n_banks"), self.n_banks as u64);
        reg.set(format!("{prefix}.noc.cols"), self.noc.cols as u64);
        reg.set(format!("{prefix}.noc.rows"), self.noc.rows as u64);
        reg.set(format!("{prefix}.noc.hop_cycles"), self.noc.hop_cycles);
        reg.set(
            format!("{prefix}.noc.cycles_per_flit"),
            self.noc.cycles_per_flit,
        );
        reg.set(
            format!("{prefix}.noc.ctrl_flits"),
            self.noc.ctrl_flits as u64,
        );
        reg.set(
            format!("{prefix}.noc.data_flits"),
            self.noc.data_flits as u64,
        );
        reg.set(format!("{prefix}.dram.channels"), self.dram.channels as u64);
        reg.set(format!("{prefix}.dram.ranks"), self.dram.ranks as u64);
        reg.set(
            format!("{prefix}.dram.banks_per_rank"),
            self.dram.banks_per_rank as u64,
        );
        reg.set(format!("{prefix}.dram.row_bytes"), self.dram.row_bytes);
        reg.set(format!("{prefix}.dram.t_rcd"), self.dram.t_rcd);
        reg.set(format!("{prefix}.dram.t_rp"), self.dram.t_rp);
        reg.set(format!("{prefix}.dram.t_cas"), self.dram.t_cas);
        reg.set(format!("{prefix}.dram.t_burst"), self.dram.t_burst);
        reg.set(format!("{prefix}.tlb_entries"), self.tlb_entries as u64);
        reg.set(format!("{prefix}.tlb_assoc"), self.tlb_assoc as u64);
        reg.set(
            format!("{prefix}.page_walk_latency"),
            self.page_walk_latency,
        );
        reg.set(
            format!("{prefix}.naive_dir_latency"),
            self.naive_dir_latency,
        );
        reg.set(
            format!("{prefix}.criticality_stall_threshold"),
            self.criticality_stall_threshold,
        );
        reg.set(
            format!("{prefix}.track_block_criticality"),
            self.track_block_criticality as u64,
        );
        reg.set(
            format!("{prefix}.prefetch.enabled"),
            self.prefetch.enabled as u64,
        );
        reg.set(
            format!("{prefix}.prefetch.streams"),
            self.prefetch.streams as u64,
        );
        reg.set(
            format!("{prefix}.prefetch.degree"),
            self.prefetch.degree as u64,
        );
        reg.set(
            format!("{prefix}.intra_bank_rotation_writes"),
            self.intra_bank_rotation_writes.unwrap_or(0),
        );
        // Only emitted when the bank service model is active, so that
        // legacy symmetric configurations (which also disable occupancy)
        // keep the exact pre-split manifest schema.
        if self.l3_bank_occupancy {
            reg.set(format!("{prefix}.l3_bank_occupancy"), 1u64);
        }
        reg.set(format!("{prefix}.l3_subblocks"), self.l3_subblocks as u64);
        reg.set(format!("{prefix}.compress_seed"), self.compress_seed);
    }

    /// Validate internal consistency. Called by `System::new`.
    ///
    /// # Panics
    /// Panics with a descriptive message on inconsistent configuration.
    pub fn validate(&self) {
        assert!(self.n_cores > 0, "need at least one core");
        assert_eq!(
            self.n_cores, self.n_banks,
            "the paper's NUCA keeps one bank per core"
        );
        assert_eq!(
            self.noc.cols * self.noc.rows,
            self.n_cores,
            "mesh must have one tile per core"
        );
        assert!(self.rob_entries >= self.fetch_width);
        // Bank counts need not be powers of two: every bank-selection path
        // (S-NUCA striping, owner decoding, DRAM channel hashing) either
        // masks behind a pow2 check or falls back to modulo.
        // Trigger the power-of-two set checks.
        let _ = self.l1.sets();
        let _ = self.l2.sets();
        let _ = self.l3_bank.sets();
        for (name, g) in [("l1", self.l1), ("l2", self.l2), ("l3_bank", self.l3_bank)] {
            assert!(
                g.tag_latency <= g.read_latency,
                "{name}: the tag check overlaps the data read on a hit, \
                 so tag_latency must not exceed read_latency"
            );
            assert!(
                g.read_latency <= g.write_latency,
                "{name}: writes cannot be faster than reads \
                 (symmetric geometries use equal latencies)"
            );
        }
        assert!(self.tlb_entries % self.tlb_assoc == 0);
        assert!((self.tlb_entries / self.tlb_assoc).is_power_of_two());
        // The compression model splits a line into equal sub-blocks; a
        // count that does not divide the 64 B line would leave a ragged
        // tail sub-block the wear masks cannot address.
        assert!(
            self.l3_subblocks >= 1
                && self.l3_subblocks as u64 <= LINE_BYTES
                && LINE_BYTES % self.l3_subblocks as u64 == 0,
            "l3_subblocks = {} must divide the {LINE_BYTES} B line size",
            self.l3_subblocks
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        // Table I of the paper, verbatim.
        let c = SystemConfig::default();
        assert_eq!(c.n_cores, 16);
        assert!((c.freq_hz - 2.4e9).abs() < 1.0);
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.noc.cols * c.noc.rows, 16); // 4x4 mesh
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l1.assoc, 4);
        assert_eq!(c.l1, CacheGeometry::symmetric(32 * 1024, 4, 2));
        assert_eq!(c.l2.size_bytes, 256 * 1024);
        assert_eq!(c.l2.assoc, 8);
        assert_eq!(c.l2, CacheGeometry::symmetric(256 * 1024, 8, 5));
        assert_eq!(c.l3_bank.size_bytes, 2 * 1024 * 1024);
        assert_eq!(c.l3_bank.assoc, 16);
        // Table I lists the 100-cycle bank access; the asymmetric ReRAM
        // split (tag 20 / read 100 / write 400) refines it per §II.
        assert_eq!(c.l3_bank.read_latency, 100);
        assert_eq!(c.l3_bank.tag_latency, 20);
        assert_eq!(c.l3_bank.write_latency, 400);
        assert!(!c.l3_bank.is_symmetric());
        assert!(c.l3_bank_occupancy);
        assert_eq!(c.n_banks, 16); // 32 MB total
        assert_eq!(c.dram.channels, 4);
        assert_eq!(c.dram.ranks, 2);
        assert_eq!(c.dram.banks_per_rank, 8);
        c.validate();
    }

    #[test]
    fn sensitivity_variants() {
        assert_eq!(
            SystemConfig::default().with_l2_128k().l2.size_bytes,
            128 * 1024
        );
        assert_eq!(
            SystemConfig::default().with_l3_1m().l3_bank.size_bytes,
            1024 * 1024
        );
        assert_eq!(SystemConfig::default().with_rob_168().rob_entries, 168);
        SystemConfig::default().with_l2_128k().validate();
        SystemConfig::default().with_l3_1m().validate();
        SystemConfig::default().with_rob_168().validate();
    }

    #[test]
    fn cache_geometry_sets() {
        let g = CacheGeometry::symmetric(32 * 1024, 4, 2);
        assert_eq!(g.sets(), 128); // 512 lines / 4 ways
        assert_eq!(g.lines(), 512);
        let l3 = SystemConfig::default().l3_bank;
        assert_eq!(l3.sets(), 2048); // 32768 lines / 16 ways
        assert_eq!(l3.lines(), 32768);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn bad_geometry_rejected() {
        CacheGeometry::symmetric(3000, 4, 1).sets();
    }

    #[test]
    fn symmetric_llc_builder_reverts_to_legacy_model() {
        let c = SystemConfig::default().with_symmetric_llc();
        c.validate();
        assert!(c.l3_bank.is_symmetric());
        assert_eq!(c.l3_bank.read_latency, 100);
        assert_eq!(c.l3_bank.write_latency, 100);
        assert!(!c.l3_bank_occupancy);
    }

    #[test]
    #[should_panic(expected = "faster than reads")]
    fn write_faster_than_read_rejected() {
        let mut c = SystemConfig::default();
        c.l3_bank.write_latency = 50;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "tag_latency")]
    fn tag_slower_than_read_rejected() {
        let mut c = SystemConfig::default();
        c.l3_bank.tag_latency = 200;
        c.validate();
    }

    #[test]
    fn small_configs() {
        for n in [1, 4, 16] {
            let c = SystemConfig::small(n);
            c.validate();
            assert_eq!(c.n_cores, n);
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn small_rejects_non_square() {
        SystemConfig::small(3);
    }

    #[test]
    fn mesh_allows_non_pow2_tile_counts() {
        let c = SystemConfig::mesh(3, 2);
        c.validate();
        assert_eq!(c.n_cores, 6);
        assert_eq!(c.n_banks, 6);
        assert_eq!((c.noc.cols, c.noc.rows), (3, 2));
        SystemConfig::mesh(2, 2).validate();
        SystemConfig::mesh(1, 1).validate();
        SystemConfig::mesh(5, 1).validate();
    }

    #[test]
    fn dram_total_banks() {
        assert_eq!(DramConfig::default().total_banks(), 64);
    }

    #[test]
    #[should_panic(expected = "must divide the 64 B line size")]
    fn non_dividing_subblock_count_rejected() {
        let mut c = SystemConfig::default();
        c.l3_subblocks = 3;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "must divide the 64 B line size")]
    fn zero_subblock_count_rejected() {
        let mut c = SystemConfig::default();
        c.l3_subblocks = 0;
        c.validate();
    }

    #[test]
    fn dividing_subblock_counts_accepted() {
        for sb in [1usize, 2, 4, 8, 16, 32, 64] {
            let mut c = SystemConfig::default();
            c.l3_subblocks = sb;
            c.validate();
        }
    }
}
