//! A fixed-bound open-addressed hash table for the per-access hot path.
//!
//! Every placement decision of every experiment funnels through a handful
//! of address-keyed maps (the coherence directory, the Naive oracle's
//! global directory, the Enhanced-TLB backing store, the optional
//! block-criticality tracker). `std::collections::HashMap` serves them
//! correctly but expensively: SipHash on every probe, allocation on
//! growth, and no capacity discipline. [`FixedTable`] replaces it on those
//! paths with the cheapest structure that fits the workload:
//!
//! * **keys are line/page addresses** (`u64`, always well below
//!   `u64::MAX`), hashed with one Fibonacci multiply;
//! * **open addressing with linear probing** over a power-of-two slot
//!   array — one cache line per probe step, no per-entry allocation;
//! * **backward-shift deletion** (no tombstones, so probe chains never
//!   rot under churn);
//! * **a hard capacity bound**: the table grows by doubling while below
//!   the bound and panics past it, so a leaking caller fails loudly
//!   instead of growing memory without limit over a long run.
//!
//! Lookups, inserts and removals are allocation-free; the only
//! allocations are the O(log bound) doublings on the way up to a run's
//! steady-state footprint. The table is *not* a general map: keys must
//! never equal [`EMPTY_KEY`] (`u64::MAX`), which no line or page address
//! reaches (physical lines are byte addresses shifted right by 6).

/// The reserved key marking an empty slot. Line and page addresses are
/// physical addresses shifted right, so they can never collide with it.
pub const EMPTY_KEY: u64 = u64::MAX;

/// Fibonacci multiplier (2^64 / φ) — one multiply mixes address keys whose
/// entropy sits in the low/middle bits.
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Minimum slot-array size (keeps the hash shift < 64 and probe loops
/// trivially terminating).
const MIN_SLOTS: usize = 8;

/// An open-addressed `u64 → V` map with linear probing, a power-of-two
/// slot array, backward-shift deletion and a hard entry bound.
#[derive(Clone, Debug)]
pub struct FixedTable<V> {
    keys: Vec<u64>,
    vals: Vec<V>,
    /// `slots - 1` (slot count is a power of two).
    mask: usize,
    /// `64 - log2(slots)`: index = high bits of the key hash.
    shift: u32,
    len: usize,
    max_entries: usize,
}

impl<V: Default> Default for FixedTable<V> {
    /// A table with the conservative default bound of 2^20 entries (far
    /// above any simulated footprint; callers that know their bound should
    /// use [`FixedTable::with_capacity`]).
    fn default() -> Self {
        Self::new(1 << 20)
    }
}

impl<V: Default> FixedTable<V> {
    /// A table holding at most `max_entries`, starting small and doubling
    /// on demand.
    pub fn new(max_entries: usize) -> Self {
        Self::with_capacity(0, max_entries)
    }

    /// A table pre-sized for `expected` entries (no rehash until the load
    /// factor would exceed 7/8 of that), bounded by `max_entries`.
    pub fn with_capacity(expected: usize, max_entries: usize) -> Self {
        assert!(max_entries > 0, "FixedTable bound must be positive");
        let want = expected.min(max_entries);
        // Slot count keeping load factor ≤ 7/8 at `want` entries.
        let slots = (want + want / 7 + 1).next_power_of_two().max(MIN_SLOTS);
        let mut vals = Vec::new();
        vals.resize_with(slots, V::default);
        FixedTable {
            keys: vec![EMPTY_KEY; slots],
            vals,
            mask: slots - 1,
            shift: 64 - slots.trailing_zeros(),
            len: 0,
            max_entries,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The hard entry bound.
    pub fn capacity_bound(&self) -> usize {
        self.max_entries
    }

    /// Home slot of a key.
    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        debug_assert_ne!(key, EMPTY_KEY, "u64::MAX is the empty-slot marker");
        (key.wrapping_mul(HASH_MUL) >> self.shift) as usize
    }

    /// Slot index of a present key.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let mut i = self.slot_of(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(i);
            }
            if k == EMPTY_KEY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Shared-reference lookup.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key).map(|i| &self.vals[i])
    }

    /// Mutable-reference lookup.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.find(key).map(|i| &mut self.vals[i])
    }

    /// Whether a key is present.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Insert or replace; returns the previous value if the key was
    /// present.
    ///
    /// # Panics
    /// Panics when inserting a *new* key while already holding
    /// `max_entries` entries — by design, so unbounded growth is a loud
    /// failure, not a slow leak.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        if let Some(i) = self.find(key) {
            return Some(std::mem::replace(&mut self.vals[i], value));
        }
        let i = self.slot_for_new(key);
        self.keys[i] = key;
        self.vals[i] = value;
        self.len += 1;
        None
    }

    /// Mutable reference to the value of `key`, inserting `make()` first
    /// if absent (the `entry().or_insert_with()` idiom).
    pub fn get_or_insert_with(&mut self, key: u64, make: impl FnOnce() -> V) -> &mut V {
        let i = match self.find(key) {
            Some(i) => i,
            None => {
                let i = self.slot_for_new(key);
                self.keys[i] = key;
                self.vals[i] = make();
                self.len += 1;
                i
            }
        };
        &mut self.vals[i]
    }

    /// Remove a key, returning its value. Uses backward-shift deletion so
    /// no tombstones accumulate under fill/evict churn.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let i = self.find(key)?;
        let value = std::mem::take(&mut self.vals[i]);
        self.len -= 1;
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let k = self.keys[j];
            if k == EMPTY_KEY {
                break;
            }
            // The entry at `j` may fill the hole iff its probe chain
            // started at or before the hole (otherwise moving it would
            // put it ahead of its home slot and lose it).
            let from_home = j.wrapping_sub(self.slot_of(k)) & self.mask;
            let from_hole = j.wrapping_sub(hole) & self.mask;
            if from_home >= from_hole {
                self.keys[hole] = k;
                self.vals[hole] = std::mem::take(&mut self.vals[j]);
                hole = j;
            }
        }
        self.keys[hole] = EMPTY_KEY;
        Some(value)
    }

    /// Iterate over `(key, &value)` pairs in slot order (diagnostics and
    /// tests only — slot order is not insertion order).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.keys
            .iter()
            .zip(self.vals.iter())
            .filter(|(&k, _)| k != EMPTY_KEY)
            .map(|(&k, v)| (k, v))
    }

    /// Find the empty slot for a key known to be absent, growing first if
    /// the insert would push the load factor above 7/8.
    fn slot_for_new(&mut self, key: u64) -> usize {
        assert!(
            self.len < self.max_entries,
            "FixedTable capacity bound exceeded ({} entries): the caller is leaking entries \
             or the bound is undersized",
            self.max_entries
        );
        if (self.len + 1) * 8 > (self.mask + 1) * 7 {
            self.grow();
        }
        let mut i = self.slot_of(key);
        while self.keys[i] != EMPTY_KEY {
            i = (i + 1) & self.mask;
        }
        i
    }

    /// Double the slot array and rehash (amortized; never on the steady
    /// state path).
    fn grow(&mut self) {
        let new_slots = (self.mask + 1) * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY_KEY; new_slots]);
        let mut new_vals = Vec::new();
        new_vals.resize_with(new_slots, V::default);
        let old_vals = std::mem::replace(&mut self.vals, new_vals);
        self.mask = new_slots - 1;
        self.shift = 64 - new_slots.trailing_zeros();
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY_KEY {
                let mut i = self.slot_of(k);
                while self.keys[i] != EMPTY_KEY {
                    i = (i + 1) & self.mask;
                }
                self.keys[i] = k;
                self.vals[i] = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t: FixedTable<u64> = FixedTable::new(1024);
        assert!(t.is_empty());
        assert_eq!(t.insert(5, 50), None);
        assert_eq!(t.insert(5, 55), Some(50));
        assert_eq!(t.get(5), Some(&55));
        assert_eq!(t.len(), 1);
        *t.get_mut(5).unwrap() += 1;
        assert_eq!(t.remove(5), Some(56));
        assert_eq!(t.remove(5), None);
        assert!(t.get(5).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn key_zero_is_a_real_key() {
        let mut t: FixedTable<bool> = FixedTable::new(16);
        assert!(!t.contains_key(0));
        t.insert(0, true);
        assert_eq!(t.get(0), Some(&true));
        assert_eq!(t.remove(0), Some(true));
    }

    #[test]
    fn get_or_insert_with_inserts_once() {
        let mut t: FixedTable<u64> = FixedTable::new(16);
        *t.get_or_insert_with(9, || 1) += 10;
        *t.get_or_insert_with(9, || panic!("must not re-make")) += 10;
        assert_eq!(t.get(9), Some(&21));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn grows_up_to_bound() {
        let mut t: FixedTable<usize> = FixedTable::with_capacity(4, 10_000);
        for k in 0..10_000u64 {
            t.insert(k * 3, k as usize);
        }
        assert_eq!(t.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(t.get(k * 3), Some(&(k as usize)));
        }
    }

    #[test]
    #[should_panic(expected = "capacity bound exceeded")]
    fn bound_is_hard() {
        let mut t: FixedTable<u64> = FixedTable::new(8);
        for k in 0..9u64 {
            t.insert(k, k);
        }
    }

    #[test]
    fn replacing_at_bound_is_fine() {
        let mut t: FixedTable<u64> = FixedTable::new(4);
        for k in 0..4u64 {
            t.insert(k, k);
        }
        // Updates of existing keys never count against the bound.
        assert_eq!(t.insert(2, 99), Some(2));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn deletion_keeps_probe_chains_reachable() {
        // Force heavy collisions: with 8 slots every key lands somewhere
        // in one short array; delete from chain middles and verify every
        // survivor stays findable.
        let mut t: FixedTable<u64> = FixedTable::with_capacity(6, 7);
        let keys = [11u64, 19, 27, 35, 43, 51];
        for &k in &keys {
            t.insert(k, k * 2);
        }
        t.remove(19);
        t.remove(43);
        for &k in &keys {
            let expect = if k == 19 || k == 43 {
                None
            } else {
                Some(k * 2)
            };
            assert_eq!(t.get(k).copied(), expect, "key {k}");
        }
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn agrees_with_hashmap_under_seeded_churn() {
        // The reference-model test the refactor rests on: a seeded random
        // insert/update/remove/lookup workload must be indistinguishable
        // from HashMap.
        let mut rng = sim_rng::SimRng::seed_from_u64(0xF1DE_7AB1);
        let mut t: FixedTable<u64> = FixedTable::with_capacity(32, 4096);
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for step in 0..50_000u64 {
            let key = rng.gen_bounded(700); // small space => heavy churn
            match rng.gen_bounded(4) {
                0 | 1 => {
                    let v = rng.next_u64() >> 1;
                    assert_eq!(t.insert(key, v), reference.insert(key, v), "step {step}");
                }
                2 => {
                    assert_eq!(t.remove(key), reference.remove(&key), "step {step}");
                }
                _ => {
                    assert_eq!(t.get(key), reference.get(&key), "step {step}");
                    let a = *t.get_or_insert_with(key, || 7);
                    let b = *reference.entry(key).or_insert(7);
                    assert_eq!(a, b, "step {step}");
                }
            }
            assert_eq!(t.len(), reference.len(), "step {step}");
        }
        // Full-content equality at the end.
        let mut snapshot: Vec<(u64, u64)> = t.iter().map(|(k, v)| (k, *v)).collect();
        snapshot.sort_unstable();
        let mut expect: Vec<(u64, u64)> = reference.into_iter().collect();
        expect.sort_unstable();
        assert_eq!(snapshot, expect);
    }

    #[test]
    fn iter_yields_every_live_entry() {
        let mut t: FixedTable<u64> = FixedTable::new(64);
        for k in 0..20u64 {
            t.insert(k * 17, k);
        }
        t.remove(5 * 17);
        let mut got: Vec<u64> = t.iter().map(|(k, _)| k).collect();
        got.sort_unstable();
        let expect: Vec<u64> = (0..20u64).filter(|&k| k != 5).map(|k| k * 17).collect();
        assert_eq!(got, expect);
    }
}
