//! Set-associative TLB with a pluggable per-entry payload.
//!
//! The paper's §IV.C augments a conventional 64-entry, 8-way TLB with a
//! 64-bit *Mapping Bit Vector* per entry. To keep the substrate reusable the
//! TLB here is generic over its payload type `P`: the plain translation TLB
//! uses `P = ()`, and `renuca-core`'s Enhanced TLB instantiates `P = u64`
//! (the MBV) plus a page-table backing store fed by the eviction
//! notifications this structure returns.
//!
//! Translation itself is identity in this simulator (the workload generator
//! already produces per-core physical addresses); the TLB models *latency*
//! (hit vs page walk) and the payload life-cycle.

use crate::types::Cycle;
use sim_stats::Counter;

/// TLB statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: Counter,
    /// Lookups that missed (page walk performed).
    pub misses: Counter,
    /// Entries evicted to make room.
    pub evictions: Counter,
}

impl TlbStats {
    /// Hit rate in \[0,1\].
    pub fn hit_rate(&self) -> f64 {
        self.hits.ratio(self.hits.get() + self.misses.get())
    }

    /// Register every counter plus the derived hit rate under
    /// `<prefix>.hits`, `<prefix>.misses`, `<prefix>.evictions`,
    /// `<prefix>.hit_rate`.
    pub fn register(&self, reg: &mut sim_stats::StatsRegistry, prefix: &str) {
        reg.set(format!("{prefix}.hits"), self.hits.get());
        reg.set(format!("{prefix}.misses"), self.misses.get());
        reg.set(format!("{prefix}.evictions"), self.evictions.get());
        reg.set(format!("{prefix}.hit_rate"), self.hit_rate());
    }
}

#[derive(Clone, Debug)]
struct TlbWay<P> {
    vpn: u64,
    valid: bool,
    stamp: u64,
    payload: P,
}

/// Outcome of a TLB access: latency plus, on a refill, the evicted entry.
#[derive(Clone, Debug, PartialEq)]
pub struct TlbAccess<P> {
    /// Extra cycles charged (0 on hit, page-walk latency on miss).
    pub latency: Cycle,
    /// Whether the access hit.
    pub hit: bool,
    /// `(vpn, payload)` of the entry displaced by the refill, if any.
    pub evicted: Option<(u64, P)>,
}

/// A set-associative TLB, LRU-replaced, payload-carrying.
#[derive(Clone, Debug)]
pub struct Tlb<P: Clone + Default> {
    sets: usize,
    assoc: usize,
    walk_latency: Cycle,
    ways: Vec<TlbWay<P>>,
    clock: u64,
    /// Event counters.
    pub stats: TlbStats,
}

impl<P: Clone + Default> Tlb<P> {
    /// Build a TLB with `entries` total entries, `assoc` ways per set and
    /// the given page-walk latency.
    ///
    /// # Panics
    /// Panics unless `entries` divides into a power-of-two number of sets.
    pub fn new(entries: usize, assoc: usize, walk_latency: Cycle) -> Self {
        assert!(entries > 0 && assoc > 0 && entries % assoc == 0);
        let sets = entries / assoc;
        assert!(sets.is_power_of_two(), "TLB sets must be a power of two");
        Tlb {
            sets,
            assoc,
            walk_latency,
            ways: (0..entries)
                .map(|_| TlbWay {
                    vpn: 0,
                    valid: false,
                    stamp: 0,
                    payload: P::default(),
                })
                .collect(),
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    #[inline]
    fn set_of(&self, vpn: u64) -> usize {
        (vpn & (self.sets as u64 - 1)) as usize
    }

    /// Access the translation for `vpn`. On a miss, walks the page table
    /// (charging `walk_latency`) and installs the entry with
    /// `refill_payload(vpn)`; the evicted entry (if any) is returned so the
    /// caller can write its payload back.
    pub fn access(&mut self, vpn: u64, refill_payload: impl FnOnce(u64) -> P) -> TlbAccess<P> {
        self.clock += 1;
        let set = self.set_of(vpn);
        let base = set * self.assoc;
        for w in 0..self.assoc {
            let way = &mut self.ways[base + w];
            if way.valid && way.vpn == vpn {
                way.stamp = self.clock;
                self.stats.hits.inc();
                return TlbAccess {
                    latency: 0,
                    hit: true,
                    evicted: None,
                };
            }
        }
        self.stats.misses.inc();
        // Refill: LRU victim.
        let mut victim = 0;
        let mut victim_stamp = u64::MAX;
        for w in 0..self.assoc {
            let way = &self.ways[base + w];
            if !way.valid {
                victim = w;
                break;
            }
            if way.stamp < victim_stamp {
                victim_stamp = way.stamp;
                victim = w;
            }
        }
        let slot = &mut self.ways[base + victim];
        let evicted = if slot.valid {
            self.stats.evictions.inc();
            Some((slot.vpn, std::mem::take(&mut slot.payload)))
        } else {
            None
        };
        *slot = TlbWay {
            vpn,
            valid: true,
            stamp: self.clock,
            payload: refill_payload(vpn),
        };
        TlbAccess {
            latency: self.walk_latency,
            hit: false,
            evicted,
        }
    }

    /// Mutable access to the payload of a *resident* page (no LRU update,
    /// no miss handling). Returns `None` if the page is not resident.
    pub fn payload_mut(&mut self, vpn: u64) -> Option<&mut P> {
        let set = self.set_of(vpn);
        let base = set * self.assoc;
        self.ways[base..base + self.assoc]
            .iter_mut()
            .find(|w| w.valid && w.vpn == vpn)
            .map(|w| &mut w.payload)
    }

    /// Read-only payload access for a resident page.
    pub fn payload(&self, vpn: u64) -> Option<&P> {
        let set = self.set_of(vpn);
        let base = set * self.assoc;
        self.ways[base..base + self.assoc]
            .iter()
            .find(|w| w.valid && w.vpn == vpn)
            .map(|w| &w.payload)
    }

    /// Whether a page is resident.
    pub fn contains(&self, vpn: u64) -> bool {
        self.payload(vpn).is_some()
    }

    /// Drain every resident entry as `(vpn, payload)` (simulation teardown:
    /// flush payloads to the backing store).
    pub fn drain(&mut self) -> Vec<(u64, P)> {
        let mut out = Vec::new();
        for way in &mut self.ways {
            if way.valid {
                way.valid = false;
                out.push((way.vpn, std::mem::take(&mut way.payload)));
            }
        }
        out
    }

    /// Reset statistics (warm-up boundary) without evicting entries.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb() -> Tlb<u64> {
        Tlb::new(64, 8, 60)
    }

    #[test]
    fn paper_geometry() {
        // §IV.C: 64 entries, 8-way => 8 sets.
        let t = tlb();
        assert_eq!(t.sets, 8);
        assert_eq!(t.assoc, 8);
    }

    #[test]
    fn miss_walks_then_hits() {
        let mut t = tlb();
        let a = t.access(100, |_| 0);
        assert!(!a.hit);
        assert_eq!(a.latency, 60);
        let b = t.access(100, |_| panic!("must not refill on hit"));
        assert!(b.hit);
        assert_eq!(b.latency, 0);
        assert_eq!(t.stats.hits.get(), 1);
        assert_eq!(t.stats.misses.get(), 1);
    }

    #[test]
    fn refill_payload_installed() {
        let mut t = tlb();
        t.access(5, |vpn| vpn * 10);
        assert_eq!(t.payload(5), Some(&50));
    }

    #[test]
    fn payload_mut_updates_resident_entry() {
        let mut t = tlb();
        t.access(5, |_| 0u64);
        *t.payload_mut(5).unwrap() |= 1 << 63;
        assert_eq!(t.payload(5), Some(&(1u64 << 63)));
        assert_eq!(t.payload_mut(999), None);
    }

    #[test]
    fn eviction_returns_payload() {
        let mut t: Tlb<u64> = Tlb::new(2, 1, 60); // 2 sets, direct-mapped
        t.access(0, |_| 7);
        // vpn 2 maps to set 0 as well -> evicts vpn 0.
        let a = t.access(2, |_| 9);
        assert_eq!(a.evicted, Some((0, 7)));
        assert!(!t.contains(0));
        assert!(t.contains(2));
        assert_eq!(t.stats.evictions.get(), 1);
    }

    #[test]
    fn lru_within_set() {
        let mut t: Tlb<u64> = Tlb::new(2, 2, 60); // 1 set... no: 2/2=1 set
        t.access(0, |_| 0);
        t.access(1, |_| 1);
        t.access(0, |_| 0); // touch 0; 1 becomes LRU
        let a = t.access(2, |_| 2);
        assert_eq!(a.evicted.map(|(v, _)| v), Some(1));
    }

    #[test]
    fn drain_flushes_everything() {
        let mut t = tlb();
        t.access(1, |_| 10);
        t.access(2, |_| 20);
        let mut drained = t.drain();
        drained.sort_unstable();
        assert_eq!(drained, vec![(1, 10), (2, 20)]);
        assert!(!t.contains(1));
    }

    #[test]
    fn hit_rate_reported() {
        let mut t = tlb();
        t.access(1, |_| 0);
        t.access(1, |_| 0);
        t.access(1, |_| 0);
        t.access(2, |_| 0);
        assert!((t.stats.hit_rate() - 0.5).abs() < 1e-12);
    }
}
