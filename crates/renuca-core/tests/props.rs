//! Property-based tests for the Re-NUCA policies and predictor.

use proptest::prelude::*;

use cmp_sim::placement::{AccessMeta, CriticalityPredictor, LlcAccessKind, LlcPlacement};
use cmp_sim::types::{page_of_line, phys_addr};
use renuca_core::{Cpt, CptConfig, EnhancedTlb, NaiveOracle, RNuca, ReNuca, SNuca};

fn meta(line: u64, critical: bool) -> AccessMeta {
    AccessMeta {
        core: 0,
        line,
        page: page_of_line(line),
        pc: 1,
        kind: LlcAccessKind::Demand,
        predicted_critical: critical,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// S-NUCA striping is uniform over any window of consecutive lines.
    #[test]
    fn snuca_uniform_over_windows(start in 0u64..1_000_000) {
        let s = SNuca::new(16);
        let mut counts = [0u32; 16];
        for line in start..start + 160 {
            counts[s.bank_of(line)] += 1;
        }
        for &c in &counts {
            prop_assert_eq!(c, 10);
        }
    }

    /// R-NUCA: every line of every core lands inside that core's cluster,
    /// and the rotational interleave uses the whole cluster over any
    /// consecutive address window.
    #[test]
    fn rnuca_cluster_containment(core in 0usize..16, start in 0u64..1_000_000) {
        let r = RNuca::new(4, 4);
        let mut seen = std::collections::HashSet::new();
        for line in start..start + 64 {
            let b = r.bank_of(core, line);
            prop_assert!(r.cluster(core).contains(&b));
            seen.insert(b);
        }
        prop_assert_eq!(seen.len(), r.cluster(core).len());
    }

    /// The Naive oracle's directory is exact under any fill/evict schedule:
    /// a resident line is looked up at its fill bank; non-resident lines
    /// fall back to the S-NUCA probe.
    #[test]
    fn naive_directory_exactness(ops in prop::collection::vec((0u64..64, any::<bool>()), 1..200)) {
        let mut naive = NaiveOracle::new(8, 0);
        let snuca = SNuca::new(8);
        let mut resident: std::collections::HashMap<u64, usize> = Default::default();
        for (line, evict) in ops {
            let m = meta(line, false);
            if evict {
                if let Some(bank) = resident.remove(&line) {
                    naive.on_evict(line, bank);
                }
            } else if !resident.contains_key(&line) {
                let bank = naive.fill_bank(&m);
                naive.on_fill(&m, bank);
                naive.on_l3_write(bank);
                resident.insert(line, bank);
            }
            let expect = resident
                .get(&line)
                .copied()
                .unwrap_or_else(|| snuca.bank_of(line));
            prop_assert_eq!(naive.lookup_bank(&m), expect);
        }
        prop_assert_eq!(naive.directory_len(), resident.len());
    }

    /// Re-NUCA invariant under arbitrary fill/evict interleavings: lookup
    /// routes to the bank of the *most recent surviving fill*, S-NUCA
    /// otherwise. (This is the MBV correctness argument of §IV.C.)
    #[test]
    fn renuca_routing_model(ops in prop::collection::vec((0usize..8, 0u64..32, any::<bool>(), any::<bool>()), 1..300)) {
        let mut renuca = ReNuca::new(4, 4);
        let snuca = SNuca::new(16);
        let mut residency: std::collections::HashMap<u64, usize> = Default::default();
        for (core, off, critical, evict) in ops {
            let line = phys_addr(core, off * 64) >> 6;
            let mut m = meta(line, critical);
            m.core = core;
            if evict {
                if let Some(bank) = residency.remove(&line) {
                    renuca.on_evict(line, bank);
                }
            } else if !residency.contains_key(&line) {
                let bank = renuca.fill_bank(&m);
                renuca.on_fill(&m, bank);
                residency.insert(line, bank);
            }
            let expect = residency
                .get(&line)
                .copied()
                .unwrap_or_else(|| snuca.bank_of(line));
            prop_assert_eq!(renuca.lookup_bank(&m), expect, "line {:#x}", line);
        }
    }

    /// Enhanced-TLB MBV bits survive arbitrary churn: the vector read back
    /// always equals a reference model, no matter how entries migrate
    /// between the TLB and the backing store.
    #[test]
    fn enhanced_tlb_matches_reference(ops in prop::collection::vec((0u64..40, 0u32..64, any::<bool>()), 1..400)) {
        let mut tlb = EnhancedTlb::new(8, 2); // tiny: lots of eviction churn
        let mut reference: std::collections::HashMap<u64, u64> = Default::default();
        for (page, bit, value) in ops {
            tlb.set_mbv_bit(page, bit, value);
            let e = reference.entry(page).or_insert(0);
            if value { *e |= 1 << bit } else { *e &= !(1 << bit) }
            // Interleave reads of random other pages to force churn.
            let probe = (page * 7 + 3) % 40;
            let expect_bit = (reference.get(&probe).copied().unwrap_or(0) >> (bit % 64)) & 1 == 1;
            prop_assert_eq!(tlb.mbv_bit(probe, bit % 64), expect_bit);
        }
        for (&page, &bits) in &reference {
            prop_assert_eq!(tlb.mbv(page), bits, "page {}", page);
        }
    }

    /// CPT: prediction equals the definition `robBlocks*100 >= x*numLoads`
    /// applied to the running counters, for any event sequence.
    #[test]
    fn cpt_matches_definition(events in prop::collection::vec(any::<bool>(), 1..300), x in 1.0f64..100.0) {
        let mut cpt = Cpt::new(CptConfig { entries: 16, threshold_pct: x, aging_cap: 1 << 30 });
        let pc = 0x10;
        let mut num_loads = 0u64;
        let mut blocks = 0u64;
        for blocked in events {
            let predicted = cpt.predict(pc);
            if num_loads > 0 {
                // Model: the entry exists after the first commit.
                let expect = blocks as f64 * 100.0 >= x * num_loads as f64;
                prop_assert_eq!(predicted, expect, "n={} b={}", num_loads, blocks);
            } else {
                prop_assert!(!predicted, "first touch must be non-critical");
            }
            if num_loads > 0 {
                num_loads += 1;
            }
            if blocked {
                if num_loads > 0 {
                    blocks += 1;
                }
                cpt.on_rob_block(pc);
            }
            cpt.on_load_commit(pc, blocked);
            if num_loads == 0 {
                num_loads = 1;
                blocks = blocked as u64;
            }
        }
    }
}
