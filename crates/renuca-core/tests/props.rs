//! Property-based tests for the Re-NUCA policies and predictor, driven by
//! seeded `sim-rng` generator loops (hermetic replacement for proptest).

use sim_rng::SimRng;

use cmp_sim::placement::{AccessMeta, CriticalityPredictor, LlcAccessKind, LlcPlacement};
use cmp_sim::types::{page_of_line, phys_addr};
use renuca_core::{
    Coloring, Cpt, CptConfig, EnhancedTlb, Mac, NaiveOracle, PrivateMap, RNuca, ReNuca, ReNucaC2,
    SNuca, Scheme, Wec, COLORING_EPOCH,
};

const CASES: usize = 64;

fn meta(line: u64, critical: bool) -> AccessMeta {
    AccessMeta {
        core: 0,
        line,
        page: page_of_line(line),
        pc: 1,
        kind: LlcAccessKind::Demand,
        predicted_critical: critical,
    }
}

/// S-NUCA striping is uniform over any window of consecutive lines.
#[test]
fn snuca_uniform_over_windows() {
    let mut rng = SimRng::seed_from_u64(0x4E0C_0001);
    for case in 0..CASES {
        let start = rng.gen_bounded(1_000_000);
        let s = SNuca::new(16);
        let mut counts = [0u32; 16];
        for line in start..start + 160 {
            counts[s.bank_of(line)] += 1;
        }
        for &c in &counts {
            assert_eq!(c, 10, "case {case}: start {start}");
        }
    }
}

/// R-NUCA: every line of every core lands inside that core's cluster,
/// and the rotational interleave uses the whole cluster over any
/// consecutive address window.
#[test]
fn rnuca_cluster_containment() {
    let mut rng = SimRng::seed_from_u64(0x4E0C_0002);
    for case in 0..CASES {
        let core = rng.gen_range_usize(0..16);
        let start = rng.gen_bounded(1_000_000);
        let r = RNuca::new(4, 4);
        let mut seen = std::collections::HashSet::new();
        for line in start..start + 64 {
            let b = r.bank_of(core, line);
            assert!(r.cluster(core).contains(&b), "case {case}");
            seen.insert(b);
        }
        assert_eq!(seen.len(), r.cluster(core).len(), "case {case}");
    }
}

/// The Naive oracle's directory is exact under any fill/evict schedule:
/// a resident line is looked up at its fill bank; non-resident lines
/// fall back to the S-NUCA probe.
#[test]
fn naive_directory_exactness() {
    let mut rng = SimRng::seed_from_u64(0x4E0C_0003);
    for case in 0..CASES {
        let n_ops = rng.gen_range_usize(1..200);
        let ops: Vec<(u64, bool)> = (0..n_ops)
            .map(|_| (rng.gen_bounded(64), rng.gen_bool(0.5)))
            .collect();
        let mut naive = NaiveOracle::new(8, 0);
        let snuca = SNuca::new(8);
        let mut resident: std::collections::HashMap<u64, usize> = Default::default();
        for (line, evict) in ops {
            let m = meta(line, false);
            if evict {
                if let Some(bank) = resident.remove(&line) {
                    naive.on_evict(line, bank);
                }
            } else if !resident.contains_key(&line) {
                let bank = naive.fill_bank(&m);
                naive.on_fill(&m, bank);
                naive.on_l3_write(bank);
                resident.insert(line, bank);
            }
            let expect = resident
                .get(&line)
                .copied()
                .unwrap_or_else(|| snuca.bank_of(line));
            assert_eq!(naive.lookup_bank(&m), expect, "case {case}: line {line}");
        }
        assert_eq!(naive.directory_len(), resident.len(), "case {case}");
    }
}

/// Re-NUCA invariant under arbitrary fill/evict interleavings: lookup
/// routes to the bank of the *most recent surviving fill*, S-NUCA
/// otherwise. (This is the MBV correctness argument of §IV.C.)
#[test]
fn renuca_routing_model() {
    let mut rng = SimRng::seed_from_u64(0x4E0C_0004);
    for case in 0..CASES {
        let n_ops = rng.gen_range_usize(1..300);
        let ops: Vec<(usize, u64, bool, bool)> = (0..n_ops)
            .map(|_| {
                (
                    rng.gen_range_usize(0..8),
                    rng.gen_bounded(32),
                    rng.gen_bool(0.5),
                    rng.gen_bool(0.5),
                )
            })
            .collect();
        let mut renuca = ReNuca::new(4, 4);
        let snuca = SNuca::new(16);
        let mut residency: std::collections::HashMap<u64, usize> = Default::default();
        for (core, off, critical, evict) in ops {
            let line = phys_addr(core, off * 64) >> 6;
            let mut m = meta(line, critical);
            m.core = core;
            if evict {
                if let Some(bank) = residency.remove(&line) {
                    renuca.on_evict(line, bank);
                }
            } else if !residency.contains_key(&line) {
                let bank = renuca.fill_bank(&m);
                renuca.on_fill(&m, bank);
                residency.insert(line, bank);
            }
            let expect = residency
                .get(&line)
                .copied()
                .unwrap_or_else(|| snuca.bank_of(line));
            assert_eq!(
                renuca.lookup_bank(&m),
                expect,
                "case {case}: line {line:#x}"
            );
        }
    }
}

/// Enhanced-TLB MBV bits survive arbitrary churn: the vector read back
/// always equals a reference model, no matter how entries migrate
/// between the TLB and the backing store.
#[test]
fn enhanced_tlb_matches_reference() {
    let mut rng = SimRng::seed_from_u64(0x4E0C_0005);
    for case in 0..CASES {
        let n_ops = rng.gen_range_usize(1..400);
        let ops: Vec<(u64, u32, bool)> = (0..n_ops)
            .map(|_| {
                (
                    rng.gen_bounded(40),
                    rng.gen_bounded(64) as u32,
                    rng.gen_bool(0.5),
                )
            })
            .collect();
        let mut tlb = EnhancedTlb::new(8, 2); // tiny: lots of eviction churn
        let mut reference: std::collections::HashMap<u64, u64> = Default::default();
        for (page, bit, value) in ops {
            tlb.set_mbv_bit(page, bit, value);
            let e = reference.entry(page).or_insert(0);
            if value {
                *e |= 1 << bit
            } else {
                *e &= !(1 << bit)
            }
            // Interleave reads of random other pages to force churn.
            let probe = (page * 7 + 3) % 40;
            let expect_bit = (reference.get(&probe).copied().unwrap_or(0) >> (bit % 64)) & 1 == 1;
            assert_eq!(tlb.mbv_bit(probe, bit % 64), expect_bit, "case {case}");
        }
        for (&page, &bits) in &reference {
            assert_eq!(tlb.mbv(page), bits, "case {case}: page {page}");
        }
    }
}

/// Every policy returns an in-range bank for *arbitrary* 64-bit line
/// addresses on machines of 1, 3, 6, 12 and 16 cores — the non-pow2 counts
/// would have tripped the old `& (n_cores - 1)` owner clamp, and random
/// lines exercise raw owner bits far past `n_cores`.
#[test]
fn all_policies_stay_in_range_on_any_core_count() {
    // (cols, rows) meshes: 1x1, 3x1, 3x2, 4x3, 4x4 (one bank per core).
    let meshes = [(1usize, 1usize), (3, 1), (3, 2), (4, 3), (4, 4)];
    let mut rng = SimRng::seed_from_u64(0x4E0C_0007);
    for (cols, rows) in meshes {
        let n = cols * rows;
        let mut policies: Vec<Box<dyn LlcPlacement>> = vec![
            Box::new(SNuca::new(n)),
            Box::new(RNuca::new(cols, rows)),
            Box::new(PrivateMap::new(n)),
            Box::new(NaiveOracle::new(n, 0)),
            Box::new(ReNuca::new(cols, rows)),
            Box::new(Wec::new(n)),
            Box::new(Coloring::new(n)),
            Box::new(Mac::new(n)),
            Box::new(ReNucaC2::new(
                ReNuca::new(cols, rows),
                compress::CompressSpec::new(4, 0xC0DEC),
            )),
        ];
        assert_eq!(policies.len(), Scheme::ALL.len(), "keep this list total");
        for case in 0..CASES {
            // Mix fully random lines with realistic in-machine addresses.
            let line = if case % 2 == 0 {
                rng.next_u64() >> 1
            } else {
                phys_addr(rng.gen_range_usize(0..n), rng.next_u64() & 0xfff_ffc0) >> 6
            };
            for critical in [false, true] {
                let m = meta(line, critical);
                for p in policies.iter_mut() {
                    let name = p.name();
                    let lb = p.lookup_bank(&m);
                    assert!(lb < n, "{name} {n}-core lookup: bank {lb} line {line:#x}");
                    let fb = p.fill_bank(&m);
                    assert!(fb < n, "{name} {n}-core fill: bank {fb} line {line:#x}");
                }
            }
        }
    }
}

/// Regression for the owner-decoding bug: `raw & (n_cores - 1)` is not a
/// clamp for non-pow2 machines. On 6 cores the old mask sent core 3's lines
/// (0b011 & 0b101 = 0b001) to core 1's private bank. Exact decoding must
/// route every core's own lines to its own bank, and out-of-range raw
/// owners must wrap by modulo.
#[test]
fn owner_decoding_is_exact_on_non_pow2_machines() {
    for n_cores in [1usize, 3, 6, 12] {
        let mut p = PrivateMap::new(n_cores);
        for core in 0..n_cores {
            for off in [0u64, 0x40, 0x7f_ffc0] {
                let line = phys_addr(core, off) >> 6;
                let m = meta(line, false);
                assert_eq!(p.lookup_bank(&m), core, "{n_cores} cores");
                assert_eq!(p.fill_bank(&m), core, "{n_cores} cores");
            }
        }
        // A raw owner one past the machine wraps to core 0 (modulo), never
        // to a masked alias.
        let beyond = phys_addr(n_cores, 0x40) >> 6;
        assert_eq!(p.lookup_bank(&meta(beyond, false)), 0, "{n_cores} cores");
    }
}

/// WEC bookkeeping is exact under any fill/write/evict schedule: resident
/// lines are looked up at their recorded fill bank, absent lines at the
/// S-NUCA home, and the redirect directory holds exactly the resident
/// lines placed away from home.
#[test]
fn wec_directory_exactness() {
    let mut rng = SimRng::seed_from_u64(0x4E0C_0008);
    for case in 0..CASES {
        let n_ops = rng.gen_range_usize(1..300);
        let mut wec = Wec::new(8);
        let snuca = SNuca::new(8);
        let mut resident: std::collections::HashMap<u64, usize> = Default::default();
        for _ in 0..n_ops {
            let line = rng.gen_bounded(48);
            let m = meta(line, false);
            match rng.gen_range_usize(0..3) {
                0 if resident.contains_key(&line) => {
                    let bank = resident.remove(&line).unwrap();
                    wec.on_evict(line, bank);
                }
                1 if resident.contains_key(&line) => {
                    wec.on_l3_write(resident[&line]);
                }
                _ => {
                    if !resident.contains_key(&line) {
                        let bank = wec.fill_bank(&m);
                        wec.on_fill(&m, bank);
                        wec.on_l3_write(bank);
                        resident.insert(line, bank);
                    }
                }
            }
            let expect = resident
                .get(&line)
                .copied()
                .unwrap_or_else(|| snuca.bank_of(line));
            assert_eq!(wec.lookup_bank(&m), expect, "case {case}: line {line}");
        }
        let redirected = resident
            .iter()
            .filter(|&(&l, &b)| b != snuca.bank_of(l))
            .count();
        assert_eq!(wec.directory_len(), redirected, "case {case}");
    }
}

/// Coloring bookkeeping is exact under any fill/write/evict schedule:
/// fills land at the epoch-shifted home, resident lines stay pinned at
/// their fill-time bank across epoch rotations, and absent lines resolve
/// to the *current* shifted home.
#[test]
fn coloring_directory_exactness() {
    let mut rng = SimRng::seed_from_u64(0x4E0C_0009);
    for case in 0..CASES {
        let n_ops = rng.gen_range_usize(1..300);
        let n = 6usize; // non-pow2: the shift must wrap by modulo
        let mut col = Coloring::new(n);
        let snuca = SNuca::new(n);
        let mut resident: std::collections::HashMap<u64, usize> = Default::default();
        let mut writes = 0u64;
        let shifted = |line: u64, writes: u64| {
            (snuca.bank_of(line) + ((writes / COLORING_EPOCH) % n as u64) as usize) % n
        };
        for _ in 0..n_ops {
            let line = rng.gen_bounded(48);
            let m = meta(line, false);
            match rng.gen_range_usize(0..3) {
                0 if resident.contains_key(&line) => {
                    let bank = resident.remove(&line).unwrap();
                    col.on_evict(line, bank);
                }
                1 if resident.contains_key(&line) => {
                    col.on_l3_write(resident[&line]);
                    writes += 1;
                }
                _ => {
                    if !resident.contains_key(&line) {
                        let bank = col.fill_bank(&m);
                        assert_eq!(bank, shifted(line, writes), "case {case}: fill");
                        col.on_fill(&m, bank);
                        col.on_l3_write(bank);
                        writes += 1;
                        resident.insert(line, bank);
                    }
                }
            }
            let expect = resident
                .get(&line)
                .copied()
                .unwrap_or_else(|| shifted(line, writes));
            assert_eq!(col.lookup_bank(&m), expect, "case {case}: line {line}");
        }
        assert_eq!(col.directory_len(), resident.len(), "case {case}");
    }
}

/// The competitor policies are deterministic and route-cache safe: two
/// independently built instances driven by the same seeded schedule make
/// identical bank choices at every step (fresh-instance oracle, in the
/// style of the fresh-TLB comparisons), and looking the same line up
/// twice in a row returns the same bank — the resolved-route cache may
/// replay any lookup result it captured.
#[test]
fn competitor_policies_are_deterministic_and_route_cache_safe() {
    let meshes = [(1usize, 1usize), (3, 1), (3, 2), (4, 3)];
    for (cols, rows) in meshes {
        let cfg = cmp_sim::config::SystemConfig::mesh(cols, rows);
        for scheme in Scheme::COMPETITORS {
            let mut rng = SimRng::seed_from_u64(0x4E0C_000A ^ (cols * 16 + rows) as u64);
            let mut a = scheme.build_policy(&cfg);
            let mut b = scheme.build_policy(&cfg);
            let mut resident: std::collections::HashMap<u64, usize> = Default::default();
            for step in 0..400 {
                let line = rng.gen_bounded(64);
                let m = meta(line, false);
                match rng.gen_range_usize(0..4) {
                    0 if resident.contains_key(&line) => {
                        let bank = resident.remove(&line).unwrap();
                        a.on_evict(line, bank);
                        b.on_evict(line, bank);
                    }
                    1 if resident.contains_key(&line) => {
                        let bank = resident[&line];
                        a.on_l3_write(bank);
                        b.on_l3_write(bank);
                    }
                    _ => {
                        if !resident.contains_key(&line) {
                            let fa = a.fill_bank(&m);
                            let fb = b.fill_bank(&m);
                            assert_eq!(
                                fa,
                                fb,
                                "{} fill diverged at step {step} on {cols}x{rows}",
                                scheme.name()
                            );
                            a.on_fill(&m, fa);
                            b.on_fill(&m, fb);
                            a.on_l3_write(fa);
                            b.on_l3_write(fb);
                            resident.insert(line, fa);
                        }
                    }
                }
                let first = a.lookup_bank(&m);
                assert_eq!(
                    first,
                    a.lookup_bank(&m),
                    "{}: repeated lookup must be stable for the route cache",
                    scheme.name()
                );
                assert_eq!(
                    first,
                    b.lookup_bank(&m),
                    "{} lookup diverged at step {step} on {cols}x{rows}",
                    scheme.name()
                );
            }
        }
    }
}

/// CPT: prediction equals the definition `robBlocks*100 >= x*numLoads`
/// applied to the running counters, for any event sequence.
#[test]
fn cpt_matches_definition() {
    let mut rng = SimRng::seed_from_u64(0x4E0C_0006);
    for case in 0..CASES {
        let n_events = rng.gen_range_usize(1..300);
        let events: Vec<bool> = (0..n_events).map(|_| rng.gen_bool(0.5)).collect();
        let x = rng.gen_f64_range(1.0, 100.0);
        let mut cpt = Cpt::new(CptConfig {
            entries: 16,
            threshold_pct: x,
            aging_cap: 1 << 30,
        });
        let pc = 0x10;
        let mut num_loads = 0u64;
        let mut blocks = 0u64;
        for blocked in events {
            let predicted = cpt.predict(pc);
            if num_loads > 0 {
                // Model: the entry exists after the first commit.
                let expect = blocks as f64 * 100.0 >= x * num_loads as f64;
                assert_eq!(
                    predicted, expect,
                    "case {case}: n={num_loads} b={blocks} x={x}"
                );
            } else {
                assert!(!predicted, "case {case}: first touch must be non-critical");
            }
            if num_loads > 0 {
                num_loads += 1;
            }
            if blocked {
                if num_loads > 0 {
                    blocks += 1;
                }
                cpt.on_rob_block(pc);
            }
            cpt.on_load_commit(pc, blocked);
            if num_loads == 0 {
                num_loads = 1;
                blocks = blocked as u64;
            }
        }
    }
}
