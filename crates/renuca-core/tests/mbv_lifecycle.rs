//! Mapping Bit Vector lifecycle tests (paper §IV.C): the MBV bit of a
//! critical line must survive a TLB eviction of its page (carried to the
//! page-table backing store and restored on refill), be cleared when the
//! line leaves the L3, and never route a post-eviction lookup to the
//! R-NUCA bank — a stale bit would make the controller probe a bank the
//! line no longer occupies.

use cmp_sim::hierarchy::MemoryHierarchy;
use cmp_sim::placement::{AccessMeta, LlcAccessKind, LlcPlacement};
use cmp_sim::types::{line_index_in_page, line_of, page_of_line, phys_addr, PAGE_BYTES};
use cmp_sim::SystemConfig;
use renuca_core::mapping::ReNucaStats;
use renuca_core::{ReNuca, Scheme};

fn meta(core: usize, line: u64, critical: bool) -> AccessMeta {
    AccessMeta {
        core,
        line,
        page: page_of_line(line),
        pc: 1,
        kind: LlcAccessKind::Demand,
        predicted_critical: critical,
    }
}

/// Policy-level lifecycle: fill sets the bit, TLB pressure carries it
/// through the backing store, `on_evict` clears it and the next lookup
/// falls back to the S-NUCA route.
#[test]
fn mbv_bit_survives_tlb_eviction_and_clears_on_l3_evict() {
    // 4-entry 2-way TLB so a handful of pages forces evictions.
    let mut r = ReNuca::with_tlb_geometry(2, 2, 4, 2);

    // A line owned by core 1 (address-space slice encodes the owner).
    let line = line_of(phys_addr(1, 0x1000));
    let (core, page, bit) = (1usize, page_of_line(line), line_index_in_page(line) as u32);

    // Critical fill: placed with the R-NUCA mapping, MBV bit set.
    let m = meta(core, line, true);
    let bank = r.fill_bank(&m);
    r.on_fill(&m, bank);
    assert_eq!(r.renuca_stats.critical_fills, 1);
    assert_eq!(r.tlb(core).mbv(page) >> bit & 1, 1, "fill must set the bit");

    // Lookup routes through the R-NUCA side while the bit is set.
    r.lookup_bank(&meta(core, line, false));
    assert_eq!(r.renuca_stats.lookups_rnuca, 1);

    // Evict the page from the 4-entry TLB by translating 8 other pages of
    // the same core. The non-zero MBV must be written back to the
    // page-table side structure, not dropped.
    for k in 2..10u64 {
        r.lookup_bank(&meta(core, line_of(phys_addr(1, k * PAGE_BYTES)), false));
    }
    assert_eq!(
        r.tlb(core).backing_len(),
        1,
        "the evicted page's non-zero MBV must be parked in the backing store"
    );
    assert_eq!(
        r.tlb(core).mbv(page) >> bit & 1,
        1,
        "bit readable from backing"
    );

    // The refilled translation restores the bit: lookups still route R-NUCA.
    r.lookup_bank(&meta(core, line, false));
    assert_eq!(
        r.renuca_stats.lookups_rnuca, 2,
        "carried bit must still route R-NUCA"
    );
    assert_eq!(
        r.tlb(core).backing_len(),
        0,
        "refill reclaims the backing entry"
    );

    // L3 eviction clears the bit; the next lookup takes the S-NUCA route.
    let snuca_lookups = r.renuca_stats.lookups_snuca;
    r.on_evict(line, bank);
    assert_eq!(
        r.tlb(core).mbv(page) >> bit & 1,
        0,
        "eviction must clear the bit"
    );
    r.lookup_bank(&meta(core, line, false));
    assert_eq!(r.renuca_stats.lookups_rnuca, 2, "no stale R-NUCA routing");
    assert_eq!(r.renuca_stats.lookups_snuca, snuca_lookups + 1);

    // With the vector now all-zero, renewed TLB pressure must not park it
    // in the backing store again (zero vectors are pruned, not stored).
    for k in 2..10u64 {
        r.lookup_bank(&meta(core, line_of(phys_addr(1, k * PAGE_BYTES)), false));
    }
    assert_eq!(
        r.tlb(core).backing_len(),
        0,
        "all-zero MBV needs no backing entry"
    );
}

/// An L3 eviction of a line whose page is *not* TLB-resident must clear
/// the bit straight in the backing store (the remap-while-parked case).
#[test]
fn evict_clears_bit_parked_in_backing_store() {
    let mut r = ReNuca::with_tlb_geometry(2, 2, 4, 2);
    let line = line_of(phys_addr(0, 0x3000));
    let (core, page) = (0usize, page_of_line(line));

    let m = meta(core, line, true);
    let bank = r.fill_bank(&m);
    r.on_fill(&m, bank);
    for k in 4..12u64 {
        r.lookup_bank(&meta(core, line_of(phys_addr(0, k * PAGE_BYTES)), false));
    }
    assert_eq!(r.tlb(core).backing_len(), 1, "page parked with its bit set");

    // The line leaves the L3 while the page translation is evicted.
    r.on_evict(line, bank);
    assert_eq!(r.tlb(core).mbv(page), 0);
    assert_eq!(
        r.tlb(core).backing_len(),
        0,
        "clearing the last bit must free the parked entry"
    );
}

/// Downcast the hierarchy's placement policy to Re-NUCA.
fn renuca(h: &MemoryHierarchy) -> &ReNuca {
    h.policy()
        .as_any()
        .and_then(|a| a.downcast_ref::<ReNuca>())
        .expect("policy is Re-NUCA")
}

fn mbv_bit(h: &MemoryHierarchy, core: usize, page: u64, bit: u32) -> u64 {
    renuca(h).tlb(core).mbv(page) >> bit & 1
}

fn stats(h: &MemoryHierarchy) -> ReNucaStats {
    renuca(h).renuca_stats
}

/// Hierarchy-level: after L3 capacity pressure evicts a critical line, the
/// post-eviction L2 miss must route S-NUCA — the MBV bit was cleared by
/// `on_evict` — and the refill (now predicted non-critical) lands in the
/// S-NUCA home bank.
#[test]
fn no_stale_mapping_after_post_eviction_l2_miss() {
    let mut cfg = SystemConfig::mesh(2, 2);
    cfg.l1.size_bytes = 1024;
    cfg.l1.assoc = 2;
    cfg.l2.size_bytes = 4 * 1024;
    cfg.l2.assoc = 4;
    cfg.l3_bank.size_bytes = 4 * 1024; // 64 lines/bank: quick to thrash
    cfg.l3_bank.assoc = 4;
    cfg.tlb_entries = 8;
    cfg.tlb_assoc = 2;
    cfg.prefetch.enabled = false;
    cfg.validate();

    let mut h = MemoryHierarchy::new(&cfg, Scheme::ReNuca.build_policy(&cfg));
    let core = 1usize;
    let target = phys_addr(core, 0x8000);
    let line = line_of(target);
    let (page, bit) = (page_of_line(line), line_index_in_page(line) as u32);

    // Critical load: the line fills at its R-NUCA bank and sets the bit.
    let mut now = 0u64;
    h.load(core, target, 0x400, true, now);
    assert_eq!(
        mbv_bit(&h, core, page, bit),
        1,
        "critical fill must set the MBV bit"
    );

    // Thrash the L3 with other critical loads from the same core until the
    // target's MBV bit is cleared by the eviction callback. The loads are
    // clean (no stores), so no writeback lookups muddy the counters below.
    let mut evicted = false;
    for k in 0..4096u64 {
        now += 100;
        h.load(core, phys_addr(core, 0x40_0000 + k * 64), 0x404, true, now);
        if mbv_bit(&h, core, page, bit) == 0 {
            evicted = true;
            break;
        }
    }
    assert!(
        evicted,
        "capacity pressure must evict the target and clear its bit"
    );

    // The back-invalidation that accompanied the L3 eviction emptied the
    // private caches too, so this access is an L2 miss. It must consult
    // the (cleared) MBV and take the S-NUCA route — exactly one lookup.
    let before = stats(&h);
    now += 100;
    h.load(core, target, 0x400, false, now);
    let after = stats(&h);
    assert_eq!(
        after.lookups_rnuca, before.lookups_rnuca,
        "stale R-NUCA route taken"
    );
    assert_eq!(after.lookups_snuca, before.lookups_snuca + 1);

    // The non-critical refill lands in the S-NUCA home (line % n_banks).
    let snuca_bank = (line % 4) as usize;
    assert!(
        h.l3_bank_contains(snuca_bank, line),
        "refill must use the S-NUCA mapping"
    );
}
