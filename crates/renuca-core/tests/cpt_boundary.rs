//! CPT threshold-boundary tests (paper §IV.B): the classification rule is
//! `robBlockCount ≥ x% × numLoadsCount`, **inclusive**. These tests pin
//! the exact counter states on both sides of the boundary, for the
//! paper's default x = 3% and a non-default x = 25%, by constructing the
//! entry state through the public issue/block/commit lifecycle:
//!
//! * `on_load_commit(pc, true)` inserts the entry at (numLoads=1, robBlocks=1),
//! * each further `predict(pc)` classifies against the *past* counters and
//!   then bumps numLoads,
//! * each `on_rob_block(pc)` bumps robBlocks.

use cmp_sim::placement::CriticalityPredictor;
use renuca_core::{Cpt, CptConfig};

const PC: u32 = 0x4_01c8;

/// Drive one PC to exactly (numLoads = loads, robBlocks = blocks).
fn cpt_with_counts(threshold_pct: f64, loads: u32, blocks: u32) -> Cpt {
    assert!(loads >= 1 && blocks >= 1, "insertion seeds (1, 1)");
    let mut c = Cpt::new(CptConfig::with_threshold(threshold_pct));
    c.on_load_commit(PC, true); // (1, 1)
    for _ in 1..loads {
        c.predict(PC); // classify-then-bump: ends at (loads, 1)
    }
    for _ in 1..blocks {
        c.on_rob_block(PC); // (loads, blocks)
    }
    c
}

#[test]
fn default_threshold_boundary_is_inclusive() {
    // x = 3%: 3 blocks out of exactly 100 loads sits *on* the boundary
    // (3 × 100 ≥ 3.0 × 100) and must classify critical.
    let c = cpt_with_counts(3.0, 100, 3);
    assert_eq!(c.classify(PC), Some(true), "3/100 at x=3% is critical");
}

#[test]
fn one_extra_load_crosses_below_the_boundary() {
    // The same 3 blocks over 101 loads (2.97%) falls below x = 3%.
    let c = cpt_with_counts(3.0, 101, 3);
    assert_eq!(c.classify(PC), Some(false), "3/101 at x=3% is non-critical");
}

#[test]
fn one_extra_block_crosses_above_the_boundary() {
    // 2/100 (2%) is below the boundary; the third block restores it.
    let mut c = cpt_with_counts(3.0, 100, 2);
    assert_eq!(c.classify(PC), Some(false), "2/100 at x=3% is non-critical");
    c.on_rob_block(PC);
    assert_eq!(c.classify(PC), Some(true), "3/100 at x=3% is critical");
}

#[test]
fn predict_classifies_before_counting_the_issue() {
    // At (100, 3) the verdict is critical; the predict() itself then bumps
    // numLoads so the *next* classification sees (101, 3) = non-critical.
    let mut c = cpt_with_counts(3.0, 100, 3);
    assert!(c.predict(PC), "verdict uses the pre-issue counters");
    assert_eq!(
        c.classify(PC),
        Some(false),
        "the issue moved 3/100 to 3/101"
    );
}

#[test]
fn non_default_threshold_boundary_is_inclusive() {
    // x = 25%: 2 blocks out of 8 loads is exactly 25% — critical; the
    // same 2 blocks over 9 loads (22.2%) is not.
    let c = cpt_with_counts(25.0, 8, 2);
    assert_eq!(c.classify(PC), Some(true), "2/8 at x=25% is critical");

    let c = cpt_with_counts(25.0, 9, 2);
    assert_eq!(c.classify(PC), Some(false), "2/9 at x=25% is non-critical");
}

#[test]
fn boundary_states_are_reached_through_the_public_lifecycle() {
    // Sanity-check the constructor helper itself: the hit/miss counters
    // prove the entry stayed resident the whole time (no replacement reset
    // the counts behind the test's back).
    let c = cpt_with_counts(3.0, 100, 3);
    assert_eq!(c.cpt_stats.insertions, 1);
    assert_eq!(c.cpt_stats.replacements, 0);
    assert_eq!(c.cpt_stats.misses, 0);
    assert_eq!(c.cpt_stats.hits, 99);
}
