//! The Criticality Predictor Table (CPT) — paper §IV.B.
//!
//! One CPT per core. It is a PC-indexed table adapted from the Commit Block
//! Predictor of Ghose et al. (ISCA'13), simplified to two counters per
//! entry:
//!
//! * `numLoadsCount` — dynamic loads issued by this PC so far,
//! * `robBlockCount` — how many of those blocked the head of the ROB.
//!
//! A load is predicted **critical** when
//! `robBlockCount ≥ x% × numLoadsCount`, where `x` is the *criticality
//! threshold* (the paper evaluates x ∈ {3,5,10,20,25,33,50,75,100}% and
//! settles on **3%** — Figure 7 shows accuracy falls from ~83% at 3% to
//! ~14.5% at 100%).
//!
//! Lifecycle (paper Figure 6): on load *issue* the table is probed — a hit
//! bumps `numLoadsCount` and yields the prediction; a first-time PC is
//! predicted non-critical (prioritizing lifetime, §IV). When a load blocks
//! the ROB head, `robBlockCount` of its PC is bumped (once per dynamic
//! load). New entries are inserted at *commit* with counts (1, 0|1).

use cmp_sim::placement::{CriticalityPredictor, PredictorStats};
use cmp_sim::types::Pc;

/// CPT configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CptConfig {
    /// Number of table entries (direct-mapped, PC-tagged). The paper does
    /// not size the table; 1024 entries comfortably holds the load PCs of a
    /// SPEC-like loop nest. Must be a power of two.
    pub entries: usize,
    /// The criticality threshold `x` in percent (paper default: 3.0).
    pub threshold_pct: f64,
    /// Counter value at which both counters are halved (aging, so stale
    /// phases do not pin a PC's classification forever).
    pub aging_cap: u32,
}

impl Default for CptConfig {
    fn default() -> Self {
        CptConfig {
            entries: 1024,
            threshold_pct: 3.0,
            aging_cap: 1 << 20,
        }
    }
}

impl CptConfig {
    /// The paper's threshold sweep for Figures 7–9.
    pub const THRESHOLD_SWEEP: [f64; 9] = [3.0, 5.0, 10.0, 20.0, 25.0, 33.0, 50.0, 75.0, 100.0];

    /// A config with a specific threshold and default sizing.
    pub fn with_threshold(threshold_pct: f64) -> Self {
        CptConfig {
            threshold_pct,
            ..CptConfig::default()
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct CptEntry {
    pc: Pc,
    valid: bool,
    num_loads: u32,
    rob_blocks: u32,
}

impl CptEntry {
    #[inline]
    fn is_critical(&self, threshold_pct: f64) -> bool {
        // robBlockCount >= x% of numLoadsCount.
        self.rob_blocks as f64 * 100.0 >= threshold_pct * self.num_loads as f64
    }
}

/// CPT event counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct CptStats {
    /// Issue-time probes that found their PC.
    pub hits: u64,
    /// Issue-time probes that missed (first-touch PCs or conflicts).
    pub misses: u64,
    /// Entries inserted (at commit).
    pub insertions: u64,
    /// Entries displaced by a conflicting PC.
    pub replacements: u64,
}

/// One core's Criticality Predictor Table.
#[derive(Clone, Debug)]
pub struct Cpt {
    cfg: CptConfig,
    table: Vec<CptEntry>,
    mask: usize,
    /// Event counters.
    pub cpt_stats: CptStats,
    predicted_critical: u64,
    predicted_noncritical: u64,
}

impl Cpt {
    /// Build a CPT.
    ///
    /// # Panics
    /// Panics unless `entries` is a power of two and the threshold is in
    /// (0, 100].
    pub fn new(cfg: CptConfig) -> Self {
        assert!(cfg.entries.is_power_of_two(), "CPT entries must be pow2");
        assert!(
            cfg.threshold_pct > 0.0 && cfg.threshold_pct <= 100.0,
            "threshold must be in (0, 100], got {}",
            cfg.threshold_pct
        );
        Cpt {
            table: vec![CptEntry::default(); cfg.entries],
            mask: cfg.entries - 1,
            cfg,
            cpt_stats: CptStats::default(),
            predicted_critical: 0,
            predicted_noncritical: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CptConfig {
        &self.cfg
    }

    #[inline]
    fn index(&self, pc: Pc) -> usize {
        // Cheap multiplicative hash: load PCs are word-aligned, so the low
        // bits alone would collide structurally.
        (pc.wrapping_mul(0x9E37_79B9) >> 16) as usize & self.mask
    }

    #[inline]
    fn age(e: &mut CptEntry, cap: u32) {
        if e.num_loads >= cap {
            e.num_loads >>= 1;
            e.rob_blocks >>= 1;
        }
    }

    /// Read-only criticality classification of a PC (diagnostics; does not
    /// count as an issue).
    pub fn classify(&self, pc: Pc) -> Option<bool> {
        let e = &self.table[self.index(pc)];
        (e.valid && e.pc == pc).then(|| e.is_critical(self.cfg.threshold_pct))
    }
}

impl CriticalityPredictor for Cpt {
    fn predict(&mut self, pc: Pc) -> bool {
        let threshold = self.cfg.threshold_pct;
        let cap = self.cfg.aging_cap;
        let idx = self.index(pc);
        let e = &mut self.table[idx];
        let critical = if e.valid && e.pc == pc {
            self.cpt_stats.hits += 1;
            // Classify against the *past* history (x% of the loads issued
            // so far blocked), then count this issue.
            let verdict = e.is_critical(threshold);
            e.num_loads = e.num_loads.saturating_add(1);
            Self::age(e, cap);
            verdict
        } else {
            // First touch (or conflict): assume non-critical, prioritizing
            // lifetime over performance (paper §IV).
            self.cpt_stats.misses += 1;
            false
        };
        if critical {
            self.predicted_critical += 1;
        } else {
            self.predicted_noncritical += 1;
        }
        critical
    }

    fn on_rob_block(&mut self, pc: Pc) {
        let idx = self.index(pc);
        let e = &mut self.table[idx];
        if e.valid && e.pc == pc {
            e.rob_blocks = e.rob_blocks.saturating_add(1);
        }
        // A block for a PC not yet in the table is folded into the entry
        // inserted at commit (`on_load_commit` receives `blocked`).
    }

    fn on_load_commit(&mut self, pc: Pc, blocked: bool) {
        let idx = self.index(pc);
        let e = &mut self.table[idx];
        if e.valid && e.pc == pc {
            return; // counters already maintained at issue/block time
        }
        if e.valid {
            self.cpt_stats.replacements += 1;
        }
        self.cpt_stats.insertions += 1;
        *e = CptEntry {
            pc,
            valid: true,
            num_loads: 1,
            rob_blocks: blocked as u32,
        };
    }

    fn stats(&self) -> PredictorStats {
        PredictorStats {
            predicted_critical: self.predicted_critical,
            predicted_noncritical: self.predicted_noncritical,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpt(threshold: f64) -> Cpt {
        Cpt::new(CptConfig::with_threshold(threshold))
    }

    /// Simulate `n` issue+commit rounds of one PC, `blocked_every` of which
    /// block the ROB head.
    fn train(c: &mut Cpt, pc: Pc, n: u32, block_every: u32) {
        for i in 0..n {
            c.predict(pc);
            let blocked = block_every > 0 && i % block_every == 0;
            if blocked {
                c.on_rob_block(pc);
            }
            c.on_load_commit(pc, blocked);
        }
    }

    #[test]
    fn first_touch_is_noncritical() {
        let mut c = cpt(3.0);
        assert!(!c.predict(100), "unknown PCs default to non-critical");
        assert_eq!(c.cpt_stats.misses, 1);
    }

    #[test]
    fn always_blocking_pc_becomes_critical() {
        let mut c = cpt(3.0);
        train(&mut c, 7, 10, 1); // blocks every time
        assert!(c.predict(7), "a 100%-blocking PC must be critical at x=3%");
    }

    #[test]
    fn never_blocking_pc_stays_noncritical() {
        let mut c = cpt(3.0);
        train(&mut c, 7, 100, 0);
        assert!(!c.predict(7));
        assert_eq!(c.classify(7), Some(false));
    }

    #[test]
    fn threshold_3pct_catches_rare_blockers() {
        // Blocks 1 in 20 times (5%) — critical at x=3, not at x=10.
        let mut c3 = cpt(3.0);
        train(&mut c3, 7, 100, 20);
        assert!(c3.predict(7), "5% blocker must be critical at x=3%");

        let mut c10 = cpt(10.0);
        train(&mut c10, 7, 100, 20);
        assert!(!c10.predict(7), "5% blocker must be non-critical at x=10%");
    }

    #[test]
    fn threshold_100pct_requires_every_load_to_block() {
        let mut c = cpt(100.0);
        train(&mut c, 7, 50, 1);
        assert!(c.predict(7));
        // One non-blocking instance breaks the 100% condition. Note the
        // predict() call itself bumps numLoads first.
        c.predict(7);
        c.on_load_commit(7, false);
        assert!(!c.predict(7));
    }

    #[test]
    fn lower_threshold_never_less_aggressive() {
        // For the same history, the set of PCs predicted critical at x=3%
        // must be a superset of those at x=50%.
        for block_every in [0u32, 1, 2, 5, 10, 40] {
            let mut lo = cpt(3.0);
            let mut hi = cpt(50.0);
            train(&mut lo, 9, 80, block_every);
            train(&mut hi, 9, 80, block_every);
            let lo_crit = lo.predict(9);
            let hi_crit = hi.predict(9);
            assert!(
                lo_crit || !hi_crit,
                "x=50 critical but x=3 not, block_every={block_every}"
            );
        }
    }

    #[test]
    fn insertion_happens_at_commit() {
        let mut c = cpt(3.0);
        c.predict(42); // miss — not inserted yet
        assert_eq!(c.classify(42), None);
        c.on_load_commit(42, true);
        assert_eq!(c.classify(42), Some(true));
        assert_eq!(c.cpt_stats.insertions, 1);
    }

    #[test]
    fn conflicting_pc_replaces_at_commit() {
        let mut c = Cpt::new(CptConfig {
            entries: 1,
            ..CptConfig::default()
        });
        c.on_load_commit(1, false);
        c.on_load_commit(2, true); // same slot
        assert_eq!(c.classify(1), None);
        assert_eq!(c.classify(2), Some(true));
        assert_eq!(c.cpt_stats.replacements, 1);
    }

    #[test]
    fn aging_halves_counters() {
        let mut c = Cpt::new(CptConfig {
            aging_cap: 8,
            ..CptConfig::default()
        });
        train(&mut c, 5, 20, 1);
        // Counters must have been halved at least once and stay consistent.
        let e = &c.table[c.index(5)];
        assert!(e.num_loads < 20);
        assert!(e.rob_blocks <= e.num_loads);
    }

    #[test]
    fn stats_track_prediction_mix() {
        let mut c = cpt(3.0);
        train(&mut c, 1, 10, 1); // critical PC
        train(&mut c, 2, 10, 0); // non-critical PC
        let s = CriticalityPredictor::stats(&c);
        assert!(s.predicted_critical >= 9, "{s:?}");
        assert!(s.predicted_noncritical >= 10, "{s:?}");
    }

    #[test]
    #[should_panic(expected = "pow2")]
    fn non_pow2_entries_rejected() {
        Cpt::new(CptConfig {
            entries: 1000,
            ..CptConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_rejected() {
        Cpt::new(CptConfig::with_threshold(0.0));
    }
}
