//! **Re-NUCA**: criticality-driven hybrid NUCA placement for ReRAM
//! last-level caches — the primary contribution of Kotra et al.,
//! *"Re-NUCA: A Practical NUCA Architecture for ReRAM based last-level
//! caches"*, IPDPS 2016.
//!
//! A ReRAM L3 wears out: every write consumes cell endurance. Dynamic NUCA
//! placement (R-NUCA) concentrates each core's blocks — and writes — into
//! the few banks next to it, so banks owned by write-intensive programs die
//! years early. Static NUCA (S-NUCA) spreads writes evenly but pays mesh
//! latency on every access. Re-NUCA splits the difference *by criticality*:
//!
//! * blocks fetched by loads that **block the head of the ROB** (the
//!   performance-critical ones) are placed with the R-NUCA mapping, one hop
//!   from their core;
//! * everything else is spread over all 16 banks with the S-NUCA mapping,
//!   wear-leveling the cache at (almost) no performance cost.
//!
//! This crate implements the full mechanism and all the baselines it is
//! evaluated against:
//!
//! | module | paper section | what |
//! |---|---|---|
//! | [`mapping::SNuca`] | §II.B | address-interleaved static NUCA |
//! | [`mapping::RNuca`] | §II.B | Reactive-NUCA one-hop clusters with rotational interleaving |
//! | [`mapping::PrivateMap`] | §III | per-core private banks |
//! | [`mapping::NaiveOracle`] | §III.A | perfect wear-leveling oracle + its directory cost |
//! | [`mapping::ReNuca`] | §IV | the hybrid, criticality-gated mapping |
//! | [`criticality::Cpt`] | §IV.B | the Criticality Predictor Table |
//! | [`tlb::EnhancedTlb`] | §IV.C | TLB + per-page Mapping Bit Vector |
//! | [`scheme`] | §V | one-stop factory for building any evaluated scheme |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod criticality;
pub mod mapping;
pub mod scheme;
pub mod tlb;

pub use criticality::{Cpt, CptConfig};
pub use mapping::{
    Coloring, Mac, NaiveOracle, PrivateMap, RNuca, ReNuca, ReNucaC2, ReNucaTwoProbe, SNuca, Wec,
    COLORING_EPOCH, WEC_THRESHOLD,
};
pub use scheme::Scheme;
pub use tlb::EnhancedTlb;
