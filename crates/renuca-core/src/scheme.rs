//! One-stop factory for the evaluated NUCA schemes.
//!
//! The experiment harness builds a `System` per (scheme × workload × config)
//! cell; this module centralizes the wiring: which placement policy to
//! instantiate and which criticality predictors the cores need (CPTs for
//! Re-NUCA, inert predictors otherwise).

use cmp_sim::config::SystemConfig;
use cmp_sim::placement::{CriticalityPredictor, LlcPlacement, NeverCritical};

use crate::criticality::{Cpt, CptConfig};
use crate::mapping::{Coloring, Mac, NaiveOracle, PrivateMap, RNuca, ReNuca, ReNucaC2, SNuca, Wec};

/// The evaluated NUCA schemes: the paper's five (§V), the three
/// wear-management competitors from the related work (the head-to-head
/// study of ROADMAP item 3), and the compressed Re-NUCA variant
/// (ROADMAP item 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Address-interleaved static NUCA.
    SNuca,
    /// Reactive NUCA one-hop clusters.
    RNuca,
    /// Per-core private banks.
    Private,
    /// Perfect wear-leveling oracle with a global directory.
    Naive,
    /// The paper's contribution: criticality-gated hybrid.
    ReNuca,
    /// Mittal's write-endurance-aware hot-bank redirection
    /// (arXiv:1311.0041).
    Wec,
    /// Mittal's epoch-rotated coloring remap (arXiv:1310.8494).
    Coloring,
    /// Ruan et al.'s write-aware replacement over S-NUCA placement
    /// (arXiv:1606.03248).
    Mac,
    /// Re-NUCA placement over an L2C2-style compressed ReRAM data array
    /// (Escuin et al., arXiv:2204.09504): sub-block wear + expansions.
    ReNucaC2,
}

impl Scheme {
    /// All schemes: the paper's five in their usual presentation order,
    /// then the three related-work competitors, then the compressed
    /// variant.
    pub const ALL: [Scheme; 9] = [
        Scheme::Naive,
        Scheme::SNuca,
        Scheme::ReNuca,
        Scheme::RNuca,
        Scheme::Private,
        Scheme::Wec,
        Scheme::Coloring,
        Scheme::Mac,
        Scheme::ReNucaC2,
    ];

    /// The related-work wear-management competitors (the head-to-head
    /// study's challengers).
    pub const COMPETITORS: [Scheme; 3] = [Scheme::Wec, Scheme::Coloring, Scheme::Mac];

    /// The paper's five schemes in Table III column order — the figure
    /// renderers with paper reference columns use this, not [`Scheme::ALL`].
    pub const PAPER: [Scheme; 5] = [
        Scheme::Naive,
        Scheme::SNuca,
        Scheme::ReNuca,
        Scheme::RNuca,
        Scheme::Private,
    ];

    /// The four baseline schemes of the motivation study (Figure 3).
    pub const BASELINES: [Scheme; 4] =
        [Scheme::SNuca, Scheme::RNuca, Scheme::Private, Scheme::Naive];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::SNuca => "S-NUCA",
            Scheme::RNuca => "R-NUCA",
            Scheme::Private => "Private",
            Scheme::Naive => "Naive",
            Scheme::ReNuca => "Re-NUCA",
            Scheme::Wec => "WEC",
            Scheme::Coloring => "Coloring",
            Scheme::Mac => "MAC",
            Scheme::ReNucaC2 => "Re-NUCA-C2",
        }
    }

    /// Build the placement policy for this scheme under `cfg`.
    pub fn build_policy(self, cfg: &SystemConfig) -> Box<dyn LlcPlacement> {
        match self {
            Scheme::SNuca => Box::new(SNuca::new(cfg.n_banks)),
            Scheme::RNuca => Box::new(RNuca::new(cfg.noc.cols, cfg.noc.rows)),
            Scheme::Private => Box::new(PrivateMap::new(cfg.n_cores)),
            Scheme::Naive => Box::new(NaiveOracle::with_line_capacity(
                cfg.n_banks,
                cfg.naive_dir_latency,
                cfg.n_banks * cfg.l3_bank.lines(),
            )),
            Scheme::ReNuca => Box::new(ReNuca::with_tlb_geometry(
                cfg.noc.cols,
                cfg.noc.rows,
                cfg.tlb_entries,
                cfg.tlb_assoc,
            )),
            Scheme::Wec => Box::new(Wec::with_line_capacity(
                cfg.n_banks,
                cfg.n_banks * cfg.l3_bank.lines(),
            )),
            Scheme::Coloring => Box::new(Coloring::with_line_capacity(
                cfg.n_banks,
                cfg.n_banks * cfg.l3_bank.lines(),
            )),
            Scheme::Mac => Box::new(Mac::new(cfg.n_banks)),
            Scheme::ReNucaC2 => Box::new(ReNucaC2::new(
                ReNuca::with_tlb_geometry(
                    cfg.noc.cols,
                    cfg.noc.rows,
                    cfg.tlb_entries,
                    cfg.tlb_assoc,
                ),
                compress::CompressSpec::new(cfg.l3_subblocks, cfg.compress_seed),
            )),
        }
    }

    /// Build the per-core criticality predictors for this scheme: CPTs with
    /// `cpt` configuration for Re-NUCA, inert predictors for every baseline
    /// (their placement ignores criticality).
    pub fn build_predictors(
        self,
        cfg: &SystemConfig,
        cpt: CptConfig,
    ) -> Vec<Box<dyn CriticalityPredictor>> {
        match self {
            Scheme::ReNuca | Scheme::ReNucaC2 => (0..cfg.n_cores)
                .map(|_| Box::new(Cpt::new(cpt)) as Box<dyn CriticalityPredictor>)
                .collect(),
            _ => (0..cfg.n_cores)
                .map(|_| Box::new(NeverCritical) as Box<dyn CriticalityPredictor>)
                .collect(),
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(Scheme::SNuca.name(), "S-NUCA");
        assert_eq!(Scheme::ReNuca.name(), "Re-NUCA");
        assert_eq!(format!("{}", Scheme::Naive), "Naive");
    }

    #[test]
    fn build_policy_names_roundtrip() {
        let cfg = SystemConfig::small(16);
        for s in Scheme::ALL {
            let mut p = s.build_policy(&cfg);
            assert_eq!(p.name(), s.name());
            // Smoke: every policy answers a lookup.
            let meta = cmp_sim::placement::AccessMeta {
                core: 0,
                line: 1234,
                page: 1234 >> 6,
                pc: 1,
                kind: cmp_sim::placement::LlcAccessKind::Demand,
                predicted_critical: false,
            };
            let b = p.lookup_bank(&meta);
            assert!(b < cfg.n_banks);
        }
    }

    #[test]
    fn only_the_compressed_scheme_drives_compression() {
        let cfg = SystemConfig::small(16);
        for s in Scheme::ALL {
            let p = s.build_policy(&cfg);
            match s {
                Scheme::ReNucaC2 => {
                    let spec = p.compression().expect("C2 must compress");
                    assert_eq!(spec.sub_blocks, cfg.l3_subblocks);
                    assert_eq!(spec.seed, cfg.compress_seed);
                    assert!(!spec.expand_on_equal, "factory never builds the bug");
                }
                _ => assert!(p.compression().is_none(), "{s} must not compress"),
            }
        }
    }

    #[test]
    fn predictors_match_core_count() {
        let cfg = SystemConfig::small(4);
        for s in Scheme::ALL {
            let preds = s.build_predictors(&cfg, CptConfig::default());
            assert_eq!(preds.len(), 4);
        }
    }

    #[test]
    fn only_renuca_gets_learning_predictors() {
        let cfg = SystemConfig::small(4);
        let mut preds = Scheme::ReNuca.build_predictors(&cfg, CptConfig::default());
        // A CPT learns: after a block+commit cycle the PC becomes critical.
        preds[0].predict(9);
        preds[0].on_rob_block(9);
        preds[0].on_load_commit(9, true);
        assert!(preds[0].predict(9));

        let mut base = Scheme::SNuca.build_predictors(&cfg, CptConfig::default());
        base[0].predict(9);
        base[0].on_rob_block(9);
        base[0].on_load_commit(9, true);
        assert!(!base[0].predict(9), "baselines must never predict critical");
    }
}
