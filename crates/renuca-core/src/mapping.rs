//! The evaluated L3 placement policies: the paper's five schemes plus the
//! three wear-management competitors from the related work (WEC, Coloring,
//! MAC).
//!
//! All policies implement [`cmp_sim::placement::LlcPlacement`]. Bank ids
//! coincide with mesh tile ids (one bank per core tile, paper Table I).

use cmp_sim::cache::ReplacementKind;
use cmp_sim::placement::{AccessMeta, LlcPlacement};
use cmp_sim::table::FixedTable;
use cmp_sim::types::{line_index_in_page, owner_of_line, BankId, CoreId, Cycle};

use crate::tlb::EnhancedTlb;

/// The owning core of a line, clamped into the machine (test traces may use
/// raw low addresses whose owner bits decode past `n_cores`).
///
/// Masking with `n_cores - 1` is only a clamp when `n_cores` is a power of
/// two; for any other machine size it silently decodes wrong owners (e.g.
/// core 5 of 6 would alias onto core 4), so non-pow2 counts take the modulo
/// path.
#[inline]
fn owner(line: u64, n_cores: usize) -> CoreId {
    let raw = owner_of_line(line);
    if n_cores.is_power_of_two() {
        raw & (n_cores - 1)
    } else {
        raw % n_cores
    }
}

// ---------------------------------------------------------------------------
// S-NUCA
// ---------------------------------------------------------------------------

/// Static NUCA: the bank is selected by the low bits of the line address
/// (paper §II.B). Every core's lines stripe across all banks, so writes are
/// spread evenly — the wear-leveling baseline.
#[derive(Clone, Copy, Debug)]
pub struct SNuca {
    n_banks: u64,
    /// `n_banks - 1` when `n_banks` is a power of two — the mask fast path
    /// every pow2 configuration takes. `None` falls back to modulo.
    mask: Option<u64>,
}

impl SNuca {
    /// S-NUCA over `n_banks` banks (pow2 counts stripe by mask, others by
    /// modulo).
    pub fn new(n_banks: usize) -> Self {
        assert!(n_banks > 0, "need at least one bank");
        SNuca {
            n_banks: n_banks as u64,
            mask: n_banks.is_power_of_two().then(|| n_banks as u64 - 1),
        }
    }

    /// The bank a line maps to.
    #[inline]
    pub fn bank_of(&self, line: u64) -> BankId {
        match self.mask {
            Some(m) => (line & m) as BankId,
            None => (line % self.n_banks) as BankId,
        }
    }
}

impl LlcPlacement for SNuca {
    fn name(&self) -> &'static str {
        "S-NUCA"
    }
    fn lookup_bank(&mut self, meta: &AccessMeta) -> BankId {
        self.bank_of(meta.line)
    }
    fn fill_bank(&mut self, meta: &AccessMeta) -> BankId {
        self.bank_of(meta.line)
    }
}

// ---------------------------------------------------------------------------
// R-NUCA
// ---------------------------------------------------------------------------

/// Reactive NUCA (Hardavellas et al., ISCA'09; paper §II.B): each core's
/// blocks live in a fixed-size **cluster** of banks at most one window away
/// from the core's tile, selected by rotational interleaving:
///
/// ```text
/// DestinationBank = cluster[(Addr + RID + 1) & (n − 1)],   n = 4
/// ```
///
/// Clusters are the 2×2 tile windows containing the core (clamped at mesh
/// edges), so interior windows overlap and neighbouring cores share banks —
/// private data stays close, but write pressure concentrates in each
/// window, which is exactly the wear problem Re-NUCA attacks.
#[derive(Clone, Debug)]
pub struct RNuca {
    cols: usize,
    rows: usize,
    n_cores: usize,
    /// Precomputed cluster bank list per core.
    clusters: Vec<Vec<BankId>>,
    /// Rotational ID per core.
    rids: Vec<u64>,
}

impl RNuca {
    /// R-NUCA on a `cols × rows` mesh (one core + one bank per tile).
    pub fn new(cols: usize, rows: usize) -> Self {
        let n_cores = cols * rows;
        let mut clusters = Vec::with_capacity(n_cores);
        let mut rids = Vec::with_capacity(n_cores);
        for core in 0..n_cores {
            let x = core % cols;
            let y = core / cols;
            // 2x2 window clamped inside the mesh (degenerates gracefully on
            // 1-wide meshes).
            let wx = x.min(cols.saturating_sub(2));
            let wy = y.min(rows.saturating_sub(2));
            let xs = if cols >= 2 { vec![wx, wx + 1] } else { vec![0] };
            let ys = if rows >= 2 { vec![wy, wy + 1] } else { vec![0] };
            let mut cluster = Vec::with_capacity(xs.len() * ys.len());
            for &cy in &ys {
                for &cx in &xs {
                    cluster.push(cy * cols + cx);
                }
            }
            // Rotational ID: the core's position within its window.
            let rid = ((x - wx) + 2 * (y - wy)) as u64;
            clusters.push(cluster);
            rids.push(rid);
        }
        RNuca {
            cols,
            rows,
            n_cores,
            clusters,
            rids,
        }
    }

    /// The cluster banks of a core.
    pub fn cluster(&self, core: CoreId) -> &[BankId] {
        &self.clusters[core]
    }

    /// The bank a (core, line) pair maps to.
    #[inline]
    pub fn bank_of(&self, core: CoreId, line: u64) -> BankId {
        let cluster = &self.clusters[core];
        let n = cluster.len() as u64;
        debug_assert!(n.is_power_of_two());
        let idx = (line + self.rids[core] + 1) & (n - 1);
        cluster[idx as usize]
    }

    /// Mesh geometry.
    pub fn geometry(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }
}

impl LlcPlacement for RNuca {
    fn name(&self) -> &'static str {
        "R-NUCA"
    }
    fn lookup_bank(&mut self, meta: &AccessMeta) -> BankId {
        self.bank_of(owner(meta.line, self.n_cores), meta.line)
    }
    fn fill_bank(&mut self, meta: &AccessMeta) -> BankId {
        self.bank_of(owner(meta.line, self.n_cores), meta.line)
    }
}

// ---------------------------------------------------------------------------
// Private
// ---------------------------------------------------------------------------

/// Private L3: each core uses exactly its local bank (paper §III). Best
/// latency (zero hops), worst wear variation — a write-heavy program grinds
/// down its own bank alone.
#[derive(Clone, Copy, Debug)]
pub struct PrivateMap {
    n_cores: usize,
}

impl PrivateMap {
    /// Private banks for `n_cores` cores (any positive count — `owner`
    /// clamps correctly for non-pow2 machines too).
    pub fn new(n_cores: usize) -> Self {
        assert!(n_cores > 0, "need at least one core");
        PrivateMap { n_cores }
    }
}

impl LlcPlacement for PrivateMap {
    fn name(&self) -> &'static str {
        "Private"
    }
    fn lookup_bank(&mut self, meta: &AccessMeta) -> BankId {
        owner(meta.line, self.n_cores)
    }
    fn fill_bank(&mut self, meta: &AccessMeta) -> BankId {
        owner(meta.line, self.n_cores)
    }
}

// ---------------------------------------------------------------------------
// Naive (perfect wear-leveling oracle)
// ---------------------------------------------------------------------------

/// The paper's §III.A "Naive" scheme: every fill goes to the bank with the
/// fewest writes so far, yielding perfect wear-leveling (0% variation) —
/// and requiring a global directory to find lines again, whose lookup
/// latency (plus the lost locality) costs ~21% performance vs S-NUCA. The
/// paper uses it as an upper bound on leveling, not as a practical design.
#[derive(Clone, Debug)]
pub struct NaiveOracle {
    writes: Vec<u64>,
    /// Lowest-index argmin of `writes`, maintained incrementally: a write
    /// to any other bank cannot change it (counters only grow), so the
    /// O(n_banks) rescan runs only when the current minimum bank is
    /// written — `fill_bank` itself becomes O(1).
    min_bank: BankId,
    directory: FixedTable<BankId>,
    dir_latency: Cycle,
    fallback: SNuca,
}

impl NaiveOracle {
    /// A Naive oracle over `n_banks` banks charging `dir_latency` cycles of
    /// directory indirection per LLC lookup, sized for the paper's 2 MB
    /// banks (32 K lines each). Use [`NaiveOracle::with_line_capacity`]
    /// when the bank geometry differs.
    pub fn new(n_banks: usize, dir_latency: Cycle) -> Self {
        Self::with_line_capacity(n_banks, dir_latency, n_banks * 32_768)
    }

    /// A Naive oracle whose directory is bounded to `max_lines` tracked
    /// lines (the LLC capacity in lines — entries are removed on eviction,
    /// with one in-flight fill per bank of slack).
    pub fn with_line_capacity(n_banks: usize, dir_latency: Cycle, max_lines: usize) -> Self {
        let bound = max_lines + n_banks;
        NaiveOracle {
            writes: vec![0; n_banks],
            min_bank: 0,
            directory: FixedTable::with_capacity(bound.min(4096), bound),
            dir_latency,
            fallback: SNuca::new(n_banks),
        }
    }

    /// Number of lines currently tracked by the directory.
    pub fn directory_len(&self) -> usize {
        self.directory.len()
    }

    /// Per-bank write counters (oracle state).
    pub fn write_counters(&self) -> &[u64] {
        &self.writes
    }

    /// Lowest-index bank with the fewest writes (the cached argmin).
    fn min_write_bank(&self) -> BankId {
        debug_assert_eq!(
            self.min_bank,
            Self::scan_argmin(&self.writes),
            "cached argmin out of sync with write counters"
        );
        self.min_bank
    }

    /// Full lowest-index argmin scan over the counters.
    fn scan_argmin(writes: &[u64]) -> BankId {
        let mut best = 0;
        let mut best_w = writes[0];
        for (b, &w) in writes.iter().enumerate().skip(1) {
            if w < best_w {
                best = b;
                best_w = w;
            }
        }
        best
    }
}

impl LlcPlacement for NaiveOracle {
    fn name(&self) -> &'static str {
        "Naive"
    }
    fn lookup_bank(&mut self, meta: &AccessMeta) -> BankId {
        // Directory hit: the line's actual bank. Miss: the line is not
        // resident; probe the S-NUCA home (the miss will be detected there
        // and `fill_bank` decides the real placement).
        self.directory
            .get(meta.line)
            .copied()
            .unwrap_or_else(|| self.fallback.bank_of(meta.line))
    }
    fn fill_bank(&mut self, _meta: &AccessMeta) -> BankId {
        self.min_write_bank()
    }
    fn on_fill(&mut self, meta: &AccessMeta, bank: BankId) {
        self.directory.insert(meta.line, bank);
    }
    fn on_l3_write(&mut self, bank: BankId) {
        self.writes[bank] += 1;
        // Incrementing any other bank leaves the minimum untouched; only a
        // write to the argmin bank itself can move it.
        if bank == self.min_bank {
            self.min_bank = Self::scan_argmin(&self.writes);
        }
    }
    fn on_evict(&mut self, line: u64, bank: BankId) {
        let removed = self.directory.remove(line);
        debug_assert_eq!(removed, Some(bank), "directory out of sync");
    }
    fn lookup_overhead(&self) -> Cycle {
        self.dir_latency
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// ---------------------------------------------------------------------------
// Re-NUCA
// ---------------------------------------------------------------------------

/// Re-NUCA placement statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReNucaStats {
    /// Fills placed with the R-NUCA mapping (critical blocks).
    pub critical_fills: u64,
    /// Fills placed with the S-NUCA mapping (non-critical blocks).
    pub noncritical_fills: u64,
    /// Lookups routed by an MBV bit of 1 (R-NUCA side).
    pub lookups_rnuca: u64,
    /// Lookups routed by an MBV bit of 0 (S-NUCA side).
    pub lookups_snuca: u64,
    /// Lookups whose MBV word came from the resolved-route cache (no
    /// enhanced-TLB probe). Simulator-internal; no hardware analogue.
    pub route_hits: u64,
    /// Lookups that missed the route cache and faulted the page's MBV in
    /// through the enhanced TLB.
    pub route_misses: u64,
}

/// **Re-NUCA** (paper §IV): the hybrid mapping.
///
/// * **Fill**: a block fetched by a load the CPT predicted *critical* is
///   placed with the R-NUCA mapping (close to its core); anything else —
///   non-critical loads, store allocations, first-touch PCs — is placed
///   with S-NUCA (spread over all banks). *"When a cache line is brought to
///   the cache for the first time, we assume a cache line is not critical"*.
/// * **Lookup**: the per-page Mapping Bit Vector in the enhanced TLB
///   remembers which mapping each resident line used, so an L2 miss goes
///   straight to the right bank with no directory.
/// * **Evict**: the line's MBV bit is reset to 0.
///
/// A line's mapping never changes while it is resident (no migration).
///
/// # Resolved-route cache
///
/// `lookup_bank` is the hottest call in the simulator: every L2 miss takes
/// it, and the straightforward path re-walks the enhanced TLB's set/LRU
/// machinery on each call. The route cache short-circuits that walk with a
/// per-core page → MBV-word table mirroring exactly the pages currently
/// TLB-resident. Because routes are a pure function of the MBV word, the
/// cache stays coherent with a *precise* invalidation set:
///
/// * **MBV bit flip** (`on_fill` / `on_evict` → `set_mbv_bit`): the cached
///   word is updated in place. These are the only MBV mutation points.
/// * **TLB eviction**: [`EnhancedTlb::fault_in_reported`] names the evicted
///   page and its route entry is dropped, preserving the invariant
///   "route entry present ⇒ page TLB-resident".
/// * **CPT threshold crossings** need *no* invalidation: criticality only
///   influences where *future fills* go (`fill_bank`); a resolved route
///   depends on the MBV alone, and residency — not prediction — routes.
///
/// The cache is simulator-internal (hardware reads the MBV for free with
/// the translation, §IV.C); it must never change a routing decision, only
/// how fast the simulator computes it. Cache hits skip the TLB's LRU
/// touch, so enhanced-TLB hit/miss *statistics* differ from the uncached
/// path — MBV contents, placement decisions and placement statistics do
/// not, which is what the differential harness checks.
pub struct ReNuca {
    snuca: SNuca,
    rnuca: RNuca,
    n_cores: usize,
    /// Per-core enhanced TLBs holding the Mapping Bit Vectors.
    tlbs: Vec<EnhancedTlb>,
    /// Per-core resolved-route cache: page → MBV word, mirroring the
    /// TLB-resident pages (bounded by the TLB entry count).
    route: Vec<FixedTable<u64>>,
    /// Placement statistics.
    pub renuca_stats: ReNucaStats,
}

impl ReNuca {
    /// Build Re-NUCA for a `cols × rows` mesh with the paper's enhanced-TLB
    /// geometry (64 entries, 8-way).
    pub fn new(cols: usize, rows: usize) -> Self {
        Self::with_tlb_geometry(cols, rows, 64, 8)
    }

    /// Build with a custom enhanced-TLB geometry (ablations).
    pub fn with_tlb_geometry(
        cols: usize,
        rows: usize,
        tlb_entries: usize,
        tlb_assoc: usize,
    ) -> Self {
        let n_cores = cols * rows;
        ReNuca {
            snuca: SNuca::new(n_cores),
            rnuca: RNuca::new(cols, rows),
            n_cores,
            tlbs: (0..n_cores)
                .map(|_| EnhancedTlb::new(tlb_entries, tlb_assoc))
                .collect(),
            // One route entry per TLB-resident page, so the TLB entry
            // count bounds the table (+1 slack for the insert-then-remove
            // window inside a single lookup).
            route: (0..n_cores)
                .map(|_| FixedTable::with_capacity(tlb_entries, tlb_entries + 1))
                .collect(),
            renuca_stats: ReNucaStats::default(),
        }
    }

    /// Mirror an MBV bit update into the resolved-route cache, if the page
    /// has a cached route. Keeps cached words bit-exact with the TLB.
    #[inline]
    fn route_update(&mut self, core: CoreId, page: u64, bit: u32, value: bool) {
        if let Some(word) = self.route[core].get_mut(page) {
            if value {
                *word |= 1u64 << bit;
            } else {
                *word &= !(1u64 << bit);
            }
        }
    }

    /// The enhanced TLB of one core (inspection).
    pub fn tlb(&self, core: CoreId) -> &EnhancedTlb {
        &self.tlbs[core]
    }

    /// Decode the core and MBV bit position of a line.
    #[inline]
    fn locate(&self, line: u64) -> (CoreId, u64, u32) {
        let core = owner(line, self.n_cores);
        let page = cmp_sim::types::page_of_line(line);
        let bit = line_index_in_page(line) as u32;
        (core, page, bit)
    }
}

impl LlcPlacement for ReNuca {
    fn name(&self) -> &'static str {
        "Re-NUCA"
    }

    fn lookup_bank(&mut self, meta: &AccessMeta) -> BankId {
        let (core, page, bit) = self.locate(meta.line);
        let mbv = if let Some(&word) = self.route[core].get(page) {
            self.renuca_stats.route_hits += 1;
            word
        } else {
            self.renuca_stats.route_misses += 1;
            let (word, evicted) = self.tlbs[core].fault_in_reported(page);
            if let Some(out) = evicted {
                self.route[core].remove(out);
            }
            self.route[core].insert(page, word);
            word
        };
        if (mbv >> bit) & 1 == 1 {
            self.renuca_stats.lookups_rnuca += 1;
            self.rnuca.bank_of(core, meta.line)
        } else {
            self.renuca_stats.lookups_snuca += 1;
            self.snuca.bank_of(meta.line)
        }
    }

    fn fill_bank(&mut self, meta: &AccessMeta) -> BankId {
        let (core, _, _) = self.locate(meta.line);
        if meta.predicted_critical {
            self.rnuca.bank_of(core, meta.line)
        } else {
            self.snuca.bank_of(meta.line)
        }
    }

    fn on_fill(&mut self, meta: &AccessMeta, _bank: BankId) {
        let (core, page, bit) = self.locate(meta.line);
        if meta.predicted_critical {
            self.renuca_stats.critical_fills += 1;
        } else {
            self.renuca_stats.noncritical_fills += 1;
        }
        self.tlbs[core].set_mbv_bit(page, bit, meta.predicted_critical);
        self.route_update(core, page, bit, meta.predicted_critical);
    }

    fn on_evict(&mut self, line: u64, _bank: BankId) {
        let (core, page, bit) = self.locate(line);
        self.tlbs[core].set_mbv_bit(page, bit, false);
        self.route_update(core, page, bit, false);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// ---------------------------------------------------------------------------
// Re-NUCA without the enhanced TLB (two-probe ablation)
// ---------------------------------------------------------------------------

/// The MBV-less Re-NUCA ablation: same criticality-gated *fill* policy, but
/// no Mapping Bit Vector — on lookup the controller probes the S-NUCA home
/// first and, on a miss there, forwards a second serialized probe to the
/// R-NUCA candidate. This is the design the paper's §IV.C enhanced TLB
/// exists to avoid: the two-probe search costs an extra bank access plus a
/// mesh hop on every lookup of an R-NUCA-resident line (and on every true
/// miss), quantifying the MBV's value.
pub struct ReNucaTwoProbe {
    snuca: SNuca,
    rnuca: RNuca,
    n_cores: usize,
}

impl ReNucaTwoProbe {
    /// Build for a `cols × rows` mesh.
    pub fn new(cols: usize, rows: usize) -> Self {
        ReNucaTwoProbe {
            snuca: SNuca::new(cols * rows),
            rnuca: RNuca::new(cols, rows),
            n_cores: cols * rows,
        }
    }
}

impl LlcPlacement for ReNucaTwoProbe {
    fn name(&self) -> &'static str {
        "Re-NUCA-2probe"
    }
    fn lookup_bank(&mut self, meta: &AccessMeta) -> BankId {
        // Probe the S-NUCA home first (the common, non-critical case).
        self.snuca.bank_of(meta.line)
    }
    fn secondary_bank(&mut self, meta: &AccessMeta) -> Option<BankId> {
        let core = owner(meta.line, self.n_cores);
        Some(self.rnuca.bank_of(core, meta.line))
    }
    fn fill_bank(&mut self, meta: &AccessMeta) -> BankId {
        let core = owner(meta.line, self.n_cores);
        if meta.predicted_critical {
            self.rnuca.bank_of(core, meta.line)
        } else {
            self.snuca.bank_of(meta.line)
        }
    }
}

// ---------------------------------------------------------------------------
// Re-NUCA-C2 (compressed ReRAM data array, L2C2-style — arXiv:2204.09504)
// ---------------------------------------------------------------------------

/// Re-NUCA placement over a *compressed* ReRAM data array (ROADMAP item 4:
/// Escuin et al.'s L2C2). Placement decisions are bit-identical to
/// [`ReNuca`] — compression rides *below* placement: each fill compacts the
/// line to its content-model size class (1, 2 or 4 sub-blocks), only the
/// written sub-blocks age, and an in-place write that outgrows its slot's
/// allocation re-programs the line through an extra bank operation. All of
/// that machinery lives in the substrate (`cmp_sim::hierarchy`), keyed off
/// [`LlcPlacement::compression`]; this wrapper only carries the spec.
pub struct ReNucaC2 {
    inner: ReNuca,
    spec: compress::CompressSpec,
}

impl ReNucaC2 {
    /// Wrap a [`ReNuca`] policy with a compression spec.
    pub fn new(inner: ReNuca, spec: compress::CompressSpec) -> Self {
        ReNucaC2 { inner, spec }
    }

    /// The wrapped Re-NUCA policy (MBV/TLB inspection — the differential
    /// harness compares the same state it compares for plain Re-NUCA).
    pub fn renuca(&self) -> &ReNuca {
        &self.inner
    }

    /// The bugged twin for the differential harness's mutation self-check:
    /// flips the spec's `expand_on_equal` switch, so slots whose write
    /// compresses to *exactly* the allocated class spuriously expand.
    /// Never built by `Scheme::build_policy`.
    pub fn bugged(mut self) -> Self {
        self.spec.expand_on_equal = true;
        self
    }
}

impl LlcPlacement for ReNucaC2 {
    fn name(&self) -> &'static str {
        "Re-NUCA-C2"
    }
    fn lookup_bank(&mut self, meta: &AccessMeta) -> BankId {
        self.inner.lookup_bank(meta)
    }
    fn fill_bank(&mut self, meta: &AccessMeta) -> BankId {
        self.inner.fill_bank(meta)
    }
    fn on_fill(&mut self, meta: &AccessMeta, bank: BankId) {
        self.inner.on_fill(meta, bank);
    }
    fn on_l3_write(&mut self, bank: BankId) {
        self.inner.on_l3_write(bank);
    }
    fn on_evict(&mut self, line: u64, bank: BankId) {
        self.inner.on_evict(line, bank);
    }
    fn compression(&self) -> Option<compress::CompressSpec> {
        Some(self.spec)
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// ---------------------------------------------------------------------------
// WEC (write-endurance-aware redirection, Mittal arXiv:1311.0041)
// ---------------------------------------------------------------------------

/// Hot-bank redirection threshold of [`Wec`] in writes. A fill whose S-NUCA
/// home bank carries at least this many more writes than the least-written
/// bank is redirected there. Small enough to trigger on the differential
/// harness's tiny traces; `crates/golden` duplicates it (golden re-derives
/// everything from documented semantics, including constants) and the
/// harness cross-checks the two.
pub const WEC_THRESHOLD: u64 = 8;

/// **WEC**: Mittal's set-level write-endurance-aware cache management
/// (arXiv:1311.0041), adapted to NUCA bank granularity. The original design
/// tracks per-set write counters inside one cache and redirects writes away
/// from hot sets; across a banked LLC the same idea reads as *per-bank*
/// counters with fills redirected from a hot S-NUCA home to the coldest
/// bank. Unlike the Naive oracle, redirection is exceptional — most fills
/// keep their S-NUCA home, so only the redirected minority needs directory
/// state to be found again (bounded [`FixedTable`], entries removed on
/// eviction).
#[derive(Clone, Debug)]
pub struct Wec {
    writes: Vec<u64>,
    /// Cached lowest-index argmin of `writes` (same incremental-maintenance
    /// discipline as [`NaiveOracle`]).
    min_bank: BankId,
    threshold: u64,
    /// Residency directory for *redirected* lines only: a line absent here
    /// is at its S-NUCA home.
    directory: FixedTable<BankId>,
    snuca: SNuca,
    /// Injected-bug switch for the mutation self-check: redirected fills go
    /// one bank past the coldest one. Internally consistent (the directory
    /// still records the bank actually used) but observably wrong vs the
    /// golden mirror. Never set by [`crate::Scheme::build_policy`].
    bug_skewed_redirect: bool,
}

impl Wec {
    /// WEC over `n_banks` banks, sized for the paper's 2 MB banks. Use
    /// [`Wec::with_line_capacity`] when the bank geometry differs.
    pub fn new(n_banks: usize) -> Self {
        Self::with_line_capacity(n_banks, n_banks * 32_768)
    }

    /// WEC whose redirection directory is bounded to `max_lines` tracked
    /// lines (the LLC capacity — entries leave on eviction, with one
    /// in-flight fill per bank of slack).
    pub fn with_line_capacity(n_banks: usize, max_lines: usize) -> Self {
        let bound = max_lines + n_banks;
        Wec {
            writes: vec![0; n_banks],
            min_bank: 0,
            threshold: WEC_THRESHOLD,
            directory: FixedTable::with_capacity(bound.min(4096), bound),
            snuca: SNuca::new(n_banks),
            bug_skewed_redirect: false,
        }
    }

    /// The deliberately buggy twin (see `bug_skewed_redirect`); built only
    /// by the differential harness's mutation self-check.
    pub fn bugged(n_banks: usize, max_lines: usize) -> Self {
        Wec {
            bug_skewed_redirect: true,
            ..Self::with_line_capacity(n_banks, max_lines)
        }
    }

    /// Per-bank write counters (inspection for the differential harness).
    pub fn write_counters(&self) -> &[u64] {
        &self.writes
    }

    /// Number of redirected lines currently tracked.
    pub fn directory_len(&self) -> usize {
        self.directory.len()
    }

    /// Full lowest-index argmin scan over the counters.
    fn scan_argmin(writes: &[u64]) -> BankId {
        let mut best = 0;
        let mut best_w = writes[0];
        for (b, &w) in writes.iter().enumerate().skip(1) {
            if w < best_w {
                best = b;
                best_w = w;
            }
        }
        best
    }
}

impl LlcPlacement for Wec {
    fn name(&self) -> &'static str {
        "WEC"
    }
    fn lookup_bank(&mut self, meta: &AccessMeta) -> BankId {
        self.directory
            .get(meta.line)
            .copied()
            .unwrap_or_else(|| self.snuca.bank_of(meta.line))
    }
    fn fill_bank(&mut self, meta: &AccessMeta) -> BankId {
        debug_assert_eq!(
            self.min_bank,
            Self::scan_argmin(&self.writes),
            "cached argmin out of sync with write counters"
        );
        let home = self.snuca.bank_of(meta.line);
        if self.writes[home] >= self.writes[self.min_bank] + self.threshold {
            if self.bug_skewed_redirect {
                (self.min_bank + 1) % self.writes.len()
            } else {
                self.min_bank
            }
        } else {
            home
        }
    }
    fn on_fill(&mut self, meta: &AccessMeta, bank: BankId) {
        // Only redirected lines need residency state; home-resident lines
        // are found by the S-NUCA map alone.
        if bank != self.snuca.bank_of(meta.line) {
            self.directory.insert(meta.line, bank);
        }
    }
    fn on_l3_write(&mut self, bank: BankId) {
        self.writes[bank] += 1;
        if bank == self.min_bank {
            self.min_bank = Self::scan_argmin(&self.writes);
        }
    }
    fn on_evict(&mut self, line: u64, bank: BankId) {
        match self.directory.remove(line) {
            Some(recorded) => debug_assert_eq!(recorded, bank, "directory out of sync"),
            None => debug_assert_eq!(
                bank,
                self.snuca.bank_of(line),
                "untracked eviction away from the S-NUCA home"
            ),
        }
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// ---------------------------------------------------------------------------
// Coloring (inter-set write-variation flattening, Mittal arXiv:1310.8494)
// ---------------------------------------------------------------------------

/// Writes per remap epoch of [`Coloring`]. Every `COLORING_EPOCH` L3 writes
/// the bank-map rotation advances by one, migrating each address's home one
/// bank over. Small enough that differential traces cross several epochs;
/// duplicated in `crates/golden` (see [`WEC_THRESHOLD`]).
pub const COLORING_EPOCH: u64 = 64;

/// **Coloring**: Mittal's cache-coloring remap against inter-set write
/// variation (arXiv:1310.8494), lifted to bank granularity: the mapping
/// from S-NUCA home to physical bank is shifted by a rotation that advances
/// every [`COLORING_EPOCH`] writes, so sustained write pressure on one
/// address region sweeps across all banks over time instead of grinding one
/// bank down. Because the map moves while lines are resident, *every* fill
/// records its bank in a residency directory ([`FixedTable`], removed on
/// eviction) — lookups hit the directory first and only directory misses
/// (non-resident lines) use the current map.
#[derive(Clone, Debug)]
pub struct Coloring {
    n_banks: u64,
    snuca: SNuca,
    epoch_writes: u64,
    total_writes: u64,
    directory: FixedTable<BankId>,
}

impl Coloring {
    /// Coloring over `n_banks` banks, sized for the paper's 2 MB banks. Use
    /// [`Coloring::with_line_capacity`] when the bank geometry differs.
    pub fn new(n_banks: usize) -> Self {
        Self::with_line_capacity(n_banks, n_banks * 32_768)
    }

    /// Coloring with a directory bounded to `max_lines` tracked lines.
    pub fn with_line_capacity(n_banks: usize, max_lines: usize) -> Self {
        Self::with_epoch(n_banks, max_lines, COLORING_EPOCH)
    }

    /// Coloring with an explicit epoch length. The differential harness's
    /// mutation self-check builds the off-by-one twin
    /// (`COLORING_EPOCH - 1`) through this — an injected bug of exactly the
    /// class a real regression would introduce.
    pub fn with_epoch(n_banks: usize, max_lines: usize, epoch_writes: u64) -> Self {
        assert!(epoch_writes > 0, "epoch must be positive");
        let bound = max_lines + n_banks;
        Coloring {
            n_banks: n_banks as u64,
            snuca: SNuca::new(n_banks),
            epoch_writes,
            total_writes: 0,
            directory: FixedTable::with_capacity(bound.min(4096), bound),
        }
    }

    /// The current rotation of the bank map.
    pub fn shift(&self) -> u64 {
        (self.total_writes / self.epoch_writes) % self.n_banks
    }

    /// Total L3 writes observed (drives the epoch clock).
    pub fn total_writes(&self) -> u64 {
        self.total_writes
    }

    /// Number of resident lines currently tracked.
    pub fn directory_len(&self) -> usize {
        self.directory.len()
    }

    /// The bank a *new* fill of `line` maps to under the current rotation.
    #[inline]
    fn current_bank(&self, line: u64) -> BankId {
        ((self.snuca.bank_of(line) as u64 + self.shift()) % self.n_banks) as BankId
    }
}

impl LlcPlacement for Coloring {
    fn name(&self) -> &'static str {
        "Coloring"
    }
    fn lookup_bank(&mut self, meta: &AccessMeta) -> BankId {
        self.directory
            .get(meta.line)
            .copied()
            .unwrap_or_else(|| self.current_bank(meta.line))
    }
    fn fill_bank(&mut self, meta: &AccessMeta) -> BankId {
        self.current_bank(meta.line)
    }
    fn on_fill(&mut self, meta: &AccessMeta, bank: BankId) {
        self.directory.insert(meta.line, bank);
    }
    fn on_l3_write(&mut self, _bank: BankId) {
        self.total_writes += 1;
    }
    fn on_evict(&mut self, line: u64, bank: BankId) {
        let removed = self.directory.remove(line);
        debug_assert_eq!(removed, Some(bank), "directory out of sync");
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// ---------------------------------------------------------------------------
// MAC (write-aware replacement, Ruan et al. arXiv:1606.03248)
// ---------------------------------------------------------------------------

/// **MAC**: Ruan et al.'s multilevel PCM-aware replacement
/// (arXiv:1606.03248) as a *replacement-policy* scheme composable with
/// S-NUCA placement. Placement is plain address interleaving — identical to
/// [`SNuca`] — but the L3 banks it drives run
/// [`ReplacementKind::WriteAware`] victim selection: clean lines are
/// evicted before dirty ones, so each dirty victim's inevitable ReRAM
/// writeback is deferred as long as possible and total cell writes drop.
/// The scheme itself is stateless; all the behaviour lives in the bank
/// arrays via [`LlcPlacement::l3_replacement`].
#[derive(Clone, Copy, Debug)]
pub struct Mac {
    snuca: SNuca,
    /// Injected-bug switch for the mutation self-check: report the inverse
    /// [`ReplacementKind::DirtyFirst`] policy to the hierarchy. Never set by
    /// [`crate::Scheme::build_policy`].
    bug_inverted_replacement: bool,
}

impl Mac {
    /// MAC over `n_banks` banks.
    pub fn new(n_banks: usize) -> Self {
        Mac {
            snuca: SNuca::new(n_banks),
            bug_inverted_replacement: false,
        }
    }

    /// The deliberately buggy twin (see `bug_inverted_replacement`); built
    /// only by the differential harness's mutation self-check.
    pub fn bugged(n_banks: usize) -> Self {
        Mac {
            snuca: SNuca::new(n_banks),
            bug_inverted_replacement: true,
        }
    }
}

impl LlcPlacement for Mac {
    fn name(&self) -> &'static str {
        "MAC"
    }
    fn lookup_bank(&mut self, meta: &AccessMeta) -> BankId {
        self.snuca.bank_of(meta.line)
    }
    fn fill_bank(&mut self, meta: &AccessMeta) -> BankId {
        self.snuca.bank_of(meta.line)
    }
    fn l3_replacement(&self) -> ReplacementKind {
        if self.bug_inverted_replacement {
            ReplacementKind::DirtyFirst
        } else {
            ReplacementKind::WriteAware
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_sim::placement::LlcAccessKind;
    use cmp_sim::types::phys_addr;

    fn meta(line: u64, critical: bool) -> AccessMeta {
        AccessMeta {
            core: owner(line, 16),
            line,
            page: cmp_sim::types::page_of_line(line),
            pc: 1,
            kind: LlcAccessKind::Demand,
            predicted_critical: critical,
        }
    }

    // --- S-NUCA ---

    #[test]
    fn snuca_stripes_by_low_bits() {
        let mut s = SNuca::new(16);
        for line in 0..64u64 {
            assert_eq!(s.lookup_bank(&meta(line, false)), (line & 15) as usize);
        }
    }

    #[test]
    fn snuca_lookup_equals_fill() {
        let mut s = SNuca::new(16);
        for line in [0u64, 17, 12345, 1 << 30] {
            let m = meta(line, true);
            assert_eq!(s.lookup_bank(&m), s.fill_bank(&m));
        }
    }

    // --- R-NUCA ---

    #[test]
    fn rnuca_cluster_is_one_window() {
        let r = RNuca::new(4, 4);
        // Core 5 = tile (1,1): window (1,1)..(2,2) -> banks 5,6,9,10.
        assert_eq!(r.cluster(5), &[5, 6, 9, 10]);
        // Corner core 15 = (3,3): clamped window (2,2) -> banks 10,11,14,15.
        assert_eq!(r.cluster(15), &[10, 11, 14, 15]);
        // Corner core 0: window (0,0) -> banks 0,1,4,5.
        assert_eq!(r.cluster(0), &[0, 1, 4, 5]);
    }

    #[test]
    fn rnuca_cluster_banks_are_near_the_core() {
        let r = RNuca::new(4, 4);
        for core in 0..16 {
            let (cx, cy) = (core % 4, core / 4);
            for &b in r.cluster(core) {
                let (bx, by) = (b % 4, b / 4);
                let dist = cx.abs_diff(bx) + cy.abs_diff(by);
                assert!(dist <= 2, "core {core} bank {b} is {dist} hops away");
            }
        }
    }

    #[test]
    fn rnuca_rotational_interleaving_covers_cluster() {
        let r = RNuca::new(4, 4);
        for core in 0..16usize {
            let mut seen = std::collections::HashSet::new();
            for line in 0..16u64 {
                seen.insert(r.bank_of(core, line));
            }
            assert_eq!(seen.len(), 4, "core {core} must use all 4 cluster banks");
            for b in &seen {
                assert!(r.cluster(core).contains(b));
            }
        }
    }

    #[test]
    fn rnuca_mapping_is_deterministic_per_line() {
        let mut r = RNuca::new(4, 4);
        let line = phys_addr(3, 0x12340) >> 6;
        let m = meta(line, false);
        let b1 = r.lookup_bank(&m);
        let b2 = r.lookup_bank(&m);
        let b3 = r.fill_bank(&m);
        assert_eq!(b1, b2);
        assert_eq!(b1, b3);
    }

    #[test]
    fn rnuca_localizes_each_cores_lines() {
        // All of core 12's lines land inside core 12's cluster.
        let mut r = RNuca::new(4, 4);
        for i in 0..100u64 {
            let line = phys_addr(12, i * 64) >> 6;
            let b = r.lookup_bank(&meta(line, false));
            assert!(r.cluster(12).contains(&b));
        }
    }

    #[test]
    fn rnuca_works_on_small_meshes() {
        let r = RNuca::new(2, 2);
        assert_eq!(r.cluster(0).len(), 4);
        let r1 = RNuca::new(1, 1);
        assert_eq!(r1.cluster(0), &[0]);
        assert_eq!(r1.bank_of(0, 1234), 0);
    }

    // --- Private ---

    #[test]
    fn private_uses_owner_bank() {
        let mut p = PrivateMap::new(16);
        for core in 0..16usize {
            let line = phys_addr(core, 0x5000) >> 6;
            assert_eq!(p.lookup_bank(&meta(line, false)), core);
            assert_eq!(p.fill_bank(&meta(line, true)), core);
        }
    }

    // --- Naive ---

    #[test]
    fn naive_fills_least_written_bank() {
        let mut n = NaiveOracle::new(4, 60);
        // Pre-load writes: bank 2 is the least written.
        n.on_l3_write(0);
        n.on_l3_write(0);
        n.on_l3_write(1);
        n.on_l3_write(3);
        assert_eq!(n.fill_bank(&meta(100, false)), 2);
    }

    #[test]
    fn naive_directory_finds_filled_lines() {
        let mut n = NaiveOracle::new(4, 60);
        let m = meta(0xabc, false);
        let bank = n.fill_bank(&m);
        n.on_fill(&m, bank);
        assert_eq!(n.lookup_bank(&m), bank);
        assert_eq!(n.directory_len(), 1);
        n.on_evict(m.line, bank);
        assert_eq!(n.directory_len(), 0);
        // After eviction lookups fall back to the S-NUCA probe bank.
        assert_eq!(n.lookup_bank(&m), (m.line & 3) as usize);
    }

    #[test]
    fn naive_charges_directory_latency() {
        let n = NaiveOracle::new(16, 60);
        assert_eq!(n.lookup_overhead(), 60);
        let mut s = SNuca::new(16);
        assert_eq!(LlcPlacement::lookup_overhead(&mut s), 0);
    }

    #[test]
    fn naive_perfectly_levels_synthetic_writes() {
        let mut n = NaiveOracle::new(4, 0);
        // 1000 fills, each writing once: counters must stay within 1.
        for i in 0..1000u64 {
            let m = meta(i, false);
            let b = n.fill_bank(&m);
            n.on_fill(&m, b);
            n.on_l3_write(b);
        }
        let w = n.write_counters();
        let max = w.iter().max().unwrap();
        let min = w.iter().min().unwrap();
        assert!(max - min <= 1, "oracle must level perfectly: {w:?}");
    }

    // --- Re-NUCA ---

    #[test]
    fn renuca_noncritical_goes_snuca_critical_goes_rnuca() {
        let mut r = ReNuca::new(4, 4);
        let line = phys_addr(5, 0x7000) >> 6;

        let nc = meta(line, false);
        assert_eq!(r.fill_bank(&nc), (line & 15) as usize);

        let c = meta(line, true);
        let bank = r.fill_bank(&c);
        assert!(r.rnuca.cluster(5).contains(&bank));
    }

    #[test]
    fn renuca_first_lookup_defaults_to_snuca() {
        let mut r = ReNuca::new(4, 4);
        let line = phys_addr(9, 0x9999_40) >> 6;
        // No fill yet: MBV bit 0 -> S-NUCA side.
        assert_eq!(r.lookup_bank(&meta(line, false)), (line & 15) as usize);
        assert_eq!(r.renuca_stats.lookups_snuca, 1);
    }

    #[test]
    fn renuca_mbv_remembers_critical_placement() {
        let mut r = ReNuca::new(4, 4);
        let line = phys_addr(5, 0x7000) >> 6;
        let c = meta(line, true);
        let bank = r.fill_bank(&c);
        r.on_fill(&c, bank);
        // Later lookups (even with a non-critical prediction!) must follow
        // the MBV to the R-NUCA bank: residency, not prediction, routes.
        let probe = meta(line, false);
        assert_eq!(r.lookup_bank(&probe), bank);
        assert_eq!(r.renuca_stats.lookups_rnuca, 1);
    }

    #[test]
    fn renuca_eviction_resets_mbv() {
        let mut r = ReNuca::new(4, 4);
        let line = phys_addr(5, 0x7000) >> 6;
        let c = meta(line, true);
        let bank = r.fill_bank(&c);
        r.on_fill(&c, bank);
        r.on_evict(line, bank);
        // Post-eviction lookup routes to S-NUCA again.
        assert_eq!(r.lookup_bank(&meta(line, false)), (line & 15) as usize);
    }

    #[test]
    fn renuca_neighbouring_lines_have_independent_bits() {
        let mut r = ReNuca::new(4, 4);
        let base = phys_addr(2, 0x10000);
        let l0 = base >> 6;
        let l1 = (base + 64) >> 6; // next line, same page
        let c = meta(l0, true);
        let b = r.fill_bank(&c);
        r.on_fill(&c, b);
        // l1 was never filled critical: still S-NUCA routed.
        assert_eq!(r.lookup_bank(&meta(l1, false)), (l1 & 15) as usize);
        // l0 is R-NUCA routed.
        assert_eq!(r.lookup_bank(&meta(l0, false)), b);
    }

    #[test]
    fn renuca_stats_track_fill_mix() {
        let mut r = ReNuca::new(4, 4);
        for i in 0..10u64 {
            let line = phys_addr(1, i * 64) >> 6;
            let m = meta(line, i % 2 == 0);
            let b = r.fill_bank(&m);
            r.on_fill(&m, b);
        }
        assert_eq!(r.renuca_stats.critical_fills, 5);
        assert_eq!(r.renuca_stats.noncritical_fills, 5);
    }

    #[test]
    fn two_probe_has_no_residency_state() {
        let mut p = ReNucaTwoProbe::new(4, 4);
        let line = phys_addr(5, 0x7000) >> 6;
        let c = meta(line, true);
        // Critical fills go to the R-NUCA side...
        let fill = p.fill_bank(&c);
        assert!(p.rnuca.cluster(5).contains(&fill));
        // ...but the primary lookup is always the S-NUCA home,
        assert_eq!(p.lookup_bank(&c), (line & 15) as usize);
        // ...with the R-NUCA candidate as the second probe.
        assert_eq!(p.secondary_bank(&c), Some(fill));
        // Evictions are no-ops: there is nothing to reset.
        p.on_evict(line, fill);
        assert_eq!(p.lookup_bank(&c), (line & 15) as usize);
    }

    #[test]
    fn naive_argmin_matches_full_scan_under_random_writes() {
        // Seeded differential test of the cached argmin against a from-
        // scratch lowest-index scan, on a non-pow2 bank count.
        let mut n = NaiveOracle::new(7, 0);
        let mut x: u64 = 0xDEAD_BEEF_CAFE_F00D;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            n.on_l3_write(((x >> 33) % 7) as usize);
            let w = n.write_counters();
            let expect = (0..7).min_by_key(|&b| (w[b], b)).unwrap();
            assert_eq!(n.fill_bank(&meta(x % 1000, false)), expect);
        }
    }

    #[test]
    fn route_cache_matches_fresh_tlb_routing() {
        use cmp_sim::types::page_of_line;

        // Seeded property test for the resolved-route cache: a tiny
        // 4-entry enhanced TLB under a random lookup/fill/evict storm over
        // 64 pages churns residency constantly; every lookup must match
        // the route computed fresh from the authoritative MBV word
        // (`EnhancedTlb::mbv` is a pure read — it cannot be served by the
        // route cache).
        fn lcg(x: &mut u64) -> u64 {
            *x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *x >> 11
        }

        let mut r = ReNuca::with_tlb_geometry(4, 4, 4, 2);
        let snuca = SNuca::new(16);
        let rnuca = RNuca::new(4, 4);
        let space = 64u64 * 64; // line numbers spanning 64 pages
        let mut resident: Vec<(u64, BankId)> = Vec::new();
        let mut x: u64 = 0x1234_5678_9ABC_DEF1;
        let check = |r: &mut ReNuca, line: u64| {
            let core = owner(line, 16);
            let page = page_of_line(line);
            let bit = line_index_in_page(line) as u32;
            let expect = if (r.tlb(core).mbv(page) >> bit) & 1 == 1 {
                rnuca.bank_of(core, line)
            } else {
                snuca.bank_of(line)
            };
            assert_eq!(
                r.lookup_bank(&meta(line, false)),
                expect,
                "route diverged for line {line:#x} (core {core}, page {page:#x}, bit {bit})"
            );
        };

        for _ in 0..20_000 {
            match lcg(&mut x) % 8 {
                0..=4 => check(&mut r, lcg(&mut x) % space),
                5 | 6 => {
                    let m = meta(lcg(&mut x) % space, lcg(&mut x) % 2 == 0);
                    let b = r.fill_bank(&m);
                    r.on_fill(&m, b);
                    resident.push((m.line, b));
                }
                _ => {
                    if !resident.is_empty() {
                        let (line, b) =
                            resident.swap_remove((lcg(&mut x) as usize) % resident.len());
                        r.on_evict(line, b);
                    }
                }
            }
        }
        // Exhaustive final sweep: every line in the space routes correctly.
        for line in 0..space {
            check(&mut r, line);
        }

        let s = r.renuca_stats;
        assert!(s.route_hits > 0, "stress must exercise cache hits");
        assert!(s.route_misses > 0, "stress must exercise cache misses");
        assert_eq!(
            s.route_hits + s.route_misses,
            s.lookups_rnuca + s.lookups_snuca,
            "every lookup is either a route hit or a route miss"
        );
        let churned = (0..16).any(|c| r.tlb(c).stats().evictions.get() > 0);
        assert!(churned, "TLBs must have evicted during the stress");
    }

    #[test]
    fn renuca_mbv_survives_tlb_eviction_via_backing_store() {
        // Touch enough distinct pages to overflow the 64-entry TLB, then
        // verify the first page's MBV bit is still correct (page-table
        // backing store).
        let mut r = ReNuca::new(4, 4);
        let first = phys_addr(3, 0);
        let l0 = first >> 6;
        let c = meta(l0, true);
        let bank = r.fill_bank(&c);
        r.on_fill(&c, bank);
        for p in 1..200u64 {
            let line = phys_addr(3, p * 4096) >> 6;
            let m = meta(line, false);
            // Realistic access sequence: lookup (faults the page's MBV into
            // the TLB), then miss-fill.
            r.lookup_bank(&m);
            let b = r.fill_bank(&m);
            r.on_fill(&m, b);
        }
        assert!(
            r.tlb(3).stats().evictions.get() > 0,
            "TLB must have churned"
        );
        assert_eq!(
            r.lookup_bank(&meta(l0, false)),
            bank,
            "MBV bit must survive TLB eviction"
        );
    }

    // --- WEC ---

    #[test]
    fn wec_stays_home_until_threshold_then_redirects() {
        let mut w = Wec::with_line_capacity(4, 1024);
        let line = 5u64; // S-NUCA home = bank 1
        assert_eq!(w.fill_bank(&meta(line, false)), 1, "cold banks: stay home");
        // Heat bank 1 past the threshold relative to bank 0 (the argmin).
        for _ in 0..WEC_THRESHOLD {
            w.on_l3_write(1);
        }
        assert_eq!(w.fill_bank(&meta(line, false)), 0, "hot home: redirect");
        // Lines whose home is already the coldest bank never redirect.
        assert_eq!(w.fill_bank(&meta(4, false)), 0);
    }

    #[test]
    fn wec_directory_tracks_only_redirected_lines() {
        let mut w = Wec::with_line_capacity(4, 1024);
        let home = meta(4, false); // home = bank 0 = argmin
        let b = w.fill_bank(&home);
        w.on_fill(&home, b);
        assert_eq!(w.directory_len(), 0, "home fills need no directory entry");

        for _ in 0..WEC_THRESHOLD {
            w.on_l3_write(1);
        }
        let hot = meta(5, false); // home = bank 1, now hot
        let b = w.fill_bank(&hot);
        assert_eq!(b, 0);
        w.on_fill(&hot, b);
        assert_eq!(w.directory_len(), 1);
        assert_eq!(
            w.lookup_bank(&hot),
            0,
            "redirected line found via directory"
        );
        w.on_evict(hot.line, b);
        assert_eq!(w.directory_len(), 0);
        assert_eq!(w.lookup_bank(&hot), 1, "post-evict lookup probes the home");
    }

    #[test]
    fn wec_bugged_twin_skews_redirects_but_stays_consistent() {
        let mut w = Wec::bugged(4, 1024);
        for _ in 0..WEC_THRESHOLD {
            w.on_l3_write(1);
        }
        let hot = meta(5, false);
        let b = w.fill_bank(&hot);
        assert_eq!(b, 1, "bug: one past the argmin (bank 0 -> bank 1)");
        // The twisted bank equals the home here, so no directory entry is
        // needed — internal consistency holds even under the bug.
        w.on_fill(&hot, b);
        assert_eq!(w.lookup_bank(&hot), b);
    }

    #[test]
    fn wec_argmin_matches_full_scan_under_random_writes() {
        // Same seeded differential discipline as the Naive oracle, on a
        // non-pow2 bank count: the cached argmin must track a from-scratch
        // lowest-index scan through an arbitrary write storm.
        let mut w = Wec::with_line_capacity(5, 1024);
        let mut x: u64 = 0x0DDB_A11_5EED;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            w.on_l3_write(((x >> 33) % 5) as usize);
            let counters = w.write_counters();
            let expect = (0..5).min_by_key(|&b| (counters[b], b)).unwrap();
            assert_eq!(w.min_bank, expect);
        }
    }

    // --- Coloring ---

    #[test]
    fn coloring_rotates_map_every_epoch() {
        let mut c = Coloring::with_line_capacity(4, 1024);
        let line = 6u64; // S-NUCA home = bank 2
        assert_eq!(c.fill_bank(&meta(line, false)), 2);
        for _ in 0..COLORING_EPOCH {
            c.on_l3_write(0);
        }
        assert_eq!(c.shift(), 1);
        assert_eq!(c.fill_bank(&meta(line, false)), 3, "map shifted one bank");
        // A full lap of epochs wraps back to the home bank.
        for _ in 0..3 * COLORING_EPOCH {
            c.on_l3_write(0);
        }
        assert_eq!(c.shift(), 0);
        assert_eq!(c.fill_bank(&meta(line, false)), 2);
    }

    #[test]
    fn coloring_directory_pins_resident_lines_across_epochs() {
        let mut c = Coloring::with_line_capacity(4, 1024);
        let m = meta(6, false);
        let b = c.fill_bank(&m);
        c.on_fill(&m, b);
        for _ in 0..COLORING_EPOCH {
            c.on_l3_write(0);
        }
        // The map moved, but the resident line must still be found where it
        // was filled.
        assert_eq!(c.lookup_bank(&m), b);
        c.on_evict(m.line, b);
        assert_eq!(c.directory_len(), 0);
        assert_eq!(
            c.lookup_bank(&m),
            c.fill_bank(&m),
            "non-resident: current map"
        );
    }

    #[test]
    fn coloring_off_by_one_epoch_twin_diverges() {
        let mut good = Coloring::with_line_capacity(4, 1024);
        let mut bad = Coloring::with_epoch(4, 1024, COLORING_EPOCH - 1);
        let m = meta(6, false);
        for _ in 0..COLORING_EPOCH - 1 {
            good.on_l3_write(0);
            bad.on_l3_write(0);
        }
        assert_ne!(good.fill_bank(&m), bad.fill_bank(&m));
    }

    // --- MAC ---

    #[test]
    fn mac_places_like_snuca_but_swaps_replacement() {
        let mut m = Mac::new(16);
        let mut s = SNuca::new(16);
        for line in [0u64, 17, 12345, 1 << 30] {
            let acc = meta(line, true);
            assert_eq!(m.lookup_bank(&acc), s.lookup_bank(&acc));
            assert_eq!(m.fill_bank(&acc), s.fill_bank(&acc));
        }
        assert_eq!(m.l3_replacement(), ReplacementKind::WriteAware);
        assert_eq!(
            LlcPlacement::l3_replacement(&s),
            ReplacementKind::Lru,
            "placement-only schemes keep the default"
        );
        assert_eq!(
            Mac::bugged(16).l3_replacement(),
            ReplacementKind::DirtyFirst
        );
    }
}
