//! The Enhanced TLB with per-page Mapping Bit Vectors — paper §IV.C.
//!
//! Every TLB entry is augmented with a 64-bit **Mapping Bit Vector (MBV)**,
//! one bit per 64 B line of the 4 KB page: bit = 1 means the line was
//! allocated in the L3 with the R-NUCA mapping (critical), 0 means S-NUCA
//! (non-critical or not resident). Geometry: 64 entries, 8-way per core
//! (512 B of MBV per TLB, 1 KB/core counting L1I+L1D, 16 KB per 16-core
//! chip — the paper's negligible-overhead argument).
//!
//! The paper leaves one mechanism implicit: what happens to MBV bits when a
//! TLB entry is evicted while the page's lines are still L3-resident.
//! Dropping them would mis-route later lookups (the bit would read 0 while
//! the line sits in an R-NUCA bank). The minimal consistent design — used
//! here — writes the MBV back to a page-table side structure on TLB
//! eviction and reloads it on refill, exactly like accessed/dirty bits.
//! L3 evictions of lines whose page is not TLB-resident update the backing
//! store directly.
//!
//! No extra lookup latency is charged: the MBV travels with the normal
//! translation the core already performs ("TLB search is performed in early
//! cycles of memory access and the mapping information is available when
//! accessing LLC", §I).

use cmp_sim::table::FixedTable;
use cmp_sim::tlb::{Tlb, TlbStats};

/// Bound on pages with non-zero MBVs parked in one core's backing store.
/// Non-zero vectors exist only for pages holding R-NUCA-resident lines, so
/// the true bound is the LLC line count; 2^20 pages (4 GB of critical
/// pages) is far beyond any simulated footprint and exists only to turn a
/// reset-bookkeeping leak into a loud failure.
const BACKING_BOUND: usize = 1 << 20;

/// A per-core enhanced TLB: translation entries carrying MBVs, with a
/// page-table backing store for evicted vectors.
pub struct EnhancedTlb {
    tlb: Tlb<u64>,
    backing: FixedTable<u64>,
}

impl EnhancedTlb {
    /// Build with the given geometry (the paper's is 64 entries, 8-way).
    pub fn new(entries: usize, assoc: usize) -> Self {
        // Walk latency 0: translation latency is already charged by the
        // core's dTLB; the MBV rides along for free.
        EnhancedTlb {
            tlb: Tlb::new(entries, assoc, 0),
            backing: FixedTable::with_capacity(entries, BACKING_BOUND),
        }
    }

    /// Read the MBV bit for line `bit` (0..64) of `page`, faulting the page
    /// into the TLB if needed (lookups always follow a translation, so the
    /// page is being touched anyway).
    pub fn mbv_bit(&mut self, page: u64, bit: u32) -> bool {
        debug_assert!(bit < 64);
        let mbv = self.fault_in(page);
        (mbv >> bit) & 1 == 1
    }

    /// Set or clear the MBV bit for line `bit` of `page`.
    ///
    /// Fill-time updates hit the TLB-resident entry (the page was just
    /// accessed); eviction-time resets for non-resident pages go straight
    /// to the backing store without disturbing TLB contents.
    pub fn set_mbv_bit(&mut self, page: u64, bit: u32, value: bool) {
        debug_assert!(bit < 64);
        let mask = 1u64 << bit;
        if let Some(mbv) = self.tlb.payload_mut(page) {
            if value {
                *mbv |= mask;
            } else {
                *mbv &= !mask;
            }
            return;
        }
        let entry = self.backing.get_or_insert_with(page, || 0);
        if value {
            *entry |= mask;
        } else {
            *entry &= !mask;
        }
        if *entry == 0 {
            // Keep the side structure sparse: all-zero vectors are the
            // default and need no storage.
            self.backing.remove(page);
        }
    }

    /// Full MBV of a page (TLB-resident value, else backing store, else 0).
    pub fn mbv(&self, page: u64) -> u64 {
        self.tlb
            .payload(page)
            .copied()
            .or_else(|| self.backing.get(page).copied())
            .unwrap_or(0)
    }

    /// TLB hit/miss/eviction statistics.
    pub fn stats(&self) -> TlbStats {
        self.tlb.stats
    }

    /// Number of pages with non-zero MBVs parked in the backing store.
    pub fn backing_len(&self) -> usize {
        self.backing.len()
    }

    /// Ensure `page` is TLB-resident and return its MBV together with the
    /// page (if any) the TLB evicted to make room.
    ///
    /// The evicted-page report exists for the resolved-route cache in
    /// [`ReNuca`](crate::mapping::ReNuca): route entries are only valid for
    /// TLB-resident pages, so every residency loss must be visible to the
    /// caller. All TLB refills go through this method — `set_mbv_bit` only
    /// mutates payloads in place and never changes residency.
    pub fn fault_in_reported(&mut self, page: u64) -> (u64, Option<u64>) {
        if let Some(&mbv) = self.tlb.payload(page) {
            // Touch for LRU.
            self.tlb.access(page, |_| unreachable!("resident"));
            return (mbv, None);
        }
        let refill = self.backing.remove(page).unwrap_or(0);
        let acc = self.tlb.access(page, |_| refill);
        let mut evicted = None;
        if let Some((evicted_page, mbv)) = acc.evicted {
            if mbv != 0 {
                self.backing.insert(evicted_page, mbv);
            }
            evicted = Some(evicted_page);
        }
        (refill, evicted)
    }

    /// Ensure `page` is TLB-resident and return its MBV.
    fn fault_in(&mut self, page: u64) -> u64 {
        self.fault_in_reported(page).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_pages_read_zero() {
        let mut t = EnhancedTlb::new(64, 8);
        assert!(!t.mbv_bit(5, 0));
        assert!(!t.mbv_bit(5, 63));
        assert_eq!(t.mbv(5), 0);
    }

    #[test]
    fn set_and_read_bits() {
        let mut t = EnhancedTlb::new(64, 8);
        t.mbv_bit(7, 0); // fault the page in
        t.set_mbv_bit(7, 3, true);
        t.set_mbv_bit(7, 63, true);
        assert!(t.mbv_bit(7, 3));
        assert!(t.mbv_bit(7, 63));
        assert!(!t.mbv_bit(7, 4));
        assert_eq!(t.mbv(7), (1 << 3) | (1 << 63));
        t.set_mbv_bit(7, 3, false);
        assert!(!t.mbv_bit(7, 3));
    }

    #[test]
    fn bits_are_per_page() {
        let mut t = EnhancedTlb::new(64, 8);
        t.mbv_bit(1, 0);
        t.set_mbv_bit(1, 10, true);
        assert!(!t.mbv_bit(2, 10));
        assert!(t.mbv_bit(1, 10));
    }

    #[test]
    fn eviction_writes_back_and_refill_restores() {
        // 2-entry direct-mapped TLB: pages 0 and 2 conflict.
        let mut t = EnhancedTlb::new(2, 1);
        t.mbv_bit(0, 0);
        t.set_mbv_bit(0, 5, true);
        // Fault in a conflicting page -> page 0 evicted to backing store.
        t.mbv_bit(2, 0);
        assert_eq!(t.backing_len(), 1);
        // Reading page 0 again faults it back with the bit intact; page 2's
        // all-zero vector needs no backing storage.
        assert!(t.mbv_bit(0, 5));
        assert_eq!(t.backing_len(), 0);
    }

    #[test]
    fn zero_vectors_not_stored_in_backing() {
        let mut t = EnhancedTlb::new(2, 1);
        t.mbv_bit(0, 0); // all-zero vector
        t.mbv_bit(2, 0); // evicts page 0
        assert_eq!(t.backing_len(), 0, "zero MBVs need no backing storage");
    }

    #[test]
    fn set_on_non_resident_page_goes_to_backing() {
        let mut t = EnhancedTlb::new(2, 1);
        // Never touched page 9: the L3 evicts one of its lines (reset) and
        // then fills another (set) — both without TLB residency.
        t.set_mbv_bit(9, 4, true);
        assert_eq!(t.backing_len(), 1);
        assert!(t.mbv_bit(9, 4));
        t.set_mbv_bit(9, 4, false);
        assert!(!t.mbv_bit(9, 4));
    }

    #[test]
    fn clearing_last_bit_frees_backing_entry() {
        let mut t = EnhancedTlb::new(2, 1);
        t.set_mbv_bit(9, 4, true); // non-resident -> backing
        t.set_mbv_bit(9, 4, false);
        assert_eq!(t.backing_len(), 0);
    }

    #[test]
    fn fault_in_reports_evicted_page() {
        // 2-entry direct-mapped TLB: pages 0 and 2 conflict.
        let mut t = EnhancedTlb::new(2, 1);
        assert_eq!(t.fault_in_reported(0), (0, None));
        t.set_mbv_bit(0, 5, true);
        assert_eq!(t.fault_in_reported(2), (0, Some(0)));
        // Faulting page 0 back evicts page 2 and restores the stored MBV.
        assert_eq!(t.fault_in_reported(0), (1 << 5, Some(2)));
        // A hit reports no eviction.
        assert_eq!(t.fault_in_reported(0), (1 << 5, None));
    }

    #[test]
    fn stats_count_faults() {
        let mut t = EnhancedTlb::new(64, 8);
        t.mbv_bit(1, 0);
        t.mbv_bit(1, 1);
        t.mbv_bit(2, 0);
        let s = t.stats();
        assert_eq!(s.misses.get(), 2);
        assert_eq!(s.hits.get(), 1);
    }

    #[test]
    fn paper_overhead_is_64_bits_per_entry() {
        // 64 entries x 64-bit MBV = 512 bytes per TLB: the §IV.C overhead
        // argument. This is a documentation-level invariant: the payload
        // type is exactly u64.
        assert_eq!(std::mem::size_of::<u64>() * 64, 512);
    }
}
