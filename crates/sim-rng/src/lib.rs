//! Hermetic deterministic RNG for the Re-NUCA simulation stack.
//!
//! The simulator's reproducibility story rests on *seeded determinism*:
//! every workload model, workload mix and property test must regenerate the
//! identical stream on every machine, every run, forever. This crate
//! provides that guarantee with zero external dependencies:
//!
//! * **Seeding** uses SplitMix64 (Steele et al., *Fast Splittable
//!   Pseudorandom Number Generators*) to expand a single `u64` seed into
//!   the full 256-bit generator state — any seed, including 0, produces a
//!   well-mixed state.
//! * **Generation** uses xoshiro256\*\* (Blackman & Vigna), a fast
//!   all-integer generator with a 2²⁵⁶−1 period that passes BigCrush.
//!
//! Both algorithms are pure integer arithmetic over `u64` with wrapping
//! semantics, so the sequences are bit-identical across platforms,
//! architectures and compiler versions. The derived surface
//! ([`gen_range`](SimRng::gen_range), [`gen_f64`](SimRng::gen_f64),
//! [`shuffle`](SimRng::shuffle), …) is likewise fully specified here — no
//! dependency update can ever silently re-seed the experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// One SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seed expansion and exposed for callers that need a cheap
/// stateless mixer (e.g. deriving per-core seeds from a workload id).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded xoshiro256\*\* generator.
///
/// ```
/// use sim_rng::SimRng;
/// let mut rng = SimRng::seed_from_u64(42);
/// let die = rng.gen_range(1u64..7);
/// assert!((1..7).contains(&die));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Build a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with full 53-bit precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // Top 53 bits → mantissa; 2⁻⁵³ scaling keeps the result in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`. Panics when `lo >= hi`.
    #[inline]
    pub fn gen_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_f64_range: empty range {lo}..{hi}");
        lo + self.gen_f64() * (hi - lo)
    }

    /// A uniform `u64` in `[0, bound)` via Lemire's unbiased widening
    /// multiply. Panics when `bound == 0`.
    #[inline]
    pub fn gen_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_bounded: zero bound");
        // Rejection zone keeps the map exactly uniform for every bound.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform `u64` in `range`. Panics on an empty range.
    #[inline]
    pub fn gen_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range: empty range {range:?}");
        range.start + self.gen_bounded(range.end - range.start)
    }

    /// A uniform `usize` in `range`. Panics on an empty range.
    #[inline]
    pub fn gen_range_usize(&mut self, range: Range<usize>) -> usize {
        self.gen_range(range.start as u64..range.end as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle, deterministic in the generator state.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_bounded(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.gen_range_usize(0..xs.len())])
        }
    }
}

/// A fixed-bound uniform sampler with the rejection threshold precomputed.
///
/// [`SimRng::gen_bounded`] recomputes `bound.wrapping_neg() % bound` — a
/// 64-bit division — on every call. Hot loops that draw from the same
/// bound millions of times (the workload generators) hoist that division
/// to construction time. [`Bounded::sample`] consumes the generator
/// identically to `gen_bounded`, so the two produce **bit-identical
/// sequences** for the same bound — swapping one for the other can never
/// change a seeded stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bounded {
    bound: u64,
    threshold: u64,
}

impl Bounded {
    /// Precompute the sampler for `bound`. Panics when `bound == 0`.
    pub fn new(bound: u64) -> Self {
        assert!(bound > 0, "Bounded: zero bound");
        Bounded {
            bound,
            threshold: bound.wrapping_neg() % bound,
        }
    }

    /// The bound this sampler draws below.
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// A uniform `u64` in `[0, bound)`; the same draws as
    /// [`SimRng::gen_bounded`] with this bound.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        loop {
            let x = rng.next_u64();
            let m = (x as u128) * (self.bound as u128);
            if (m as u64) >= self.threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from_u64(0xDEAD_BEEF);
        let mut b = SimRng::seed_from_u64(0xDEAD_BEEF);
        for _ in 0..10_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..1_000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5, "{same}/1000 identical outputs");
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        // SplitMix64 expansion guarantees a non-degenerate state even for 0.
        let mut rng = SimRng::seed_from_u64(0);
        let outputs: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(outputs.iter().any(|&x| x != 0));
        assert!(outputs.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..100_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn gen_range_covers_and_bounds() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = rng.gen_range(5..15);
            assert!((5..15).contains(&x));
            seen[(x - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values must appear: {seen:?}");
    }

    #[test]
    fn bounded_matches_gen_bounded_exactly() {
        // The precomputed sampler must consume and map the generator
        // identically to gen_bounded for pow2, non-pow2 and huge bounds.
        for bound in [1u64, 2, 3, 7, 64, 1000, 1 << 21, u64::MAX / 3] {
            let mut a = SimRng::seed_from_u64(99);
            let mut b = SimRng::seed_from_u64(99);
            let pre = Bounded::new(bound);
            for _ in 0..10_000 {
                assert_eq!(a.gen_bounded(bound), pre.sample(&mut b), "bound {bound}");
            }
            assert_eq!(a, b, "generator states diverged for bound {bound}");
        }
    }

    #[test]
    fn gen_bounded_is_roughly_uniform() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut counts = [0u32; 16];
        let n = 160_000;
        for _ in 0..n {
            counts[rng.gen_bounded(16) as usize] += 1;
        }
        let expect = n / 16;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as i64 - expect as i64).abs();
            assert!(dev < expect as i64 / 10, "bucket {i}: {c} vs {expect}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(9);
        let mut xs: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(xs, (0..64).collect::<Vec<_>>(), "64 elements should move");
    }

    #[test]
    fn choose_empty_and_singleton() {
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(rng.choose::<u8>(&[]), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SimRng::seed_from_u64(21);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "measured {frac}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::seed_from_u64(1).gen_range(5..5);
    }
}
