//! Cross-platform determinism: the exact output sequences are part of the
//! crate's contract. These known-answer vectors pin the bit-exact behavior
//! of seeding, generation, range reduction and shuffling — if any of them
//! ever changes, every experiment seed in the repository silently remaps,
//! so a failure here is a release blocker, not a flaky test.

use sim_rng::{splitmix64, SimRng};

#[test]
fn splitmix64_reference_vector() {
    // First four outputs of the SplitMix64 stream from state 0 (matches the
    // published reference implementation by Sebastiano Vigna).
    let mut state = 0u64;
    let got: Vec<u64> = (0..4).map(|_| splitmix64(&mut state)).collect();
    assert_eq!(
        got,
        vec![
            0xE220_A839_7B1D_CDAF,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
        ]
    );
}

#[test]
fn xoshiro_known_answer_seed_0() {
    let mut rng = SimRng::seed_from_u64(0);
    let got: Vec<u64> = (0..6).map(|_| rng.next_u64()).collect();
    assert_eq!(
        got,
        vec![
            0x99EC_5F36_CB75_F2B4,
            0xBF6E_1F78_4956_452A,
            0x1A5F_849D_4933_E6E0,
            0x6AA5_94F1_262D_2D2C,
            0xBBA5_AD4A_1F84_2E59,
            0xFFEF_8375_D9EB_CACA,
        ]
    );
}

#[test]
fn xoshiro_known_answer_seed_42() {
    let mut rng = SimRng::seed_from_u64(42);
    let got: Vec<u64> = (0..6).map(|_| rng.next_u64()).collect();
    assert_eq!(
        got,
        vec![
            0x1578_0B2E_0C2E_C716,
            0x6104_D986_6D11_3A7E,
            0xAE17_5332_39E4_99A1,
            0xECB8_AD47_03B3_60A1,
            0xFDE6_DC7F_E2EC_5E64,
            0xC50D_A531_0179_5238,
        ]
    );
}

#[test]
fn xoshiro_known_answer_seed_deadbeef() {
    let mut rng = SimRng::seed_from_u64(0xDEAD_BEEF);
    let got: Vec<u64> = (0..6).map(|_| rng.next_u64()).collect();
    assert_eq!(
        got,
        vec![
            0xC555_5444_A74D_7E83,
            0x65C3_0D37_B4B1_6E38,
            0x54F7_7320_0A4E_FA23,
            0x429A_ED75_FB95_8AF7,
            0xFB0E_1DD6_9C25_5B2E,
            0x9D6D_02EC_5881_4A27,
        ]
    );
}

#[test]
fn f64_known_answers() {
    // f64 derivation is (next_u64 >> 11) * 2⁻⁵³ — exact dyadic rationals,
    // so equality comparison is portable.
    let mut rng = SimRng::seed_from_u64(42);
    let got: Vec<f64> = (0..4).map(|_| rng.gen_f64()).collect();
    assert_eq!(
        got,
        vec![
            0.08386297105988216,
            0.3789802506626686,
            0.6800434110281394,
            0.9246929453253876,
        ]
    );
}

#[test]
fn bounded_sequence_known_answer() {
    let mut rng = SimRng::seed_from_u64(7);
    let got: Vec<u64> = (0..12).map(|_| rng.gen_bounded(10)).collect();
    assert_eq!(got, vec![7, 2, 8, 9, 9, 8, 0, 1, 4, 1, 5, 7]);
}

#[test]
fn shuffle_known_answer() {
    let mut rng = SimRng::seed_from_u64(5);
    let mut xs: Vec<u32> = (0..10).collect();
    rng.shuffle(&mut xs);
    assert_eq!(xs, vec![1, 0, 4, 9, 6, 3, 7, 8, 5, 2]);
}

#[test]
fn clone_forks_identical_streams() {
    let mut a = SimRng::seed_from_u64(123);
    for _ in 0..100 {
        a.next_u64();
    }
    let mut b = a.clone();
    for _ in 0..1_000 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

#[test]
fn gen_range_usize_matches_u64_reduction() {
    // The usize surface must be a pure cast wrapper — same draws, same values.
    let mut a = SimRng::seed_from_u64(77);
    let mut b = SimRng::seed_from_u64(77);
    for _ in 0..1_000 {
        assert_eq!(a.gen_range_usize(3..40) as u64, b.gen_range(3..40));
    }
}
