//! Aggregate lifetime statistics reported by the paper.
//!
//! The paper evaluates each NUCA scheme over 10 multiprogrammed workloads and
//! reports:
//!
//! * **Harmonic-mean lifetime per bank** (Figures 3, 12, 13, 15, 17): for
//!   each cache bank, the harmonic mean of that bank's lifetime across all
//!   workloads. Harmonic because lifetime behaves like a rate and the mean
//!   must be dominated by the bad workloads.
//! * **Raw minimum lifetime** (Table III): the single smallest bank lifetime
//!   observed over *all* banks and *all* workloads — when the first capacity
//!   is lost under the worst case.
//! * **Lifetime variation**: coefficient of variation across banks, the
//!   wear-leveling quality measure ("0% variation" for the Naive oracle).

use sim_stats::summary::{cv, hmean, min_f64};

/// Per-bank harmonic mean across workloads.
///
/// `per_workload[w][b]` = lifetime of bank `b` in workload `w`. Returns one
/// value per bank.
///
/// # Panics
/// Panics if workloads have inconsistent bank counts or the input is empty.
pub fn hmean_lifetime_per_bank(per_workload: &[Vec<f64>]) -> Vec<f64> {
    assert!(!per_workload.is_empty(), "no workloads");
    let nbanks = per_workload[0].len();
    for (w, banks) in per_workload.iter().enumerate() {
        assert_eq!(
            banks.len(),
            nbanks,
            "workload {w} has {} banks, expected {nbanks}",
            banks.len()
        );
    }
    (0..nbanks)
        .map(|b| {
            let series: Vec<f64> = per_workload.iter().map(|w| w[b]).collect();
            hmean(&series)
        })
        .collect()
}

/// Raw minimum lifetime: the smallest bank lifetime over all workloads and
/// banks (Table III's metric).
///
/// # Panics
/// Panics if the input is empty.
pub fn raw_min_lifetime(per_workload: &[Vec<f64>]) -> f64 {
    assert!(!per_workload.is_empty(), "no workloads");
    per_workload
        .iter()
        .filter_map(|banks| min_f64(banks))
        .fold(f64::INFINITY, f64::min)
}

/// Coefficient of variation of per-bank (harmonic-mean) lifetimes — the
/// paper's wear-leveling quality number. 0.0 means perfect leveling.
pub fn lifetime_variation(per_bank: &[f64]) -> f64 {
    cv(per_bank)
}

/// Capacity retention curve: the fraction of cache capacity still alive at
/// each point in time, given per-bank lifetimes.
///
/// This extends the paper's motivation quantitatively — *"with time, cache
/// banks wear out and we loose cache capacity … thereby hurting the
/// performance"* (§III.B): a scheme with a high minimum lifetime keeps the
/// whole cache for longer, while skewed schemes (Private, R-NUCA) shed
/// banks early even though their *average* lifetime looks fine.
///
/// Returns `(years, fraction_alive)` pairs at `points` evenly spaced times
/// from 0 to `horizon_years` (inclusive).
///
/// # Panics
/// Panics on an empty lifetime slice or zero points.
pub fn capacity_retention(per_bank: &[f64], horizon_years: f64, points: usize) -> Vec<(f64, f64)> {
    assert!(!per_bank.is_empty(), "no banks");
    assert!(points >= 2, "need at least start and end points");
    let n = per_bank.len() as f64;
    (0..points)
        .map(|i| {
            let t = horizon_years * i as f64 / (points - 1) as f64;
            let alive = per_bank.iter().filter(|&&l| l > t).count() as f64;
            (t, alive / n)
        })
        .collect()
}

/// The time at which the cache first drops below `fraction` of its
/// capacity (e.g. 0.99 → first bank death ≈ raw minimum lifetime; 0.5 →
/// half-capacity point). Returns the smallest bank lifetime above the
/// cutoff.
///
/// # Panics
/// Panics on an empty slice or a fraction outside (0, 1].
pub fn time_to_capacity(per_bank: &[f64], fraction: f64) -> f64 {
    assert!(!per_bank.is_empty(), "no banks");
    assert!(fraction > 0.0 && fraction <= 1.0, "fraction in (0,1]");
    let mut sorted: Vec<f64> = per_bank.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Capacity drops below `fraction` when more than (1-fraction)*n banks
    // have died; that happens at the k-th smallest lifetime.
    let n = sorted.len();
    let deaths_allowed = ((1.0 - fraction) * n as f64).floor() as usize;
    sorted[deaths_allowed.min(n - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmean_per_bank_shape() {
        let data = vec![vec![2.0, 4.0], vec![6.0, 4.0]];
        let h = hmean_lifetime_per_bank(&data);
        assert_eq!(h.len(), 2);
        // hmean(2,6) = 2/(1/2+1/6) = 3
        assert!((h[0] - 3.0).abs() < 1e-12);
        assert!((h[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no workloads")]
    fn empty_input_rejected() {
        hmean_lifetime_per_bank(&[]);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn ragged_input_rejected() {
        hmean_lifetime_per_bank(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn raw_min_over_all() {
        let data = vec![vec![5.0, 3.0], vec![2.5, 9.0]];
        assert_eq!(raw_min_lifetime(&data), 2.5);
    }

    #[test]
    fn perfect_leveling_has_zero_variation() {
        assert_eq!(lifetime_variation(&[4.0, 4.0, 4.0]), 0.0);
        assert!(lifetime_variation(&[1.0, 10.0]) > 0.5);
    }

    #[test]
    fn capacity_retention_basics() {
        let lifetimes = [1.0, 2.0, 3.0, 4.0];
        let curve = capacity_retention(&lifetimes, 4.0, 5);
        // t=0: all alive; t=1: 1y bank dead (strictly greater survives);
        // t=4: none alive.
        assert_eq!(curve[0], (0.0, 1.0));
        assert_eq!(curve[1], (1.0, 0.75));
        assert_eq!(curve[2], (2.0, 0.5));
        assert_eq!(curve[4], (4.0, 0.0));
    }

    #[test]
    fn capacity_retention_is_monotone_nonincreasing() {
        let lifetimes = [0.5, 2.5, 2.5, 7.0, 9.0];
        let curve = capacity_retention(&lifetimes, 10.0, 21);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
    }

    #[test]
    fn time_to_capacity_points() {
        let lifetimes = [1.0, 2.0, 3.0, 4.0];
        // Full capacity requirement -> first death.
        assert_eq!(time_to_capacity(&lifetimes, 1.0), 1.0);
        // Tolerate one dead bank (75%): next death at 2y.
        assert_eq!(time_to_capacity(&lifetimes, 0.75), 2.0);
        assert_eq!(time_to_capacity(&lifetimes, 0.5), 3.0);
    }

    #[test]
    #[should_panic(expected = "no banks")]
    fn retention_rejects_empty() {
        capacity_retention(&[], 1.0, 2);
    }

    #[test]
    fn hmean_dominated_by_worst_workload() {
        // A bank worn out fast by one workload must have a low harmonic mean
        // even if every other workload treats it gently.
        let data = vec![vec![0.5], vec![50.0], vec![50.0]];
        let h = hmean_lifetime_per_bank(&data);
        assert!(h[0] < 1.5, "hmean {} should be pinned near 0.5", h[0]);
    }
}
