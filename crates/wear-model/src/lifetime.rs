//! Extrapolating measured write rates to lifetime-in-years.

use crate::{EnduranceSpec, WearTracker, SECONDS_PER_YEAR};

/// How writes are assumed to distribute over the slots *within* one bank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IntraBankWear {
    /// The paper's assumption: writes within a bank are leveled across its
    /// slots (intra-set/inter-set leveling is delegated to orthogonal
    /// schemes — i2wap, EqualChance — per the paper's §VI). The bank's
    /// effective per-slot write rate is `bank_writes / slots_per_bank`.
    #[default]
    Uniform,
    /// Pessimistic ablation: the bank dies when its *most-written* slot
    /// exhausts its endurance; per-slot rate is the max-slot rate.
    MaxSlot,
}

/// Turns a [`WearTracker`]'s measured counts over a simulated window into
/// per-bank lifetimes in years.
///
/// Lifetime of a bank is the wall-clock time until its (effective) per-slot
/// write count reaches the endurance budget, assuming the measured write
/// rate continues:
///
/// ```text
/// rate_slot   = effective_slot_writes / window_seconds
/// lifetime(y) = endurance / rate_slot / SECONDS_PER_YEAR
/// ```
///
/// Banks that absorbed zero writes have unbounded lifetime; they are reported
/// as `cap_years` (default 100) so harmonic means and plots stay finite —
/// the paper's figures top out near 13 years, far below any sensible cap.
#[derive(Clone, Copy, Debug)]
pub struct LifetimeModel {
    /// Endurance budget per line slot.
    pub endurance: EnduranceSpec,
    /// Core clock in Hz (cycles → seconds conversion), 2.4 GHz in Table I.
    pub freq_hz: f64,
    /// Intra-bank wear assumption.
    pub intra_bank: IntraBankWear,
    /// Reported lifetime for an unwritten bank, in years.
    pub cap_years: f64,
}

impl Default for LifetimeModel {
    fn default() -> Self {
        LifetimeModel {
            endurance: EnduranceSpec::PAPER,
            freq_hz: 2.4e9,
            intra_bank: IntraBankWear::Uniform,
            cap_years: 100.0,
        }
    }
}

impl LifetimeModel {
    /// Lifetime in years of one bank, given its counts over `window_cycles`.
    ///
    /// # Panics
    /// Panics if `window_cycles` is zero — lifetimes of an empty measurement
    /// window are meaningless and indicate a harness bug.
    pub fn bank_lifetime_years(
        &self,
        tracker: &WearTracker,
        bank: usize,
        window_cycles: u64,
    ) -> f64 {
        assert!(window_cycles > 0, "empty measurement window");
        // With sub-block (compression) accounting the endurance budget is
        // per *cell*, and only written sub-blocks age: the effective count
        // is the mean (or max) cell-write count. On a tracker where every
        // write was full-line this reduces exactly to the line-level
        // arithmetic below, so uncompressed schemes are unaffected.
        let effective_writes = if tracker.subblocks_per_slot() != 0 {
            match self.intra_bank {
                IntraBankWear::Uniform => {
                    tracker.subblock_bank_writes(bank) as f64
                        / (tracker.slots_per_bank() * tracker.subblocks_per_slot()) as f64
                }
                IntraBankWear::MaxSlot => tracker.max_cell_writes(bank) as f64,
            }
        } else {
            match self.intra_bank {
                IntraBankWear::Uniform => {
                    tracker.bank_writes(bank) as f64 / tracker.slots_per_bank() as f64
                }
                IntraBankWear::MaxSlot => tracker.max_slot_writes(bank) as f64,
            }
        };
        if effective_writes <= 0.0 {
            return self.cap_years;
        }
        let window_seconds = window_cycles as f64 / self.freq_hz;
        let rate_per_second = effective_writes / window_seconds;
        let lifetime_years = self.endurance.writes_per_cell / rate_per_second / SECONDS_PER_YEAR;
        lifetime_years.min(self.cap_years)
    }

    /// Lifetimes of all banks, index = bank id.
    pub fn all_bank_lifetimes(&self, tracker: &WearTracker, window_cycles: u64) -> Vec<f64> {
        (0..tracker.nbanks())
            .map(|b| self.bank_lifetime_years(tracker, b, window_cycles))
            .collect()
    }

    /// The minimum bank lifetime of this run — when the first bank (and
    /// therefore the first chunk of cache capacity) is lost.
    pub fn min_bank_lifetime(&self, tracker: &WearTracker, window_cycles: u64) -> f64 {
        self.all_bank_lifetimes(tracker, window_cycles)
            .into_iter()
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker_with_writes(per_bank: &[u64], slots: usize) -> WearTracker {
        let mut t = WearTracker::new(per_bank.len(), slots);
        for (b, &n) in per_bank.iter().enumerate() {
            for i in 0..n {
                t.record_write(b, (i as usize) % slots);
            }
        }
        t
    }

    #[test]
    fn sanity_ballpark_years() {
        // One bank, 32768 slots, absorbing writes at 2.4e7/s:
        // per-slot rate = 732.4/s; lifetime = 1e11/732.4 s ≈ 4.33 years.
        let slots = 32768;
        let model = LifetimeModel::default();
        // Window: 2.4e9 cycles = 1 second. Writes: 2.4e7.
        let mut t = WearTracker::new(1, slots);
        for i in 0..2_400_000u64 {
            // scaled down 10x to keep the test fast; scale window too
            t.record_write(0, (i % slots as u64) as usize);
        }
        // 0.1 s window (2.4e8 cycles) with 2.4e6 writes = same 2.4e7/s rate.
        let years = model.bank_lifetime_years(&t, 0, 240_000_000);
        assert!(
            (years - 4.33).abs() < 0.1,
            "expected ≈4.33 years, got {years}"
        );
    }

    #[test]
    fn more_writes_shorter_life() {
        let t = tracker_with_writes(&[100, 1000], 16);
        let m = LifetimeModel::default();
        let l0 = m.bank_lifetime_years(&t, 0, 1_000_000);
        let l1 = m.bank_lifetime_years(&t, 1, 1_000_000);
        assert!(l0 > l1, "bank with 10x writes must live 10x shorter");
        assert!((l0 / l1 - 10.0).abs() < 1e-6);
    }

    #[test]
    fn unwritten_bank_capped() {
        let t = WearTracker::new(2, 16);
        let m = LifetimeModel::default();
        assert_eq!(m.bank_lifetime_years(&t, 0, 1000), 100.0);
    }

    #[test]
    fn custom_cap_respected() {
        let t = WearTracker::new(1, 16);
        let m = LifetimeModel {
            cap_years: 42.0,
            ..LifetimeModel::default()
        };
        assert_eq!(m.bank_lifetime_years(&t, 0, 1000), 42.0);
    }

    #[test]
    fn max_slot_is_pessimistic() {
        // All writes to one slot: uniform spreads them over 16 slots, so
        // max-slot lifetime must be 16x shorter.
        let mut t = WearTracker::new(1, 16);
        for _ in 0..1600 {
            t.record_write(0, 3);
        }
        let uniform = LifetimeModel::default();
        let maxslot = LifetimeModel {
            intra_bank: IntraBankWear::MaxSlot,
            ..LifetimeModel::default()
        };
        let lu = uniform.bank_lifetime_years(&t, 0, 1_000_000_000);
        let lm = maxslot.bank_lifetime_years(&t, 0, 1_000_000_000);
        assert!(lm < lu);
        assert!((lu / lm - 16.0).abs() < 1e-6);
    }

    #[test]
    fn min_bank_lifetime_finds_worst() {
        let t = tracker_with_writes(&[10, 1000, 100], 8);
        let m = LifetimeModel::default();
        let all = m.all_bank_lifetimes(&t, 1_000_000);
        let min = m.min_bank_lifetime(&t, 1_000_000);
        assert_eq!(min, all[1]);
    }

    #[test]
    #[should_panic(expected = "empty measurement window")]
    fn zero_window_panics() {
        let t = WearTracker::new(1, 1);
        LifetimeModel::default().bank_lifetime_years(&t, 0, 0);
    }

    #[test]
    fn compressed_cell_wear_extends_lifetime() {
        // Same 1000 line writes; the compressed tracker programs only 1
        // of 4 sub-blocks per write, so its mean cell-write count — and
        // therefore its write rate — is 4x lower: lifetime is 4x longer.
        let mut full = WearTracker::with_subblocks(1, 8, 4);
        let mut compact = WearTracker::with_subblocks(1, 8, 4);
        for i in 0..1000u64 {
            full.record_write(0, (i % 8) as usize);
            compact.record_subblock_write(0, (i % 8) as usize, 1 << (i % 4));
        }
        let m = LifetimeModel::default();
        let lf = m.bank_lifetime_years(&full, 0, 1_000_000);
        let lc = m.bank_lifetime_years(&compact, 0, 1_000_000);
        assert!((lc / lf - 4.0).abs() < 1e-9, "ratio {}", lc / lf);
        // And the full-line sub-block tracker matches the line-level model
        // exactly (the reduction the uncompressed schemes rely on).
        let mut line = WearTracker::new(1, 8);
        for i in 0..1000u64 {
            line.record_write(0, (i % 8) as usize);
        }
        assert_eq!(lf, m.bank_lifetime_years(&line, 0, 1_000_000));
    }

    #[test]
    fn doubling_frequency_halves_lifetime() {
        // Same cycle window at double frequency = half the wall-clock time
        // for the same writes = double the rate = half the lifetime.
        let t = tracker_with_writes(&[1000], 8);
        let slow = LifetimeModel {
            freq_hz: 1.2e9,
            ..LifetimeModel::default()
        };
        let fast = LifetimeModel {
            freq_hz: 2.4e9,
            ..LifetimeModel::default()
        };
        let ls = slow.bank_lifetime_years(&t, 0, 1_000_000);
        let lf = fast.bank_lifetime_years(&t, 0, 1_000_000);
        assert!((ls / lf - 2.0).abs() < 1e-9);
    }
}
