//! Cache energy accounting: the quantitative side of the paper's §I
//! motivation.
//!
//! The paper's opening argument for ReRAM LLCs is power: *"standby power is
//! up to 80% of their total power"* for large SRAM caches [Kim+, ISLPED'03],
//! while ReRAM's non-volatility makes its standby power near zero — at the
//! price of expensive writes (and the endurance problem the rest of the
//! paper addresses). This module turns simulated access counts into energy
//! so that trade-off can be reported next to the lifetime results.
//!
//! Device numbers are per-line (64 B) access energies and per-MB leakage,
//! with presets in the range published for 22–32 nm SRAM and HfOx/TaOx
//! ReRAM arrays. They are order-of-magnitude device parameters, not process
//! sign-off numbers; both presets are `pub` and the struct is plain data —
//! swap in your own.

/// Per-device energy parameters for one cache technology.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Technology label for reports.
    pub name: &'static str,
    /// Energy of one 64 B line read, picojoules.
    pub read_pj: f64,
    /// Energy of one 64 B line write, picojoules.
    pub write_pj: f64,
    /// Standby (leakage) power per megabyte of array, milliwatts.
    pub leakage_mw_per_mb: f64,
}

impl EnergyModel {
    /// Large SRAM array preset: cheap symmetric accesses, heavy leakage
    /// (the \"up to 80% of total power\" regime the paper cites).
    pub const SRAM: EnergyModel = EnergyModel {
        name: "SRAM",
        read_pj: 120.0,
        write_pj: 120.0,
        leakage_mw_per_mb: 30.0,
    };

    /// Metal-oxide ReRAM array preset: fast-ish reads, expensive writes,
    /// near-zero standby power.
    pub const RERAM: EnergyModel = EnergyModel {
        name: "ReRAM",
        read_pj: 200.0,
        write_pj: 1_500.0,
        leakage_mw_per_mb: 0.02,
    };

    /// Total energy over a window, in millijoules.
    ///
    /// `reads`/`writes` are line accesses, `seconds` the wall-clock window
    /// and `capacity_mb` the array size (leakage integrates over time and
    /// capacity regardless of activity — that is the whole point).
    pub fn energy_mj(
        &self,
        reads: u64,
        writes: u64,
        seconds: f64,
        capacity_mb: f64,
    ) -> EnergyBreakdown {
        assert!(seconds >= 0.0 && capacity_mb >= 0.0);
        let dynamic_read = reads as f64 * self.read_pj * 1e-9; // pJ -> mJ
        let dynamic_write = writes as f64 * self.write_pj * 1e-9;
        let standby = self.leakage_mw_per_mb * capacity_mb * seconds; // mW*s = mJ
        EnergyBreakdown {
            read_mj: dynamic_read,
            write_mj: dynamic_write,
            standby_mj: standby,
        }
    }
}

/// Energy decomposition of one window.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Dynamic read energy, mJ.
    pub read_mj: f64,
    /// Dynamic write energy, mJ.
    pub write_mj: f64,
    /// Standby/leakage energy, mJ.
    pub standby_mj: f64,
}

impl EnergyBreakdown {
    /// Total energy, mJ.
    pub fn total_mj(&self) -> f64 {
        self.read_mj + self.write_mj + self.standby_mj
    }

    /// Standby share of the total, in \[0,1\].
    pub fn standby_fraction(&self) -> f64 {
        let t = self.total_mj();
        if t == 0.0 {
            0.0
        } else {
            self.standby_mj / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_reflect_the_papers_story() {
        // ReRAM writes cost much more than SRAM writes...
        assert!(EnergyModel::RERAM.write_pj > 5.0 * EnergyModel::SRAM.write_pj);
        // ...but its leakage is orders of magnitude lower.
        assert!(EnergyModel::SRAM.leakage_mw_per_mb > 50.0 * EnergyModel::RERAM.leakage_mw_per_mb);
    }

    #[test]
    fn sram_llc_is_leakage_dominated() {
        // A 32 MB SRAM L3 under a realistic access rate: ~1e7 accesses/s.
        // The paper's §I claim: standby is up to 80% of total power.
        let e = EnergyModel::SRAM.energy_mj(8_000_000, 2_000_000, 1.0, 32.0);
        assert!(
            e.standby_fraction() > 0.4,
            "SRAM standby share {:.2} should dominate",
            e.standby_fraction()
        );
    }

    #[test]
    fn reram_llc_is_not_leakage_dominated() {
        let e = EnergyModel::RERAM.energy_mj(8_000_000, 2_000_000, 1.0, 32.0);
        assert!(
            e.standby_fraction() < 0.2,
            "ReRAM standby share {:.2} should be small",
            e.standby_fraction()
        );
    }

    #[test]
    fn energy_decomposition_adds_up() {
        let e = EnergyModel::SRAM.energy_mj(100, 50, 2.0, 4.0);
        assert!((e.total_mj() - (e.read_mj + e.write_mj + e.standby_mj)).abs() < 1e-12);
        // Reads: 100 * 120pJ = 12 nJ = 1.2e-5 mJ.
        assert!((e.read_mj - 1.2e-5).abs() < 1e-12);
        // Standby: 30 mW/MB * 4 MB * 2 s = 240 mJ.
        assert!((e.standby_mj - 240.0).abs() < 1e-9);
    }

    #[test]
    fn zero_window_zero_standby() {
        let e = EnergyModel::RERAM.energy_mj(10, 10, 0.0, 32.0);
        assert_eq!(e.standby_mj, 0.0);
        assert!(e.total_mj() > 0.0);
    }

    #[test]
    fn idle_cache_energy_is_pure_standby() {
        let e = EnergyModel::SRAM.energy_mj(0, 0, 10.0, 32.0);
        assert_eq!(e.standby_fraction(), 1.0);
    }
}
