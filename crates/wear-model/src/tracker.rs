//! Per-slot write counters for a banked cache.

/// Tracks every write into every physical line slot of a banked cache.
///
/// A *slot* is a (set, way) position inside one bank — the actual ReRAM
/// cells. The tracker is a dense `nbanks × slots_per_bank` array of `u64`
/// counters: for the paper's configuration (16 banks × 2 MB / 64 B = 32768
/// slots) that is 4 MB of counters, cheap enough to keep exact counts.
#[derive(Clone, Debug)]
pub struct WearTracker {
    nbanks: usize,
    slots_per_bank: usize,
    /// Row-major: `writes[bank * slots_per_bank + slot]`.
    writes: Vec<u64>,
    /// Per-bank totals, maintained incrementally (hot path reads these).
    bank_totals: Vec<u64>,
}

impl WearTracker {
    /// Create a tracker for `nbanks` banks of `slots_per_bank` line slots.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(nbanks: usize, slots_per_bank: usize) -> Self {
        assert!(nbanks > 0, "need at least one bank");
        assert!(slots_per_bank > 0, "need at least one slot per bank");
        WearTracker {
            nbanks,
            slots_per_bank,
            writes: vec![0; nbanks * slots_per_bank],
            bank_totals: vec![0; nbanks],
        }
    }

    /// Number of banks tracked.
    #[inline]
    pub fn nbanks(&self) -> usize {
        self.nbanks
    }

    /// Number of line slots per bank.
    #[inline]
    pub fn slots_per_bank(&self) -> usize {
        self.slots_per_bank
    }

    /// Record one write into `slot` of `bank`.
    ///
    /// # Panics
    /// Debug-asserts the indices; in release an out-of-range index panics via
    /// the slice bound check (a simulator bug, not a recoverable condition).
    #[inline]
    pub fn record_write(&mut self, bank: usize, slot: usize) {
        debug_assert!(bank < self.nbanks, "bank {bank} out of range");
        debug_assert!(slot < self.slots_per_bank, "slot {slot} out of range");
        self.writes[bank * self.slots_per_bank + slot] += 1;
        self.bank_totals[bank] += 1;
    }

    /// Total writes absorbed by `bank`.
    #[inline]
    pub fn bank_writes(&self, bank: usize) -> u64 {
        self.bank_totals[bank]
    }

    /// Per-bank totals as a slice (index = bank id).
    #[inline]
    pub fn bank_totals(&self) -> &[u64] {
        &self.bank_totals
    }

    /// Total writes across all banks.
    pub fn total_writes(&self) -> u64 {
        self.bank_totals.iter().sum()
    }

    /// The most-written slot of `bank` (its count).
    pub fn max_slot_writes(&self, bank: usize) -> u64 {
        let base = bank * self.slots_per_bank;
        self.writes[base..base + self.slots_per_bank]
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Writes of an individual slot.
    #[inline]
    pub fn slot_writes(&self, bank: usize, slot: usize) -> u64 {
        self.writes[bank * self.slots_per_bank + slot]
    }

    /// Index of the bank with the fewest total writes (ties -> lowest id).
    /// This is the Naive oracle's placement rule.
    pub fn min_write_bank(&self) -> usize {
        let mut best = 0;
        let mut best_w = self.bank_totals[0];
        for (b, &w) in self.bank_totals.iter().enumerate().skip(1) {
            if w < best_w {
                best = b;
                best_w = w;
            }
        }
        best
    }

    /// Coefficient of variation (stdev / mean) of the per-set write totals
    /// over every set of every bank, with `assoc` ways per set (slot index
    /// = `set * assoc + way`). This is the *inter-set* write variation the
    /// coloring-style remaps flatten: 0 means every set absorbs the same
    /// number of writes.
    ///
    /// # Panics
    /// Panics unless `assoc` divides the slots-per-bank geometry.
    pub fn interset_cv(&self, assoc: usize) -> f64 {
        assert!(
            assoc > 0 && self.slots_per_bank % assoc == 0,
            "assoc {assoc} must divide {} slots per bank",
            self.slots_per_bank
        );
        let sets_per_bank = self.slots_per_bank / assoc;
        let mut totals = Vec::with_capacity(self.nbanks * sets_per_bank);
        for bank in 0..self.nbanks {
            for set in 0..sets_per_bank {
                let base = bank * self.slots_per_bank + set * assoc;
                totals.push(self.writes[base..base + assoc].iter().sum::<u64>() as f64);
            }
        }
        sim_stats::cv(&totals)
    }

    /// Mean, over every set that absorbed at least one write, of the
    /// coefficient of variation across that set's per-way counters — the
    /// *intra-set* write variation that write-aware replacement (MAC)
    /// flattens. 0 when no set has been written.
    ///
    /// # Panics
    /// Panics unless `assoc` divides the slots-per-bank geometry.
    pub fn intraset_cv(&self, assoc: usize) -> f64 {
        assert!(
            assoc > 0 && self.slots_per_bank % assoc == 0,
            "assoc {assoc} must divide {} slots per bank",
            self.slots_per_bank
        );
        let sets_per_bank = self.slots_per_bank / assoc;
        let mut sum = 0.0;
        let mut touched = 0usize;
        for bank in 0..self.nbanks {
            for set in 0..sets_per_bank {
                let base = bank * self.slots_per_bank + set * assoc;
                let ways: Vec<f64> = self.writes[base..base + assoc]
                    .iter()
                    .map(|&w| w as f64)
                    .collect();
                if ways.iter().any(|&w| w > 0.0) {
                    sum += sim_stats::cv(&ways);
                    touched += 1;
                }
            }
        }
        if touched == 0 {
            0.0
        } else {
            sum / touched as f64
        }
    }

    /// Reset all counters (between warm-up and measurement).
    pub fn reset(&mut self) {
        self.writes.iter_mut().for_each(|w| *w = 0);
        self.bank_totals.iter_mut().for_each(|w| *w = 0);
    }

    /// Merge another tracker of identical geometry into this one.
    ///
    /// # Panics
    /// Panics on geometry mismatch.
    pub fn merge(&mut self, other: &WearTracker) {
        assert_eq!(self.nbanks, other.nbanks, "bank count mismatch");
        assert_eq!(
            self.slots_per_bank, other.slots_per_bank,
            "slot count mismatch"
        );
        for (a, b) in self.writes.iter_mut().zip(other.writes.iter()) {
            *a += b;
        }
        for (a, b) in self.bank_totals.iter_mut().zip(other.bank_totals.iter()) {
            *a += b;
        }
    }

    /// Register the wear picture under dotted paths: `<prefix>.total_writes`,
    /// then per bank `<prefix>.bank[i].writes`,
    /// `<prefix>.bank[i].max_slot_writes` and
    /// `<prefix>.bank[i].min_endurance_frac` — the remaining endurance
    /// fraction of the bank's most-written slot under `endurance`
    /// (1.0 = pristine, 0.0 = the hottest slot is worn out), clamped to 0.
    pub fn register(
        &self,
        reg: &mut sim_stats::StatsRegistry,
        prefix: &str,
        endurance: &crate::endurance::EnduranceSpec,
    ) {
        reg.set(format!("{prefix}.total_writes"), self.total_writes());
        for b in 0..self.nbanks {
            let max_slot = self.max_slot_writes(b);
            reg.set(format!("{prefix}.bank[{b}].writes"), self.bank_writes(b));
            reg.set(format!("{prefix}.bank[{b}].max_slot_writes"), max_slot);
            let frac = (1.0 - max_slot as f64 / endurance.writes_per_cell).max(0.0);
            reg.set(format!("{prefix}.bank[{b}].min_endurance_frac"), frac);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_tracker_is_zero() {
        let t = WearTracker::new(4, 8);
        assert_eq!(t.nbanks(), 4);
        assert_eq!(t.slots_per_bank(), 8);
        assert_eq!(t.total_writes(), 0);
        assert_eq!(t.max_slot_writes(3), 0);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        WearTracker::new(0, 8);
    }

    #[test]
    fn record_and_query() {
        let mut t = WearTracker::new(2, 4);
        t.record_write(0, 1);
        t.record_write(0, 1);
        t.record_write(1, 3);
        assert_eq!(t.bank_writes(0), 2);
        assert_eq!(t.bank_writes(1), 1);
        assert_eq!(t.slot_writes(0, 1), 2);
        assert_eq!(t.slot_writes(0, 0), 0);
        assert_eq!(t.max_slot_writes(0), 2);
        assert_eq!(t.total_writes(), 3);
        assert_eq!(t.bank_totals(), &[2, 1]);
    }

    #[test]
    fn min_write_bank_prefers_lowest_id_on_tie() {
        let mut t = WearTracker::new(3, 2);
        assert_eq!(t.min_write_bank(), 0);
        t.record_write(0, 0);
        assert_eq!(t.min_write_bank(), 1);
        t.record_write(1, 0);
        t.record_write(2, 0);
        // all equal again -> bank 0
        assert_eq!(t.min_write_bank(), 0);
    }

    #[test]
    fn bank_totals_consistent_with_slots() {
        let mut t = WearTracker::new(2, 3);
        for s in 0..3 {
            for _ in 0..(s + 1) {
                t.record_write(1, s);
            }
        }
        let slot_sum: u64 = (0..3).map(|s| t.slot_writes(1, s)).sum();
        assert_eq!(slot_sum, t.bank_writes(1));
        assert_eq!(t.bank_writes(1), 6);
    }

    #[test]
    fn cv_counters_pin_exact_values() {
        // 2 banks × 4 slots, assoc 2 → sets (bank, set): (0,0) ways (3,1),
        // (0,1) untouched, (1,0) ways (2,2), (1,1) ways (0,8).
        let mut t = WearTracker::new(2, 4);
        for (slot, n) in [(0, 3u64), (1, 1)] {
            for _ in 0..n {
                t.record_write(0, slot);
            }
        }
        for (slot, n) in [(0, 2u64), (1, 2), (3, 8)] {
            for _ in 0..n {
                t.record_write(1, slot);
            }
        }
        // Set totals [4, 0, 4, 8]: mean 4, population stdev √8.
        assert_eq!(t.interset_cv(2), 8.0f64.sqrt() / 4.0);
        // Touched-set CVs: (3,1) → 0.5, (2,2) → 0, (0,8) → 1; mean 0.5.
        assert_eq!(t.intraset_cv(2), 0.5);
    }

    #[test]
    fn cv_counters_are_zero_on_a_pristine_tracker() {
        let t = WearTracker::new(2, 4);
        assert_eq!(t.interset_cv(2), 0.0);
        assert_eq!(t.intraset_cv(2), 0.0);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn cv_counters_reject_bad_assoc() {
        WearTracker::new(2, 4).interset_cv(3);
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = WearTracker::new(2, 2);
        t.record_write(0, 0);
        t.record_write(1, 1);
        t.reset();
        assert_eq!(t.total_writes(), 0);
        assert_eq!(t.slot_writes(1, 1), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = WearTracker::new(2, 2);
        let mut b = WearTracker::new(2, 2);
        a.record_write(0, 0);
        b.record_write(0, 0);
        b.record_write(1, 1);
        a.merge(&b);
        assert_eq!(a.slot_writes(0, 0), 2);
        assert_eq!(a.bank_writes(1), 1);
        assert_eq!(a.total_writes(), 3);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn merge_rejects_geometry_mismatch() {
        let mut a = WearTracker::new(2, 2);
        let b = WearTracker::new(2, 3);
        a.merge(&b);
    }
}
