//! Per-slot write counters for a banked cache.

/// Tracks every write into every physical line slot of a banked cache.
///
/// A *slot* is a (set, way) position inside one bank — the actual ReRAM
/// cells. The tracker is a dense `nbanks × slots_per_bank` array of `u64`
/// counters: for the paper's configuration (16 banks × 2 MB / 64 B = 32768
/// slots) that is 4 MB of counters, cheap enough to keep exact counts.
#[derive(Clone, Debug)]
pub struct WearTracker {
    nbanks: usize,
    slots_per_bank: usize,
    /// Row-major: `writes[bank * slots_per_bank + slot]`.
    writes: Vec<u64>,
    /// Per-bank totals, maintained incrementally (hot path reads these).
    bank_totals: Vec<u64>,
    /// Sub-blocks per slot when sub-block (compression) accounting is
    /// enabled; 0 disables it and leaves the vectors below empty.
    sb_per_slot: usize,
    /// Row-major cell counters:
    /// `subblock_writes[(bank * slots_per_bank + slot) * sb_per_slot + k]`.
    subblock_writes: Vec<u64>,
    /// Per-bank cell-write totals (sum over the bank's sub-block cells).
    sb_bank_totals: Vec<u64>,
    /// Cache-wide totals per sub-block *position* `k` — the input of
    /// [`WearTracker::subblock_cv`].
    sb_position_totals: Vec<u64>,
}

impl WearTracker {
    /// Create a tracker for `nbanks` banks of `slots_per_bank` line slots.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(nbanks: usize, slots_per_bank: usize) -> Self {
        assert!(nbanks > 0, "need at least one bank");
        assert!(slots_per_bank > 0, "need at least one slot per bank");
        WearTracker {
            nbanks,
            slots_per_bank,
            writes: vec![0; nbanks * slots_per_bank],
            bank_totals: vec![0; nbanks],
            sb_per_slot: 0,
            subblock_writes: Vec::new(),
            sb_bank_totals: Vec::new(),
            sb_position_totals: Vec::new(),
        }
    }

    /// Create a tracker that additionally counts writes per sub-block
    /// *cell*: each slot is divided into `sb_per_slot` sub-blocks and a
    /// compressed write ages only the cells its mask covers (see
    /// [`WearTracker::record_subblock_write`]). [`WearTracker::record_write`]
    /// on such a tracker charges every cell of the slot — a full-line
    /// (uncompressed) write.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn with_subblocks(nbanks: usize, slots_per_bank: usize, sb_per_slot: usize) -> Self {
        assert!(sb_per_slot > 0, "need at least one sub-block per slot");
        let mut t = WearTracker::new(nbanks, slots_per_bank);
        t.sb_per_slot = sb_per_slot;
        t.subblock_writes = vec![0; nbanks * slots_per_bank * sb_per_slot];
        t.sb_bank_totals = vec![0; nbanks];
        t.sb_position_totals = vec![0; sb_per_slot];
        t
    }

    /// Number of banks tracked.
    #[inline]
    pub fn nbanks(&self) -> usize {
        self.nbanks
    }

    /// Number of line slots per bank.
    #[inline]
    pub fn slots_per_bank(&self) -> usize {
        self.slots_per_bank
    }

    /// Record one write into `slot` of `bank`.
    ///
    /// # Panics
    /// Debug-asserts the indices; in release an out-of-range index panics via
    /// the slice bound check (a simulator bug, not a recoverable condition).
    #[inline]
    pub fn record_write(&mut self, bank: usize, slot: usize) {
        debug_assert!(bank < self.nbanks, "bank {bank} out of range");
        debug_assert!(slot < self.slots_per_bank, "slot {slot} out of range");
        self.writes[bank * self.slots_per_bank + slot] += 1;
        self.bank_totals[bank] += 1;
        if self.sb_per_slot != 0 {
            // Uncompressed full-line write: every cell of the slot ages.
            let base = (bank * self.slots_per_bank + slot) * self.sb_per_slot;
            for k in 0..self.sb_per_slot {
                self.subblock_writes[base + k] += 1;
                self.sb_position_totals[k] += 1;
            }
            self.sb_bank_totals[bank] += self.sb_per_slot as u64;
        }
    }

    /// Record one *compressed* line write into `slot` of `bank`: the line
    /// counter advances by one (exactly like [`WearTracker::record_write`])
    /// but only the sub-block cells set in `mask` age — bit `k` of `mask`
    /// is sub-block `k`. This keeps the line-level invariants (bank
    /// totals, per-slot histograms) identical to the uncompressed model
    /// while the cell counters capture the wear reduction.
    ///
    /// # Panics
    /// Panics (debug) if sub-block accounting is disabled, the indices are
    /// out of range, or `mask` addresses cells past `sb_per_slot`.
    #[inline]
    pub fn record_subblock_write(&mut self, bank: usize, slot: usize, mask: u64) {
        debug_assert!(self.sb_per_slot != 0, "sub-block accounting disabled");
        debug_assert!(bank < self.nbanks, "bank {bank} out of range");
        debug_assert!(slot < self.slots_per_bank, "slot {slot} out of range");
        debug_assert!(
            self.sb_per_slot == 64 || mask < (1u64 << self.sb_per_slot),
            "mask {mask:#x} exceeds {} sub-blocks",
            self.sb_per_slot
        );
        self.writes[bank * self.slots_per_bank + slot] += 1;
        self.bank_totals[bank] += 1;
        let base = (bank * self.slots_per_bank + slot) * self.sb_per_slot;
        let mut m = mask;
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            self.subblock_writes[base + k] += 1;
            self.sb_position_totals[k] += 1;
            m &= m - 1;
        }
        self.sb_bank_totals[bank] += mask.count_ones() as u64;
    }

    /// Sub-blocks per slot; 0 when sub-block accounting is disabled.
    #[inline]
    pub fn subblocks_per_slot(&self) -> usize {
        self.sb_per_slot
    }

    /// Cell writes of sub-block `k` of `slot` of `bank`.
    ///
    /// # Panics
    /// Panics if sub-block accounting is disabled or an index is out of
    /// range.
    #[inline]
    pub fn cell_writes(&self, bank: usize, slot: usize, k: usize) -> u64 {
        assert!(self.sb_per_slot != 0, "sub-block accounting disabled");
        assert!(k < self.sb_per_slot, "sub-block {k} out of range");
        self.subblock_writes[(bank * self.slots_per_bank + slot) * self.sb_per_slot + k]
    }

    /// Sum of cell writes over one slot's sub-blocks.
    pub fn subblock_slot_sum(&self, bank: usize, slot: usize) -> u64 {
        assert!(self.sb_per_slot != 0, "sub-block accounting disabled");
        let base = (bank * self.slots_per_bank + slot) * self.sb_per_slot;
        self.subblock_writes[base..base + self.sb_per_slot]
            .iter()
            .sum()
    }

    /// Total cell writes absorbed by `bank`.
    #[inline]
    pub fn subblock_bank_writes(&self, bank: usize) -> u64 {
        assert!(self.sb_per_slot != 0, "sub-block accounting disabled");
        self.sb_bank_totals[bank]
    }

    /// Total cell writes across all banks.
    pub fn subblock_total_writes(&self) -> u64 {
        self.sb_bank_totals.iter().sum()
    }

    /// The most-written sub-block *cell* of `bank` (its count) — the
    /// pessimistic wear-out input under compression, twin of
    /// [`WearTracker::max_slot_writes`].
    pub fn max_cell_writes(&self, bank: usize) -> u64 {
        assert!(self.sb_per_slot != 0, "sub-block accounting disabled");
        let stride = self.slots_per_bank * self.sb_per_slot;
        let base = bank * stride;
        self.subblock_writes[base..base + stride]
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Total writes absorbed by `bank`.
    #[inline]
    pub fn bank_writes(&self, bank: usize) -> u64 {
        self.bank_totals[bank]
    }

    /// Per-bank totals as a slice (index = bank id).
    #[inline]
    pub fn bank_totals(&self) -> &[u64] {
        &self.bank_totals
    }

    /// Total writes across all banks.
    pub fn total_writes(&self) -> u64 {
        self.bank_totals.iter().sum()
    }

    /// The most-written slot of `bank` (its count).
    pub fn max_slot_writes(&self, bank: usize) -> u64 {
        let base = bank * self.slots_per_bank;
        self.writes[base..base + self.slots_per_bank]
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Writes of an individual slot.
    #[inline]
    pub fn slot_writes(&self, bank: usize, slot: usize) -> u64 {
        self.writes[bank * self.slots_per_bank + slot]
    }

    /// Index of the bank with the fewest total writes (ties -> lowest id).
    /// This is the Naive oracle's placement rule.
    pub fn min_write_bank(&self) -> usize {
        let mut best = 0;
        let mut best_w = self.bank_totals[0];
        for (b, &w) in self.bank_totals.iter().enumerate().skip(1) {
            if w < best_w {
                best = b;
                best_w = w;
            }
        }
        best
    }

    /// Coefficient of variation (stdev / mean) of the per-set write totals
    /// over every set of every bank, with `assoc` ways per set (slot index
    /// = `set * assoc + way`). This is the *inter-set* write variation the
    /// coloring-style remaps flatten: 0 means every set absorbs the same
    /// number of writes.
    ///
    /// # Panics
    /// Panics unless `assoc` divides the slots-per-bank geometry.
    pub fn interset_cv(&self, assoc: usize) -> f64 {
        assert!(
            assoc > 0 && self.slots_per_bank % assoc == 0,
            "assoc {assoc} must divide {} slots per bank",
            self.slots_per_bank
        );
        let sets_per_bank = self.slots_per_bank / assoc;
        let mut totals = Vec::with_capacity(self.nbanks * sets_per_bank);
        for bank in 0..self.nbanks {
            for set in 0..sets_per_bank {
                let base = bank * self.slots_per_bank + set * assoc;
                totals.push(self.writes[base..base + assoc].iter().sum::<u64>() as f64);
            }
        }
        sim_stats::cv(&totals)
    }

    /// Mean, over every set that absorbed at least one write, of the
    /// coefficient of variation across that set's per-way counters — the
    /// *intra-set* write variation that write-aware replacement (MAC)
    /// flattens. 0 when no set has been written.
    ///
    /// # Panics
    /// Panics unless `assoc` divides the slots-per-bank geometry.
    pub fn intraset_cv(&self, assoc: usize) -> f64 {
        assert!(
            assoc > 0 && self.slots_per_bank % assoc == 0,
            "assoc {assoc} must divide {} slots per bank",
            self.slots_per_bank
        );
        let sets_per_bank = self.slots_per_bank / assoc;
        let mut sum = 0.0;
        let mut touched = 0usize;
        for bank in 0..self.nbanks {
            for set in 0..sets_per_bank {
                let base = bank * self.slots_per_bank + set * assoc;
                let ways: Vec<f64> = self.writes[base..base + assoc]
                    .iter()
                    .map(|&w| w as f64)
                    .collect();
                if ways.iter().any(|&w| w > 0.0) {
                    sum += sim_stats::cv(&ways);
                    touched += 1;
                }
            }
        }
        if touched == 0 {
            0.0
        } else {
            sum / touched as f64
        }
    }

    /// Coefficient of variation of the cache-wide totals per sub-block
    /// *position* (cell `k` summed over every slot of every bank) — the
    /// rotation-balance gauge beside [`WearTracker::interset_cv`] and
    /// [`WearTracker::intraset_cv`]: 0 means the compressed writes land
    /// evenly across the line, which is the forecast's uniform-intra-line
    /// wear assumption.
    ///
    /// # Panics
    /// Panics if sub-block accounting is disabled.
    pub fn subblock_cv(&self) -> f64 {
        assert!(self.sb_per_slot != 0, "sub-block accounting disabled");
        let totals: Vec<f64> = self.sb_position_totals.iter().map(|&w| w as f64).collect();
        sim_stats::cv(&totals)
    }

    /// Reset all counters (between warm-up and measurement).
    pub fn reset(&mut self) {
        self.writes.iter_mut().for_each(|w| *w = 0);
        self.bank_totals.iter_mut().for_each(|w| *w = 0);
        self.subblock_writes.iter_mut().for_each(|w| *w = 0);
        self.sb_bank_totals.iter_mut().for_each(|w| *w = 0);
        self.sb_position_totals.iter_mut().for_each(|w| *w = 0);
    }

    /// Merge another tracker of identical geometry into this one.
    ///
    /// # Panics
    /// Panics on geometry mismatch.
    pub fn merge(&mut self, other: &WearTracker) {
        assert_eq!(self.nbanks, other.nbanks, "bank count mismatch");
        assert_eq!(
            self.slots_per_bank, other.slots_per_bank,
            "slot count mismatch"
        );
        assert_eq!(self.sb_per_slot, other.sb_per_slot, "sub-block mismatch");
        for (a, b) in self.writes.iter_mut().zip(other.writes.iter()) {
            *a += b;
        }
        for (a, b) in self.bank_totals.iter_mut().zip(other.bank_totals.iter()) {
            *a += b;
        }
        for (a, b) in self
            .subblock_writes
            .iter_mut()
            .zip(other.subblock_writes.iter())
        {
            *a += b;
        }
        for (a, b) in self
            .sb_bank_totals
            .iter_mut()
            .zip(other.sb_bank_totals.iter())
        {
            *a += b;
        }
        for (a, b) in self
            .sb_position_totals
            .iter_mut()
            .zip(other.sb_position_totals.iter())
        {
            *a += b;
        }
    }

    /// Register the wear picture under dotted paths: `<prefix>.total_writes`,
    /// then per bank `<prefix>.bank[i].writes`,
    /// `<prefix>.bank[i].max_slot_writes` and
    /// `<prefix>.bank[i].min_endurance_frac` — the remaining endurance
    /// fraction of the bank's most-written slot under `endurance`
    /// (1.0 = pristine, 0.0 = the hottest slot is worn out), clamped to 0.
    pub fn register(
        &self,
        reg: &mut sim_stats::StatsRegistry,
        prefix: &str,
        endurance: &crate::endurance::EnduranceSpec,
    ) {
        reg.set(format!("{prefix}.total_writes"), self.total_writes());
        if self.sb_per_slot != 0 {
            reg.set(
                format!("{prefix}.subblock_total_writes"),
                self.subblock_total_writes(),
            );
        }
        for b in 0..self.nbanks {
            let max_slot = self.max_slot_writes(b);
            reg.set(format!("{prefix}.bank[{b}].writes"), self.bank_writes(b));
            reg.set(format!("{prefix}.bank[{b}].max_slot_writes"), max_slot);
            let frac = (1.0 - max_slot as f64 / endurance.writes_per_cell).max(0.0);
            reg.set(format!("{prefix}.bank[{b}].min_endurance_frac"), frac);
            if self.sb_per_slot != 0 {
                reg.set(
                    format!("{prefix}.bank[{b}].subblock_writes"),
                    self.subblock_bank_writes(b),
                );
                reg.set(
                    format!("{prefix}.bank[{b}].max_cell_writes"),
                    self.max_cell_writes(b),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_tracker_is_zero() {
        let t = WearTracker::new(4, 8);
        assert_eq!(t.nbanks(), 4);
        assert_eq!(t.slots_per_bank(), 8);
        assert_eq!(t.total_writes(), 0);
        assert_eq!(t.max_slot_writes(3), 0);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        WearTracker::new(0, 8);
    }

    #[test]
    fn record_and_query() {
        let mut t = WearTracker::new(2, 4);
        t.record_write(0, 1);
        t.record_write(0, 1);
        t.record_write(1, 3);
        assert_eq!(t.bank_writes(0), 2);
        assert_eq!(t.bank_writes(1), 1);
        assert_eq!(t.slot_writes(0, 1), 2);
        assert_eq!(t.slot_writes(0, 0), 0);
        assert_eq!(t.max_slot_writes(0), 2);
        assert_eq!(t.total_writes(), 3);
        assert_eq!(t.bank_totals(), &[2, 1]);
    }

    #[test]
    fn min_write_bank_prefers_lowest_id_on_tie() {
        let mut t = WearTracker::new(3, 2);
        assert_eq!(t.min_write_bank(), 0);
        t.record_write(0, 0);
        assert_eq!(t.min_write_bank(), 1);
        t.record_write(1, 0);
        t.record_write(2, 0);
        // all equal again -> bank 0
        assert_eq!(t.min_write_bank(), 0);
    }

    #[test]
    fn bank_totals_consistent_with_slots() {
        let mut t = WearTracker::new(2, 3);
        for s in 0..3 {
            for _ in 0..(s + 1) {
                t.record_write(1, s);
            }
        }
        let slot_sum: u64 = (0..3).map(|s| t.slot_writes(1, s)).sum();
        assert_eq!(slot_sum, t.bank_writes(1));
        assert_eq!(t.bank_writes(1), 6);
    }

    #[test]
    fn cv_counters_pin_exact_values() {
        // 2 banks × 4 slots, assoc 2 → sets (bank, set): (0,0) ways (3,1),
        // (0,1) untouched, (1,0) ways (2,2), (1,1) ways (0,8).
        let mut t = WearTracker::new(2, 4);
        for (slot, n) in [(0, 3u64), (1, 1)] {
            for _ in 0..n {
                t.record_write(0, slot);
            }
        }
        for (slot, n) in [(0, 2u64), (1, 2), (3, 8)] {
            for _ in 0..n {
                t.record_write(1, slot);
            }
        }
        // Set totals [4, 0, 4, 8]: mean 4, population stdev √8.
        assert_eq!(t.interset_cv(2), 8.0f64.sqrt() / 4.0);
        // Touched-set CVs: (3,1) → 0.5, (2,2) → 0, (0,8) → 1; mean 0.5.
        assert_eq!(t.intraset_cv(2), 0.5);
    }

    #[test]
    fn cv_counters_are_zero_on_a_pristine_tracker() {
        let t = WearTracker::new(2, 4);
        assert_eq!(t.interset_cv(2), 0.0);
        assert_eq!(t.intraset_cv(2), 0.0);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn cv_counters_reject_bad_assoc() {
        WearTracker::new(2, 4).interset_cv(3);
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = WearTracker::new(2, 2);
        t.record_write(0, 0);
        t.record_write(1, 1);
        t.reset();
        assert_eq!(t.total_writes(), 0);
        assert_eq!(t.slot_writes(1, 1), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = WearTracker::new(2, 2);
        let mut b = WearTracker::new(2, 2);
        a.record_write(0, 0);
        b.record_write(0, 0);
        b.record_write(1, 1);
        a.merge(&b);
        assert_eq!(a.slot_writes(0, 0), 2);
        assert_eq!(a.bank_writes(1), 1);
        assert_eq!(a.total_writes(), 3);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn merge_rejects_geometry_mismatch() {
        let mut a = WearTracker::new(2, 2);
        let b = WearTracker::new(2, 3);
        a.merge(&b);
    }

    #[test]
    fn subblock_writes_age_only_masked_cells() {
        let mut t = WearTracker::with_subblocks(2, 2, 4);
        t.record_subblock_write(0, 1, 0b0011); // cells 0,1
        t.record_subblock_write(0, 1, 0b1000); // cell 3
        t.record_subblock_write(1, 0, 0b0001); // cell 0
                                               // Line-level accounting is unchanged by compression.
        assert_eq!(t.slot_writes(0, 1), 2);
        assert_eq!(t.bank_totals(), &[2, 1]);
        // Cell-level accounting follows the masks.
        assert_eq!(t.cell_writes(0, 1, 0), 1);
        assert_eq!(t.cell_writes(0, 1, 1), 1);
        assert_eq!(t.cell_writes(0, 1, 2), 0);
        assert_eq!(t.cell_writes(0, 1, 3), 1);
        assert_eq!(t.subblock_slot_sum(0, 1), 3);
        assert_eq!(t.subblock_bank_writes(0), 3);
        assert_eq!(t.subblock_total_writes(), 4);
        assert_eq!(t.max_cell_writes(0), 1);
    }

    #[test]
    fn full_line_write_ages_every_cell_when_subblocks_enabled() {
        let mut t = WearTracker::with_subblocks(1, 2, 4);
        t.record_write(0, 0);
        assert_eq!(t.subblock_slot_sum(0, 0), 4);
        assert_eq!(t.slot_writes(0, 0), 1);
        for k in 0..4 {
            assert_eq!(t.cell_writes(0, 0, k), 1);
        }
    }

    #[test]
    fn subblock_cv_pins_exact_value() {
        // Position totals [3, 1, 0, 0]: mean 1, population stdev
        // √((4+0+1+1)/4) = √1.5.
        let mut t = WearTracker::with_subblocks(1, 4, 4);
        t.record_subblock_write(0, 0, 0b0001);
        t.record_subblock_write(0, 1, 0b0011);
        t.record_subblock_write(0, 2, 0b0001);
        assert_eq!(t.subblock_cv(), 1.5f64.sqrt());
        // Perfectly rotated writes flatten the gauge to 0.
        let mut u = WearTracker::with_subblocks(1, 4, 4);
        for k in 0..4u64 {
            u.record_subblock_write(0, 0, 1 << k);
        }
        assert_eq!(u.subblock_cv(), 0.0);
    }

    #[test]
    #[should_panic(expected = "sub-block accounting disabled")]
    fn subblock_cv_requires_subblock_mode() {
        WearTracker::new(1, 4).subblock_cv();
    }

    #[test]
    fn subblock_counters_survive_reset_and_merge() {
        let mut a = WearTracker::with_subblocks(1, 2, 2);
        let mut b = WearTracker::with_subblocks(1, 2, 2);
        a.record_subblock_write(0, 0, 0b01);
        b.record_subblock_write(0, 0, 0b11);
        a.merge(&b);
        assert_eq!(a.subblock_slot_sum(0, 0), 3);
        assert_eq!(a.subblock_total_writes(), 3);
        a.reset();
        assert_eq!(a.subblock_total_writes(), 0);
        assert_eq!(a.subblock_cv(), 0.0);
    }

    #[test]
    #[should_panic(expected = "sub-block mismatch")]
    fn merge_rejects_subblock_mismatch() {
        let mut a = WearTracker::with_subblocks(1, 2, 2);
        let b = WearTracker::new(1, 2);
        a.merge(&b);
    }
}
