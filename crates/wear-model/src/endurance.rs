//! ReRAM cell endurance specifications.

/// Write-endurance budget of one ReRAM cell (equivalently, of one cache-line
/// slot, since a line's cells are written together).
///
/// The paper's §V.A: *"We consider ReRAM cache line to wear out beyond 10¹¹
/// writes."* Prototype ranges cited in §II.A span 10⁹ (TaOx, Wei+ IEDM'08)
/// to 10¹¹ (Ta₂O₅₋ₓ/TaO₂₋ₓ bilayer, Lee+ Nature Materials'11).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnduranceSpec {
    /// Maximum writes before a line slot is considered worn out.
    pub writes_per_cell: f64,
}

impl EnduranceSpec {
    /// The paper's evaluation setting: 10¹¹ writes per line.
    pub const PAPER: EnduranceSpec = EnduranceSpec {
        writes_per_cell: 1e11,
    };

    /// Conservative prototype endurance: 10⁹ writes per line
    /// (Wei et al., IEDM 2008 — the paper's reference \[17\]).
    pub const CONSERVATIVE: EnduranceSpec = EnduranceSpec {
        writes_per_cell: 1e9,
    };

    /// Create a custom endurance spec.
    ///
    /// # Panics
    /// Panics if `writes_per_cell` is not strictly positive and finite: a
    /// zero or negative budget makes every lifetime query meaningless.
    pub fn new(writes_per_cell: f64) -> Self {
        assert!(
            writes_per_cell.is_finite() && writes_per_cell > 0.0,
            "endurance must be positive and finite, got {writes_per_cell}"
        );
        EnduranceSpec { writes_per_cell }
    }
}

impl Default for EnduranceSpec {
    fn default() -> Self {
        EnduranceSpec::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_1e11() {
        assert_eq!(EnduranceSpec::default().writes_per_cell, 1e11);
        assert_eq!(EnduranceSpec::PAPER.writes_per_cell, 1e11);
    }

    #[test]
    fn conservative_is_1e9() {
        assert_eq!(EnduranceSpec::CONSERVATIVE.writes_per_cell, 1e9);
    }

    #[test]
    fn custom_spec() {
        let e = EnduranceSpec::new(5e10);
        assert_eq!(e.writes_per_cell, 5e10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_endurance_rejected() {
        EnduranceSpec::new(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nan_endurance_rejected() {
        EnduranceSpec::new(f64::NAN);
    }
}
