//! ReRAM endurance accounting and lifetime extrapolation.
//!
//! The Re-NUCA paper models an L3 cache built from metal-oxide ReRAM whose
//! cells survive a bounded number of writes (10⁹ [Wei+, IEDM'08] to 10¹¹
//! [Lee+, Nature Materials'11]; the paper's evaluation uses **10¹¹**). Every
//! write into an L3 bank — a fill after an L3 miss or a writeback from a
//! private L2 — consumes endurance of the physical line slot (set, way) it
//! lands in.
//!
//! This crate provides:
//!
//! * [`WearTracker`] — per-slot write counters for a banked cache,
//! * [`EnduranceSpec`] — the cell endurance budget,
//! * [`LifetimeModel`] — extrapolation of measured write *rates* to
//!   lifetime-in-years at a given core frequency, under either a
//!   uniform-intra-bank wear assumption (the paper's: intra-bank leveling is
//!   delegated to orthogonal schemes like i2wap/EqualChance) or a
//!   pessimistic max-slot assumption (our ablation),
//! * [`metrics`] — the aggregate statistics the paper reports: per-bank
//!   harmonic-mean lifetime across workloads, raw minimum lifetime, and
//!   lifetime variation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod endurance;
pub mod energy;
pub mod lifetime;
pub mod metrics;
pub mod tracker;

pub use endurance::EnduranceSpec;
pub use energy::{EnergyBreakdown, EnergyModel};
pub use lifetime::{IntraBankWear, LifetimeModel};
pub use metrics::{
    capacity_retention, hmean_lifetime_per_bank, lifetime_variation, raw_min_lifetime,
    time_to_capacity,
};
pub use tracker::WearTracker;

/// Seconds in a (non-leap) year, used for all lifetime extrapolation.
pub const SECONDS_PER_YEAR: f64 = 365.0 * 24.0 * 3600.0;
