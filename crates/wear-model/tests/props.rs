//! Property-based tests for the wear/lifetime model.

use proptest::prelude::*;
use wear_model::{
    capacity_retention, hmean_lifetime_per_bank, raw_min_lifetime, time_to_capacity,
    EnduranceSpec, IntraBankWear, LifetimeModel, WearTracker,
};

proptest! {
    /// Lifetime is antitone in writes: more writes never lengthen life.
    #[test]
    fn lifetime_antitone_in_writes(w1 in 1u64..10_000, extra in 1u64..10_000) {
        let mut a = WearTracker::new(1, 16);
        let mut b = WearTracker::new(1, 16);
        for i in 0..w1 {
            a.record_write(0, (i % 16) as usize);
            b.record_write(0, (i % 16) as usize);
        }
        for i in 0..extra {
            b.record_write(0, (i % 16) as usize);
        }
        let m = LifetimeModel::default();
        prop_assert!(
            m.bank_lifetime_years(&b, 0, 1_000_000) <= m.bank_lifetime_years(&a, 0, 1_000_000)
        );
    }

    /// Doubling endurance doubles (uncapped) lifetimes.
    #[test]
    fn lifetime_linear_in_endurance(writes in 100u64..50_000) {
        let mut t = WearTracker::new(1, 16);
        for i in 0..writes {
            t.record_write(0, (i % 16) as usize);
        }
        let base = LifetimeModel {
            endurance: EnduranceSpec::new(1e9),
            cap_years: f64::INFINITY,
            ..LifetimeModel::default()
        };
        let double = LifetimeModel {
            endurance: EnduranceSpec::new(2e9),
            cap_years: f64::INFINITY,
            ..LifetimeModel::default()
        };
        let l1 = base.bank_lifetime_years(&t, 0, 1_000_000);
        let l2 = double.bank_lifetime_years(&t, 0, 1_000_000);
        prop_assert!((l2 / l1 - 2.0).abs() < 1e-9);
    }

    /// Max-slot lifetime never exceeds the uniform-assumption lifetime.
    #[test]
    fn max_slot_is_never_optimistic(slots in prop::collection::vec(0usize..16, 1..2_000) ) {
        let mut t = WearTracker::new(1, 16);
        for &s in &slots {
            t.record_write(0, s);
        }
        let uniform = LifetimeModel { cap_years: f64::INFINITY, ..LifetimeModel::default() };
        let maxslot = LifetimeModel {
            intra_bank: IntraBankWear::MaxSlot,
            cap_years: f64::INFINITY,
            ..LifetimeModel::default()
        };
        prop_assert!(
            maxslot.bank_lifetime_years(&t, 0, 1_000) <= uniform.bank_lifetime_years(&t, 0, 1_000) + 1e-9
        );
    }

    /// The harmonic mean per bank is bounded by each workload's value, and
    /// the raw minimum is the global floor.
    #[test]
    fn aggregate_bounds(
        data in prop::collection::vec(prop::collection::vec(0.1f64..100.0, 4), 1..10)
    ) {
        let h = hmean_lifetime_per_bank(&data);
        let raw = raw_min_lifetime(&data);
        for (b, &hb) in h.iter().enumerate() {
            let lo = data.iter().map(|w| w[b]).fold(f64::INFINITY, f64::min);
            let hi = data.iter().map(|w| w[b]).fold(0.0f64, f64::max);
            prop_assert!(hb >= lo - 1e-9 && hb <= hi + 1e-9);
            prop_assert!(raw <= hb + 1e-9);
        }
    }

    /// Retention curves are monotone non-increasing and consistent with
    /// time_to_capacity.
    #[test]
    fn retention_consistency(lifetimes in prop::collection::vec(0.1f64..50.0, 2..32)) {
        let curve = capacity_retention(&lifetimes, 60.0, 31);
        for w in curve.windows(2) {
            prop_assert!(w[1].1 <= w[0].1 + 1e-12);
        }
        prop_assert_eq!(curve[0].1, 1.0);
        // Just past the first-death point, retention is below 100%.
        let first_death = time_to_capacity(&lifetimes, 1.0);
        let after = lifetimes.iter().filter(|&&l| l > first_death + 1e-9).count();
        prop_assert!(after < lifetimes.len());
    }
}
