//! Property-based tests for the wear/lifetime model, driven by seeded
//! `sim-rng` generator loops (hermetic replacement for proptest).

use sim_rng::SimRng;
use wear_model::{
    capacity_retention, hmean_lifetime_per_bank, raw_min_lifetime, time_to_capacity, EnduranceSpec,
    IntraBankWear, LifetimeModel, WearTracker,
};

const CASES: usize = 64;

/// Lifetime is antitone in writes: more writes never lengthen life.
#[test]
fn lifetime_antitone_in_writes() {
    let mut rng = SimRng::seed_from_u64(0x3EA7_0001);
    for case in 0..CASES {
        let w1 = rng.gen_range(1..10_000);
        let extra = rng.gen_range(1..10_000);
        let mut a = WearTracker::new(1, 16);
        let mut b = WearTracker::new(1, 16);
        for i in 0..w1 {
            a.record_write(0, (i % 16) as usize);
            b.record_write(0, (i % 16) as usize);
        }
        for i in 0..extra {
            b.record_write(0, (i % 16) as usize);
        }
        let m = LifetimeModel::default();
        assert!(
            m.bank_lifetime_years(&b, 0, 1_000_000) <= m.bank_lifetime_years(&a, 0, 1_000_000),
            "case {case}: w1={w1} extra={extra}"
        );
    }
}

/// Doubling endurance doubles (uncapped) lifetimes.
#[test]
fn lifetime_linear_in_endurance() {
    let mut rng = SimRng::seed_from_u64(0x3EA7_0002);
    for case in 0..CASES {
        let writes = rng.gen_range(100..50_000);
        let mut t = WearTracker::new(1, 16);
        for i in 0..writes {
            t.record_write(0, (i % 16) as usize);
        }
        let base = LifetimeModel {
            endurance: EnduranceSpec::new(1e9),
            cap_years: f64::INFINITY,
            ..LifetimeModel::default()
        };
        let double = LifetimeModel {
            endurance: EnduranceSpec::new(2e9),
            cap_years: f64::INFINITY,
            ..LifetimeModel::default()
        };
        let l1 = base.bank_lifetime_years(&t, 0, 1_000_000);
        let l2 = double.bank_lifetime_years(&t, 0, 1_000_000);
        assert!((l2 / l1 - 2.0).abs() < 1e-9, "case {case}: writes={writes}");
    }
}

/// Max-slot lifetime never exceeds the uniform-assumption lifetime.
#[test]
fn max_slot_is_never_optimistic() {
    let mut rng = SimRng::seed_from_u64(0x3EA7_0003);
    for case in 0..CASES {
        let n = rng.gen_range_usize(1..2_000);
        let mut t = WearTracker::new(1, 16);
        for _ in 0..n {
            t.record_write(0, rng.gen_range_usize(0..16));
        }
        let uniform = LifetimeModel {
            cap_years: f64::INFINITY,
            ..LifetimeModel::default()
        };
        let maxslot = LifetimeModel {
            intra_bank: IntraBankWear::MaxSlot,
            cap_years: f64::INFINITY,
            ..LifetimeModel::default()
        };
        assert!(
            maxslot.bank_lifetime_years(&t, 0, 1_000)
                <= uniform.bank_lifetime_years(&t, 0, 1_000) + 1e-9,
            "case {case}"
        );
    }
}

/// The harmonic mean per bank is bounded by each workload's value, and
/// the raw minimum is the global floor.
#[test]
fn aggregate_bounds() {
    let mut rng = SimRng::seed_from_u64(0x3EA7_0004);
    for case in 0..CASES {
        let n_wl = rng.gen_range_usize(1..10);
        let data: Vec<Vec<f64>> = (0..n_wl)
            .map(|_| (0..4).map(|_| rng.gen_f64_range(0.1, 100.0)).collect())
            .collect();
        let h = hmean_lifetime_per_bank(&data);
        let raw = raw_min_lifetime(&data);
        for (b, &hb) in h.iter().enumerate() {
            let lo = data.iter().map(|w| w[b]).fold(f64::INFINITY, f64::min);
            let hi = data.iter().map(|w| w[b]).fold(0.0f64, f64::max);
            assert!(hb >= lo - 1e-9 && hb <= hi + 1e-9, "case {case}: bank {b}");
            assert!(raw <= hb + 1e-9, "case {case}: bank {b}");
        }
    }
}

/// Retention curves are monotone non-increasing and consistent with
/// time_to_capacity.
#[test]
fn retention_consistency() {
    let mut rng = SimRng::seed_from_u64(0x3EA7_0005);
    for case in 0..CASES {
        let n = rng.gen_range_usize(2..32);
        let lifetimes: Vec<f64> = (0..n).map(|_| rng.gen_f64_range(0.1, 50.0)).collect();
        let curve = capacity_retention(&lifetimes, 60.0, 31);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12, "case {case}");
        }
        assert_eq!(curve[0].1, 1.0, "case {case}");
        // Just past the first-death point, retention is below 100%.
        let first_death = time_to_capacity(&lifetimes, 1.0);
        let after = lifetimes
            .iter()
            .filter(|&&l| l > first_death + 1e-9)
            .count();
        assert!(after < lifetimes.len(), "case {case}");
    }
}
