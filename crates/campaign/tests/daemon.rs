//! End-to-end tests for `campaignd`: report parity with the CLI path,
//! SIGKILL-and-restart recovery of the real binary, deterministic BUSY
//! backpressure, multi-tenant isolation, and wire-level order errors.

use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use campaign::scheduler::{self, RunOptions};
use campaign::serve::frame::{decode_frame, encode_frame, Decoded, MSG_STATUS};
use campaign::serve::proto::ErrorCode;
use campaign::serve::{Client, Daemon, DaemonConfig, Event, Msg};
use campaign::CampaignSpec;

/// 1 threshold × 2 schemes × 2 mixes on the small machine = 4 jobs.
const SPEC: &str = "\
renuca-campaign-v1
name served
config small 4
budget warmup=50 measure=300
schemes S-NUCA Re-NUCA
workloads 1 2
thresholds 25
retries 1
backoff-ms 1
";

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("campaignd-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn rename(spec: &str, name: &str) -> String {
    spec.replace("name served", &format!("name {name}"))
}

/// Run the CLI/scheduler path to completion and return the report bytes.
fn baseline(spec_text: &str) -> Vec<u8> {
    let spec = CampaignSpec::parse(spec_text).unwrap();
    let dir = tmp(&format!("baseline-{}", spec.name));
    let outcome = scheduler::run(
        &spec,
        &dir,
        RunOptions {
            threads: 2,
            ..RunOptions::default()
        },
    )
    .unwrap();
    let bytes = fs::read(outcome.report.expect("baseline completes")).unwrap();
    fs::remove_dir_all(&dir).unwrap();
    bytes
}

/// Start an in-process daemon; returns (addr, shutdown flag, join handle).
fn start_daemon(
    config: DaemonConfig,
) -> (
    String,
    Arc<AtomicBool>,
    std::thread::JoinHandle<Result<(), String>>,
) {
    let daemon = Daemon::bind("127.0.0.1:0", config).unwrap();
    let addr = daemon.local_addr().unwrap().to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let handle = std::thread::spawn(move || daemon.run(flag));
    (addr, shutdown, handle)
}

fn stop_daemon(shutdown: &Arc<AtomicBool>, handle: std::thread::JoinHandle<Result<(), String>>) {
    shutdown.store(true, Ordering::SeqCst);
    handle.join().unwrap().unwrap();
}

/// Submit through the daemon, stream events to completion, and require
/// the report to be byte-identical to the scheduler/CLI path.
#[test]
fn daemon_report_matches_cli_report() {
    let spec_text = rename(SPEC, "parity");
    let expected = baseline(&spec_text);

    let root = tmp("parity-root");
    let mut config = DaemonConfig::for_root(root.clone());
    config.workers = 2;
    let (addr, shutdown, handle) = start_daemon(config);

    let mut client = Client::connect(&addr, "alice").unwrap();
    let (campaigns, _) = client.subscribe(None).unwrap();
    assert!(campaigns.is_empty(), "fresh root has no campaigns");
    match client.submit(&spec_text).unwrap() {
        Msg::Submitted {
            campaign,
            grid,
            pending,
            report,
            ..
        } => {
            assert_eq!(campaign, "parity");
            assert_eq!((grid, pending, report), (4, 4, false));
        }
        other => panic!("unexpected submit reply: {other:?}"),
    }

    let mut done = 0;
    loop {
        match client.next_event().unwrap() {
            Event::JobDone { campaign, .. } => {
                assert_eq!(campaign, "parity");
                done += 1;
            }
            Event::JobQuarantined { id, .. } => panic!("unexpected quarantine of {id}"),
            Event::CampaignComplete {
                campaign,
                completed,
                quarantined,
                report,
            } => {
                assert_eq!(campaign, "parity");
                assert_eq!((completed, quarantined), (4, 0));
                assert_eq!(report, "report.json");
                break;
            }
        }
    }
    assert_eq!(done, 4, "one job-done event per grid cell");

    let produced = fs::read(root.join("alice/parity/report.json")).unwrap();
    assert_eq!(produced, expected, "daemon report must match the CLI path");

    // Status reflects completion; re-submit of the same spec is an
    // idempotent acknowledgement, not a new campaign.
    let (campaigns, quarantines) = client.status(Some("parity")).unwrap();
    assert_eq!(campaigns.len(), 1);
    let c = &campaigns[0];
    assert_eq!((c.done, c.grid, c.pending, c.report), (4, 4, 0, true));
    assert!(quarantines.is_empty());
    match client.submit(&spec_text).unwrap() {
        Msg::Submitted {
            pending, report, ..
        } => assert_eq!((pending, report), (0, true)),
        other => panic!("unexpected re-submit reply: {other:?}"),
    }

    stop_daemon(&shutdown, handle);
    fs::remove_dir_all(&root).unwrap();
}

/// Quarantined jobs flow through events and the daemon status reply with
/// ids and panic payloads.
#[test]
fn daemon_surfaces_quarantines_in_status() {
    let spec_text = format!("{}inject-fail 2 5\n", rename(SPEC, "qtest"));
    let root = tmp("quarantine-root");
    let mut config = DaemonConfig::for_root(root.clone());
    config.workers = 2;
    let (addr, shutdown, handle) = start_daemon(config);

    let mut client = Client::connect(&addr, "alice").unwrap();
    client.subscribe(None).unwrap();
    client.submit(&spec_text).unwrap();
    let mut quarantined = 0;
    loop {
        match client.next_event().unwrap() {
            Event::JobQuarantined { payload, .. } => {
                assert!(payload.contains("injected failure: wl=2"), "{payload}");
                quarantined += 1;
            }
            Event::CampaignComplete {
                completed,
                quarantined: q,
                ..
            } => {
                assert_eq!((completed, q), (2, 2));
                break;
            }
            Event::JobDone { .. } => {}
        }
    }
    assert_eq!(quarantined, 2);

    let (_, quarantines) = client.status(Some("qtest")).unwrap();
    assert_eq!(quarantines.len(), 2);
    for q in &quarantines {
        assert!(q.id.starts_with('j') && q.id.len() == 17, "{:?}", q.id);
        assert_eq!(q.attempts, 2);
        assert!(
            q.payload.contains("injected failure: wl=2"),
            "{}",
            q.payload
        );
    }

    stop_daemon(&shutdown, handle);
    fs::remove_dir_all(&root).unwrap();
}

/// Admission control under saturation: with zero workers nothing drains,
/// so bounds are hit deterministically. The daemon must answer BUSY —
/// never drop the submission silently, never wedge the connection.
#[test]
fn saturated_daemon_replies_busy_and_stays_live() {
    let root = tmp("busy-root");
    let mut config = DaemonConfig::for_root(root.clone());
    config.workers = 0; // accept-only drain mode
    config.max_pending_jobs = 10;
    config.max_pending_per_tenant = 4;
    let (addr, shutdown, handle) = start_daemon(config);

    let mut alice = Client::connect(&addr, "alice").unwrap();
    // 4 jobs fit exactly into alice's quota.
    match alice.submit(&rename(SPEC, "fill")).unwrap() {
        Msg::Submitted { pending, .. } => assert_eq!(pending, 4),
        other => panic!("first submit must be admitted: {other:?}"),
    }
    // A second campaign would exceed the per-tenant quota (global still
    // has room: 8 ≤ 10).
    match alice.submit(&rename(SPEC, "over-tenant")).unwrap() {
        Msg::Busy { reason, retry_ms } => {
            assert_eq!(reason, "tenant-quota");
            assert!(retry_ms > 0);
        }
        other => panic!("expected tenant-quota busy: {other:?}"),
    }
    // A second tenant still fits (global 8 ≤ 10)...
    let mut bob = Client::connect(&addr, "bob").unwrap();
    match bob.submit(&rename(SPEC, "bob-fill")).unwrap() {
        Msg::Submitted { pending, .. } => assert_eq!(pending, 4),
        other => panic!("bob's first submit must be admitted: {other:?}"),
    }
    // ...but a third tenant trips the global bound (8 + 4 > 10).
    let mut carol = Client::connect(&addr, "carol").unwrap();
    match carol.submit(&rename(SPEC, "over-global")).unwrap() {
        Msg::Busy { reason, .. } => assert_eq!(reason, "queue-full"),
        other => panic!("expected queue-full busy: {other:?}"),
    }
    // BUSY left no state behind: nothing on disk, nothing queued.
    assert!(!root.join("alice/over-tenant").exists());
    assert!(!root.join("carol/over-global").exists());

    // The refused connections are still fully usable.
    alice.ping(1).unwrap();
    bob.ping(2).unwrap();
    let (campaigns, _) = alice.status(None).unwrap();
    assert_eq!(campaigns.len(), 1, "only the admitted campaign exists");
    // Re-submitting the admitted campaign is still an idempotent ack.
    match alice.submit(&rename(SPEC, "fill")).unwrap() {
        Msg::Submitted { pending, .. } => assert_eq!(pending, 4),
        other => panic!("re-submit of admitted campaign: {other:?}"),
    }

    stop_daemon(&shutdown, handle);
    fs::remove_dir_all(&root).unwrap();
}

/// Two tenants' campaigns both run to completion and land in separate
/// state directories; neither sees the other's campaigns or events.
#[test]
fn tenants_are_isolated() {
    let root = tmp("isolation-root");
    let mut config = DaemonConfig::for_root(root.clone());
    config.workers = 2;
    let (addr, shutdown, handle) = start_daemon(config);

    let mut alice = Client::connect(&addr, "alice").unwrap();
    let mut bob = Client::connect(&addr, "bob").unwrap();
    alice.subscribe(None).unwrap();
    bob.subscribe(None).unwrap();
    alice.submit(&rename(SPEC, "mine")).unwrap();
    bob.submit(&rename(SPEC, "theirs")).unwrap();

    for (client, own) in [(&mut alice, "mine"), (&mut bob, "theirs")] {
        loop {
            match client.next_event().unwrap() {
                Event::CampaignComplete { campaign, .. } => {
                    assert_eq!(campaign, own, "event leaked across tenants");
                    break;
                }
                Event::JobDone { campaign, .. } => assert_eq!(campaign, own),
                Event::JobQuarantined { id, .. } => panic!("unexpected quarantine {id}"),
            }
        }
        let (campaigns, _) = client.status(None).unwrap();
        assert_eq!(campaigns.len(), 1, "status must not leak across tenants");
        assert_eq!(campaigns[0].name, own);
    }
    assert!(root.join("alice/mine/report.json").exists());
    assert!(root.join("bob/theirs/report.json").exists());

    stop_daemon(&shutdown, handle);
    fs::remove_dir_all(&root).unwrap();
}

/// Wire discipline: a request before `hello` is an `E_ORDER` error and
/// the daemon closes the connection.
#[test]
fn request_before_hello_is_an_order_error() {
    let root = tmp("order-root");
    let mut config = DaemonConfig::for_root(root.clone());
    config.workers = 0;
    let (addr, shutdown, handle) = start_daemon(config);

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .write_all(&encode_frame(MSG_STATUS, "status"))
        .unwrap();
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).unwrap(); // daemon replies then closes
    match decode_frame(&buf) {
        Decoded::Frame {
            msg_type, payload, ..
        } => match Msg::decode(msg_type, &payload) {
            Some(Msg::Error { code, .. }) => assert_eq!(code, ErrorCode::Order),
            other => panic!("expected E_ORDER, got {other:?}"),
        },
        other => panic!("expected an error frame, got {other:?}"),
    }

    stop_daemon(&shutdown, handle);
    fs::remove_dir_all(&root).unwrap();
}

/// The headline durability property, against the real binary: SIGKILL
/// `campaignd` mid-campaign, start a fresh daemon on the same root, and
/// the finished report is byte-identical to an uninterrupted CLI run.
#[test]
fn sigkill_daemon_mid_campaign_then_restart_resumes() {
    use std::process::{Command, Stdio};

    let spec_text = rename(SPEC, "survivor");
    let expected = baseline(&spec_text);
    let root = tmp("sigkill-root");
    let bin = env!("CARGO_BIN_EXE_campaignd");

    let spawn = |root: &Path| -> (std::process::Child, String) {
        let mut child = Command::new(bin)
            .args(["--listen", "127.0.0.1:0", "--workers", "1", "--root"])
            .arg(root)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        let mut line = String::new();
        BufReader::new(child.stdout.take().unwrap())
            .read_line(&mut line)
            .unwrap();
        // "campaignd listening on <addr> (root ..., workers ...)"
        let addr = line
            .split_whitespace()
            .nth(3)
            .unwrap_or_else(|| panic!("unparseable banner {line:?}"))
            .to_string();
        (child, addr)
    };

    let (mut child, addr) = spawn(&root);
    let mut client = Client::connect_retry(&addr, "alice", Duration::from_secs(10)).unwrap();
    client.submit(&spec_text).unwrap();
    // Wait for *some* progress so the kill lands mid-campaign, then
    // SIGKILL without warning. Correctness must not depend on where it
    // lands — the journal's torn-tail repair covers every byte offset.
    let start = Instant::now();
    loop {
        let (campaigns, _) = client.status(Some("survivor")).unwrap();
        if campaigns[0].done >= 1 {
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "no progress before kill"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().unwrap(); // SIGKILL on unix
    child.wait().unwrap();
    drop(client);

    // A fresh daemon on the same root recovers the campaign with no
    // client involvement and runs it to completion.
    let (mut child, addr) = spawn(&root);
    let mut client = Client::connect_retry(&addr, "alice", Duration::from_secs(10)).unwrap();
    let start = Instant::now();
    loop {
        let (campaigns, quarantines) = client.status(Some("survivor")).unwrap();
        assert!(quarantines.is_empty());
        if campaigns[0].report {
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(120),
            "recovered campaign did not finish"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().unwrap();
    child.wait().unwrap();

    let produced = fs::read(root.join("alice/survivor/report.json")).unwrap();
    assert_eq!(
        produced, expected,
        "post-crash report must be byte-identical to the uninterrupted run"
    );
    fs::remove_dir_all(&root).unwrap();
}
