//! The docs-lockstep test: the hex dumps committed in
//! `docs/protocol.md` §8 must decode to exactly the messages the
//! document describes and re-encode to exactly the committed bytes —
//! so neither the codec nor the document can drift alone. The second
//! half is the malformed/truncated-frame fuzz loop the protocol's
//! "no resync" rule (§2) demands: no input, however mangled, may panic
//! the decoder or be mistaken for a valid frame.

use campaign::serve::frame::{
    decode_frame, encode_frame, Decoded, ALL_TYPES, HEADER_LEN, MAX_PAYLOAD, MSG_HELLO,
    MSG_HELLO_OK, PROTO_ID,
};
use campaign::serve::proto::Msg;

/// `docs/protocol.md` §8, frame 1: `MSG_HELLO` from tenant `alice`.
const HELLO_FRAME: &[u8] = &[
    0x52, 0x4e, 0x43, 0x44, 0x01, 0x2c, 0x00, 0x00, 0x00, 0x13, 0xd9, 0x8d, 0xe5, 0x68, 0x65, 0x6c,
    0x6c, 0x6f, 0x20, 0x70, 0x72, 0x6f, 0x74, 0x6f, 0x3d, 0x72, 0x65, 0x6e, 0x75, 0x63, 0x61, 0x2d,
    0x63, 0x61, 0x6d, 0x70, 0x61, 0x69, 0x67, 0x6e, 0x64, 0x2d, 0x76, 0x31, 0x20, 0x74, 0x65, 0x6e,
    0x61, 0x6e, 0x74, 0x3d, 0x61, 0x6c, 0x69, 0x63, 0x65,
];

/// `docs/protocol.md` §8, frame 2: the daemon's `MSG_HELLO_OK`.
const HELLO_OK_FRAME: &[u8] = &[
    0x52, 0x4e, 0x43, 0x44, 0x81, 0x22, 0x00, 0x00, 0x00, 0x85, 0xde, 0x9a, 0xbc, 0x68, 0x65, 0x6c,
    0x6c, 0x6f, 0x2d, 0x6f, 0x6b, 0x20, 0x70, 0x72, 0x6f, 0x74, 0x6f, 0x3d, 0x72, 0x65, 0x6e, 0x75,
    0x63, 0x61, 0x2d, 0x63, 0x61, 0x6d, 0x70, 0x61, 0x69, 0x67, 0x6e, 0x64, 0x2d, 0x76, 0x31,
];

#[test]
fn documented_hello_frame_decodes_and_reencodes() {
    assert_eq!(HELLO_FRAME.len(), 57, "docs say the frame is 57 bytes");
    let Decoded::Frame {
        msg_type,
        payload,
        consumed,
    } = decode_frame(HELLO_FRAME)
    else {
        panic!("committed hello frame must decode");
    };
    assert_eq!(msg_type, MSG_HELLO);
    assert_eq!(consumed, HELLO_FRAME.len());
    assert_eq!(payload, format!("hello proto={PROTO_ID} tenant=alice"));
    let msg = Msg::decode(msg_type, &payload).expect("grammar accepts the documented payload");
    assert_eq!(
        msg,
        Msg::Hello {
            proto: PROTO_ID.to_string(),
            tenant: "alice".to_string(),
        }
    );
    let (t, p) = msg.encode();
    assert_eq!(encode_frame(t, &p), HELLO_FRAME, "re-encode is byte-exact");
}

#[test]
fn documented_hello_ok_frame_decodes_and_reencodes() {
    let Decoded::Frame {
        msg_type,
        payload,
        consumed,
    } = decode_frame(HELLO_OK_FRAME)
    else {
        panic!("committed hello-ok frame must decode");
    };
    assert_eq!(msg_type, MSG_HELLO_OK);
    assert_eq!(consumed, HELLO_OK_FRAME.len());
    assert_eq!(payload.len(), 34, "docs say the payload is 34 bytes");
    let msg = Msg::decode(msg_type, &payload).expect("grammar accepts the documented payload");
    assert_eq!(
        msg,
        Msg::HelloOk {
            proto: PROTO_ID.to_string(),
        }
    );
    let (t, p) = msg.encode();
    assert_eq!(encode_frame(t, &p), HELLO_OK_FRAME);
}

/// Tiny deterministic generator (xorshift64*) so the fuzz loop needs no
/// dev-dependency and reproduces exactly across runs.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

/// Random garbage must never decode as a frame payload that a valid
/// encoder could not have produced, and must never panic the decoder.
/// (A 13+-byte random buffer that happens to start with the magic and
/// pass CRC has probability ~2^-32 per trial; with 20k trials and a
/// fixed seed this is deterministic anyway.)
#[test]
fn decoder_survives_random_garbage() {
    let mut gen = Gen(0x00c0_ffee_d00d_f00d);
    for _ in 0..20_000 {
        let len = gen.below(64);
        let buf: Vec<u8> = (0..len).map(|_| gen.next() as u8).collect();
        match decode_frame(&buf) {
            Decoded::Frame { consumed, .. } => {
                assert!(consumed <= buf.len());
            }
            Decoded::Incomplete { need } => {
                // `need` must be a genuine lower bound: a frame never
                // completes in fewer bytes than the header promises.
                assert!(need > 0);
            }
            Decoded::Corrupt(_) => {}
        }
    }
}

/// Every truncation of every valid frame is `Incomplete` with an exact
/// byte count — never `Corrupt`, never a short parse.
#[test]
fn every_truncation_of_valid_frames_is_incomplete() {
    for &t in &ALL_TYPES {
        let frame = encode_frame(t, "payload with spaces\nand a second line");
        for cut in 0..frame.len() {
            match decode_frame(&frame[..cut]) {
                Decoded::Incomplete { need } => {
                    // `need` is the total frame size: a lower bound
                    // (HEADER_LEN) until the length field is readable,
                    // exact from then on.
                    assert!(need > cut, "type 0x{t:02x} cut at {cut}");
                    assert!(need <= frame.len(), "type 0x{t:02x} cut at {cut}");
                    if cut >= 9 {
                        assert_eq!(need, frame.len(), "type 0x{t:02x} cut at {cut}");
                    }
                }
                other => panic!("type 0x{t:02x} cut at {cut}: {other:?}"),
            }
        }
    }
}

/// Single-bit corruption anywhere in a frame must be detected (or, for
/// bits in the length field, at worst turn into `Incomplete`/`Oversize`
/// — never a successfully decoded different message).
#[test]
fn single_bit_flips_never_yield_a_different_valid_frame() {
    let frame = encode_frame(MSG_HELLO, "hello proto=renuca-campaignd-v1 tenant=alice");
    for byte in 0..frame.len() {
        for bit in 0..8 {
            let mut mutated = frame.clone();
            mutated[byte] ^= 1 << bit;
            match decode_frame(&mutated) {
                Decoded::Frame { payload, .. } => {
                    panic!("bit {bit} of byte {byte}: corrupt frame decoded as {payload:?}")
                }
                Decoded::Incomplete { .. } | Decoded::Corrupt(_) => {}
            }
        }
    }
}

/// The length bound is enforced before the CRC is even computed.
#[test]
fn oversize_length_is_rejected() {
    let mut frame = encode_frame(MSG_HELLO, "x");
    let bad_len = (MAX_PAYLOAD as u32 + 1).to_le_bytes();
    frame[5..9].copy_from_slice(&bad_len);
    assert!(matches!(decode_frame(&frame), Decoded::Corrupt(_)));
    assert!(frame.len() >= HEADER_LEN);
}
