//! End-to-end durability tests for the campaign subsystem: journal
//! truncation at every boundary and mid-record, `--max-jobs` simulated
//! crashes, real SIGKILL of the `campaign` binary, shard merging, and
//! retry/quarantine behaviour — all pinned to the invariant that the
//! final `report.json` is byte-identical to an uninterrupted run.

use std::fs;
use std::path::{Path, PathBuf};

use campaign::scheduler::{self, RunOptions};
use campaign::{report, CampaignSpec};

/// Tiny but non-degenerate campaign: 1 threshold × 2 schemes × 2 mixes
/// on the 4-core machine = 4 jobs, each a few hundred instructions.
const SPEC: &str = "\
renuca-campaign-v1
name crashkit
config small 4
budget warmup=50 measure=300
schemes S-NUCA Re-NUCA
workloads 1 2
thresholds 25
retries 1
backoff-ms 1
";

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("campaign-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(threads: usize) -> RunOptions {
    RunOptions {
        threads,
        ..RunOptions::default()
    }
}

/// Run `spec` to completion in a fresh dir and return the report bytes.
fn baseline(spec: &CampaignSpec, dir: &Path) -> Vec<u8> {
    let outcome = scheduler::run(spec, dir, opts(2)).unwrap();
    assert!(!outcome.stopped_early);
    let path = outcome.report.expect("uninterrupted run writes the report");
    fs::read(path).unwrap()
}

#[test]
fn uninterrupted_run_is_idempotent_and_verifiable() {
    let spec = CampaignSpec::parse(SPEC).unwrap();
    let dir = tmp("plain");
    let bytes = baseline(&spec, &dir);
    assert!(bytes.starts_with(b"{\"schema\":\"renuca-campaign-report-v1\""));

    let v = report::verify(&spec, &dir).unwrap();
    assert_eq!(v.manifests_checked, 4);
    assert_eq!(v.quarantined, 0);

    // A second run does no work and reproduces the same bytes.
    let again = scheduler::run(&spec, &dir, opts(2)).unwrap();
    assert_eq!(again.executed, 0);
    assert_eq!(again.skipped, 4);
    assert_eq!(fs::read(dir.join("report.json")).unwrap(), bytes);

    let s = scheduler::status(&spec, &dir).unwrap();
    assert_eq!((s.done, s.grid), (4, 4));
    assert!(s.report_exists);
    fs::remove_dir_all(&dir).unwrap();
}

/// The tentpole property: truncate the journal at *every* record boundary
/// and in the middle of every record, resume, and the final aggregate is
/// byte-identical to the uninterrupted run.
#[test]
fn journal_truncation_resumes_to_identical_report() {
    let spec = CampaignSpec::parse(SPEC).unwrap();
    let full_dir = tmp("trunc-full");
    let expected = baseline(&spec, &full_dir);
    let journal_name = "journal-shard-0-of-1.log";
    let journal = fs::read(full_dir.join(journal_name)).unwrap();
    let manifests: Vec<(String, Vec<u8>)> = fs::read_dir(full_dir.join("jobs"))
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    assert_eq!(manifests.len(), 4);

    // Cut points: 0, every line boundary, and the midpoint of every line.
    let mut cuts = vec![0usize];
    let mut start = 0;
    for (i, b) in journal.iter().enumerate() {
        if *b == b'\n' {
            cuts.push(start + (i - start) / 2); // mid-record
            cuts.push(i + 1); // boundary
            start = i + 1;
        }
    }
    assert!(cuts.len() >= 10, "expected a multi-record journal");

    let dir = tmp("trunc-resume");
    for &cut in &cuts {
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("jobs")).unwrap();
        for (name, bytes) in &manifests {
            fs::write(dir.join("jobs").join(name), bytes).unwrap();
        }
        fs::write(dir.join(journal_name), &journal[..cut]).unwrap();

        let outcome = scheduler::run(&spec, &dir, opts(2))
            .unwrap_or_else(|e| panic!("resume after cut at byte {cut}: {e}"));
        let path = outcome.report.expect("resume completes the grid");
        assert_eq!(
            fs::read(path).unwrap(),
            expected,
            "report differs after truncation at byte {cut}"
        );
        report::verify(&spec, &dir).unwrap();
    }
    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&full_dir).unwrap();
}

/// `--max-jobs` stops scheduling mid-campaign (no report), and the next
/// invocation finishes with byte-identical output.
#[test]
fn max_jobs_crash_then_resume() {
    let spec = CampaignSpec::parse(SPEC).unwrap();
    let full_dir = tmp("maxjobs-full");
    let expected = baseline(&spec, &full_dir);

    let dir = tmp("maxjobs");
    let crashed = scheduler::run(
        &spec,
        &dir,
        RunOptions {
            threads: 1,
            max_jobs: Some(1),
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert!(crashed.stopped_early);
    assert!(crashed.report.is_none());
    assert!(!dir.join("report.json").exists());
    assert_eq!(crashed.executed, 1);

    let resumed = scheduler::run(&spec, &dir, opts(2)).unwrap();
    assert_eq!(resumed.skipped, 1);
    assert_eq!(resumed.executed, 3);
    let path = resumed.report.expect("resume finishes the grid");
    assert_eq!(fs::read(path).unwrap(), expected);
    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&full_dir).unwrap();
}

/// Shard 0/2 and 1/2 into the same out dir merge to exactly the report an
/// unsharded run produces.
#[test]
fn shards_merge_to_unsharded_report() {
    let spec = CampaignSpec::parse(SPEC).unwrap();
    let full_dir = tmp("shard-full");
    let expected = baseline(&spec, &full_dir);

    let dir = tmp("shard");
    let shard0 = scheduler::run(
        &spec,
        &dir,
        RunOptions {
            shard_index: 0,
            shard_count: 2,
            threads: 2,
            max_jobs: None,
        },
    )
    .unwrap();
    assert_eq!(shard0.executed, 2);
    assert!(shard0.report.is_none(), "half a grid is not a campaign");

    let shard1 = scheduler::run(
        &spec,
        &dir,
        RunOptions {
            shard_index: 1,
            shard_count: 2,
            threads: 2,
            max_jobs: None,
        },
    )
    .unwrap();
    assert_eq!(shard1.executed, 2);
    let path = shard1.report.expect("last shard writes the report");
    assert_eq!(fs::read(path).unwrap(), expected);
    report::verify(&spec, &dir).unwrap();
    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&full_dir).unwrap();
}

/// Injected failures exercise retry (transient) and quarantine (sticky),
/// and a quarantined job surfaces in the report instead of wedging the
/// campaign.
#[test]
fn retries_recover_and_quarantine_reports() {
    let spec_text = format!("{SPEC}inject-fail 1 1\ninject-fail 2 5\n");
    let spec = CampaignSpec::parse(&spec_text).unwrap();
    let dir = tmp("quarantine");
    let outcome = scheduler::run(&spec, &dir, opts(2)).unwrap();
    // WL1 jobs fail once then succeed on retry; WL2 jobs exhaust their two
    // attempts and land in quarantine.
    assert_eq!(outcome.executed, 2);
    assert_eq!(outcome.quarantined, 2);
    let path = outcome.report.expect("quarantine still covers the grid");
    let text = fs::read_to_string(path).unwrap();
    assert!(text.contains("\"completed\":2"), "{text}");
    assert!(text.contains("\"missing_workloads\":[2]"), "{text}");
    assert!(text.contains("injected failure: wl=2"), "{text}");

    let s = scheduler::status(&spec, &dir).unwrap();
    assert_eq!(s.quarantined.len(), 2);
    // 2 WL1 retries + 2×2 WL2 attempts.
    assert_eq!(s.failed_attempts, 6);
    let v = report::verify(&spec, &dir).unwrap();
    assert_eq!((v.manifests_checked, v.quarantined), (2, 2));
    fs::remove_dir_all(&dir).unwrap();
}

/// Editing the spec under a live campaign is refused, not papered over.
#[test]
fn spec_revision_mismatch_is_refused() {
    let spec = CampaignSpec::parse(SPEC).unwrap();
    let dir = tmp("fingerprint");
    baseline(&spec, &dir);
    let edited = CampaignSpec::parse(&SPEC.replace("measure=300", "measure=301")).unwrap();
    let err = scheduler::run(&edited, &dir, opts(1)).unwrap_err();
    assert!(err.contains("different campaign or spec revision"), "{err}");
    fs::remove_dir_all(&dir).unwrap();
}

/// `verify` catches bit-rot in both job manifests and the final report.
#[test]
fn verify_detects_corruption() {
    let spec = CampaignSpec::parse(SPEC).unwrap();
    let dir = tmp("verify");
    baseline(&spec, &dir);

    let manifest = fs::read_dir(dir.join("jobs"))
        .unwrap()
        .next()
        .unwrap()
        .unwrap()
        .path();
    let good = fs::read(&manifest).unwrap();
    let mut bad = good.clone();
    *bad.last_mut().unwrap() ^= 1;
    fs::write(&manifest, &bad).unwrap();
    let err = report::verify(&spec, &dir).unwrap_err();
    assert!(err.contains("fingerprint"), "{err}");
    fs::write(&manifest, &good).unwrap();

    let report_path = dir.join("report.json");
    let good_report = fs::read(&report_path).unwrap();
    fs::write(&report_path, b"{}\n").unwrap();
    let err = report::verify(&spec, &dir).unwrap_err();
    assert!(err.contains("re-aggregation"), "{err}");
    fs::write(&report_path, &good_report).unwrap();
    report::verify(&spec, &dir).unwrap();
    fs::remove_dir_all(&dir).unwrap();
}

/// Kill the real `campaign` binary with SIGKILL mid-run, resume it, and
/// the report must match an uninterrupted in-process run byte-for-byte.
#[test]
fn sigkill_mid_run_then_resume_binary() {
    use std::process::{Command, Stdio};

    let spec = CampaignSpec::parse(SPEC).unwrap();
    let full_dir = tmp("sigkill-full");
    let expected = baseline(&spec, &full_dir);

    let dir = tmp("sigkill");
    let spec_file = tmp("sigkill-spec").with_extension("campaign");
    fs::write(&spec_file, SPEC).unwrap();
    let bin = env!("CARGO_BIN_EXE_campaign");

    let mut child = Command::new(bin)
        .args(["run"])
        .arg(&spec_file)
        .arg("--out")
        .arg(&dir)
        .args(["--threads", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    // Land somewhere inside the run if we can; correctness must not depend
    // on where (or whether) the kill hits.
    std::thread::sleep(std::time::Duration::from_millis(30));
    let _ = child.kill(); // SIGKILL on unix
    let _ = child.wait();

    let status = Command::new(bin)
        .args(["resume"])
        .arg(&spec_file)
        .arg("--out")
        .arg(&dir)
        .status()
        .unwrap();
    assert!(status.success(), "resume failed: {status:?}");
    assert_eq!(fs::read(dir.join("report.json")).unwrap(), expected);

    let status = Command::new(bin)
        .args(["verify"])
        .arg(&spec_file)
        .arg("--out")
        .arg(&dir)
        .status()
        .unwrap();
    assert!(status.success(), "verify failed: {status:?}");
    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&full_dir).unwrap();
    fs::remove_file(&spec_file).unwrap();
}

/// `resume` on an empty out dir is an error; `run` is the way to start.
#[test]
fn resume_refuses_fresh_out_dir() {
    use std::process::Command;
    let dir = tmp("resume-fresh");
    let spec_file = tmp("resume-fresh-spec").with_extension("campaign");
    fs::write(&spec_file, SPEC).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args(["resume"])
        .arg(&spec_file)
        .arg("--out")
        .arg(&dir)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("nothing to resume"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    fs::remove_file(&spec_file).unwrap();
}
