//! Campaign aggregation: merge per-job `renuca-manifest-v1` files into one
//! `renuca-campaign-report-v1` document, and verify a finished campaign.
//!
//! The report is a pure function of the spec and the job manifests, walked
//! in grid order. It carries no timestamps, attempt counts, shard layout or
//! journal details, so the same completed campaign renders byte-identical
//! bytes no matter how many crashes, resumes or shards produced it — that
//! invariant is what the crash-recovery tests pin down.

use std::fs;
use std::path::Path;

use sim_stats::json::{f64_array, parse, raw_array, u64_array, JsonObject, JsonValue};
use wear_model::{hmean_lifetime_per_bank, lifetime_variation, raw_min_lifetime};

use crate::hashes::fnv1a64;
use crate::journal::{journal_files, read_journal, Record};
use crate::scheduler::{load_state, CampaignState};
use crate::spec::CampaignSpec;

/// Schema id of the aggregate report.
pub const REPORT_SCHEMA: &str = "renuca-campaign-report-v1";

/// What one completed job contributes to the aggregate.
struct JobData {
    workload: usize,
    ipc: f64,
    per_bank: Vec<f64>,
}

/// Render the aggregate report. Fails unless the merged state covers the
/// full grid (every job done or quarantined) and every `done` manifest
/// parses.
pub fn render(spec: &CampaignSpec, dir: &Path, state: &CampaignState) -> Result<Vec<u8>, String> {
    let jobs = spec.jobs();
    let covered = state.done.len() + state.quarantined.len();
    if covered < jobs.len() {
        return Err(format!(
            "campaign incomplete: {covered}/{} jobs covered by journals",
            jobs.len()
        ));
    }

    // Group jobs by (threshold, scheme) in spec order.
    let mut groups: Vec<String> = Vec::new();
    let mut quarantined_out: Vec<String> = Vec::new();
    for &threshold_pct in &spec.thresholds {
        for &scheme in &spec.schemes {
            let mut done_jobs: Vec<JobData> = Vec::new();
            let mut missing: Vec<u64> = Vec::new();
            for job in jobs
                .iter()
                .filter(|j| j.threshold_pct == threshold_pct && j.scheme == scheme)
            {
                let id = job.id(&spec.name);
                if let Some((rel, _fnv)) = state.manifest_of(&id) {
                    let data = read_job_manifest(&dir.join(rel), job.workload)?;
                    done_jobs.push(data);
                } else if let Some((_, payload)) = state.quarantine_of(&id) {
                    missing.push(job.workload as u64);
                    let mut q = JsonObject::new();
                    q.field_str("key", &job.key()).field_str("payload", payload);
                    quarantined_out.push(q.finish());
                } else {
                    return Err(format!("job {} ({}) unaccounted for", id, job.key()));
                }
            }

            let mut g = JsonObject::new();
            g.field_f64("threshold_pct", threshold_pct)
                .field_str("scheme", scheme.name())
                .field_raw(
                    "workloads",
                    &u64_array(
                        &done_jobs
                            .iter()
                            .map(|d| d.workload as u64)
                            .collect::<Vec<_>>(),
                    ),
                )
                .field_raw("missing_workloads", &u64_array(&missing));
            if done_jobs.is_empty() {
                g.field_raw("mean_ipc", "null")
                    .field_raw("per_workload_ipc", "[]")
                    .field_raw("raw_min_years", "null")
                    .field_raw("hmean_lifetime_years", "null")
                    .field_raw("variation", "null")
                    .field_raw("hmean_per_bank", "[]");
            } else {
                let ipcs: Vec<f64> = done_jobs.iter().map(|d| d.ipc).collect();
                let per_wl: Vec<Vec<f64>> = done_jobs.iter().map(|d| d.per_bank.clone()).collect();
                let hmean_bank = hmean_lifetime_per_bank(&per_wl);
                g.field_f64("mean_ipc", sim_stats::amean(&ipcs))
                    .field_raw("per_workload_ipc", &f64_array(&ipcs))
                    .field_f64("raw_min_years", raw_min_lifetime(&per_wl))
                    .field_f64("hmean_lifetime_years", sim_stats::hmean(&hmean_bank))
                    .field_f64("variation", lifetime_variation(&hmean_bank))
                    .field_raw("hmean_per_bank", &f64_array(&hmean_bank));
            }
            groups.push(g.finish());
        }
    }

    let mut budget = JsonObject::new();
    budget
        .field_u64("warmup", spec.budget.warmup)
        .field_u64("measure", spec.budget.measure);
    let mut o = JsonObject::new();
    o.field_str("schema", REPORT_SCHEMA)
        .field_str("campaign", &spec.name)
        .field_str("fingerprint", &format!("{:016x}", spec.fingerprint))
        .field_str("config", &spec.config_desc)
        .field_raw("budget", &budget.finish())
        .field_u64("grid", jobs.len() as u64)
        .field_u64("completed", state.done.len() as u64)
        .field_raw("quarantined", &raw_array(&quarantined_out))
        .field_raw("groups", &raw_array(&groups));
    let mut text = o.finish();
    text.push('\n');
    Ok(text.into_bytes())
}

/// Pull the aggregate inputs back out of one job manifest.
fn read_job_manifest(path: &Path, expect_workload: usize) -> Result<JobData, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let doc = parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
    let bad = |what: &str| format!("{}: missing or malformed {what}", path.display());

    let stats = doc.get("stats").ok_or_else(|| bad("stats"))?;
    let workload = stats
        .get("job.workload")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| bad("stats.job.workload"))? as usize;
    if workload != expect_workload {
        return Err(format!(
            "{}: manifest is for workload {workload}, journal says {expect_workload}",
            path.display()
        ));
    }
    let ipc = stats
        .get("job.ipc")
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| bad("stats.job.ipc"))?;
    let rows = doc
        .get("wear_heatmap")
        .and_then(|h| h.get("rows"))
        .and_then(JsonValue::as_array)
        .ok_or_else(|| bad("wear_heatmap.rows"))?;
    let per_bank = rows
        .first()
        .and_then(|r| r.get("per_bank"))
        .and_then(JsonValue::as_array)
        .ok_or_else(|| bad("wear_heatmap.rows[0].per_bank"))?
        .iter()
        // `fmt_f64` writes non-finite lifetimes (a bank with zero writes
        // never wears out) as JSON null; read them back as +inf.
        .map(|v| v.as_f64().unwrap_or(f64::INFINITY))
        .collect();
    Ok(JobData {
        workload,
        ipc,
        per_bank,
    })
}

/// Result of [`verify`].
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// Jobs whose manifests re-hashed to their journalled FNV.
    pub manifests_checked: usize,
    /// Quarantined jobs (listed in the report, not an error).
    pub quarantined: usize,
}

/// End-to-end integrity check of a finished campaign:
///
/// 1. every journal parses and matches the spec,
/// 2. the grid is fully covered,
/// 3. every `done` manifest's bytes still hash to the journalled FNV,
/// 4. re-aggregating reproduces `report.json` byte-for-byte.
pub fn verify(spec: &CampaignSpec, dir: &Path) -> Result<VerifyReport, String> {
    // Check the *raw* journal records, not the filtered state: `load_state`
    // silently demotes a torn manifest back to pending (correct for resume),
    // but verify exists to surface exactly that corruption.
    for journal in journal_files(dir).map_err(|e| format!("scan {}: {e}", dir.display()))? {
        let records =
            read_journal(&journal).map_err(|e| format!("read {}: {e}", journal.display()))?;
        for record in records {
            let Record::Done {
                id,
                manifest,
                fnv,
                key,
            } = record
            else {
                continue;
            };
            let path = dir.join(&manifest);
            let bytes = fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            if fnv1a64(&bytes) != fnv {
                return Err(format!(
                    "manifest {} for job {id} ({key}) does not match its journalled \
                     fingerprint",
                    path.display()
                ));
            }
        }
    }
    let state = load_state(spec, dir)?;
    let rendered = render(spec, dir, &state)?;
    let report_path = dir.join("report.json");
    let on_disk =
        fs::read(&report_path).map_err(|e| format!("read {}: {e}", report_path.display()))?;
    if rendered != on_disk {
        return Err(format!(
            "{} does not match re-aggregation ({} vs {} bytes)",
            report_path.display(),
            on_disk.len(),
            rendered.len()
        ));
    }
    Ok(VerifyReport {
        manifests_checked: state.done.len(),
        quarantined: state.quarantined.len(),
    })
}
