//! Append-only, crash-safe campaign journal.
//!
//! Every scheduler invocation appends to its own per-shard file
//! (`journal-shard-<i>-of-<n>.log`) inside the campaign out dir, so
//! concurrent shards never interleave writes; readers merge *all*
//! `journal-*.log` files in the dir. Each record is one line:
//!
//! ```text
//! rnj1 <crc32 hex8> <payload byte len> <payload>\n
//! ```
//!
//! The CRC covers the payload bytes. Payloads never contain raw newlines
//! (`\n`, `\r` and `\\` are escaped), so a record is valid iff its line is
//! complete, the length matches, and the CRC matches. A reader stops at the
//! first invalid record — which is exactly the torn tail a `kill -9`
//! mid-append leaves behind — and every record before it is trusted because
//! appends are `fsync`'d before the scheduler acts on them.
//!
//! Record payloads (space-separated `key=value`, values escaped):
//!
//! * `header name=.. fp=<hex16> grid=<n> warmup=<u> measure=<u>` — first
//!   record of every journal; lets a resume refuse a spec that changed.
//! * `done id=.. manifest=<rel path> fnv=<hex16> key=..` — job completed
//!   and its manifest is durable; `fnv` fingerprints the manifest bytes so
//!   a torn manifest demotes the job back to pending.
//! * `fail id=.. attempt=<k> payload=..` — one attempt panicked.
//! * `quarantine id=.. attempts=<k> payload=..` — retries exhausted; the
//!   job is excluded from the grid and reported, not retried.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::hashes::crc32;

/// Magic tag opening every journal line.
pub const RECORD_TAG: &str = "rnj1";

/// One journal record.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// Campaign identity stamped at journal creation.
    Header {
        /// Campaign name from the spec.
        name: String,
        /// Spec text fingerprint (FNV-1a).
        fingerprint: u64,
        /// Total grid size.
        grid: usize,
        /// Warm-up budget the jobs ran with.
        warmup: u64,
        /// Measure budget the jobs ran with.
        measure: u64,
    },
    /// A job finished and its manifest is on disk.
    Done {
        /// Job id (`j` + 16 hex digits).
        id: String,
        /// Manifest path relative to the campaign out dir.
        manifest: String,
        /// FNV-1a of the manifest bytes as written.
        fnv: u64,
        /// Canonical job key (human-readable audit trail).
        key: String,
    },
    /// One attempt of a job panicked.
    Fail {
        /// Job id.
        id: String,
        /// 1-based attempt number.
        attempt: u32,
        /// Captured panic payload.
        payload: String,
    },
    /// A job exhausted its retries.
    Quarantine {
        /// Job id.
        id: String,
        /// Total attempts made.
        attempts: u32,
        /// Panic payload of the last attempt.
        payload: String,
    },
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(c) => out.push(c),
            None => out.push('\\'),
        }
    }
    out
}

impl Record {
    /// Serialise the payload (the part covered by the CRC).
    pub fn payload(&self) -> String {
        match self {
            Record::Header {
                name,
                fingerprint,
                grid,
                warmup,
                measure,
            } => format!(
                "header name={} fp={fingerprint:016x} grid={grid} warmup={warmup} measure={measure}",
                escape(name)
            ),
            Record::Done {
                id,
                manifest,
                fnv,
                key,
            } => format!(
                "done id={id} manifest={} fnv={fnv:016x} key={}",
                escape(manifest),
                escape(key)
            ),
            Record::Fail {
                id,
                attempt,
                payload,
            } => format!("fail id={id} attempt={attempt} payload={}", escape(payload)),
            Record::Quarantine {
                id,
                attempts,
                payload,
            } => format!(
                "quarantine id={id} attempts={attempts} payload={}",
                escape(payload)
            ),
        }
    }

    /// Parse a payload back into a record. Fields are positional per kind;
    /// only the *last* field (panic payload / job key) may contain spaces
    /// or `=`, so splitting on literal ` <field>=` markers is unambiguous.
    pub fn parse_payload(payload: &str) -> Option<Record> {
        let mut words = payload.splitn(2, ' ');
        let kind = words.next()?;
        let rest = words.next().unwrap_or("");
        match kind {
            "header" => {
                let fields = split_fields(rest, &["name", "fp", "grid", "warmup", "measure"])?;
                Some(Record::Header {
                    name: unescape(fields[0]),
                    fingerprint: u64::from_str_radix(fields[1], 16).ok()?,
                    grid: fields[2].parse().ok()?,
                    warmup: fields[3].parse().ok()?,
                    measure: fields[4].parse().ok()?,
                })
            }
            "done" => {
                let fields = split_fields(rest, &["id", "manifest", "fnv", "key"])?;
                Some(Record::Done {
                    id: fields[0].to_string(),
                    manifest: unescape(fields[1]),
                    fnv: u64::from_str_radix(fields[2], 16).ok()?,
                    key: unescape(fields[3]),
                })
            }
            "fail" => {
                let fields = split_fields(rest, &["id", "attempt", "payload"])?;
                Some(Record::Fail {
                    id: fields[0].to_string(),
                    attempt: fields[1].parse().ok()?,
                    payload: unescape(fields[2]),
                })
            }
            "quarantine" => {
                let fields = split_fields(rest, &["id", "attempts", "payload"])?;
                Some(Record::Quarantine {
                    id: fields[0].to_string(),
                    attempts: fields[1].parse().ok()?,
                    payload: unescape(fields[2]),
                })
            }
            _ => None,
        }
    }

    /// Full framed line (without trailing newline).
    pub fn frame(&self) -> String {
        let payload = self.payload();
        format!(
            "{RECORD_TAG} {:08x} {} {payload}",
            crc32(payload.as_bytes()),
            payload.len()
        )
    }
}

/// Split `k1=v1 k2=v2 ... kn=vn` given the exact expected key sequence.
/// Values of all keys but the last must be space-free; the last value is
/// the remainder of the line (panic payloads, job keys).
pub(crate) fn split_fields<'a>(rest: &'a str, keys: &[&str]) -> Option<Vec<&'a str>> {
    let mut out = Vec::with_capacity(keys.len());
    let mut remaining = rest;
    for (i, key) in keys.iter().enumerate() {
        remaining = remaining.strip_prefix(key)?.strip_prefix('=')?;
        if i + 1 == keys.len() {
            out.push(remaining);
        } else {
            let (value, rest) = remaining.split_once(' ')?;
            out.push(value);
            remaining = rest;
        }
    }
    Some(out)
}

/// Append-side handle: an open journal file with fsync-per-record appends.
pub struct Journal {
    file: File,
    path: PathBuf,
}

/// File name of a shard's journal within the campaign out dir.
pub fn shard_file_name(shard_index: usize, shard_count: usize) -> String {
    format!("journal-shard-{shard_index}-of-{shard_count}.log")
}

impl Journal {
    /// Open (creating if needed) the journal for one shard.
    ///
    /// An existing file is first *repaired*: a torn tail left by a crash
    /// mid-append (no newline, bad CRC, even a half-written multi-byte
    /// character) is chopped off so appends resume at a record boundary —
    /// otherwise garbage bytes would hide every later record from readers.
    /// When no valid records remain (new or fully-torn file), `header` is
    /// appended and the *directory* is fsync'd so the file itself survives
    /// a crash.
    pub fn open(
        dir: &Path,
        shard_index: usize,
        shard_count: usize,
        header: &Record,
    ) -> std::io::Result<Journal> {
        fs::create_dir_all(dir)?;
        let path = dir.join(shard_file_name(shard_index, shard_count));
        let existing = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (valid_len, records) = scan(&existing);
        if valid_len < existing.len() {
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(valid_len as u64)?;
            f.sync_all()?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut journal = Journal { file, path };
        if records.is_empty() {
            journal.append(header)?;
            File::open(dir)?.sync_all()?;
        }
        Ok(journal)
    }

    /// Durably append one record: write the framed line, then `fsync`.
    pub fn append(&mut self, record: &Record) -> std::io::Result<()> {
        let mut line = record.frame();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_all()
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Read every valid record from one journal file, stopping at the first
/// torn or corrupt line (everything after a torn record is untrusted).
pub fn read_journal(path: &Path) -> std::io::Result<Vec<Record>> {
    Ok(scan(&fs::read(path)?).1)
}

/// Walk raw journal bytes, returning the byte length of the valid prefix
/// and the records inside it. Operates on bytes, not `str`: a crash can
/// tear the file inside a multi-byte character and the prefix must still
/// be recoverable.
fn scan(bytes: &[u8]) -> (usize, Vec<Record>) {
    let mut out = Vec::new();
    let mut pos = 0;
    while let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') {
        let Ok(line) = std::str::from_utf8(&bytes[pos..pos + nl]) else {
            break;
        };
        let Some(record) = parse_line(line) else {
            break;
        };
        out.push(record);
        pos += nl + 1;
    }
    (pos, out)
}

fn parse_line(line: &str) -> Option<Record> {
    let rest = line.strip_prefix(RECORD_TAG)?.strip_prefix(' ')?;
    let (crc_hex, rest) = rest.split_once(' ')?;
    let (len_str, payload) = rest.split_once(' ')?;
    let expect_crc = u32::from_str_radix(crc_hex, 16).ok()?;
    let expect_len: usize = len_str.parse().ok()?;
    if payload.len() != expect_len || crc32(payload.as_bytes()) != expect_crc {
        return None;
    }
    Record::parse_payload(payload)
}

/// List all `journal-*.log` files in a campaign out dir, sorted by name so
/// merged reads are deterministic.
pub fn journal_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    match fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let entry = entry?;
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("journal-") && name.ends_with(".log") {
                    out.push(entry.path());
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Header {
                name: "tiny".into(),
                fingerprint: 0xdead_beef_0123_4567,
                grid: 12,
                warmup: 100,
                measure: 500,
            },
            Record::Done {
                id: "j0123456789abcdef".into(),
                manifest: "jobs/j0123456789abcdef.json".into(),
                fnv: 0xfeed_face_8765_4321,
                key: "x=3/scheme=S-NUCA/wl=1".into(),
            },
            Record::Fail {
                id: "jfedcba9876543210".into(),
                attempt: 1,
                payload: "index out of bounds:\nthe len is 4".into(),
            },
            Record::Quarantine {
                id: "jfedcba9876543210".into(),
                attempts: 3,
                payload: "weird \\ payload = with spaces\r\n".into(),
            },
        ]
    }

    #[test]
    fn records_roundtrip_through_payloads() {
        for r in sample_records() {
            let payload = r.payload();
            assert!(!payload.contains('\n'), "{payload:?}");
            assert_eq!(Record::parse_payload(&payload).as_ref(), Some(&r));
        }
    }

    #[test]
    fn journal_roundtrips_on_disk() {
        let dir = std::env::temp_dir().join(format!("rnj-rt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let records = sample_records();
        {
            let mut j = Journal::open(&dir, 0, 1, &records[0]).unwrap();
            for r in &records[1..] {
                j.append(r).unwrap();
            }
        }
        let path = dir.join(shard_file_name(0, 1));
        assert_eq!(read_journal(&path).unwrap(), records);
        // Re-opening appends, it does not re-write the header.
        {
            let mut j = Journal::open(&dir, 0, 1, &records[0]).unwrap();
            j.append(&records[2]).unwrap();
        }
        let again = read_journal(&path).unwrap();
        assert_eq!(again.len(), records.len() + 1);
        assert_eq!(again[..records.len()], records[..]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reader_stops_at_any_truncation_point() {
        let records = sample_records();
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &records {
            bytes.extend_from_slice(r.frame().as_bytes());
            bytes.push(b'\n');
            boundaries.push(bytes.len());
        }
        let dir = std::env::temp_dir().join(format!("rnj-trunc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal-shard-0-of-1.log");
        for cut in 0..=bytes.len() {
            fs::write(&path, &bytes[..cut]).unwrap();
            let read = read_journal(&path).unwrap();
            let complete = boundaries.iter().filter(|b| **b <= cut).count() - 1;
            assert_eq!(read.len(), complete, "cut at byte {cut}");
            assert_eq!(read[..], records[..complete], "cut at byte {cut}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_lines_are_rejected() {
        let good = sample_records()[1].frame();
        assert!(parse_line(&good).is_some());
        // Flip a payload byte: CRC mismatch.
        let mut tampered = good.clone().into_bytes();
        let last = tampered.len() - 1;
        tampered[last] ^= 1;
        assert!(parse_line(std::str::from_utf8(&tampered).unwrap()).is_none());
        // Wrong tag, short line, bad length field.
        assert!(parse_line(&good.replacen(RECORD_TAG, "rnj2", 1)).is_none());
        assert!(parse_line("rnj1 00000000").is_none());
        let mut parts = good.splitn(4, ' ');
        let (tag, crc, len, payload) = (
            parts.next().unwrap(),
            parts.next().unwrap(),
            parts.next().unwrap().parse::<usize>().unwrap(),
            parts.next().unwrap(),
        );
        let bad_len = format!("{tag} {crc} {} {payload}", len + 1);
        assert!(parse_line(&bad_len).is_none());
    }

    #[test]
    fn journal_files_lists_only_journals_sorted() {
        let dir = std::env::temp_dir().join(format!("rnj-list-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("jobs")).unwrap();
        fs::write(dir.join("journal-shard-1-of-2.log"), "").unwrap();
        fs::write(dir.join("journal-shard-0-of-2.log"), "").unwrap();
        fs::write(dir.join("report.json"), "{}").unwrap();
        let files = journal_files(&dir).unwrap();
        let names: Vec<_> = files
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            vec!["journal-shard-0-of-2.log", "journal-shard-1-of-2.log"]
        );
        assert!(journal_files(&dir.join("missing")).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
