//! The `renuca-campaignd-v1` frame codec.
//!
//! This module implements — byte for byte — §2 and §3 of the normative
//! wire specification in `docs/protocol.md`. Keep the two in lockstep:
//! `tests/protocol_example.rs` decodes the byte examples committed in the
//! document, and `scripts/ci.sh` fails when a `MSG_*` constant below is
//! not named in the document.
//!
//! A frame is a 13-byte header (`RNCD` magic, type code, little-endian
//! payload length, little-endian CRC-32 over type+length+payload) followed
//! by a UTF-8 payload of at most [`MAX_PAYLOAD`] bytes. Decoding is
//! incremental ([`decode_frame`] reports how many more bytes it needs) and
//! unforgiving: any malformed header is a fatal protocol error, never a
//! resynchronisation point.

use crate::hashes::crc32;

/// Protocol identity negotiated in `hello` / `hello-ok`.
pub const PROTO_ID: &str = "renuca-campaignd-v1";

/// Frame magic: ASCII `RNCD`.
pub const MAGIC: [u8; 4] = *b"RNCD";

/// Fixed header size: magic (4) + type (1) + len (4) + crc (4).
pub const HEADER_LEN: usize = 13;

/// Hard upper bound on payload length (1 MiB). Bounds per-connection
/// memory; campaign specs and status replies are orders of magnitude
/// smaller.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Client→server: version negotiation + tenant identity (first frame).
pub const MSG_HELLO: u8 = 0x01;
/// Client→server: submit a `renuca-campaign-v1` spec.
pub const MSG_SUBMIT: u8 = 0x02;
/// Client→server: query campaign progress.
pub const MSG_STATUS: u8 = 0x03;
/// Client→server: subscribe to completion events.
pub const MSG_SUBSCRIBE: u8 = 0x04;
/// Client→server: liveness probe.
pub const MSG_PING: u8 = 0x05;
/// Server→client: version accepted.
pub const MSG_HELLO_OK: u8 = 0x81;
/// Server→client: campaign accepted / re-acknowledged.
pub const MSG_SUBMITTED: u8 = 0x82;
/// Server→client: progress snapshot.
pub const MSG_STATUS_REPLY: u8 = 0x83;
/// Server→client: pushed completion event.
pub const MSG_EVENT: u8 = 0x84;
/// Server→client: admission refused, retry later (backpressure).
pub const MSG_BUSY: u8 = 0x85;
/// Server→client: request failed.
pub const MSG_ERROR: u8 = 0x86;
/// Server→client: reply to `MSG_PING`.
pub const MSG_PONG: u8 = 0x87;

/// All type codes `renuca-campaignd-v1` defines, client→server first.
pub const ALL_TYPES: [u8; 12] = [
    MSG_HELLO,
    MSG_SUBMIT,
    MSG_STATUS,
    MSG_SUBSCRIBE,
    MSG_PING,
    MSG_HELLO_OK,
    MSG_SUBMITTED,
    MSG_STATUS_REPLY,
    MSG_EVENT,
    MSG_BUSY,
    MSG_ERROR,
    MSG_PONG,
];

/// Why a byte sequence is not (the start of) a valid frame. Every variant
/// is fatal to the connection (`docs/protocol.md` §2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes are not `RNCD`.
    BadMagic([u8; 4]),
    /// The type code is not one this protocol version defines.
    BadType(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversize(u32),
    /// The CRC over type+length+payload does not match the header.
    BadCrc {
        /// CRC the header claimed.
        expected: u32,
        /// CRC computed from the received bytes.
        actual: u32,
    },
    /// The payload is not valid UTF-8.
    NonUtf8,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadType(t) => write!(f, "unknown message type 0x{t:02x}"),
            FrameError::Oversize(n) => write!(f, "payload length {n} exceeds {MAX_PAYLOAD}"),
            FrameError::BadCrc { expected, actual } => {
                write!(
                    f,
                    "frame crc mismatch: header {expected:08x}, bytes {actual:08x}"
                )
            }
            FrameError::NonUtf8 => write!(f, "payload is not valid UTF-8"),
        }
    }
}

/// Result of attempting to decode one frame from the front of a buffer.
#[derive(Clone, Debug, PartialEq)]
pub enum Decoded {
    /// Not enough bytes yet; the frame (so far valid) needs this many
    /// bytes total before it can be decoded.
    Incomplete {
        /// Total bytes the frame occupies once complete.
        need: usize,
    },
    /// One whole valid frame.
    Frame {
        /// Message type code.
        msg_type: u8,
        /// Payload text.
        payload: String,
        /// Bytes consumed from the buffer (header + payload).
        consumed: usize,
    },
    /// The buffer does not start with a valid frame; the stream is dead.
    Corrupt(FrameError),
}

/// CRC-32 over the bytes the header's `crc` field covers: the type byte,
/// the four little-endian length bytes, then the payload.
fn frame_crc(msg_type: u8, payload: &[u8]) -> u32 {
    let mut covered = Vec::with_capacity(5 + payload.len());
    covered.push(msg_type);
    covered.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    covered.extend_from_slice(payload);
    crc32(&covered)
}

/// Serialise one frame.
///
/// Panics if `payload` exceeds [`MAX_PAYLOAD`] — senders size their
/// payloads (status replies chunk per campaign), so an oversize payload is
/// a programming error, not a runtime condition.
pub fn encode_frame(msg_type: u8, payload: &str) -> Vec<u8> {
    let payload = payload.as_bytes();
    assert!(
        payload.len() <= MAX_PAYLOAD,
        "frame payload {} exceeds MAX_PAYLOAD",
        payload.len()
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(msg_type);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_crc(msg_type, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Try to decode one frame from the front of `buf`.
///
/// Validation order follows `docs/protocol.md` §2: magic, type code,
/// length bound, CRC, UTF-8. The magic/type/length checks run as soon as
/// their bytes are present, so garbage is rejected without waiting for a
/// (possibly huge, possibly never-arriving) declared payload.
pub fn decode_frame(buf: &[u8]) -> Decoded {
    if buf.len() < 4 {
        // Partial magic must still be a *prefix* of the real magic.
        if buf != &MAGIC[..buf.len()] {
            let mut m = [0u8; 4];
            m[..buf.len()].copy_from_slice(buf);
            return Decoded::Corrupt(FrameError::BadMagic(m));
        }
        return Decoded::Incomplete { need: HEADER_LEN };
    }
    if buf[..4] != MAGIC {
        return Decoded::Corrupt(FrameError::BadMagic([buf[0], buf[1], buf[2], buf[3]]));
    }
    if buf.len() < 5 {
        return Decoded::Incomplete { need: HEADER_LEN };
    }
    let msg_type = buf[4];
    if !ALL_TYPES.contains(&msg_type) {
        return Decoded::Corrupt(FrameError::BadType(msg_type));
    }
    if buf.len() < 9 {
        return Decoded::Incomplete { need: HEADER_LEN };
    }
    let len = u32::from_le_bytes([buf[5], buf[6], buf[7], buf[8]]);
    if len as usize > MAX_PAYLOAD {
        return Decoded::Corrupt(FrameError::Oversize(len));
    }
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Decoded::Incomplete { need: total };
    }
    let expected = u32::from_le_bytes([buf[9], buf[10], buf[11], buf[12]]);
    let payload = &buf[HEADER_LEN..total];
    let actual = frame_crc(msg_type, payload);
    if actual != expected {
        return Decoded::Corrupt(FrameError::BadCrc { expected, actual });
    }
    match std::str::from_utf8(payload) {
        Ok(text) => Decoded::Frame {
            msg_type,
            payload: text.to_string(),
            consumed: total,
        },
        Err(_) => Decoded::Corrupt(FrameError::NonUtf8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_type() {
        for t in ALL_TYPES {
            let payload = format!("payload for 0x{t:02x} with spaces\nand a second line");
            let bytes = encode_frame(t, &payload);
            assert_eq!(bytes.len(), HEADER_LEN + payload.len());
            match decode_frame(&bytes) {
                Decoded::Frame {
                    msg_type,
                    payload: p,
                    consumed,
                } => {
                    assert_eq!(msg_type, t);
                    assert_eq!(p, payload);
                    assert_eq!(consumed, bytes.len());
                }
                other => panic!("decode of valid frame: {other:?}"),
            }
        }
    }

    #[test]
    fn incremental_decode_reports_need() {
        let bytes = encode_frame(MSG_PING, "ping token=7");
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Decoded::Incomplete { need } => {
                    assert!(need > cut, "cut={cut}");
                    assert!(need <= bytes.len(), "cut={cut}");
                }
                other => panic!("cut={cut}: {other:?}"),
            }
        }
        assert!(matches!(decode_frame(&bytes), Decoded::Frame { .. }));
    }

    #[test]
    fn rejects_bad_magic_type_len_crc_utf8() {
        let good = encode_frame(MSG_HELLO, "hello proto=renuca-campaignd-v1 tenant=t");

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_frame(&bad),
            Decoded::Corrupt(FrameError::BadMagic(_))
        ));
        // A partial buffer that already deviates from the magic is corrupt,
        // not incomplete.
        assert!(matches!(
            decode_frame(b"RQ"),
            Decoded::Corrupt(FrameError::BadMagic(_))
        ));

        let mut bad = good.clone();
        bad[4] = 0x7e;
        assert!(matches!(
            decode_frame(&bad),
            Decoded::Corrupt(FrameError::BadType(0x7e))
        ));

        let mut bad = good.clone();
        bad[5..9].copy_from_slice(&((MAX_PAYLOAD as u32) + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&bad),
            Decoded::Corrupt(FrameError::Oversize(_))
        ));

        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert!(matches!(
            decode_frame(&bad),
            Decoded::Corrupt(FrameError::BadCrc { .. })
        ));

        // Valid CRC over invalid UTF-8 payload.
        let raw = [0xffu8, 0xfe];
        let mut covered = vec![MSG_PING];
        covered.extend_from_slice(&(raw.len() as u32).to_le_bytes());
        covered.extend_from_slice(&raw);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(MSG_PING);
        bytes.extend_from_slice(&(raw.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crate::hashes::crc32(&covered).to_le_bytes());
        bytes.extend_from_slice(&raw);
        assert!(matches!(
            decode_frame(&bytes),
            Decoded::Corrupt(FrameError::NonUtf8)
        ));
    }

    #[test]
    fn back_to_back_frames_consume_exactly() {
        let a = encode_frame(MSG_PING, "ping token=1");
        let b = encode_frame(MSG_PONG, "pong token=1");
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        let Decoded::Frame { consumed, .. } = decode_frame(&stream) else {
            panic!("first frame")
        };
        assert_eq!(consumed, a.len());
        let Decoded::Frame { msg_type, .. } = decode_frame(&stream[consumed..]) else {
            panic!("second frame")
        };
        assert_eq!(msg_type, MSG_PONG);
    }
}
