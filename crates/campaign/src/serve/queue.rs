//! Per-tenant fair queueing and admission control for the daemon.
//!
//! The daemon schedules individual campaign jobs — not whole campaigns —
//! across its worker threads, so one tenant's thousand-job grid cannot
//! starve another tenant's four-job smoke test. The discipline is
//! deficit-round-robin over *job cost*, where a job's cost is its
//! instruction budget (`warmup + measure`): tenants receive equal
//! simulated-instruction service regardless of how they slice it into
//! jobs. The implementation is a simultaneous-credit DRR variant:
//!
//! * every tenant with queued work holds a deficit counter; an idle
//!   tenant's counter resets to zero (no banked credit);
//! * dispatch scans tenants round-robin from a rotating cursor and serves
//!   the first whose front job fits its deficit;
//! * when nobody can afford their front job, every active tenant is
//!   topped up by the same whole number of quanta — the smallest that
//!   unblocks someone — in one step, keeping dispatch O(tenants) instead
//!   of O(cost/quantum).
//!
//! Cumulative service between any two continuously-backlogged tenants
//! therefore differs by at most `max_job_cost + quantum`, the classic DRR
//! bound. The property test at the bottom pins a 10:1 submission skew.
//!
//! Admission is all-or-nothing per submission against two bounds: total
//! queued jobs across tenants, and queued jobs per tenant. A submission
//! that does not fit is refused ([`AdmitError`] → wire `BUSY`) and leaves
//! no state anywhere. Recovery re-enqueues (daemon restart, torn-manifest
//! redo) bypass the caps — those jobs were admitted once already.

use std::collections::VecDeque;

/// Why a submission was not admitted. Maps to `MSG_BUSY` on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The global queued-job bound would be exceeded.
    QueueFull {
        /// Jobs currently queued across all tenants.
        queued: usize,
        /// The configured global bound.
        limit: usize,
    },
    /// The per-tenant queued-job bound would be exceeded.
    TenantQuota {
        /// Jobs this tenant currently has queued.
        queued: usize,
        /// The configured per-tenant bound.
        limit: usize,
    },
}

impl AdmitError {
    /// The wire `reason` word (`docs/protocol.md` §4, `MSG_BUSY`).
    pub fn reason(self) -> &'static str {
        match self {
            AdmitError::QueueFull { .. } => "queue-full",
            AdmitError::TenantQuota { .. } => "tenant-quota",
        }
    }
}

struct TenantQueue<J> {
    name: String,
    deficit: u64,
    jobs: VecDeque<(J, u64)>,
}

/// Deficit-round-robin queue of jobs tagged with a tenant and a cost.
pub struct FairQueue<J> {
    tenants: Vec<TenantQueue<J>>,
    cursor: usize,
    quantum: u64,
    max_total: usize,
    max_per_tenant: usize,
    queued: usize,
}

impl<J> FairQueue<J> {
    /// An empty queue. `quantum` is the DRR credit unit (clamped to ≥ 1);
    /// smaller quanta give finer-grained fairness at no extra cost thanks
    /// to the batched top-up.
    pub fn new(quantum: u64, max_total: usize, max_per_tenant: usize) -> FairQueue<J> {
        FairQueue {
            tenants: Vec::new(),
            cursor: 0,
            quantum: quantum.max(1),
            max_total,
            max_per_tenant,
            queued: 0,
        }
    }

    /// Jobs currently queued across all tenants.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Jobs currently queued for one tenant.
    pub fn queued_for(&self, tenant: &str) -> usize {
        self.tenants
            .iter()
            .find(|t| t.name == tenant)
            .map_or(0, |t| t.jobs.len())
    }

    /// Admit a batch of `(job, cost)` pairs for `tenant`, all or nothing.
    /// `enforce_caps: false` is the recovery path (daemon restart,
    /// torn-manifest redo): those jobs were admitted before, so refusing
    /// them now would wedge a resumable campaign.
    pub fn admit(
        &mut self,
        tenant: &str,
        jobs: Vec<(J, u64)>,
        enforce_caps: bool,
    ) -> Result<(), AdmitError> {
        if enforce_caps {
            if self.queued + jobs.len() > self.max_total {
                return Err(AdmitError::QueueFull {
                    queued: self.queued,
                    limit: self.max_total,
                });
            }
            let tenant_queued = self.queued_for(tenant);
            if tenant_queued + jobs.len() > self.max_per_tenant {
                return Err(AdmitError::TenantQuota {
                    queued: tenant_queued,
                    limit: self.max_per_tenant,
                });
            }
        }
        let idx = match self.tenants.iter().position(|t| t.name == tenant) {
            Some(i) => i,
            None => {
                self.tenants.push(TenantQueue {
                    name: tenant.to_string(),
                    deficit: 0,
                    jobs: VecDeque::new(),
                });
                self.tenants.len() - 1
            }
        };
        self.queued += jobs.len();
        self.tenants[idx]
            .jobs
            .extend(jobs.into_iter().map(|(j, c)| (j, c.max(1))));
        Ok(())
    }

    /// Dispatch the next job under DRR, or `None` when the queue is empty.
    pub fn next(&mut self) -> Option<J> {
        if self.queued == 0 {
            return None;
        }
        let n = self.tenants.len();
        loop {
            // Serve the first tenant (from the cursor) that can afford its
            // front job.
            for off in 0..n {
                let i = (self.cursor + off) % n;
                let t = &mut self.tenants[i];
                let Some(&(_, cost)) = t.jobs.front() else {
                    continue;
                };
                if t.deficit >= cost {
                    t.deficit -= cost;
                    let (job, _) = t.jobs.pop_front().expect("front exists");
                    self.queued -= 1;
                    if t.jobs.is_empty() {
                        // Idle tenants bank no credit.
                        t.deficit = 0;
                        self.cursor = (i + 1) % n;
                    } else if t.jobs.front().is_some_and(|&(_, c)| t.deficit >= c) {
                        // Classic DRR: keep serving this tenant while its
                        // remaining deficit covers the next job.
                        self.cursor = i;
                    } else {
                        // Deficit exhausted: move on so the next top-up
                        // round resumes with the neighbour, not here.
                        self.cursor = (i + 1) % n;
                    }
                    return Some(job);
                }
            }
            // Nobody can afford their front job: credit every backlogged
            // tenant the same whole number of quanta — the smallest that
            // unblocks at least one of them.
            let min_shortfall = self
                .tenants
                .iter()
                .filter_map(|t| t.jobs.front().map(|&(_, cost)| cost - t.deficit))
                .min()
                .expect("queued > 0 implies a backlogged tenant");
            let quanta = min_shortfall.div_ceil(self.quantum);
            for t in &mut self.tenants {
                if !t.jobs.is_empty() {
                    t.deficit += quanta * self.quantum;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_bounds_are_enforced_all_or_nothing() {
        let mut q: FairQueue<u32> = FairQueue::new(1, 4, 3);
        q.admit("a", vec![(1, 10), (2, 10)], true).unwrap();
        // Tenant quota: a third+fourth job for `a` would exceed 3.
        let err = q.admit("a", vec![(3, 10), (4, 10)], true).unwrap_err();
        assert_eq!(
            err,
            AdmitError::TenantQuota {
                queued: 2,
                limit: 3
            }
        );
        assert_eq!(err.reason(), "tenant-quota");
        // Global bound: 2 queued + 3 more > 4.
        let err = q
            .admit("b", vec![(5, 10), (6, 10), (7, 10)], true)
            .unwrap_err();
        assert_eq!(
            err,
            AdmitError::QueueFull {
                queued: 2,
                limit: 4
            }
        );
        assert_eq!(err.reason(), "queue-full");
        // Nothing from the refused batches leaked in.
        assert_eq!(q.queued(), 2);
        assert_eq!(q.queued_for("b"), 0);
        // Recovery bypasses both caps.
        q.admit("b", vec![(8, 10); 10], false).unwrap();
        assert_eq!(q.queued(), 12);
    }

    #[test]
    fn equal_cost_tenants_alternate() {
        let mut q: FairQueue<(&str, u32)> = FairQueue::new(1, 1000, 1000);
        q.admit("a", (0..4).map(|i| (("a", i), 100)).collect(), true)
            .unwrap();
        q.admit("b", (0..4).map(|i| (("b", i), 100)).collect(), true)
            .unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| q.next()).map(|(t, _)| t).collect();
        assert_eq!(order, vec!["a", "b", "a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn cost_weighted_fairness() {
        // Tenant `big` queues jobs 4× the cost of `small`'s: in cumulative
        // cost terms they stay even, so `small` dispatches ~4 jobs per
        // `big` job.
        let mut q: FairQueue<&str> = FairQueue::new(1, 10_000, 10_000);
        q.admit("big", vec![("big", 400); 8], true).unwrap();
        q.admit("small", vec![("small", 100); 32], true).unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| q.next()).collect();
        // After any prefix, served cost difference is bounded by
        // max_cost + quantum = 401.
        let mut big_cost = 0i64;
        let mut small_cost = 0i64;
        for (k, t) in order.iter().enumerate() {
            if *t == "big" {
                big_cost += 400;
            } else {
                small_cost += 100;
            }
            // Only check while both are still backlogged.
            if big_cost < 400 * 8 && small_cost < 100 * 32 {
                assert!(
                    (big_cost - small_cost).abs() <= 401,
                    "cost skew {big_cost} vs {small_cost} after {k} dispatches"
                );
            }
        }
        assert_eq!(order.len(), 40);
    }

    /// The ISSUE-mandated property: a 10:1 submission skew must not starve
    /// the small tenant. Seeded-random costs and arrival interleavings.
    #[test]
    fn ten_to_one_skew_never_starves() {
        let mut rng = sim_rng::SimRng::seed_from_u64(0x00da_e110);
        for trial in 0..50 {
            let quantum = [1u64, 50, 1000][rng.gen_bounded(3) as usize];
            let mut q: FairQueue<(&str, usize)> = FairQueue::new(quantum, 100_000, 100_000);
            let small_jobs = 2 + rng.gen_bounded(6) as usize;
            let big_jobs = small_jobs * 10;
            let cost = 350 + rng.gen_bounded(1000);
            // Arrival order varies: big first, small first, interleaved.
            match trial % 3 {
                0 => {
                    q.admit(
                        "big",
                        (0..big_jobs).map(|i| (("big", i), cost)).collect(),
                        true,
                    )
                    .unwrap();
                    q.admit(
                        "small",
                        (0..small_jobs).map(|i| (("small", i), cost)).collect(),
                        true,
                    )
                    .unwrap();
                }
                1 => {
                    q.admit(
                        "small",
                        (0..small_jobs).map(|i| (("small", i), cost)).collect(),
                        true,
                    )
                    .unwrap();
                    q.admit(
                        "big",
                        (0..big_jobs).map(|i| (("big", i), cost)).collect(),
                        true,
                    )
                    .unwrap();
                }
                _ => {
                    for i in 0..big_jobs {
                        q.admit("big", vec![(("big", i), cost)], true).unwrap();
                        if i < small_jobs {
                            q.admit("small", vec![(("small", i), cost)], true).unwrap();
                        }
                    }
                }
            }
            let order: Vec<(&str, usize)> = std::iter::from_fn(|| q.next()).collect();
            assert_eq!(order.len(), small_jobs + big_jobs, "trial {trial}");
            // The small tenant's last job must complete within its fair
            // window: with equal costs, DRR alternates, so the last small
            // job dispatches by position 2*small_jobs (+1 slack for the
            // initial credit round).
            let last_small = order
                .iter()
                .rposition(|(t, _)| *t == "small")
                .expect("small tenant ran");
            assert!(
                last_small <= 2 * small_jobs + 1,
                "trial {trial}: small tenant starved — last dispatch at \
                 {last_small} of {} (small_jobs={small_jobs}, quantum={quantum})",
                order.len()
            );
            // Per-tenant FIFO order is preserved.
            let small_seq: Vec<usize> = order
                .iter()
                .filter(|(t, _)| *t == "small")
                .map(|&(_, i)| i)
                .collect();
            assert_eq!(small_seq, (0..small_jobs).collect::<Vec<_>>());
        }
    }
}
