//! Blocking client for the `renuca-campaignd-v1` protocol.
//!
//! A thin, synchronous wrapper over one TCP connection: frame I/O,
//! `hello` negotiation, and request/reply helpers. The `campaign-client`
//! binary, the integration tests and the saturation bench all drive the
//! daemon through this type, so the client-side grammar lives in exactly
//! one place.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use super::frame::{decode_frame, encode_frame, Decoded, PROTO_ID};
use super::proto::{CampaignStatus, Event, Msg, QuarantineStatus};

/// One authenticated-by-declaration connection to a campaign daemon.
pub struct Client {
    stream: TcpStream,
    inbuf: Vec<u8>,
}

impl Client {
    /// Connect and complete the `hello` handshake as `tenant`.
    pub fn connect(addr: &str, tenant: &str) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let _ = stream.set_nodelay(true);
        let mut client = Client {
            stream,
            inbuf: Vec::new(),
        };
        client.send(&Msg::Hello {
            proto: PROTO_ID.to_string(),
            tenant: tenant.to_string(),
        })?;
        match client.recv()? {
            Msg::HelloOk { .. } => Ok(client),
            Msg::Error { code, msg } => Err(format!("hello refused: {} {msg}", code.as_str())),
            other => Err(format!("unexpected hello reply: {other:?}")),
        }
    }

    /// [`connect`](Client::connect), retrying until `deadline` elapses —
    /// for racing a daemon that is still binding its socket.
    pub fn connect_retry(addr: &str, tenant: &str, deadline: Duration) -> Result<Client, String> {
        let start = Instant::now();
        loop {
            match Client::connect(addr, tenant) {
                Ok(c) => return Ok(c),
                Err(e) if start.elapsed() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Send one message.
    pub fn send(&mut self, msg: &Msg) -> Result<(), String> {
        let (t, payload) = msg.encode();
        self.stream
            .write_all(&encode_frame(t, &payload))
            .map_err(|e| format!("send: {e}"))
    }

    /// Receive the next message, blocking indefinitely.
    pub fn recv(&mut self) -> Result<Msg, String> {
        self.stream
            .set_read_timeout(None)
            .map_err(|e| e.to_string())?;
        match self.recv_inner()? {
            Some(msg) => Ok(msg),
            None => Err("connection closed".to_string()),
        }
    }

    /// Receive the next message, or `None` after `timeout` of silence.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Msg>, String> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(msg) = self.try_decode()? {
                return Ok(Some(msg));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            self.stream
                .set_read_timeout(Some(deadline - now))
                .map_err(|e| e.to_string())?;
            let mut chunk = [0u8; 16384];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err("connection closed".to_string()),
                Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(None)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(format!("recv: {e}")),
            }
        }
    }

    fn recv_inner(&mut self) -> Result<Option<Msg>, String> {
        loop {
            if let Some(msg) = self.try_decode()? {
                return Ok(Some(msg));
            }
            let mut chunk = [0u8; 16384];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(None),
                Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(format!("recv: {e}")),
            }
        }
    }

    /// Decode one frame off the input buffer, if a whole one is present.
    fn try_decode(&mut self) -> Result<Option<Msg>, String> {
        match decode_frame(&self.inbuf) {
            Decoded::Incomplete { .. } => Ok(None),
            Decoded::Corrupt(e) => Err(format!("corrupt frame from daemon: {e}")),
            Decoded::Frame {
                msg_type,
                payload,
                consumed,
            } => {
                self.inbuf.drain(..consumed);
                Msg::decode(msg_type, &payload)
                    .map(Some)
                    .ok_or_else(|| format!("daemon sent unparseable type 0x{msg_type:02x}"))
            }
        }
    }

    /// Submit a spec. Returns the daemon's answer: `Submitted`, `Busy`,
    /// or an error turned into `Err`.
    pub fn submit(&mut self, spec_text: &str) -> Result<Msg, String> {
        self.send(&Msg::Submit {
            spec_text: spec_text.to_string(),
        })?;
        match self.recv()? {
            reply @ (Msg::Submitted { .. } | Msg::Busy { .. }) => Ok(reply),
            Msg::Error { code, msg } => Err(format!("submit refused: {} {msg}", code.as_str())),
            other => Err(format!("unexpected submit reply: {other:?}")),
        }
    }

    /// Fetch a status snapshot (all campaigns, or one).
    pub fn status(
        &mut self,
        campaign: Option<&str>,
    ) -> Result<(Vec<CampaignStatus>, Vec<QuarantineStatus>), String> {
        self.send(&Msg::Status {
            campaign: campaign.map(str::to_string),
        })?;
        // A subscribed connection may have events queued ahead of the
        // reply; skip them (status is usually used unsubscribed).
        loop {
            match self.recv()? {
                Msg::StatusReply {
                    campaigns,
                    quarantines,
                } => return Ok((campaigns, quarantines)),
                Msg::Event(_) => continue,
                Msg::Error { code, msg } => {
                    return Err(format!("status refused: {} {msg}", code.as_str()))
                }
                other => return Err(format!("unexpected status reply: {other:?}")),
            }
        }
    }

    /// Subscribe to completion events; returns the initial snapshot.
    pub fn subscribe(
        &mut self,
        campaign: Option<&str>,
    ) -> Result<(Vec<CampaignStatus>, Vec<QuarantineStatus>), String> {
        self.send(&Msg::Subscribe {
            campaign: campaign.map(str::to_string),
        })?;
        match self.recv()? {
            Msg::StatusReply {
                campaigns,
                quarantines,
            } => Ok((campaigns, quarantines)),
            Msg::Error { code, msg } => Err(format!("subscribe refused: {} {msg}", code.as_str())),
            other => Err(format!("unexpected subscribe reply: {other:?}")),
        }
    }

    /// Block for the next pushed event (requires a prior subscribe).
    pub fn next_event(&mut self) -> Result<Event, String> {
        match self.recv()? {
            Msg::Event(e) => Ok(e),
            other => Err(format!("expected event, got {other:?}")),
        }
    }

    /// Round-trip a ping.
    pub fn ping(&mut self, token: u64) -> Result<(), String> {
        self.send(&Msg::Ping { token })?;
        match self.recv()? {
            Msg::Pong { token: t } if t == token => Ok(()),
            other => Err(format!("bad pong: {other:?}")),
        }
    }
}
