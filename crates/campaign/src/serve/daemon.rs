//! `campaignd`: the long-running, multi-tenant campaign service.
//!
//! One thread owns everything non-simulating: a nonblocking
//! accept/read/write poll loop over all client connections, the
//! deficit-round-robin job queue, and per-campaign bookkeeping. Worker
//! threads pull one job at a time off an MPSC channel, run it through
//! [`scheduler::execute_one`] — the *same* retry/quarantine/journal path
//! the `campaign` CLI uses — and report completions back over a channel.
//! That sharing is the point: a report produced through the daemon is
//! byte-identical to `campaign run` on the same spec, and `kill -9` at
//! any instant leaves journals the next daemon start (or the CLI) resumes
//! from.
//!
//! Durable state lives under the daemon root as
//! `<root>/<tenant>/<campaign>/`: the submitted `spec.campaign` (written
//! atomically *before* the submission is acknowledged), the CRC-framed
//! journal, per-job manifests and the final `report.json`. Startup scans
//! the root and re-enqueues every incomplete campaign — crash recovery
//! needs no client involvement.
//!
//! Admission control is strict and stateless-on-refusal: a `SUBMIT` that
//! would exceed the global or per-tenant queued-job bound is answered
//! with `BUSY` and leaves nothing behind — no directory, no journal, no
//! queue entry. Saturation is flow-controlled, never silent.

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use experiments::obs::atomic_write;

use crate::journal::{Journal, Record};
use crate::report;
use crate::scheduler::{self, execute_one, load_state, JobOutcome};
use crate::spec::{CampaignSpec, Job};

use super::frame::{decode_frame, encode_frame, Decoded, MAX_PAYLOAD, PROTO_ID};
use super::proto::{valid_name, CampaignStatus, ErrorCode, Event, Msg, QuarantineStatus};
use super::queue::FairQueue;

/// Tunables of one daemon instance.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// State root; campaigns live at `<root>/<tenant>/<campaign>/`.
    pub root: PathBuf,
    /// Simulation worker threads. `0` is a valid drain/test mode: the
    /// daemon accepts, queues and answers, but executes nothing.
    pub workers: usize,
    /// Global bound on queued (not yet dispatched) jobs.
    pub max_pending_jobs: usize,
    /// Per-tenant bound on queued jobs.
    pub max_pending_per_tenant: usize,
    /// DRR credit quantum in instruction units (see `serve::queue`).
    pub quantum: u64,
}

impl DaemonConfig {
    /// Defaults for a given state root: one worker per hardware thread
    /// (respecting `RENUCA_THREADS`), 4096 queued jobs globally, 1024 per
    /// tenant, quantum 1 (finest-grained fairness).
    pub fn for_root(root: PathBuf) -> DaemonConfig {
        DaemonConfig {
            root,
            workers: experiments::pool::default_threads(),
            max_pending_jobs: 4096,
            max_pending_per_tenant: 1024,
            quantum: 1,
        }
    }
}

/// Suggested client backoff carried in `BUSY` replies.
const BUSY_RETRY_MS: u64 = 200;

/// A subscriber that cannot drain its socket is disconnected once its
/// buffered output exceeds this (protocol §5).
const MAX_OUTBUF: usize = 4 << 20;

/// Idle-loop sleep. The poll loop only sleeps when an iteration made no
/// progress at all, so this bounds added latency, not throughput.
const IDLE_SLEEP: Duration = Duration::from_millis(1);

/// Everything the workers need to run one campaign's jobs.
struct CampaignRuntime {
    tenant: String,
    name: String,
    spec: CampaignSpec,
    dir: PathBuf,
    journal: Mutex<Journal>,
}

/// One queued/dispatched job.
struct Assignment {
    runtime: Arc<CampaignRuntime>,
    job: Job,
}

/// What a worker reports back to the poll loop.
struct Completion {
    tenant: String,
    campaign: String,
    outcome: Result<JobOutcome, String>,
}

/// Main-loop bookkeeping for one campaign.
struct CampaignEntry {
    runtime: Arc<CampaignRuntime>,
    grid: usize,
    done: usize,
    quarantined: usize,
    /// Jobs queued or in flight in this process.
    outstanding: usize,
    /// `report.json` written.
    complete: bool,
}

/// One client connection's poll-loop state.
struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    outpos: usize,
    tenant: Option<String>,
    /// `None` = not subscribed; `Some(None)` = all of the tenant's
    /// campaigns; `Some(Some(name))` = one campaign.
    subscription: Option<Option<String>>,
    close_after_flush: bool,
    dead: bool,
}

impl Conn {
    fn push_msg(&mut self, msg: &Msg) {
        let (t, payload) = msg.encode();
        self.outbuf.extend_from_slice(&encode_frame(t, &payload));
    }

    fn push_error(&mut self, code: ErrorCode, msg: String, close: bool) {
        self.push_msg(&Msg::Error { code, msg });
        if close {
            self.close_after_flush = true;
        }
    }

    fn wants_event(&self, tenant: &str, campaign: &str) -> bool {
        if self.tenant.as_deref() != Some(tenant) {
            return false;
        }
        match &self.subscription {
            None => false,
            Some(None) => true,
            Some(Some(name)) => name == campaign,
        }
    }
}

/// Poll-loop-owned server state (everything but the connections).
struct ServerState {
    config: DaemonConfig,
    entries: BTreeMap<(String, String), CampaignEntry>,
    queue: FairQueue<Assignment>,
    in_flight: usize,
}

impl ServerState {
    fn job_cost(spec: &CampaignSpec) -> u64 {
        (spec.budget.warmup + spec.budget.measure).max(1)
    }

    /// Queue the given jobs of a campaign. Caller has already checked
    /// admission caps (fresh submits) or is recovering admitted work.
    fn enqueue(&mut self, runtime: &Arc<CampaignRuntime>, jobs: Vec<Job>) {
        let cost = Self::job_cost(&runtime.spec);
        let batch: Vec<(Assignment, u64)> = jobs
            .into_iter()
            .map(|job| {
                (
                    Assignment {
                        runtime: Arc::clone(runtime),
                        job,
                    },
                    cost,
                )
            })
            .collect();
        let n = batch.len();
        self.queue
            .admit(&runtime.tenant, batch, false)
            .expect("uncapped admit cannot fail");
        let entry = self
            .entries
            .get_mut(&(runtime.tenant.clone(), runtime.name.clone()))
            .expect("entry exists before enqueue");
        entry.outstanding += n;
    }
}

/// A bound-and-configured daemon, ready to [`run`](Daemon::run).
pub struct Daemon {
    listener: TcpListener,
    config: DaemonConfig,
}

impl Daemon {
    /// Bind the listening socket (nonblocking) without starting service.
    pub fn bind(addr: &str, config: DaemonConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Daemon { listener, config })
    }

    /// The bound address (useful with `--listen 127.0.0.1:0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until `shutdown` becomes true. Blocks the calling thread;
    /// worker threads are joined before returning (jobs already
    /// dispatched run to completion — their journal records land — but
    /// no new jobs start once `shutdown` is observed).
    pub fn run(self, shutdown: Arc<AtomicBool>) -> Result<(), String> {
        let mut state = ServerState {
            queue: FairQueue::new(
                self.config.quantum,
                self.config.max_pending_jobs.max(1).saturating_mul(2), // recovery headroom
                usize::MAX,
            ),
            config: self.config,
            entries: BTreeMap::new(),
            in_flight: 0,
        };
        // The FairQueue's own caps stay loose: admission for fresh
        // submissions is checked explicitly in `handle_submit` against
        // `config`, so recovery re-enqueues are never refused.
        recover(&mut state)?;

        let (job_tx, job_rx) = mpsc::channel::<Assignment>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (done_tx, done_rx) = mpsc::channel::<Completion>();

        std::thread::scope(|scope| {
            for _ in 0..state.config.workers {
                let rx = Arc::clone(&job_rx);
                let tx = done_tx.clone();
                scope.spawn(move || worker_loop(rx, tx));
            }
            drop(done_tx);
            let result = poll_loop(
                &self.listener,
                &mut state,
                &job_tx,
                &done_rx,
                shutdown.as_ref(),
            );
            drop(job_tx); // hang up: idle workers exit, busy ones finish
            result
        })
    }
}

fn worker_loop(rx: Arc<Mutex<mpsc::Receiver<Assignment>>>, tx: mpsc::Sender<Completion>) {
    loop {
        // Hold the lock only for the recv, never during the simulation.
        let next = { rx.lock().unwrap_or_else(|p| p.into_inner()).recv() };
        let Ok(a) = next else { break };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_one(&a.runtime.spec, &a.runtime.dir, &a.job, &a.runtime.journal)
        }))
        .map_err(|p| {
            // `execute_one` catches *simulation* panics itself; reaching
            // here means the durability machinery failed (journal fsync,
            // manifest write). The job stays un-journalled and is redone.
            if let Some(s) = p.downcast_ref::<String>() {
                s.clone()
            } else if let Some(s) = p.downcast_ref::<&str>() {
                (*s).to_string()
            } else {
                "<non-string panic payload>".to_string()
            }
        });
        let completion = Completion {
            tenant: a.runtime.tenant.clone(),
            campaign: a.runtime.name.clone(),
            outcome,
        };
        if tx.send(completion).is_err() {
            break; // poll loop is gone; shutdown
        }
    }
}

/// Startup recovery: scan `<root>/<tenant>/<campaign>/spec.campaign`,
/// rebuild every campaign's state from its journals and re-enqueue the
/// incomplete remainder. Unreadable campaign dirs are reported on stderr
/// and skipped — one corrupt tenant must not block service (the operator
/// runbook covers triage).
fn recover(state: &mut ServerState) -> Result<(), String> {
    let root = state.config.root.clone();
    std::fs::create_dir_all(&root).map_err(|e| format!("create root {}: {e}", root.display()))?;
    for tenant in sorted_dirs(&root) {
        let tenant_name = match tenant.file_name().and_then(|n| n.to_str()) {
            Some(n) if valid_name(n) => n.to_string(),
            _ => continue,
        };
        for camp_dir in sorted_dirs(&tenant) {
            let Some(camp_name) = camp_dir
                .file_name()
                .and_then(|n| n.to_str())
                .filter(|n| valid_name(n))
                .map(str::to_string)
            else {
                continue;
            };
            let spec_path = camp_dir.join("spec.campaign");
            if !spec_path.exists() {
                continue;
            }
            let recovered = (|| -> Result<(), String> {
                let text = std::fs::read_to_string(&spec_path).map_err(|e| e.to_string())?;
                let spec = CampaignSpec::parse(&text)?;
                if spec.name != camp_name {
                    return Err(format!(
                        "spec name {:?} does not match directory {:?}",
                        spec.name, camp_name
                    ));
                }
                install_campaign(state, &tenant_name, spec, camp_dir.clone())?;
                Ok(())
            })();
            if let Err(e) = recovered {
                eprintln!(
                    "campaignd: skipping unrecoverable campaign {}: {e}",
                    camp_dir.display()
                );
            }
        }
    }
    Ok(())
}

/// Register a campaign (fresh or recovered): open its journal, load what
/// the journals prove, enqueue the remainder, and render the report if
/// the grid is already covered but `report.json` is missing (the crash
/// window between the last job and the report write).
fn install_campaign(
    state: &mut ServerState,
    tenant: &str,
    spec: CampaignSpec,
    dir: PathBuf,
) -> Result<(), String> {
    let loaded = load_state(&spec, &dir)?;
    let jobs = spec.jobs();
    let header = Record::Header {
        name: spec.name.clone(),
        fingerprint: spec.fingerprint,
        grid: jobs.len(),
        warmup: spec.budget.warmup,
        measure: spec.budget.measure,
    };
    let journal = Journal::open(&dir, 0, 1, &header).map_err(|e| format!("open journal: {e}"))?;
    let pending: Vec<Job> = jobs
        .iter()
        .filter(|j| {
            let id = j.id(&spec.name);
            loaded.done.iter().all(|(i, ..)| *i != id)
                && loaded.quarantined.iter().all(|(i, ..)| *i != id)
        })
        .cloned()
        .collect();
    let name = spec.name.clone();
    let runtime = Arc::new(CampaignRuntime {
        tenant: tenant.to_string(),
        name: name.clone(),
        spec,
        dir: dir.clone(),
        journal: Mutex::new(journal),
    });
    let mut entry = CampaignEntry {
        runtime: Arc::clone(&runtime),
        grid: jobs.len(),
        done: loaded.done.len(),
        quarantined: loaded.quarantined.len(),
        outstanding: 0,
        complete: false,
    };
    if pending.is_empty() {
        if !dir.join("report.json").exists() {
            let bytes = report::render(&runtime.spec, &dir, &loaded)?;
            atomic_write(&dir.join("report.json"), &bytes)
                .map_err(|e| format!("write report: {e}"))?;
        }
        entry.complete = true;
        state.entries.insert((tenant.to_string(), name), entry);
    } else {
        state.entries.insert((tenant.to_string(), name), entry);
        state.enqueue(&runtime, pending);
    }
    Ok(())
}

fn sorted_dirs(path: &std::path::Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(path)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    out.sort();
    out
}

fn poll_loop(
    listener: &TcpListener,
    state: &mut ServerState,
    job_tx: &mpsc::Sender<Assignment>,
    done_rx: &mpsc::Receiver<Completion>,
    shutdown: &AtomicBool,
) -> Result<(), String> {
    let mut conns: Vec<Conn> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        let mut progress = false;

        // 1. Accept.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    conns.push(Conn {
                        stream,
                        inbuf: Vec::new(),
                        outbuf: Vec::new(),
                        outpos: 0,
                        tenant: None,
                        subscription: None,
                        close_after_flush: false,
                        dead: false,
                    });
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(format!("accept: {e}")),
            }
        }

        // 2. Read and handle client frames.
        let mut events: Vec<(String, String, Event)> = Vec::new();
        for i in 0..conns.len() {
            if conns[i].dead || conns[i].close_after_flush {
                continue;
            }
            let mut chunk = [0u8; 16384];
            loop {
                match conns[i].stream.read(&mut chunk) {
                    Ok(0) => {
                        conns[i].dead = true;
                        break;
                    }
                    Ok(n) => {
                        progress = true;
                        conns[i].inbuf.extend_from_slice(&chunk[..n]);
                        // A peer streaming more than a frame's worth of
                        // unparseable bytes is cut off.
                        if conns[i].inbuf.len() > MAX_PAYLOAD * 2 {
                            conns[i].dead = true;
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conns[i].dead = true;
                        break;
                    }
                }
            }
            if conns[i].dead {
                continue;
            }
            // Parse complete frames off the front of the buffer.
            let mut consumed_total = 0;
            loop {
                match decode_frame(&conns[i].inbuf[consumed_total..]) {
                    Decoded::Incomplete { .. } => break,
                    Decoded::Corrupt(e) => {
                        conns[i].push_error(ErrorCode::Malformed, e.to_string(), true);
                        break;
                    }
                    Decoded::Frame {
                        msg_type,
                        payload,
                        consumed,
                    } => {
                        consumed_total += consumed;
                        progress = true;
                        match Msg::decode(msg_type, &payload) {
                            None => {
                                conns[i].push_error(
                                    ErrorCode::Malformed,
                                    format!("payload does not parse for type 0x{msg_type:02x}"),
                                    true,
                                );
                                break;
                            }
                            Some(msg) => {
                                handle_msg(state, &mut conns[i], msg);
                                if conns[i].close_after_flush {
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            if consumed_total > 0 {
                conns[i].inbuf.drain(..consumed_total);
            }
        }

        // 3. Drain worker completions.
        while let Ok(completion) = done_rx.try_recv() {
            progress = true;
            state.in_flight -= 1;
            on_completion(state, completion, &mut events);
        }

        // 4. Fan pushed events out to subscribers.
        for (tenant, campaign, event) in events {
            for conn in conns.iter_mut() {
                if !conn.dead && conn.wants_event(&tenant, &campaign) {
                    conn.push_msg(&Msg::Event(event.clone()));
                }
            }
        }

        // 5. Dispatch queued jobs onto free workers.
        while state.in_flight < state.config.workers {
            let Some(assignment) = state.queue.next() else {
                break;
            };
            state.in_flight += 1;
            progress = true;
            job_tx
                .send(assignment)
                .map_err(|_| "worker pool hung up".to_string())?;
        }

        // 6. Flush output buffers.
        for conn in conns.iter_mut() {
            if conn.dead {
                continue;
            }
            while conn.outpos < conn.outbuf.len() {
                match conn.stream.write(&conn.outbuf[conn.outpos..]) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.outpos += n;
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.outpos == conn.outbuf.len() {
                conn.outbuf.clear();
                conn.outpos = 0;
                if conn.close_after_flush {
                    conn.dead = true;
                }
            } else if conn.outbuf.len() - conn.outpos > MAX_OUTBUF {
                // Slow subscriber: disconnect rather than buffer unboundedly.
                conn.dead = true;
            }
        }
        conns.retain(|c| !c.dead);

        if !progress {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
    Ok(())
}

fn handle_msg(state: &mut ServerState, conn: &mut Conn, msg: Msg) {
    // HELLO must come first, exactly once.
    if conn.tenant.is_none() {
        match msg {
            Msg::Hello { proto, tenant } => {
                if proto != PROTO_ID {
                    conn.push_error(
                        ErrorCode::Version,
                        format!("unsupported protocol {proto:?} (serving {PROTO_ID})"),
                        true,
                    );
                    return;
                }
                if !valid_name(&tenant) {
                    conn.push_error(
                        ErrorCode::Name,
                        format!("invalid tenant name {tenant:?}"),
                        true,
                    );
                    return;
                }
                conn.tenant = Some(tenant);
                conn.push_msg(&Msg::HelloOk {
                    proto: PROTO_ID.to_string(),
                });
            }
            _ => conn.push_error(ErrorCode::Order, "hello required first".to_string(), true),
        }
        return;
    }
    let tenant = conn.tenant.clone().expect("checked above");
    match msg {
        Msg::Hello { .. } => {
            conn.push_error(ErrorCode::Order, "hello already sent".to_string(), true);
        }
        Msg::Submit { spec_text } => handle_submit(state, conn, &tenant, &spec_text),
        Msg::Status { campaign } => match status_reply(state, &tenant, campaign.as_deref()) {
            Ok(reply) => conn.push_msg(&reply),
            Err((code, msg)) => conn.push_error(code, msg, false),
        },
        Msg::Subscribe { campaign } => {
            if let Some(name) = &campaign {
                if !state.entries.contains_key(&(tenant.clone(), name.clone())) {
                    conn.push_error(
                        ErrorCode::Unknown,
                        format!("no campaign {name:?} for tenant {tenant:?}"),
                        false,
                    );
                    return;
                }
            }
            match status_reply(state, &tenant, campaign.as_deref()) {
                Ok(reply) => {
                    conn.subscription = Some(campaign);
                    conn.push_msg(&reply);
                }
                Err((code, msg)) => conn.push_error(code, msg, false),
            }
        }
        Msg::Ping { token } => conn.push_msg(&Msg::Pong { token }),
        // Server→client types arriving at the server are an order error.
        _ => conn.push_error(
            ErrorCode::Order,
            "server-to-client message sent to server".to_string(),
            true,
        ),
    }
}

fn handle_submit(state: &mut ServerState, conn: &mut Conn, tenant: &str, spec_text: &str) {
    let spec = match CampaignSpec::parse(spec_text) {
        Ok(s) => s,
        Err(e) => {
            conn.push_error(ErrorCode::Spec, e, false);
            return;
        }
    };
    if !valid_name(&spec.name) {
        conn.push_error(
            ErrorCode::Name,
            format!("invalid campaign name {:?}", spec.name),
            false,
        );
        return;
    }
    let key = (tenant.to_string(), spec.name.clone());
    if let Some(entry) = state.entries.get(&key) {
        // Idempotent re-submit of the same spec; anything else is a
        // conflicting revision.
        if entry.runtime.spec.fingerprint != spec.fingerprint {
            conn.push_error(
                ErrorCode::Spec,
                format!(
                    "campaign {:?} already exists with fingerprint {:016x} \
                     (submitted spec has {:016x})",
                    spec.name, entry.runtime.spec.fingerprint, spec.fingerprint
                ),
                false,
            );
            return;
        }
        conn.push_msg(&Msg::Submitted {
            campaign: spec.name,
            fingerprint: spec.fingerprint,
            grid: entry.grid,
            pending: entry.grid - entry.done - entry.quarantined,
            report: entry.complete,
        });
        return;
    }

    // Fresh campaign: admission first (a refusal must leave no state).
    let grid = spec.jobs().len();
    if state.queue.queued() + grid > state.config.max_pending_jobs {
        conn.push_msg(&Msg::Busy {
            reason: "queue-full".to_string(),
            retry_ms: BUSY_RETRY_MS,
        });
        return;
    }
    if state.queue.queued_for(tenant) + grid > state.config.max_pending_per_tenant {
        conn.push_msg(&Msg::Busy {
            reason: "tenant-quota".to_string(),
            retry_ms: BUSY_RETRY_MS,
        });
        return;
    }

    // Persist the spec before acknowledging: an accepted submission must
    // survive kill -9 of the daemon.
    let dir = state.config.root.join(tenant).join(&spec.name);
    if let Err(e) = atomic_write(&dir.join("spec.campaign"), spec_text.as_bytes()) {
        conn.push_error(ErrorCode::State, format!("persist spec: {e}"), false);
        return;
    }
    let fingerprint = spec.fingerprint;
    let name = spec.name.clone();
    match install_campaign(state, tenant, spec, dir) {
        Ok(()) => {
            let entry = &state.entries[&(tenant.to_string(), name.clone())];
            conn.push_msg(&Msg::Submitted {
                campaign: name,
                fingerprint,
                grid: entry.grid,
                pending: entry.grid - entry.done - entry.quarantined,
                report: entry.complete,
            });
        }
        Err(e) => conn.push_error(ErrorCode::State, e, false),
    }
}

/// Build a status snapshot for one tenant (optionally one campaign).
/// Numbers come from the journals on disk — the durable truth — via
/// [`scheduler::status`], so a status reply is exactly what a resume
/// would trust.
fn status_reply(
    state: &ServerState,
    tenant: &str,
    filter: Option<&str>,
) -> Result<Msg, (ErrorCode, String)> {
    let mut campaigns = Vec::new();
    let mut quarantines = Vec::new();
    let mut matched = false;
    for ((t, name), entry) in &state.entries {
        if t != tenant || filter.is_some_and(|f| f != name) {
            continue;
        }
        matched = true;
        let s = scheduler::status(&entry.runtime.spec, &entry.runtime.dir)
            .map_err(|e| (ErrorCode::State, e))?;
        campaigns.push(CampaignStatus {
            name: name.clone(),
            grid: s.grid,
            done: s.done,
            quarantined: s.quarantined.len(),
            pending: s.grid - s.done - s.quarantined.len(),
            report: s.report_exists,
        });
        for (id, _key, attempts, payload) in s.quarantined {
            quarantines.push(QuarantineStatus {
                campaign: name.clone(),
                id,
                attempts,
                payload,
            });
        }
    }
    if let Some(f) = filter {
        if !matched {
            return Err((
                ErrorCode::Unknown,
                format!("no campaign {f:?} for tenant {tenant:?}"),
            ));
        }
    }
    Ok(Msg::StatusReply {
        campaigns,
        quarantines,
    })
}

fn on_completion(
    state: &mut ServerState,
    completion: Completion,
    events: &mut Vec<(String, String, Event)>,
) {
    let key = (completion.tenant.clone(), completion.campaign.clone());
    let Some(entry) = state.entries.get_mut(&key) else {
        return; // entry vanished — cannot happen, but never panic the loop
    };
    entry.outstanding -= 1;
    match completion.outcome {
        Ok(JobOutcome::Done {
            id,
            key: jkey,
            manifest,
        }) => {
            entry.done += 1;
            events.push((
                completion.tenant.clone(),
                completion.campaign.clone(),
                Event::JobDone {
                    campaign: completion.campaign.clone(),
                    id,
                    manifest,
                    key: jkey,
                },
            ));
        }
        Ok(JobOutcome::Quarantined {
            id,
            key: _,
            attempts,
            payload,
        }) => {
            entry.quarantined += 1;
            events.push((
                completion.tenant.clone(),
                completion.campaign.clone(),
                Event::JobQuarantined {
                    campaign: completion.campaign.clone(),
                    id,
                    attempts,
                    payload,
                },
            ));
        }
        Err(e) => {
            // Durability-machinery failure: the job left no journal
            // record and is re-enqueued when the campaign drains below.
            eprintln!(
                "campaignd: job of {}/{} failed outside the retry path: {e}",
                completion.tenant, completion.campaign
            );
        }
    }
    if entry.outstanding > 0 || entry.complete {
        return;
    }
    // Campaign drained: settle against the journals. Torn manifests (the
    // rename/append crash window) or machinery failures demote jobs back
    // to pending; redo them instead of reporting.
    let runtime = Arc::clone(&entry.runtime);
    let settled = (|| -> Result<(), String> {
        let merged = load_state(&runtime.spec, &runtime.dir)?;
        let jobs = runtime.spec.jobs();
        let entry = state.entries.get_mut(&key).expect("entry exists");
        entry.done = merged.done.len();
        entry.quarantined = merged.quarantined.len();
        if merged.done.len() + merged.quarantined.len() >= jobs.len() {
            let bytes = report::render(&runtime.spec, &runtime.dir, &merged)?;
            atomic_write(&runtime.dir.join("report.json"), &bytes)
                .map_err(|e| format!("write report: {e}"))?;
            entry.complete = true;
            events.push((
                runtime.tenant.clone(),
                runtime.name.clone(),
                Event::CampaignComplete {
                    campaign: runtime.name.clone(),
                    completed: merged.done.len(),
                    quarantined: merged.quarantined.len(),
                    report: "report.json".to_string(),
                },
            ));
        } else {
            let pending: Vec<Job> = jobs
                .iter()
                .filter(|j| {
                    let id = j.id(&runtime.spec.name);
                    merged.done.iter().all(|(i, ..)| *i != id)
                        && merged.quarantined.iter().all(|(i, ..)| *i != id)
                })
                .cloned()
                .collect();
            state.enqueue(&runtime, pending);
        }
        Ok(())
    })();
    if let Err(e) = settled {
        eprintln!(
            "campaignd: settling {}/{}: {e}",
            completion.tenant, completion.campaign
        );
    }
}
