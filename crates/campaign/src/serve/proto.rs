//! The `renuca-campaignd-v1` message grammar (§4 of `docs/protocol.md`).
//!
//! [`Msg`] is the typed form of every payload the protocol defines.
//! Encoding and decoding use the same positional `key=value` record
//! discipline as the campaign journal: a record's key sequence is exact,
//! and only the last field of a record may contain spaces, `=` signs or
//! escaped newlines. `MSG_SUBMIT` is the one exception — its payload is a
//! raw `renuca-campaign-v1` spec document, carried verbatim.

use crate::journal::{escape, split_fields, unescape};

use super::frame::{
    MSG_BUSY, MSG_ERROR, MSG_EVENT, MSG_HELLO, MSG_HELLO_OK, MSG_PING, MSG_PONG, MSG_STATUS,
    MSG_STATUS_REPLY, MSG_SUBMIT, MSG_SUBMITTED, MSG_SUBSCRIBE,
};

/// Machine-readable error codes (`docs/protocol.md` §6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Unsupported protocol id in `hello`.
    Version,
    /// Request before `hello`, or repeated `hello`.
    Order,
    /// Frame or record failed to parse.
    Malformed,
    /// Tenant or campaign name fails the naming rule.
    Name,
    /// Campaign spec rejected (parse error or fingerprint mismatch).
    Spec,
    /// Named campaign does not exist for this tenant.
    Unknown,
    /// Daemon-side I/O failure acting on the request.
    State,
}

impl ErrorCode {
    /// Wire word for the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Version => "E_VERSION",
            ErrorCode::Order => "E_ORDER",
            ErrorCode::Malformed => "E_MALFORMED",
            ErrorCode::Name => "E_NAME",
            ErrorCode::Spec => "E_SPEC",
            ErrorCode::Unknown => "E_UNKNOWN",
            ErrorCode::State => "E_STATE",
        }
    }

    fn parse(word: &str) -> Option<ErrorCode> {
        Some(match word {
            "E_VERSION" => ErrorCode::Version,
            "E_ORDER" => ErrorCode::Order,
            "E_MALFORMED" => ErrorCode::Malformed,
            "E_NAME" => ErrorCode::Name,
            "E_SPEC" => ErrorCode::Spec,
            "E_UNKNOWN" => ErrorCode::Unknown,
            "E_STATE" => ErrorCode::State,
            _ => return None,
        })
    }
}

/// One campaign's progress line inside a status reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignStatus {
    /// Campaign name.
    pub name: String,
    /// Total grid size.
    pub grid: usize,
    /// Jobs proven done.
    pub done: usize,
    /// Jobs quarantined.
    pub quarantined: usize,
    /// Jobs not yet done or quarantined.
    pub pending: usize,
    /// Whether `report.json` has been written.
    pub report: bool,
}

/// One quarantined job surfaced in a status reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantineStatus {
    /// Owning campaign.
    pub campaign: String,
    /// Job id (`j` + 16 hex digits).
    pub id: String,
    /// Attempts made before quarantine.
    pub attempts: u32,
    /// Captured panic payload of the last attempt.
    pub payload: String,
}

/// A pushed completion event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A job finished; its manifest is durable.
    JobDone {
        /// Owning campaign.
        campaign: String,
        /// Job id.
        id: String,
        /// Manifest path relative to the campaign state dir.
        manifest: String,
        /// Canonical job key.
        key: String,
    },
    /// A job exhausted its retries.
    JobQuarantined {
        /// Owning campaign.
        campaign: String,
        /// Job id.
        id: String,
        /// Attempts made.
        attempts: u32,
        /// Captured panic payload.
        payload: String,
    },
    /// The whole grid is covered and `report.json` is durable.
    CampaignComplete {
        /// Campaign name.
        campaign: String,
        /// Jobs done.
        completed: usize,
        /// Jobs quarantined.
        quarantined: usize,
        /// Report path relative to the campaign state dir.
        report: String,
    },
}

/// Every message `renuca-campaignd-v1` defines, in typed form.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// `hello proto=… tenant=…`
    Hello {
        /// Offered protocol id.
        proto: String,
        /// Tenant identity.
        tenant: String,
    },
    /// `hello-ok proto=…`
    HelloOk {
        /// Accepted protocol id.
        proto: String,
    },
    /// Raw `renuca-campaign-v1` spec text.
    Submit {
        /// The spec document, verbatim.
        spec_text: String,
    },
    /// `submitted campaign=… fingerprint=… grid=… pending=… report=…`
    Submitted {
        /// Campaign name from the spec.
        campaign: String,
        /// Spec fingerprint (FNV-1a of the spec text).
        fingerprint: u64,
        /// Total grid size.
        grid: usize,
        /// Jobs not yet done/quarantined.
        pending: usize,
        /// Whether the report already exists.
        report: bool,
    },
    /// `status [campaign=…]`
    Status {
        /// Restrict to one campaign, or all of the tenant's.
        campaign: Option<String>,
    },
    /// Snapshot of campaign progress.
    StatusReply {
        /// Per-campaign progress, in lexicographic name order.
        campaigns: Vec<CampaignStatus>,
        /// Quarantined jobs of those campaigns.
        quarantines: Vec<QuarantineStatus>,
    },
    /// `subscribe [campaign=…]`
    Subscribe {
        /// Restrict the event stream to one campaign.
        campaign: Option<String>,
    },
    /// A pushed completion event.
    Event(Event),
    /// `busy reason=… retry_ms=…` — admission refused, retry later.
    Busy {
        /// `queue-full` or `tenant-quota`.
        reason: String,
        /// Suggested client backoff in milliseconds.
        retry_ms: u64,
    },
    /// `error code=… msg=…`
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        msg: String,
    },
    /// `ping token=…`
    Ping {
        /// Echo token.
        token: u64,
    },
    /// `pong token=…`
    Pong {
        /// Echoed token.
        token: u64,
    },
}

impl Msg {
    /// Serialise to `(frame type code, payload text)`.
    pub fn encode(&self) -> (u8, String) {
        match self {
            Msg::Hello { proto, tenant } => {
                (MSG_HELLO, format!("hello proto={proto} tenant={tenant}"))
            }
            Msg::HelloOk { proto } => (MSG_HELLO_OK, format!("hello-ok proto={proto}")),
            Msg::Submit { spec_text } => (MSG_SUBMIT, spec_text.clone()),
            Msg::Submitted {
                campaign,
                fingerprint,
                grid,
                pending,
                report,
            } => (
                MSG_SUBMITTED,
                format!(
                    "submitted campaign={campaign} fingerprint={fingerprint:016x} \
                     grid={grid} pending={pending} report={}",
                    u8::from(*report)
                ),
            ),
            Msg::Status { campaign } => match campaign {
                Some(c) => (MSG_STATUS, format!("status campaign={c}")),
                None => (MSG_STATUS, "status".to_string()),
            },
            Msg::StatusReply {
                campaigns,
                quarantines,
            } => {
                let mut lines = vec![format!("status-reply campaigns={}", campaigns.len())];
                for c in campaigns {
                    lines.push(format!(
                        "campaign name={} grid={} done={} quarantined={} pending={} report={}",
                        c.name,
                        c.grid,
                        c.done,
                        c.quarantined,
                        c.pending,
                        u8::from(c.report)
                    ));
                }
                for q in quarantines {
                    lines.push(format!(
                        "quarantine campaign={} id={} attempts={} payload={}",
                        q.campaign,
                        q.id,
                        q.attempts,
                        escape(&q.payload)
                    ));
                }
                (MSG_STATUS_REPLY, lines.join("\n"))
            }
            Msg::Subscribe { campaign } => match campaign {
                Some(c) => (MSG_SUBSCRIBE, format!("subscribe campaign={c}")),
                None => (MSG_SUBSCRIBE, "subscribe".to_string()),
            },
            Msg::Event(e) => {
                let text = match e {
                    Event::JobDone {
                        campaign,
                        id,
                        manifest,
                        key,
                    } => format!(
                        "event kind=job-done campaign={campaign} id={id} \
                         manifest={} key={}",
                        escape(manifest),
                        escape(key)
                    ),
                    Event::JobQuarantined {
                        campaign,
                        id,
                        attempts,
                        payload,
                    } => format!(
                        "event kind=job-quarantined campaign={campaign} id={id} \
                         attempts={attempts} payload={}",
                        escape(payload)
                    ),
                    Event::CampaignComplete {
                        campaign,
                        completed,
                        quarantined,
                        report,
                    } => format!(
                        "event kind=campaign-complete campaign={campaign} \
                         completed={completed} quarantined={quarantined} report={}",
                        escape(report)
                    ),
                };
                (MSG_EVENT, text)
            }
            Msg::Busy { reason, retry_ms } => (
                MSG_BUSY,
                format!("busy reason={reason} retry_ms={retry_ms}"),
            ),
            Msg::Error { code, msg } => (
                MSG_ERROR,
                format!("error code={} msg={}", code.as_str(), escape(msg)),
            ),
            Msg::Ping { token } => (MSG_PING, format!("ping token={token}")),
            Msg::Pong { token } => (MSG_PONG, format!("pong token={token}")),
        }
    }

    /// Parse a payload of the given frame type. `None` means the payload
    /// does not conform to the grammar for that type (→ `E_MALFORMED`).
    pub fn decode(msg_type: u8, payload: &str) -> Option<Msg> {
        match msg_type {
            MSG_SUBMIT => Some(Msg::Submit {
                spec_text: payload.to_string(),
            }),
            MSG_HELLO => {
                let rest = payload.strip_prefix("hello ")?;
                let f = split_fields(rest, &["proto", "tenant"])?;
                one_line(payload)?;
                Some(Msg::Hello {
                    proto: f[0].to_string(),
                    tenant: f[1].to_string(),
                })
            }
            MSG_HELLO_OK => {
                let rest = payload.strip_prefix("hello-ok ")?;
                let f = split_fields(rest, &["proto"])?;
                one_line(payload)?;
                Some(Msg::HelloOk {
                    proto: f[0].to_string(),
                })
            }
            MSG_SUBMITTED => {
                let rest = payload.strip_prefix("submitted ")?;
                let f = split_fields(
                    rest,
                    &["campaign", "fingerprint", "grid", "pending", "report"],
                )?;
                one_line(payload)?;
                Some(Msg::Submitted {
                    campaign: f[0].to_string(),
                    fingerprint: u64::from_str_radix(f[1], 16).ok()?,
                    grid: f[2].parse().ok()?,
                    pending: f[3].parse().ok()?,
                    report: parse_bool(f[4])?,
                })
            }
            MSG_STATUS => {
                one_line(payload)?;
                if payload == "status" {
                    return Some(Msg::Status { campaign: None });
                }
                let rest = payload.strip_prefix("status ")?;
                let f = split_fields(rest, &["campaign"])?;
                Some(Msg::Status {
                    campaign: Some(f[0].to_string()),
                })
            }
            MSG_STATUS_REPLY => {
                let mut lines = payload.lines();
                let head = lines.next()?.strip_prefix("status-reply ")?;
                let n: usize = split_fields(head, &["campaigns"])?[0].parse().ok()?;
                let mut campaigns = Vec::with_capacity(n);
                let mut quarantines = Vec::new();
                for line in lines {
                    if let Some(rest) = line.strip_prefix("campaign ") {
                        let f = split_fields(
                            rest,
                            &["name", "grid", "done", "quarantined", "pending", "report"],
                        )?;
                        campaigns.push(CampaignStatus {
                            name: f[0].to_string(),
                            grid: f[1].parse().ok()?,
                            done: f[2].parse().ok()?,
                            quarantined: f[3].parse().ok()?,
                            pending: f[4].parse().ok()?,
                            report: parse_bool(f[5])?,
                        });
                    } else if let Some(rest) = line.strip_prefix("quarantine ") {
                        let f = split_fields(rest, &["campaign", "id", "attempts", "payload"])?;
                        quarantines.push(QuarantineStatus {
                            campaign: f[0].to_string(),
                            id: f[1].to_string(),
                            attempts: f[2].parse().ok()?,
                            payload: unescape(f[3]),
                        });
                    } else {
                        return None;
                    }
                }
                if campaigns.len() != n {
                    return None;
                }
                Some(Msg::StatusReply {
                    campaigns,
                    quarantines,
                })
            }
            MSG_SUBSCRIBE => {
                one_line(payload)?;
                if payload == "subscribe" {
                    return Some(Msg::Subscribe { campaign: None });
                }
                let rest = payload.strip_prefix("subscribe ")?;
                let f = split_fields(rest, &["campaign"])?;
                Some(Msg::Subscribe {
                    campaign: Some(f[0].to_string()),
                })
            }
            MSG_EVENT => {
                one_line(payload)?;
                let rest = payload.strip_prefix("event kind=")?;
                let (kind, rest) = rest.split_once(' ')?;
                let event = match kind {
                    "job-done" => {
                        let f = split_fields(rest, &["campaign", "id", "manifest", "key"])?;
                        // `manifest` is not the last field, so it was
                        // emitted escaped but must be space-free; unescape
                        // is still correct (paths contain no spaces).
                        Event::JobDone {
                            campaign: f[0].to_string(),
                            id: f[1].to_string(),
                            manifest: unescape(f[2]),
                            key: unescape(f[3]),
                        }
                    }
                    "job-quarantined" => {
                        let f = split_fields(rest, &["campaign", "id", "attempts", "payload"])?;
                        Event::JobQuarantined {
                            campaign: f[0].to_string(),
                            id: f[1].to_string(),
                            attempts: f[2].parse().ok()?,
                            payload: unescape(f[3]),
                        }
                    }
                    "campaign-complete" => {
                        let f = split_fields(
                            rest,
                            &["campaign", "completed", "quarantined", "report"],
                        )?;
                        Event::CampaignComplete {
                            campaign: f[0].to_string(),
                            completed: f[1].parse().ok()?,
                            quarantined: f[2].parse().ok()?,
                            report: unescape(f[3]),
                        }
                    }
                    _ => return None,
                };
                Some(Msg::Event(event))
            }
            MSG_BUSY => {
                one_line(payload)?;
                let rest = payload.strip_prefix("busy ")?;
                let f = split_fields(rest, &["reason", "retry_ms"])?;
                Some(Msg::Busy {
                    reason: f[0].to_string(),
                    retry_ms: f[1].parse().ok()?,
                })
            }
            MSG_ERROR => {
                one_line(payload)?;
                let rest = payload.strip_prefix("error ")?;
                let f = split_fields(rest, &["code", "msg"])?;
                Some(Msg::Error {
                    code: ErrorCode::parse(f[0])?,
                    msg: unescape(f[1]),
                })
            }
            MSG_PING => {
                one_line(payload)?;
                let rest = payload.strip_prefix("ping ")?;
                let f = split_fields(rest, &["token"])?;
                Some(Msg::Ping {
                    token: f[0].parse().ok()?,
                })
            }
            MSG_PONG => {
                one_line(payload)?;
                let rest = payload.strip_prefix("pong ")?;
                let f = split_fields(rest, &["token"])?;
                Some(Msg::Pong {
                    token: f[0].parse().ok()?,
                })
            }
            _ => None,
        }
    }
}

/// Single-record payloads must not smuggle extra lines.
fn one_line(payload: &str) -> Option<()> {
    (!payload.contains('\n')).then_some(())
}

fn parse_bool(word: &str) -> Option<bool> {
    match word {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    }
}

/// Naming rule shared by tenants and campaigns (`docs/protocol.md` §4):
/// `[A-Za-z0-9_.-]{1,64}`, not starting with `.` — safe as a single state
/// directory component.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
}

#[cfg(test)]
mod tests {
    use super::super::frame::PROTO_ID;
    use super::*;

    fn sample_msgs() -> Vec<Msg> {
        vec![
            Msg::Hello {
                proto: PROTO_ID.to_string(),
                tenant: "alice".to_string(),
            },
            Msg::HelloOk {
                proto: PROTO_ID.to_string(),
            },
            Msg::Submit {
                spec_text: "renuca-campaign-v1\nname tiny\nschemes all\nworkloads 1\n".to_string(),
            },
            Msg::Submitted {
                campaign: "tiny".to_string(),
                fingerprint: 0xdead_beef_0123_4567,
                grid: 40,
                pending: 12,
                report: false,
            },
            Msg::Status { campaign: None },
            Msg::Status {
                campaign: Some("fig3".to_string()),
            },
            Msg::StatusReply {
                campaigns: vec![CampaignStatus {
                    name: "fig3".to_string(),
                    grid: 40,
                    done: 39,
                    quarantined: 1,
                    pending: 0,
                    report: true,
                }],
                quarantines: vec![QuarantineStatus {
                    campaign: "fig3".to_string(),
                    id: "j0123456789abcdef".to_string(),
                    attempts: 3,
                    payload: "index out of bounds:\nthe len is 4".to_string(),
                }],
            },
            Msg::Subscribe { campaign: None },
            Msg::Subscribe {
                campaign: Some("fig3".to_string()),
            },
            Msg::Event(Event::JobDone {
                campaign: "fig3".to_string(),
                id: "jfedcba9876543210".to_string(),
                manifest: "jobs/jfedcba9876543210.json".to_string(),
                key: "x=3/scheme=S-NUCA/wl=1".to_string(),
            }),
            Msg::Event(Event::JobQuarantined {
                campaign: "fig3".to_string(),
                id: "j0123456789abcdef".to_string(),
                attempts: 3,
                payload: "weird \\ payload = with\r\nnewlines".to_string(),
            }),
            Msg::Event(Event::CampaignComplete {
                campaign: "fig3".to_string(),
                completed: 39,
                quarantined: 1,
                report: "report.json".to_string(),
            }),
            Msg::Busy {
                reason: "queue-full".to_string(),
                retry_ms: 250,
            },
            Msg::Error {
                code: ErrorCode::Spec,
                msg: "line 3: unknown directive \"frobnicate\"".to_string(),
            },
            Msg::Ping { token: 7 },
            Msg::Pong { token: 7 },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for msg in sample_msgs() {
            let (t, payload) = msg.encode();
            let back = Msg::decode(t, &payload)
                .unwrap_or_else(|| panic!("decode of encoded {msg:?} ({payload:?})"));
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn wrong_type_or_grammar_is_rejected() {
        // Right payload under the wrong type code.
        assert_eq!(Msg::decode(MSG_PONG, "ping token=7"), None);
        // Missing, reordered and trailing-junk fields.
        assert_eq!(Msg::decode(MSG_HELLO, "hello tenant=t proto=x"), None);
        assert_eq!(Msg::decode(MSG_HELLO, "hello proto=x"), None);
        assert_eq!(Msg::decode(MSG_PING, "ping token=7x"), None);
        assert_eq!(Msg::decode(MSG_BUSY, "busy reason=queue-full"), None);
        // Multi-line where one record is required.
        assert_eq!(Msg::decode(MSG_PING, "ping token=7\nping token=8"), None);
        // Status-reply record count must match its header.
        assert_eq!(
            Msg::decode(MSG_STATUS_REPLY, "status-reply campaigns=1"),
            None
        );
        // Unknown event kind.
        assert_eq!(
            Msg::decode(MSG_EVENT, "event kind=zap campaign=c x=1"),
            None
        );
    }

    #[test]
    fn name_rule() {
        assert!(valid_name("alice"));
        assert!(valid_name("fig3"));
        assert!(valid_name("a-b_c.d"));
        assert!(!valid_name(""));
        assert!(!valid_name(".hidden"));
        assert!(!valid_name("a/b"));
        assert!(!valid_name("a b"));
        assert!(!valid_name(&"x".repeat(65)));
        assert!(valid_name(&"x".repeat(64)));
    }
}
