//! The campaign service: a multi-tenant daemon serving the
//! `renuca-campaignd-v1` wire protocol.
//!
//! The normative protocol document is `docs/protocol.md`; the operator
//! runbook is `docs/OPERATIONS.md`. Layers, bottom up:
//!
//! * [`frame`] — the CRC-checked length-prefixed frame codec (§2–3 of
//!   the protocol document);
//! * [`proto`] — the typed message grammar over frame payloads (§4–6);
//! * [`queue`] — per-tenant deficit-round-robin scheduling and bounded
//!   admission;
//! * [`daemon`] — the `campaignd` service loop: accept, schedule over
//!   the worker pool, journal, stream events, recover on restart;
//! * [`client`] — the blocking client used by `campaign-client`, the
//!   tests and the saturation bench.

pub mod client;
pub mod daemon;
pub mod frame;
pub mod proto;
pub mod queue;

pub use client::Client;
pub use daemon::{Daemon, DaemonConfig};
pub use frame::PROTO_ID;
pub use proto::{Event, Msg};
