//! `campaignd`: the multi-tenant campaign daemon.
//!
//! ```text
//! campaignd --listen <addr> --root <dir> [--workers N] [--max-pending J]
//!           [--tenant-quota J] [--quantum Q]
//! ```
//!
//! Serves the `renuca-campaignd-v1` protocol (`docs/protocol.md`) until
//! killed. `kill -9` is always safe: all durable state is journalled, and
//! the next start recovers and resumes every incomplete campaign under
//! `--root`. The operator runbook is `docs/OPERATIONS.md`.
//!
//! With `--listen 127.0.0.1:0` the kernel picks the port; the chosen
//! address is printed on the first stdout line
//! (`campaignd listening on <addr> ...`), which scripts parse.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use campaign::serve::{Daemon, DaemonConfig};

const USAGE: &str = "\
usage: campaignd --listen <addr> --root <dir> [--workers N]
                 [--max-pending J] [--tenant-quota J] [--quantum Q]";

struct Cli {
    listen: String,
    config: DaemonConfig,
}

fn parse_cli() -> Result<Cli, String> {
    let mut listen: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut workers: Option<usize> = None;
    let mut max_pending: Option<usize> = None;
    let mut tenant_quota: Option<usize> = None;
    let mut quantum: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--listen" => listen = Some(value("--listen")?),
            "--root" => root = Some(PathBuf::from(value("--root")?)),
            "--workers" => {
                let v = value("--workers")?;
                workers = Some(v.parse().map_err(|_| format!("bad worker count {v:?}"))?);
            }
            "--max-pending" => {
                let v = value("--max-pending")?;
                let k: usize = v.parse().map_err(|_| format!("bad job bound {v:?}"))?;
                if k == 0 {
                    return Err("--max-pending must be positive".into());
                }
                max_pending = Some(k);
            }
            "--tenant-quota" => {
                let v = value("--tenant-quota")?;
                let k: usize = v.parse().map_err(|_| format!("bad job bound {v:?}"))?;
                if k == 0 {
                    return Err("--tenant-quota must be positive".into());
                }
                tenant_quota = Some(k);
            }
            "--quantum" => {
                let v = value("--quantum")?;
                quantum = Some(v.parse().map_err(|_| format!("bad quantum {v:?}"))?);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let mut config = DaemonConfig::for_root(root.ok_or("missing --root <dir>")?);
    if let Some(w) = workers {
        config.workers = w;
    }
    if let Some(j) = max_pending {
        config.max_pending_jobs = j;
    }
    if let Some(j) = tenant_quota {
        config.max_pending_per_tenant = j;
    }
    if let Some(q) = quantum {
        config.quantum = q;
    }
    Ok(Cli {
        listen: listen.ok_or("missing --listen <addr>")?,
        config,
    })
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let root = cli.config.root.clone();
    let workers = cli.config.workers;
    let daemon = match Daemon::bind(&cli.listen, cli.config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: bind {}: {e}", cli.listen);
            return ExitCode::FAILURE;
        }
    };
    match daemon.local_addr() {
        Ok(addr) => {
            // First stdout line is machine-parsed by scripts/ci.sh and
            // the integration tests; keep its shape stable.
            println!(
                "campaignd listening on {addr} (root {}, workers {workers})",
                root.display()
            );
            // The poll loop never writes stdout again; make sure the
            // line is visible to a pipe reader immediately.
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("error: local_addr: {e}");
            return ExitCode::FAILURE;
        }
    }
    let shutdown = Arc::new(AtomicBool::new(false));
    match daemon.run(shutdown) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
