//! `campaign-client`: command-line client for `campaignd`.
//!
//! ```text
//! campaign-client submit  <spec.campaign> --addr A --tenant T [--rename NAME]
//! campaign-client status  [CAMPAIGN]      --addr A --tenant T
//! campaign-client watch   <CAMPAIGN>      --addr A --tenant T [--timeout-s S]
//! campaign-client loadgen <spec.campaign> --addr A --tenants N --repeat K
//!                                         [--tenant-prefix P] [--timeout-s S]
//! campaign-client ping                    --addr A --tenant T
//! ```
//!
//! Exit codes: 0 success, 2 usage, 4 `BUSY` (submit only), 1 anything
//! else. `watch` subscribes and exits when the campaign's report is
//! durable. `loadgen` drives N tenants from N threads, each submitting K
//! uniquely renamed copies of the spec, honouring `BUSY` backoff, and
//! prints aggregate throughput.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use campaign::serve::proto::{CampaignStatus, QuarantineStatus};
use campaign::serve::{Client, Event, Msg};

const USAGE: &str = "\
usage: campaign-client submit  <spec.campaign> --addr A --tenant T [--rename NAME]
       campaign-client status  [CAMPAIGN]      --addr A --tenant T
       campaign-client watch   <CAMPAIGN>      --addr A --tenant T [--timeout-s S]
       campaign-client loadgen <spec.campaign> --addr A --tenants N --repeat K
                                               [--tenant-prefix P] [--timeout-s S]
       campaign-client ping                    --addr A --tenant T";

#[derive(Default)]
struct Cli {
    command: String,
    positional: Option<String>,
    addr: String,
    tenant: String,
    rename: Option<String>,
    tenants: usize,
    repeat: usize,
    tenant_prefix: String,
    timeout_s: u64,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        tenant: "default".to_string(),
        tenants: 4,
        repeat: 1,
        tenant_prefix: "load".to_string(),
        timeout_s: 600,
        ..Cli::default()
    };
    let mut args = std::env::args().skip(1);
    cli.command = args.next().ok_or("missing command")?;
    if !matches!(
        cli.command.as_str(),
        "submit" | "status" | "watch" | "loadgen" | "ping"
    ) {
        return Err(format!("unknown command {:?}", cli.command));
    }
    while let Some(a) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--addr" => cli.addr = value("--addr")?,
            "--tenant" => cli.tenant = value("--tenant")?,
            "--rename" => cli.rename = Some(value("--rename")?),
            "--tenants" => {
                let v = value("--tenants")?;
                cli.tenants = v.parse().map_err(|_| format!("bad tenant count {v:?}"))?;
            }
            "--repeat" => {
                let v = value("--repeat")?;
                cli.repeat = v.parse().map_err(|_| format!("bad repeat count {v:?}"))?;
            }
            "--tenant-prefix" => cli.tenant_prefix = value("--tenant-prefix")?,
            "--timeout-s" => {
                let v = value("--timeout-s")?;
                cli.timeout_s = v.parse().map_err(|_| format!("bad timeout {v:?}"))?;
            }
            other if !other.starts_with("--") && cli.positional.is_none() => {
                cli.positional = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if cli.addr.is_empty() {
        return Err("missing --addr <host:port>".into());
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cli.command.as_str() {
        "submit" => submit(&cli),
        "status" => status(&cli),
        "watch" => watch(&cli),
        "loadgen" => loadgen(&cli),
        "ping" => ping(&cli),
        _ => unreachable!(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn read_spec(cli: &Cli) -> Result<String, String> {
    let path = cli
        .positional
        .as_deref()
        .ok_or("missing <spec.campaign> argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    match &cli.rename {
        Some(name) => rename_spec(&text, name),
        None => Ok(text),
    }
}

/// Rewrite the `name` directive of a spec (used by `--rename` and by
/// loadgen to make each submitted copy a distinct campaign).
fn rename_spec(text: &str, new_name: &str) -> Result<String, String> {
    let mut out = String::with_capacity(text.len());
    let mut renamed = false;
    for line in text.lines() {
        if !renamed && line.trim_start().starts_with("name ") {
            out.push_str(&format!("name {new_name}\n"));
            renamed = true;
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    if !renamed {
        return Err("spec has no `name` directive to rename".into());
    }
    Ok(out)
}

fn submit(cli: &Cli) -> Result<ExitCode, String> {
    let spec_text = read_spec(cli)?;
    let mut client = Client::connect(&cli.addr, &cli.tenant)?;
    match client.submit(&spec_text)? {
        Msg::Submitted {
            campaign,
            fingerprint,
            grid,
            pending,
            report,
        } => {
            println!(
                "submitted {campaign} (fingerprint {fingerprint:016x}): \
                 grid {grid}, pending {pending}, report {}",
                if report { "written" } else { "absent" }
            );
            Ok(ExitCode::SUCCESS)
        }
        Msg::Busy { reason, retry_ms } => {
            println!("busy: {reason}; retry in {retry_ms} ms");
            Ok(ExitCode::from(4))
        }
        _ => unreachable!("submit() filters replies"),
    }
}

fn print_status(campaigns: &[CampaignStatus], quarantines: &[QuarantineStatus]) {
    for c in campaigns {
        println!(
            "campaign {}: {}/{} done, {} quarantined, {} pending, report {}",
            c.name,
            c.done,
            c.grid,
            c.quarantined,
            c.pending,
            if c.report { "written" } else { "absent" }
        );
    }
    for q in quarantines {
        println!(
            "  quarantined {} ({}) after {} attempts; panic payload:",
            q.id, q.campaign, q.attempts
        );
        if q.payload.is_empty() {
            println!("    <empty payload>");
        }
        for line in q.payload.lines() {
            println!("    {line}");
        }
    }
}

fn status(cli: &Cli) -> Result<ExitCode, String> {
    let mut client = Client::connect(&cli.addr, &cli.tenant)?;
    let (campaigns, quarantines) = client.status(cli.positional.as_deref())?;
    if campaigns.is_empty() {
        println!("no campaigns for tenant {}", cli.tenant);
    }
    print_status(&campaigns, &quarantines);
    Ok(ExitCode::SUCCESS)
}

fn watch(cli: &Cli) -> Result<ExitCode, String> {
    let campaign = cli
        .positional
        .as_deref()
        .ok_or("missing <CAMPAIGN> argument")?;
    let deadline = Instant::now() + Duration::from_secs(cli.timeout_s);
    let mut client = Client::connect(&cli.addr, &cli.tenant)?;
    let (campaigns, quarantines) = client.subscribe(Some(campaign))?;
    print_status(&campaigns, &quarantines);
    if campaigns.iter().any(|c| c.name == campaign && c.report) {
        println!("complete: {campaign}");
        return Ok(ExitCode::SUCCESS);
    }
    loop {
        let now = Instant::now();
        if now >= deadline {
            return Err(format!("timed out waiting for {campaign}"));
        }
        match client.recv_timeout(deadline - now)? {
            None => return Err(format!("timed out waiting for {campaign}")),
            Some(Msg::Event(e)) => match e {
                Event::JobDone { id, key, .. } => println!("done {id} ({key})"),
                Event::JobQuarantined { id, attempts, .. } => {
                    println!("quarantined {id} after {attempts} attempts")
                }
                Event::CampaignComplete {
                    campaign: name,
                    completed,
                    quarantined,
                    report,
                } => {
                    println!(
                        "complete: {name} ({completed} done, {quarantined} quarantined, \
                         report {report})"
                    );
                    return Ok(ExitCode::SUCCESS);
                }
            },
            Some(other) => return Err(format!("unexpected message: {other:?}")),
        }
    }
}

fn ping(cli: &Cli) -> Result<ExitCode, String> {
    let mut client = Client::connect(&cli.addr, &cli.tenant)?;
    let start = Instant::now();
    client.ping(0x5eed)?;
    println!("pong in {:?}", start.elapsed());
    Ok(ExitCode::SUCCESS)
}

/// Per-thread loadgen result.
struct LoadStats {
    jobs: usize,
    campaigns: usize,
    busy_retries: usize,
}

fn loadgen(cli: &Cli) -> Result<ExitCode, String> {
    let spec_text = read_spec(cli)?;
    let base = campaign::CampaignSpec::parse(&spec_text)?;
    if cli.tenants == 0 || cli.repeat == 0 {
        return Err("--tenants and --repeat must be positive".into());
    }
    let deadline = Duration::from_secs(cli.timeout_s);
    let start = Instant::now();
    let results: Vec<Result<LoadStats, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cli.tenants)
            .map(|t| {
                let tenant = format!("{}{t}", cli.tenant_prefix);
                let base_name = base.name.clone();
                let spec_text = spec_text.clone();
                scope.spawn(move || {
                    drive_tenant(
                        &cli.addr, &tenant, &base_name, &spec_text, cli.repeat, deadline,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("loadgen thread panicked".into()))
            })
            .collect()
    });
    let elapsed = start.elapsed();
    let mut jobs = 0;
    let mut campaigns = 0;
    let mut busy = 0;
    for r in results {
        let s = r?;
        jobs += s.jobs;
        campaigns += s.campaigns;
        busy += s.busy_retries;
    }
    let secs = elapsed.as_secs_f64().max(1e-9);
    println!(
        "loadgen: {campaigns} campaigns / {jobs} jobs across {} tenants in {:.2}s \
         ({:.2} jobs/s, {busy} busy retries)",
        cli.tenants,
        secs,
        jobs as f64 / secs
    );
    Ok(ExitCode::SUCCESS)
}

/// One loadgen tenant: submit `repeat` renamed copies (honouring BUSY
/// backoff), then poll status until all of them have durable reports.
fn drive_tenant(
    addr: &str,
    tenant: &str,
    base_name: &str,
    spec_text: &str,
    repeat: usize,
    deadline: Duration,
) -> Result<LoadStats, String> {
    let start = Instant::now();
    let mut client = Client::connect_retry(addr, tenant, Duration::from_secs(5))?;
    let mut names = Vec::with_capacity(repeat);
    let mut jobs = 0usize;
    let mut busy_retries = 0usize;
    for k in 0..repeat {
        let name = format!("{base_name}-{tenant}-{k}");
        let text = rename_spec(spec_text, &name)?;
        loop {
            if start.elapsed() > deadline {
                return Err(format!("{tenant}: timed out submitting {name}"));
            }
            match client.submit(&text)? {
                Msg::Submitted { grid, .. } => {
                    jobs += grid;
                    names.push(name.clone());
                    break;
                }
                Msg::Busy { retry_ms, .. } => {
                    busy_retries += 1;
                    std::thread::sleep(Duration::from_millis(retry_ms.clamp(10, 2000)));
                }
                _ => unreachable!("submit() filters replies"),
            }
        }
    }
    loop {
        if start.elapsed() > deadline {
            return Err(format!("{tenant}: timed out waiting for completion"));
        }
        let (campaigns, _) = client.status(None)?;
        let complete = names
            .iter()
            .filter(|n| campaigns.iter().any(|c| &&c.name == n && c.report))
            .count();
        if complete == names.len() {
            return Ok(LoadStats {
                jobs,
                campaigns: names.len(),
                busy_retries,
            });
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}
