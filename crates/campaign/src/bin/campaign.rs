//! Campaign driver: `campaign <run|resume|status|verify> <spec> --out <dir>`.
//!
//! * `run` — execute (or continue) a campaign. Idempotent: journalled work
//!   is skipped, and the invocation that covers the last grid cell writes
//!   `report.json`.
//! * `resume` — exactly `run`, but refuses to *start* a campaign: a journal
//!   must already exist (catches out-dir typos after a crash).
//! * `status` — print progress from the journals without running anything.
//! * `verify` — re-hash every job manifest against the journal and
//!   re-aggregate; fails unless `report.json` matches byte-for-byte.
//!
//! Options: `--shard I/N` (split the grid by `job.index % N`, each shard
//! appends to its own journal; any later invocation merges all of them),
//! `--threads N`, and `--max-jobs K` (stop scheduling after K completions
//! — the crash-injection hook used by tests and the CI smoke; exits 3).

use std::path::PathBuf;
use std::process::ExitCode;

use campaign::scheduler::{self, RunOptions};
use campaign::{report, CampaignSpec};

const USAGE: &str = "\
usage: campaign <run|resume|status|verify> <spec.campaign> --out <dir>
                [--shard I/N] [--threads N] [--max-jobs K]";

struct Cli {
    command: String,
    spec_path: PathBuf,
    out: PathBuf,
    opts: RunOptions,
}

fn parse_cli() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or("missing command")?;
    if !matches!(command.as_str(), "run" | "resume" | "status" | "verify") {
        return Err(format!("unknown command {command:?}"));
    }
    let spec_path = PathBuf::from(args.next().ok_or("missing spec path")?);
    let mut out: Option<PathBuf> = None;
    let mut opts = RunOptions::default();
    while let Some(a) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--shard" => {
                let v = value("--shard")?;
                let (i, n) = v
                    .split_once('/')
                    .ok_or_else(|| format!("--shard takes I/N, got {v:?}"))?;
                opts.shard_index = i.parse().map_err(|_| format!("bad shard index {i:?}"))?;
                opts.shard_count = n.parse().map_err(|_| format!("bad shard count {n:?}"))?;
                if opts.shard_count == 0 || opts.shard_index >= opts.shard_count {
                    return Err(format!("shard {v} out of range"));
                }
            }
            "--threads" => {
                let v = value("--threads")?;
                opts.threads = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
                if opts.threads == 0 {
                    return Err("--threads must be positive".into());
                }
            }
            "--max-jobs" => {
                let v = value("--max-jobs")?;
                let k: usize = v.parse().map_err(|_| format!("bad job count {v:?}"))?;
                opts.max_jobs = Some(k);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Cli {
        command,
        spec_path,
        out: out.ok_or("missing --out <dir>")?,
        opts,
    })
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&cli.spec_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", cli.spec_path.display());
            return ExitCode::from(2);
        }
    };
    let spec = match CampaignSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {}: {e}", cli.spec_path.display());
            return ExitCode::from(2);
        }
    };

    let result = match cli.command.as_str() {
        "run" | "resume" => {
            if cli.command == "resume" && !scheduler::has_journal(&cli.out) {
                eprintln!(
                    "error: nothing to resume: no journal in {} (use `run` to start)",
                    cli.out.display()
                );
                return ExitCode::from(2);
            }
            run(&spec, &cli)
        }
        "status" => status(&spec, &cli),
        "verify" => verify(&spec, &cli),
        _ => unreachable!(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(spec: &CampaignSpec, cli: &Cli) -> Result<ExitCode, String> {
    let outcome = scheduler::run(spec, &cli.out, cli.opts)?;
    println!(
        "campaign {}: shard {}/{}: {} executed, {} quarantined, {} already journalled",
        spec.name,
        cli.opts.shard_index,
        cli.opts.shard_count,
        outcome.executed,
        outcome.quarantined,
        outcome.skipped
    );
    if outcome.stopped_early {
        println!("stopped early after --max-jobs; campaign left resumable");
        return Ok(ExitCode::from(3));
    }
    match &outcome.report {
        Some(path) => println!("report: {}", path.display()),
        None => println!("grid not fully covered yet; no report written"),
    }
    Ok(ExitCode::SUCCESS)
}

fn status(spec: &CampaignSpec, cli: &Cli) -> Result<ExitCode, String> {
    let s = scheduler::status(spec, &cli.out)?;
    println!(
        "campaign {}: {}/{} done, {} quarantined, {} failed attempts, report {}",
        spec.name,
        s.done,
        s.grid,
        s.quarantined.len(),
        s.failed_attempts,
        if s.report_exists { "written" } else { "absent" }
    );
    for (id, key, attempts, payload) in &s.quarantined {
        println!("  quarantined {id} ({key}) after {attempts} attempts; panic payload:");
        if payload.is_empty() {
            println!("    <empty payload>");
        }
        for line in payload.lines() {
            println!("    {line}");
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn verify(spec: &CampaignSpec, cli: &Cli) -> Result<ExitCode, String> {
    let v = report::verify(spec, &cli.out)?;
    println!(
        "campaign {}: verified {} manifests + report.json byte-identical \
         re-aggregation ({} quarantined)",
        spec.name, v.manifests_checked, v.quarantined
    );
    Ok(ExitCode::SUCCESS)
}
