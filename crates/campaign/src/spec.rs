//! The `renuca-campaign-v1` spec: a hermetic text declaration of an
//! experiment grid, and its deterministic expansion into jobs.
//!
//! A spec is line-oriented. Blank lines and `#` comments are ignored; the
//! first significant line must be the schema id `renuca-campaign-v1`.
//! Directives (one per line, space-separated):
//!
//! ```text
//! renuca-campaign-v1
//! name fig3                      # required; campaign identity
//! config default                 # default | small <1|4|16> | mesh <cols> <rows>
//! budget warmup=500000 measure=300000   # optional; default: RENUCA_WARMUP/MEASURE
//! schemes S-NUCA R-NUCA Private Naive   # or: all | baselines
//! workloads 1..10                # inclusive range, or an explicit list
//! thresholds 3                   # CPT x% sweep axis; optional, default 3
//! set l2.size_bytes 131072       # config overrides (see OVERRIDES)
//! retries 2                      # attempts after the first failure
//! backoff-ms 100                 # deterministic retry backoff base
//! inject-fail 3 2                # fault injection: jobs of WL3 panic on
//!                                # their first 2 attempts (crash testing)
//! ```
//!
//! **Job-ID determinism.** The grid expands in a fixed nesting order —
//! thresholds, then schemes, then workloads, each in spec order — so a
//! job's `index` is a pure function of the spec. Its canonical key is
//! `x=<threshold>/scheme=<name>/wl=<id>` and its id is `j` followed by the
//! 16-hex-digit FNV-1a of `<campaign name>|<key>`: two shards, two hosts,
//! or two resumes of the same spec always agree on every id, which is what
//! makes journals mergeable.

use std::fmt::Write as _;

use cmp_sim::SystemConfig;
use experiments::Budget;
use renuca_core::Scheme;

use crate::hashes::fnv1a64;

/// Schema id on the first significant line of every campaign spec.
pub const SPEC_SCHEMA: &str = "renuca-campaign-v1";

/// The `set`-able configuration overrides, with their target fields.
/// Kept to knobs the paper's evaluation actually sweeps; anything else in
/// a `set` line is a parse error, not a silent no-op.
pub const OVERRIDES: [&str; 6] = [
    "l2.size_bytes",
    "l3_bank.size_bytes",
    "rob_entries",
    "naive_dir_latency",
    "prefetch.enabled",
    "intra_bank_rotation_writes",
];

/// A parsed, validated campaign.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Campaign name (job-id namespace and report header).
    pub name: String,
    /// The machine every job simulates (base config + `set` overrides).
    pub config: SystemConfig,
    /// Human-readable description of the config line + overrides.
    pub config_desc: String,
    /// Instruction budget per job (spec line, else `RENUCA_*` env).
    pub budget: Budget,
    /// Placement schemes, in spec order.
    pub schemes: Vec<Scheme>,
    /// Workload mix ids (1-based), in spec order.
    pub workloads: Vec<usize>,
    /// CPT threshold sweep values (percent), in spec order.
    pub thresholds: Vec<f64>,
    /// Retry attempts after the first failure of a job.
    pub retries: u32,
    /// Base of the deterministic retry backoff (`backoff_ms << attempt`).
    pub backoff_ms: u64,
    /// Fault injection: `(workload, n)` makes jobs of that workload panic
    /// on their first `n` attempts in each process. Test-only plumbing for
    /// the crash/retry/quarantine paths; production specs omit it.
    pub inject_fail: Vec<(usize, u32)>,
    /// FNV-1a fingerprint of the raw spec text — journals and reports
    /// carry it so a resume against an edited spec is refused.
    pub fingerprint: u64,
}

/// One cell of the campaign grid.
#[derive(Clone, Debug, PartialEq)]
pub struct Job {
    /// Position in grid order (also the shard key: `index % shard_count`).
    pub index: usize,
    /// Placement scheme.
    pub scheme: Scheme,
    /// Workload mix id (1-based).
    pub workload: usize,
    /// CPT criticality threshold x%.
    pub threshold_pct: f64,
}

impl Job {
    /// Canonical key: `x=<threshold>/scheme=<name>/wl=<id>`.
    pub fn key(&self) -> String {
        format!(
            "x={}/scheme={}/wl={}",
            self.threshold_pct,
            self.scheme.name(),
            self.workload
        )
    }

    /// Deterministic job id: `j` + 16 hex digits of
    /// `fnv1a64("<campaign>|<key>")`.
    pub fn id(&self, campaign: &str) -> String {
        let mut s = String::new();
        let _ = write!(s, "{campaign}|{}", self.key());
        format!("j{:016x}", fnv1a64(s.as_bytes()))
    }

    /// Relative path (under the campaign out dir) of this job's manifest.
    pub fn manifest_rel(&self, campaign: &str) -> String {
        format!("jobs/{}.json", self.id(campaign))
    }
}

impl CampaignSpec {
    /// Parse and validate a spec document.
    pub fn parse(text: &str) -> Result<CampaignSpec, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.split('#').next().unwrap_or("").trim()))
            .filter(|(_, l)| !l.is_empty());

        match lines.next() {
            Some((_, first)) if first == SPEC_SCHEMA => {}
            Some((n, first)) => {
                return Err(format!(
                    "line {n}: expected schema id {SPEC_SCHEMA:?}, found {first:?}"
                ))
            }
            None => return Err("empty spec".into()),
        }

        let mut name: Option<String> = None;
        let mut config = SystemConfig::default();
        let mut config_desc = String::from("default");
        let mut budget: Option<Budget> = None;
        let mut schemes: Option<Vec<Scheme>> = None;
        let mut workloads: Option<Vec<usize>> = None;
        let mut thresholds = vec![3.0];
        let mut retries = 2u32;
        let mut backoff_ms = 100u64;
        let mut inject_fail = Vec::new();
        let mut overrides: Vec<(String, String)> = Vec::new();

        for (n, line) in lines {
            let mut words = line.split_whitespace();
            let directive = words.next().unwrap();
            let rest: Vec<&str> = words.collect();
            let err = |msg: &str| format!("line {n}: {msg}");
            match directive {
                "name" => {
                    if rest.len() != 1 {
                        return Err(err("name takes exactly one word"));
                    }
                    name = Some(rest[0].to_string());
                }
                "config" => {
                    let (cfg, desc) = parse_config(&rest).map_err(|e| err(&e))?;
                    config = cfg;
                    config_desc = desc;
                }
                "budget" => {
                    budget = Some(parse_budget(&rest).map_err(|e| err(&e))?);
                }
                "schemes" => {
                    schemes = Some(parse_schemes(&rest).map_err(|e| err(&e))?);
                }
                "workloads" => {
                    workloads = Some(parse_workloads(&rest).map_err(|e| err(&e))?);
                }
                "thresholds" => {
                    if rest.is_empty() {
                        return Err(err("thresholds needs at least one value"));
                    }
                    thresholds = rest
                        .iter()
                        .map(|w| {
                            w.parse::<f64>()
                                .ok()
                                .filter(|x| x.is_finite() && *x >= 0.0)
                                .ok_or_else(|| err(&format!("bad threshold {w:?}")))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "retries" => {
                    retries = parse_one(&rest).map_err(|e| err(&e))?;
                }
                "backoff-ms" => {
                    backoff_ms = parse_one(&rest).map_err(|e| err(&e))?;
                }
                "inject-fail" => {
                    if rest.len() != 2 {
                        return Err(err("inject-fail takes <workload> <attempts>"));
                    }
                    let wl = rest[0]
                        .parse::<usize>()
                        .map_err(|_| err("bad workload id"))?;
                    let k = rest[1]
                        .parse::<u32>()
                        .map_err(|_| err("bad attempt count"))?;
                    inject_fail.push((wl, k));
                }
                "set" => {
                    if rest.len() != 2 {
                        return Err(err("set takes <field> <value>"));
                    }
                    apply_override(&mut config, rest[0], rest[1]).map_err(|e| err(&e))?;
                    overrides.push((rest[0].to_string(), rest[1].to_string()));
                }
                other => return Err(err(&format!("unknown directive {other:?}"))),
            }
        }

        let name = name.ok_or("spec is missing a `name` line")?;
        let schemes = schemes.ok_or("spec is missing a `schemes` line")?;
        let workloads = workloads.ok_or("spec is missing a `workloads` line")?;
        for (desc, v) in overrides {
            config_desc.push_str(&format!(" {desc}={v}"));
        }
        config.validate();

        Ok(CampaignSpec {
            name,
            config,
            config_desc,
            budget: budget.unwrap_or_else(Budget::from_env),
            schemes,
            workloads,
            thresholds,
            retries,
            backoff_ms,
            inject_fail,
            fingerprint: fnv1a64(text.as_bytes()),
        })
    }

    /// Expand the grid in its fixed nesting order (thresholds → schemes →
    /// workloads). `jobs()[i].index == i` always holds.
    pub fn jobs(&self) -> Vec<Job> {
        let mut out =
            Vec::with_capacity(self.thresholds.len() * self.schemes.len() * self.workloads.len());
        for &threshold_pct in &self.thresholds {
            for &scheme in &self.schemes {
                for &workload in &self.workloads {
                    out.push(Job {
                        index: out.len(),
                        scheme,
                        workload,
                        threshold_pct,
                    });
                }
            }
        }
        out
    }

    /// Number of attempts a job gets before quarantine.
    pub fn max_attempts(&self) -> u32 {
        self.retries + 1
    }

    /// Fault injection lookup: how many leading attempts of `workload`'s
    /// jobs must panic.
    pub fn injected_failures(&self, workload: usize) -> u32 {
        self.inject_fail
            .iter()
            .find(|(wl, _)| *wl == workload)
            .map_or(0, |(_, k)| *k)
    }
}

fn parse_one<T: std::str::FromStr>(rest: &[&str]) -> Result<T, String> {
    if rest.len() != 1 {
        return Err("takes exactly one value".into());
    }
    rest[0]
        .parse::<T>()
        .map_err(|_| format!("bad value {:?}", rest[0]))
}

fn parse_config(rest: &[&str]) -> Result<(SystemConfig, String), String> {
    match rest {
        ["default"] => Ok((SystemConfig::default(), "default".into())),
        ["small", n] => {
            let n: usize = n.parse().map_err(|_| format!("bad core count {n:?}"))?;
            if !matches!(n, 1 | 4 | 16) {
                return Err("small supports 1, 4 or 16 cores".into());
            }
            Ok((SystemConfig::small(n), format!("small {n}")))
        }
        ["mesh", c, r] => {
            let cols: usize = c.parse().map_err(|_| format!("bad mesh cols {c:?}"))?;
            let rows: usize = r.parse().map_err(|_| format!("bad mesh rows {r:?}"))?;
            if cols == 0 || rows == 0 {
                return Err("mesh needs at least one tile".into());
            }
            Ok((
                SystemConfig::mesh(cols, rows),
                format!("mesh {cols} {rows}"),
            ))
        }
        _ => Err("config takes: default | small <n> | mesh <cols> <rows>".into()),
    }
}

fn parse_budget(rest: &[&str]) -> Result<Budget, String> {
    let mut warmup = None;
    let mut measure = None;
    for w in rest {
        if let Some(v) = w.strip_prefix("warmup=") {
            warmup = Some(v.parse::<u64>().map_err(|_| format!("bad warmup {v:?}"))?);
        } else if let Some(v) = w.strip_prefix("measure=") {
            measure = Some(v.parse::<u64>().map_err(|_| format!("bad measure {v:?}"))?);
        } else {
            return Err(format!("budget takes warmup=<n> measure=<n>, got {w:?}"));
        }
    }
    match (warmup, measure) {
        (Some(warmup), Some(measure)) if measure > 0 => Ok(Budget { warmup, measure }),
        (Some(_), Some(_)) => Err("measure must be positive".into()),
        _ => Err("budget needs both warmup= and measure=".into()),
    }
}

fn parse_schemes(rest: &[&str]) -> Result<Vec<Scheme>, String> {
    let out: Vec<Scheme> = match rest {
        [] => return Err("schemes needs at least one name".into()),
        ["all"] => Scheme::ALL.to_vec(),
        ["baselines"] => Scheme::BASELINES.to_vec(),
        names => names
            .iter()
            .map(|w| scheme_by_name(w))
            .collect::<Result<_, _>>()?,
    };
    let mut seen = Vec::new();
    for s in &out {
        if seen.contains(s) {
            return Err(format!("duplicate scheme {}", s.name()));
        }
        seen.push(*s);
    }
    Ok(out)
}

/// Inverse of [`Scheme::name`].
pub fn scheme_by_name(name: &str) -> Result<Scheme, String> {
    Scheme::ALL
        .iter()
        .copied()
        .find(|s| s.name() == name)
        .ok_or_else(|| {
            let known: Vec<&str> = Scheme::ALL.iter().map(|s| s.name()).collect();
            format!("unknown scheme {name:?} (known: {known:?})")
        })
}

fn parse_workloads(rest: &[&str]) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for w in rest {
        if let Some((a, b)) = w.split_once("..") {
            let a: usize = a.parse().map_err(|_| format!("bad range start {a:?}"))?;
            let b: usize = b.parse().map_err(|_| format!("bad range end {b:?}"))?;
            if a == 0 || b < a {
                return Err(format!("bad workload range {w:?}"));
            }
            out.extend(a..=b);
        } else {
            let id: usize = w.parse().map_err(|_| format!("bad workload id {w:?}"))?;
            if id == 0 {
                return Err("workload ids are 1-based".into());
            }
            out.push(id);
        }
    }
    for id in &out {
        if !workloads::is_workload_id(*id) {
            return Err(format!(
                "workload {id} out of range (1..={} or write-burst ids {}..={})",
                workloads::N_WORKLOADS,
                workloads::WBURST_ID_BASE + 1,
                workloads::TRICKLE_ID
            ));
        }
    }
    if out.is_empty() {
        return Err("workloads needs at least one id".into());
    }
    let mut seen = Vec::new();
    for id in &out {
        if seen.contains(id) {
            return Err(format!("duplicate workload {id}"));
        }
        seen.push(*id);
    }
    Ok(out)
}

fn apply_override(cfg: &mut SystemConfig, field: &str, value: &str) -> Result<(), String> {
    let num = || {
        value
            .parse::<u64>()
            .map_err(|_| format!("bad value {value:?} for {field}"))
    };
    match field {
        "l2.size_bytes" => cfg.l2.size_bytes = num()?,
        "l3_bank.size_bytes" => cfg.l3_bank.size_bytes = num()?,
        "rob_entries" => cfg.rob_entries = num()? as usize,
        "naive_dir_latency" => cfg.naive_dir_latency = num()?,
        "prefetch.enabled" => {
            cfg.prefetch.enabled = match value {
                "0" => false,
                "1" => true,
                _ => return Err(format!("prefetch.enabled takes 0 or 1, got {value:?}")),
            }
        }
        "intra_bank_rotation_writes" => {
            let v = num()?;
            cfg.intra_bank_rotation_writes = if v == 0 { None } else { Some(v) };
        }
        _ => {
            return Err(format!(
                "unknown override {field:?} (supported: {OVERRIDES:?})"
            ))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "\
renuca-campaign-v1
name tiny           # comment after directive
config small 4

schemes S-NUCA Re-NUCA
workloads 1..3
budget warmup=100 measure=500
thresholds 3 25
retries 1
";

    #[test]
    fn parses_and_expands_in_grid_order() {
        let spec = CampaignSpec::parse(TINY).unwrap();
        assert_eq!(spec.name, "tiny");
        assert_eq!(spec.schemes, vec![Scheme::SNuca, Scheme::ReNuca]);
        assert_eq!(spec.workloads, vec![1, 2, 3]);
        assert_eq!(spec.thresholds, vec![3.0, 25.0]);
        assert_eq!(spec.retries, 1);
        assert_eq!(
            spec.budget,
            Budget {
                warmup: 100,
                measure: 500
            }
        );
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 12);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.index, i);
        }
        assert_eq!(jobs[0].key(), "x=3/scheme=S-NUCA/wl=1");
        assert_eq!(jobs[3].key(), "x=3/scheme=Re-NUCA/wl=1");
        assert_eq!(jobs[6].key(), "x=25/scheme=S-NUCA/wl=1");
    }

    #[test]
    fn job_ids_are_stable_and_distinct() {
        let spec = CampaignSpec::parse(TINY).unwrap();
        let jobs = spec.jobs();
        let ids: Vec<String> = jobs.iter().map(|j| j.id(&spec.name)).collect();
        let again: Vec<String> = spec.jobs().iter().map(|j| j.id(&spec.name)).collect();
        assert_eq!(ids, again, "ids are a pure function of the spec");
        let mut uniq = ids.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), ids.len(), "no id collisions");
        for id in &ids {
            assert!(id.len() == 17 && id.starts_with('j'), "{id}");
        }
    }

    #[test]
    fn fingerprint_tracks_text() {
        let a = CampaignSpec::parse(TINY).unwrap();
        let b = CampaignSpec::parse(&TINY.replace("retries 1", "retries 3")).unwrap();
        assert_ne!(a.fingerprint, b.fingerprint);
        assert_eq!(
            a.fingerprint,
            CampaignSpec::parse(TINY).unwrap().fingerprint
        );
    }

    #[test]
    fn overrides_apply_and_unknowns_are_errors() {
        let spec = CampaignSpec::parse(
            "renuca-campaign-v1\nname o\nschemes all\nworkloads 1\n\
             set l2.size_bytes 131072\nset rob_entries 168\nset prefetch.enabled 0\n",
        )
        .unwrap();
        assert_eq!(spec.config.l2.size_bytes, 131072);
        assert_eq!(spec.config.rob_entries, 168);
        assert!(!spec.config.prefetch.enabled);
        assert!(spec.config_desc.contains("l2.size_bytes=131072"));

        for bad in [
            "renuca-campaign-v1\nname o\nschemes all\nworkloads 1\nset l1.size 1\n",
            "renuca-campaign-v1\nname o\nschemes all\nworkloads 1\nset prefetch.enabled yes\n",
        ] {
            assert!(CampaignSpec::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "renuca-campaign-v2\nname x\nschemes all\nworkloads 1\n",
            "renuca-campaign-v1\nschemes all\nworkloads 1\n",
            "renuca-campaign-v1\nname x\nworkloads 1\n",
            "renuca-campaign-v1\nname x\nschemes all\n",
            "renuca-campaign-v1\nname x\nschemes Bogus\nworkloads 1\n",
            "renuca-campaign-v1\nname x\nschemes all all\nworkloads 1\n",
            "renuca-campaign-v1\nname x\nschemes all\nworkloads 0\n",
            "renuca-campaign-v1\nname x\nschemes all\nworkloads 99\n",
            "renuca-campaign-v1\nname x\nschemes all\nworkloads 1 1\n",
            "renuca-campaign-v1\nname x\nschemes all\nworkloads 1\nbudget warmup=1\n",
            "renuca-campaign-v1\nname x\nschemes all\nworkloads 1\nfrobnicate 7\n",
            "renuca-campaign-v1\nname x\nschemes all\nworkloads 1\nthresholds -1\n",
        ] {
            assert!(CampaignSpec::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn scheme_roundtrip() {
        for s in Scheme::ALL {
            assert_eq!(scheme_by_name(s.name()).unwrap(), s);
        }
        assert!(scheme_by_name("s-nuca").is_err());
    }
}
