//! The two tiny hashes the campaign layer depends on.
//!
//! * [`fnv1a64`] fingerprints things that must be *stable identifiers*
//!   across processes and hosts: spec texts, canonical job keys, manifest
//!   bytes. FNV-1a is not cryptographic — it guards against accidents
//!   (editing a spec mid-campaign, a torn manifest), not adversaries, which
//!   is exactly the journal's threat model.
//! * [`crc32`] (IEEE 802.3, the zlib polynomial) frames journal records so
//!   a record truncated by `kill -9` mid-write is detected and ignored on
//!   resume.

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// IEEE CRC-32 (reflected, polynomial `0xEDB88320`), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    crc ^ 0xffff_ffff
}

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fnv_known_vectors() {
        // Reference values from the FNV specification.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }

    #[test]
    fn single_bit_flips_change_crc() {
        let base = b"done id=j0123 manifest=jobs/j0123.json".to_vec();
        let base_crc = crc32(&base);
        for i in 0..base.len() {
            let mut flipped = base.clone();
            flipped[i] ^= 1;
            assert_ne!(crc32(&flipped), base_crc, "flip at byte {i}");
        }
    }
}
