//! Durable, resumable experiment campaigns over the Re-NUCA stack.
//!
//! The `experiments` crate gives one-shot binaries: run a figure, print
//! it, write a manifest. A *campaign* is the production counterpart — a
//! declared grid of hundreds of simulation jobs that must survive crashes,
//! spread across shards, and still produce one deterministic aggregate:
//!
//! 1. [`spec`] parses a hermetic `renuca-campaign-v1` text file into a
//!    job grid (CPT threshold × scheme × workload) with deterministic,
//!    host-independent job ids.
//! 2. [`scheduler`] executes pending jobs over
//!    [`experiments::pool::parallel_map_threads`], journalling every
//!    completion to an append-only, CRC-framed, fsync'd log ([`journal`]).
//!    `kill -9` at any byte leaves a prefix the next invocation trusts;
//!    resume is the same code path as a first run. Failing jobs get
//!    bounded retries with deterministic exponential backoff, then
//!    quarantine with the captured panic payload.
//! 3. [`report`] folds the per-job `renuca-manifest-v1` files into one
//!    `renuca-campaign-report-v1` document in grid order. The report is a
//!    pure function of spec + manifests: interrupted, resumed and sharded
//!    executions all render byte-identical bytes, and `verify` re-proves
//!    that from cold.
//!
//! The `campaign` binary wires these into `run | resume | status |
//! verify`; ready-made specs for the paper's figures live in
//! `campaigns/`. [`serve`] layers the long-running multi-tenant
//! `campaignd` service (and its `campaign-client`) on top of the same
//! journal and scheduler, speaking the `renuca-campaignd-v1` wire
//! protocol documented in `docs/protocol.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hashes;
pub mod journal;
pub mod report;
pub mod scheduler;
pub mod serve;
pub mod spec;

pub use journal::{Journal, Record};
pub use report::{render, verify, VerifyReport, REPORT_SCHEMA};
pub use scheduler::{load_state, run, status, CampaignState, RunOptions, RunOutcome};
pub use spec::{CampaignSpec, Job, SPEC_SCHEMA};
