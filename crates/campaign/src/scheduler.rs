//! Campaign scheduler: expand the grid, skip what the journals already
//! prove done, execute the rest over the experiments thread pool, and
//! trigger aggregation once the whole grid is covered.
//!
//! The scheduler is crash-oblivious by construction: it never *updates*
//! state, it only appends fsync'd journal records and writes job manifests
//! atomically. Resume is therefore the same code path as a first run — load
//! whatever the journals prove, do the rest.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use experiments::obs::StatsSink;
use experiments::pool::parallel_map_threads;
use experiments::run_workload;
use experiments::runner::lifetime_model;
use renuca_core::CptConfig;
use workloads::workload_mix;

use crate::hashes::fnv1a64;
use crate::journal::{journal_files, read_journal, shard_file_name, Journal, Record};
use crate::spec::{CampaignSpec, Job};

/// How one scheduler invocation should run.
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// This invocation's shard (`0..shard_count`).
    pub shard_index: usize,
    /// Total shards splitting the grid (`job.index % shard_count`).
    pub shard_count: usize,
    /// Worker threads for the experiments pool.
    pub threads: usize,
    /// Stop scheduling new jobs after this many complete in *this*
    /// invocation (crash-injection hook for tests and the CI smoke; the
    /// report is not written when the stop triggers).
    pub max_jobs: Option<usize>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            shard_index: 0,
            shard_count: 1,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            max_jobs: None,
        }
    }
}

/// What the journals currently prove about a campaign.
#[derive(Clone, Debug, Default)]
pub struct CampaignState {
    /// Completed jobs: id → (manifest rel path, manifest fnv, key).
    pub done: Vec<(String, String, u64, String)>,
    /// Quarantined jobs: id → (attempts, last panic payload).
    pub quarantined: Vec<(String, u32, String)>,
    /// Total failed attempts recorded (all jobs, all invocations).
    pub failed_attempts: usize,
}

impl CampaignState {
    fn is_done(&self, id: &str) -> bool {
        self.done.iter().any(|(i, ..)| i == id)
    }

    fn is_quarantined(&self, id: &str) -> bool {
        self.quarantined.iter().any(|(i, ..)| i == id)
    }

    /// Look up a completed job's `(manifest rel path, fnv)`.
    pub fn manifest_of(&self, id: &str) -> Option<(&str, u64)> {
        self.done
            .iter()
            .find(|(i, ..)| i == id)
            .map(|(_, rel, fnv, _)| (rel.as_str(), *fnv))
    }

    /// Look up a quarantined job's `(attempts, payload)`.
    pub fn quarantine_of(&self, id: &str) -> Option<(u32, &str)> {
        self.quarantined
            .iter()
            .find(|(i, ..)| i == id)
            .map(|(_, attempts, payload)| (*attempts, payload.as_str()))
    }
}

/// Load campaign state by merging every `journal-*.log` in `dir`.
///
/// Every journal must open with a header matching `spec` (same name,
/// fingerprint, grid size and budget) — a mismatch means the spec changed
/// under a live campaign and is a hard error, not something to paper over.
/// A `done` record is trusted only if its manifest file still exists and
/// its bytes hash to the recorded FNV; otherwise the job is demoted back to
/// pending (the crash window between manifest rename and journal append).
pub fn load_state(spec: &CampaignSpec, dir: &Path) -> Result<CampaignState, String> {
    let mut state = CampaignState::default();
    for path in journal_files(dir).map_err(|e| format!("scan {}: {e}", dir.display()))? {
        let records = read_journal(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let mut records = records.into_iter();
        match records.next() {
            None => continue, // torn before the header: an empty journal
            Some(Record::Header {
                name,
                fingerprint,
                grid,
                warmup,
                measure,
            }) => {
                if name != spec.name
                    || fingerprint != spec.fingerprint
                    || grid != spec.jobs().len()
                    || warmup != spec.budget.warmup
                    || measure != spec.budget.measure
                {
                    return Err(format!(
                        "{}: journal belongs to a different campaign or spec revision \
                         (journal: name={name} fp={fingerprint:016x} grid={grid} \
                         warmup={warmup} measure={measure}; spec: name={} fp={:016x} \
                         grid={} warmup={} measure={})",
                        path.display(),
                        spec.name,
                        spec.fingerprint,
                        spec.jobs().len(),
                        spec.budget.warmup,
                        spec.budget.measure,
                    ));
                }
            }
            Some(other) => {
                return Err(format!(
                    "{}: first record is not a header: {other:?}",
                    path.display()
                ))
            }
        }
        for record in records {
            match record {
                Record::Header { .. } => {
                    return Err(format!("{}: duplicate header", path.display()))
                }
                Record::Done {
                    id,
                    manifest,
                    fnv,
                    key,
                } => {
                    if state.is_done(&id) {
                        continue; // another shard got there first
                    }
                    match fs::read(dir.join(&manifest)) {
                        Ok(bytes) if fnv1a64(&bytes) == fnv => {
                            state.done.push((id, manifest, fnv, key));
                        }
                        _ => {} // torn or missing manifest: job stays pending
                    }
                }
                Record::Fail { .. } => state.failed_attempts += 1,
                Record::Quarantine {
                    id,
                    attempts,
                    payload,
                } => {
                    if !state.is_quarantined(&id) {
                        state.quarantined.push((id, attempts, payload));
                    }
                }
            }
        }
    }
    Ok(state)
}

/// Outcome of one [`run`] invocation.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Jobs completed by this invocation.
    pub executed: usize,
    /// Jobs newly quarantined by this invocation.
    pub quarantined: usize,
    /// Jobs the journals already proved done or quarantined.
    pub skipped: usize,
    /// True when `max_jobs` stopped scheduling before the shard finished.
    pub stopped_early: bool,
    /// Path of the campaign report, written iff the *full* grid (all
    /// shards) is covered after this invocation.
    pub report: Option<PathBuf>,
}

enum JobResult {
    Done,
    Quarantined,
    NotScheduled,
}

/// What [`execute_one`] proved about a job — enough detail for the daemon
/// to stream completion events without re-reading the journal.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// The job completed; its manifest and `done` record are durable.
    Done {
        /// Job id.
        id: String,
        /// Canonical job key.
        key: String,
        /// Manifest path relative to the campaign dir.
        manifest: String,
    },
    /// The job exhausted its retries; the `quarantine` record is durable.
    Quarantined {
        /// Job id.
        id: String,
        /// Canonical job key.
        key: String,
        /// Attempts made.
        attempts: u32,
        /// Panic payload of the last attempt.
        payload: String,
    },
}

/// Execute (or resume) a campaign shard. Idempotent: completed work is
/// skipped, interrupted work is redone, and the final report is written by
/// whichever invocation covers the last cell of the grid.
pub fn run(spec: &CampaignSpec, dir: &Path, opts: RunOptions) -> Result<RunOutcome, String> {
    assert!(
        opts.shard_count > 0 && opts.shard_index < opts.shard_count,
        "shard {}/{} out of range",
        opts.shard_index,
        opts.shard_count
    );
    let jobs = spec.jobs();
    let state = load_state(spec, dir)?;
    fs::create_dir_all(dir.join("jobs")).map_err(|e| format!("mkdir jobs: {e}"))?;

    let header = Record::Header {
        name: spec.name.clone(),
        fingerprint: spec.fingerprint,
        grid: jobs.len(),
        warmup: spec.budget.warmup,
        measure: spec.budget.measure,
    };
    let journal = Journal::open(dir, opts.shard_index, opts.shard_count, &header)
        .map_err(|e| format!("open journal: {e}"))?;
    let journal = Mutex::new(journal);

    let shard_jobs: Vec<&Job> = jobs
        .iter()
        .filter(|j| j.index % opts.shard_count == opts.shard_index)
        .collect();
    let pending: Vec<&Job> = shard_jobs
        .iter()
        .copied()
        .filter(|j| {
            let id = j.id(&spec.name);
            !state.is_done(&id) && !state.is_quarantined(&id)
        })
        .collect();
    let skipped = shard_jobs.len() - pending.len();

    let completed = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let results = parallel_map_threads(&pending, opts.threads, |job| {
        if stop.load(Ordering::SeqCst) {
            return JobResult::NotScheduled;
        }
        let result = match execute_one(spec, dir, job, &journal) {
            JobOutcome::Done { .. } => JobResult::Done,
            JobOutcome::Quarantined { .. } => JobResult::Quarantined,
        };
        let finished = completed.fetch_add(1, Ordering::SeqCst) + 1;
        if opts.max_jobs.is_some_and(|k| finished >= k) {
            stop.store(true, Ordering::SeqCst);
        }
        result
    });

    let executed = results
        .iter()
        .filter(|r| matches!(r, JobResult::Done))
        .count();
    let quarantined = results
        .iter()
        .filter(|r| matches!(r, JobResult::Quarantined))
        .count();
    let stopped_early = results.iter().any(|r| matches!(r, JobResult::NotScheduled));

    let mut outcome = RunOutcome {
        executed,
        quarantined,
        skipped,
        stopped_early,
        report: None,
    };
    if stopped_early {
        // Simulated crash: leave the journal as-is, write no report.
        return Ok(outcome);
    }

    // Re-scan all journals: other shards may have finished the grid, or
    // this invocation may have been the last one standing.
    let merged = load_state(spec, dir)?;
    if (merged.done.len() + merged.quarantined.len()) >= jobs.len() {
        let report_path = dir.join("report.json");
        let bytes = crate::report::render(spec, dir, &merged)?;
        experiments::obs::atomic_write(&report_path, &bytes)
            .map_err(|e| format!("write {}: {e}", report_path.display()))?;
        outcome.report = Some(report_path);
    }
    Ok(outcome)
}

/// Run one job to completion or quarantine. Returns after appending the
/// final `done`/`quarantine` record for it.
///
/// This is *the* job execution path: the batch scheduler ([`run`]) and
/// the daemon (`serve::daemon`) both call it, so retries, backoff,
/// quarantine capture and journal framing are identical no matter which
/// front end drove the campaign — which is what makes daemon-produced
/// reports byte-identical to CLI-produced ones.
pub fn execute_one(
    spec: &CampaignSpec,
    dir: &Path,
    job: &Job,
    journal: &Mutex<Journal>,
) -> JobOutcome {
    let id = job.id(&spec.name);
    let injected = spec.injected_failures(job.workload);
    let mut last_payload = String::new();
    for attempt in 1..=spec.max_attempts() {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            assert!(
                attempt > injected,
                "injected failure: wl={} attempt={attempt}",
                job.workload
            );
            simulate_and_emit(spec, dir, job)
        }));
        match outcome {
            Ok(fnv) => {
                let record = Record::Done {
                    id: id.clone(),
                    manifest: job.manifest_rel(&spec.name),
                    fnv,
                    key: job.key(),
                };
                journal
                    .lock()
                    .unwrap()
                    .append(&record)
                    .expect("journal append");
                return JobOutcome::Done {
                    id,
                    key: job.key(),
                    manifest: job.manifest_rel(&spec.name),
                };
            }
            Err(payload) => {
                last_payload = panic_text(payload.as_ref());
                let record = Record::Fail {
                    id: id.clone(),
                    attempt,
                    payload: last_payload.clone(),
                };
                journal
                    .lock()
                    .unwrap()
                    .append(&record)
                    .expect("journal append");
                if attempt < spec.max_attempts() {
                    // Deterministic exponential backoff, capped at 10 s.
                    let ms = spec
                        .backoff_ms
                        .saturating_mul(1 << (attempt - 1))
                        .min(10_000);
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
            }
        }
    }
    let record = Record::Quarantine {
        id: id.clone(),
        attempts: spec.max_attempts(),
        payload: last_payload.clone(),
    };
    journal
        .lock()
        .unwrap()
        .append(&record)
        .expect("journal append");
    JobOutcome::Quarantined {
        id,
        key: job.key(),
        attempts: spec.max_attempts(),
        payload: last_payload,
    }
}

/// Simulate one grid cell, write its `renuca-manifest-v1` atomically, and
/// return the FNV-1a fingerprint of the manifest bytes on disk.
fn simulate_and_emit(spec: &CampaignSpec, dir: &Path, job: &Job) -> u64 {
    let cfg = spec.config;
    let wl = workload_mix(job.workload, cfg.n_cores);
    let cpt = CptConfig::with_threshold(job.threshold_pct);
    let r = run_workload(&wl, job.scheme, cfg, cpt, spec.budget);
    let lifetimes = lifetime_model(&cfg).all_bank_lifetimes(&r.wear, r.cycles);

    let manifest_path = dir.join(job.manifest_rel(&spec.name));
    let sink = StatsSink::to(&manifest_path);
    sink.emit_with("campaign", &job.key(), Some(&cfg), spec.budget, |m| {
        let reg = m.stats_mut();
        reg.set("job.index", job.index as u64);
        reg.set("job.scheme", job.scheme.name());
        reg.set("job.workload", job.workload as u64);
        reg.set("job.threshold_pct", job.threshold_pct);
        reg.set("job.ipc", r.total_ipc());
        reg.set("wear.interset_cv", r.wear.interset_cv(cfg.l3_bank.assoc));
        reg.set("wear.intraset_cv", r.wear.intraset_cv(cfg.l3_bank.assoc));
        for (b, w) in r.bank_writes.iter().enumerate() {
            reg.set(format!("job.bank_writes[{b}]"), *w);
        }
        m.push_wear_row(&job.key(), &lifetimes);
    });
    let bytes = fs::read(&manifest_path).expect("read back emitted manifest");
    fnv1a64(&bytes)
}

/// Render a panic payload as text (the common `String` / `&str` payloads;
/// anything else gets a placeholder).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Human-readable progress summary for `campaign status`.
#[derive(Clone, Debug)]
pub struct StatusSummary {
    /// Total grid size.
    pub grid: usize,
    /// Jobs proven done.
    pub done: usize,
    /// Jobs quarantined, with `(id, key, attempts, payload)`. The id and
    /// full panic payload are surfaced so `campaign status` (and the
    /// daemon's status reply) point straight at the failing cell.
    pub quarantined: Vec<(String, String, u32, String)>,
    /// Failed attempts recorded across all invocations.
    pub failed_attempts: usize,
    /// Whether `report.json` exists in the out dir.
    pub report_exists: bool,
}

/// Summarise journal state without executing anything.
pub fn status(spec: &CampaignSpec, dir: &Path) -> Result<StatusSummary, String> {
    let state = load_state(spec, dir)?;
    let jobs = spec.jobs();
    let mut quarantined = Vec::new();
    for job in &jobs {
        let id = job.id(&spec.name);
        if let Some((attempts, payload)) = state.quarantine_of(&id) {
            quarantined.push((id, job.key(), attempts, payload.to_string()));
        }
    }
    Ok(StatusSummary {
        grid: jobs.len(),
        done: state.done.len(),
        quarantined,
        failed_attempts: state.failed_attempts,
        report_exists: dir.join("report.json").exists(),
    })
}

/// Whether any journal exists for this campaign yet (drives the
/// `resume`-refuses-to-start-fresh CLI behaviour).
pub fn has_journal(dir: &Path) -> bool {
    journal_files(dir).map_or(false, |files| !files.is_empty())
}

/// The journal path a given shard invocation would append to.
pub fn journal_path(dir: &Path, shard_index: usize, shard_count: usize) -> PathBuf {
    dir.join(shard_file_name(shard_index, shard_count))
}
